// Shared benchmark helpers: every bench binary prints the paper row it
// reproduces (Figures 3/4) before running its measurements, so the
// bench output reads as "claimed complexity" vs "measured scaling".
#ifndef XMLVERIFY_BENCH_BENCH_UTIL_H_
#define XMLVERIFY_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/verdict.h"

namespace xmlverify {

inline void PrintPaperRow(const char* figure, const char* klass,
                          const char* description, const char* upper,
                          const char* lower) {
  std::printf("== %s ==\n", figure);
  std::printf("   class:       %s\n", klass);
  std::printf("   description: %s\n", description);
  std::printf("   paper upper bound: %s | paper lower bound: %s\n", upper,
              lower);
}

/// Records verdict statistics on benchmark counters.
inline void RecordStats(benchmark::State& state,
                        const ConsistencyVerdict& verdict) {
  state.counters["solver_nodes"] = static_cast<double>(
      verdict.stats.solver_nodes);
  state.counters["lp_pivots"] = static_cast<double>(verdict.stats.lp_pivots);
  state.counters["variables"] = static_cast<double>(
      verdict.stats.num_variables);
}

}  // namespace xmlverify

#endif  // XMLVERIFY_BENCH_BENCH_UTIL_H_
