// Shared benchmark helpers: every bench binary prints the paper row it
// reproduces (Figures 3/4) before running its measurements, so the
// bench output reads as "claimed complexity" vs "measured scaling".
//
// BenchTrace additionally attaches the trace layer's per-iteration
// counters (solver pivots, encoder sizes, search depth — see
// docs/observability.md) to the benchmark counters, so BENCH_*.json
// trajectories can be attributed to a phase instead of guessed at.
#ifndef XMLVERIFY_BENCH_BENCH_UTIL_H_
#define XMLVERIFY_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/verdict.h"
#include "trace/trace.h"

namespace xmlverify {

inline void PrintPaperRow(const char* figure, const char* klass,
                          const char* description, const char* upper,
                          const char* lower) {
  std::printf("== %s ==\n", figure);
  std::printf("   class:       %s\n", klass);
  std::printf("   description: %s\n", description);
  std::printf("   paper upper bound: %s | paper lower bound: %s\n", upper,
              lower);
}

/// Records verdict statistics on benchmark counters.
inline void RecordStats(benchmark::State& state,
                        const ConsistencyVerdict& verdict) {
  state.counters["solver_nodes"] = static_cast<double>(
      verdict.stats.solver_nodes);
  state.counters["lp_pivots"] = static_cast<double>(verdict.stats.lp_pivots);
  state.counters["variables"] = static_cast<double>(
      verdict.stats.num_variables);
}

/// Collects trace counters over a benchmark's measurement loop and
/// attaches them, averaged per iteration, to the benchmark output.
///
///   void BM_Foo(benchmark::State& state) {
///     BenchTrace trace(state);          // installs a trace session
///     for (auto _ : state) { ... }
///   }                                   // counters attached here
///
/// Phase totals are attached as "<name>_ms". Construct it before the
/// measurement loop; the registry is per-benchmark, so counters do not
/// leak across benchmarks.
class BenchTrace {
 public:
  explicit BenchTrace(benchmark::State& state)
      : state_(state), session_(&registry_) {}
  BenchTrace(const BenchTrace&) = delete;
  BenchTrace& operator=(const BenchTrace&) = delete;

  ~BenchTrace() {
    for (const auto& [name, value] : registry_.Counters()) {
      state_.counters[name] = benchmark::Counter(
          static_cast<double>(value), benchmark::Counter::kAvgIterations);
    }
    for (const auto& [name, stat] : registry_.Phases()) {
      state_.counters[name + "_ms"] =
          benchmark::Counter(static_cast<double>(stat.total_nanos) / 1e6,
                             benchmark::Counter::kAvgIterations);
    }
  }

  StatsRegistry& registry() { return registry_; }

 private:
  benchmark::State& state_;
  StatsRegistry registry_;
  TraceSession session_;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_BENCH_BENCH_UTIL_H_
