// Implication (Section 3.4, Corollaries 3.7/4.5): Impl mirrors SAT
// complexities via Proposition 3.6. Measured:
//   * BM_ChainImplication: transitive inclusion chains (the coNP
//     fast path), scaling in chain length;
//   * BM_Prop36: full SAT -> co-Impl reduction instances;
//   * BM_RegularImplication: path-restricted key implication through
//     the z_theta machinery.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/implication.h"
#include "core/specification.h"
#include "reductions/cnf.h"
#include "reductions/cnf_depth2.h"
#include "reductions/impl_reduction.h"

namespace xmlverify {
namespace {

void BM_ChainImplication(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  std::string dtd_text = "<!ELEMENT r (";
  std::string constraints;
  for (int t = 0; t < length; ++t) {
    if (t > 0) dtd_text += ",";
    dtd_text += "t" + std::to_string(t) + "+";
  }
  dtd_text += ")>\n";
  for (int t = 0; t < length; ++t) {
    dtd_text += "<!ATTLIST t" + std::to_string(t) + " v>\n";
    if (t + 1 < length) {
      constraints += "t" + std::to_string(t) + ".v <= t" +
                     std::to_string(t + 1) + ".v\n";
    }
  }
  Specification spec =
      Specification::Parse(dtd_text, constraints).ValueOrDie();
  int first = spec.dtd.TypeId("t0").ValueOrDie();
  int last =
      spec.dtd.TypeId("t" + std::to_string(length - 1)).ValueOrDie();
  ImplicationVerdict verdict;
  BenchTrace trace(state);
  for (auto _ : state) {
    verdict = CheckInclusionImplication(
                  spec.dtd, spec.constraints,
                  AbsoluteInclusion{first, {"v"}, last, {"v"}})
                  .ValueOrDie();
    benchmark::DoNotOptimize(verdict.implied);
  }
  state.counters["implied"] = verdict.implied ? 1 : 0;
  state.counters["solver_nodes"] =
      static_cast<double>(verdict.stats.solver_nodes);
}
BENCHMARK(BM_ChainImplication)
    ->DenseRange(4, 20, 4)
    ->Unit(benchmark::kMillisecond);

void BM_Prop36(benchmark::State& state) {
  const int num_variables = static_cast<int>(state.range(0));
  CnfFormula formula =
      CnfFormula::Random(num_variables, 2 * num_variables, 2, 5);
  Specification spec = CnfToDepth2Spec(formula).ValueOrDie();
  ImplicationInstance instance = SatToImplication(spec).ValueOrDie();
  ImplicationVerdict verdict;
  BenchTrace trace(state);
  for (auto _ : state) {
    verdict = CheckKeyImplication(instance.spec.dtd,
                                  instance.spec.constraints, instance.phi)
                  .ValueOrDie();
    benchmark::DoNotOptimize(verdict.implied);
  }
  state.counters["implied"] = verdict.implied ? 1 : 0;
  state.counters["solver_nodes"] =
      static_cast<double>(verdict.stats.solver_nodes);
}
BENCHMARK(BM_Prop36)->DenseRange(2, 8, 2)->Unit(benchmark::kMillisecond);

void BM_RegularImplication(benchmark::State& state) {
  // k parallel branches; a global key must imply the key on branch 0.
  const int k = static_cast<int>(state.range(0));
  std::string dtd_text = "<!ELEMENT r (";
  for (int b = 0; b < k; ++b) {
    if (b > 0) dtd_text += ",";
    dtd_text += "br" + std::to_string(b);
  }
  dtd_text += ")>\n";
  for (int b = 0; b < k; ++b) {
    dtd_text += "<!ELEMENT br" + std::to_string(b) + " (item+)>\n";
  }
  dtd_text += "<!ATTLIST item id>\n";
  Specification spec =
      Specification::Parse(dtd_text, "r._*.item.id -> r._*.item\n")
          .ValueOrDie();
  auto resolve = [&spec](const std::string& name) {
    return spec.dtd.FindType(name);
  };
  Regex branch_path =
      ParseRegex("r.br0.item", resolve).ValueOrDie();
  int item = spec.dtd.TypeId("item").ValueOrDie();
  ImplicationVerdict verdict;
  BenchTrace trace(state);
  for (auto _ : state) {
    verdict = CheckKeyImplication(spec.dtd, spec.constraints,
                                  RegularKey{branch_path, item, "id"})
                  .ValueOrDie();
    benchmark::DoNotOptimize(verdict.implied);
  }
  state.counters["implied"] = verdict.implied ? 1 : 0;
}
BENCHMARK(BM_RegularImplication)
    ->DenseRange(1, 4, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xmlverify

int main(int argc, char** argv) {
  xmlverify::PrintPaperRow(
      "Implication (Section 3.4)", "Impl(AC_{K,FK}) / Impl(AC^{reg})",
      "constraint implication in the presence of DTDs",
      "coNP / co-NEXPTIME-style mirror of the SAT encodings",
      "coNP-hard / PSPACE-hard (Proposition 3.6, Corollary 3.7)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
