// Ablation for the layered implication engine (core/implication_engine.h):
// the same pool of implication questions is answered twice, once with
// the syntactic quick tier enabled (production configuration, memo off
// so the cache cannot cheat) and once with the quick tier disabled so
// every question pays for the full SAT-based contrapositive encoding.
// Every pool question is chosen to be quick-tier decidable — verbatim
// occurrence, inclusion-closure transitivity, reflexivity, the
// singleton-root rule, and regular-path containment — and full-tier
// decidable, so both configurations return the same verdict and the
// ratio isolates what the quick tier saves.
//
// Reports per-question mean latencies and the median speedup across
// questions (the layered-engine PR's acceptance number: >= 5x), and
// writes the machine-readable snapshot to BENCH_implication.json
// (--out=PATH to override; see docs/performance.md).
//
// Like bench_serve this is a standalone driver, not a google-benchmark
// binary: the quantity of interest is a cross-configuration ratio per
// question, which needs paired measurements rather than independent
// tight loops.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/implication_engine.h"
#include "core/specification.h"
#include "regex/regex.h"

namespace xmlverify {
namespace {

struct BenchConfig {
  int quick_reps = 512;  // quick-tier calls are microsecond-scale
  int full_reps = 12;    // full-tier calls pay for the solver
  std::string out = "BENCH_implication.json";
};

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One pool entry: a closed question the engine answers through
// whichever tiers its options enable.
struct Question {
  std::string name;
  std::string rule;  // quick-tier rule expected to fire
  Specification spec;
  std::function<Result<ImplicationAnswer>(const ImplicationChecker&)> ask;
};

// Sigma = a chain of unary inclusions t0.v <= t1.v <= ... ; phi asks
// for the endpoints. Quick tier: inclusion-closure transitivity.
Question ChainQuestion(int length) {
  std::string dtd_text = "<!ELEMENT r (";
  std::string constraints;
  for (int t = 0; t < length; ++t) {
    if (t > 0) dtd_text += ",";
    dtd_text += "t" + std::to_string(t) + "+";
  }
  dtd_text += ")>\n";
  for (int t = 0; t < length; ++t) {
    dtd_text += "<!ATTLIST t" + std::to_string(t) + " v>\n";
    if (t + 1 < length) {
      constraints += "t" + std::to_string(t) + ".v <= t" +
                     std::to_string(t + 1) + ".v\n";
    }
  }
  Question question;
  question.name = "closure-chain-" + std::to_string(length);
  question.rule = "closure";
  question.spec = Specification::Parse(dtd_text, constraints).ValueOrDie();
  int first = question.spec.dtd.TypeId("t0").ValueOrDie();
  int last = question.spec.dtd.TypeId("t" + std::to_string(length - 1))
                 .ValueOrDie();
  AbsoluteInclusion phi{first, {"v"}, last, {"v"}};
  question.ask = [spec = question.spec,
                  phi](const ImplicationChecker& engine) {
    return engine.CheckInclusion(spec.dtd, spec.constraints, phi);
  };
  return question;
}

// Sigma contains phi outright (one key, one inclusion variant).
std::vector<Question> VerbatimQuestions() {
  Specification spec = Specification::Parse(R"(
<!ELEMENT r (a+, b+, c+)>
<!ATTLIST a v>
<!ATTLIST b v>
<!ATTLIST c v>
)",
                                            R"(
a.v -> a
b.v <= c.v
c.v -> c
)")
                           .ValueOrDie();
  int a = spec.dtd.TypeId("a").ValueOrDie();
  int b = spec.dtd.TypeId("b").ValueOrDie();
  int c = spec.dtd.TypeId("c").ValueOrDie();
  Question key{"verbatim-key", "verbatim", spec, nullptr};
  key.ask = [spec, a](const ImplicationChecker& engine) {
    return engine.CheckKey(spec.dtd, spec.constraints,
                           AbsoluteKey{a, {"v"}});
  };
  Question inclusion{"verbatim-inclusion", "verbatim", spec, nullptr};
  inclusion.ask = [spec, b, c](const ImplicationChecker& engine) {
    return engine.CheckInclusion(spec.dtd, spec.constraints,
                                 AbsoluteInclusion{b, {"v"}, c, {"v"}});
  };
  Question reflexive{"reflexivity", "reflexivity", spec, nullptr};
  reflexive.ask = [spec, b](const ImplicationChecker& engine) {
    return engine.CheckInclusion(spec.dtd, spec.constraints,
                                 AbsoluteInclusion{b, {"v"}, b, {"v"}});
  };
  return {key, inclusion, reflexive};
}

// phi keys the root type: at most one root element exists, so the key
// is vacuous under the empty Sigma.
Question SingletonRootQuestion() {
  Question question;
  question.name = "singleton-root";
  question.rule = "singleton-root";
  question.spec = Specification::Parse(
                      "<!ELEMENT r (a*)>\n<!ATTLIST r id>\n<!ATTLIST a v>\n",
                      "")
                      .ValueOrDie();
  int r = question.spec.dtd.TypeId("r").ValueOrDie();
  question.ask = [spec = question.spec,
                  r](const ImplicationChecker& engine) {
    return engine.CheckKey(spec.dtd, spec.constraints,
                           AbsoluteKey{r, {"id"}});
  };
  return question;
}

// A global regular key over r._*.item implies the key over one
// branch's items: L(r.br0.item) is contained in L(r._*.item).
Question PathContainmentQuestion() {
  Question question;
  question.name = "regular-path-containment";
  question.rule = "path-containment";
  question.spec =
      Specification::Parse(R"(
<!ELEMENT r (br0, br1, br2)>
<!ELEMENT br0 (item+)>
<!ELEMENT br1 (item+)>
<!ELEMENT br2 (item+)>
<!ATTLIST item id>
)",
                           "r._*.item.id -> r._*.item\n")
          .ValueOrDie();
  auto resolve = [spec = question.spec](const std::string& name) {
    return spec.dtd.FindType(name);
  };
  Regex branch = ParseRegex("r.br0.item", resolve).ValueOrDie();
  int item = question.spec.dtd.TypeId("item").ValueOrDie();
  question.ask = [spec = question.spec, branch,
                  item](const ImplicationChecker& engine) {
    return engine.CheckKey(spec.dtd, spec.constraints,
                           RegularKey{branch, item, "id"});
  };
  return question;
}

struct Measurement {
  std::string name;
  std::string rule;
  double quick_us = 0;
  double full_us = 0;
  double speedup = 0;
};

// Mean microseconds per call over `reps` calls. Returns a negative
// value if any call fails or answers "not implied" (every pool
// question is a true implication; a wrong verdict voids the ratio).
double TimeQuestion(const Question& question, const ImplicationChecker& engine,
                    int reps) {
  int64_t begin = NowMicros();
  for (int i = 0; i < reps; ++i) {
    Result<ImplicationAnswer> answer = question.ask(engine);
    if (!answer.ok() || !answer->implied) return -1;
  }
  return static_cast<double>(NowMicros() - begin) /
         static_cast<double>(reps);
}

int Run(const BenchConfig& config) {
  std::vector<Question> pool;
  for (Question& q : VerbatimQuestions()) pool.push_back(std::move(q));
  pool.push_back(SingletonRootQuestion());
  pool.push_back(PathContainmentQuestion());
  for (int length : {4, 8, 12}) pool.push_back(ChainQuestion(length));

  // Production configuration minus the memo (a memo hit would measure
  // the cache, not the quick tier) vs the full encoding alone.
  ImplicationEngineOptions quick_options;
  quick_options.use_memo = false;
  ImplicationEngineOptions full_options;
  full_options.use_quick = false;
  full_options.use_memo = false;
  ImplicationChecker quick_engine(quick_options);
  ImplicationChecker full_engine(full_options);

  std::vector<Measurement> measurements;
  for (const Question& question : pool) {
    // The pool contract: the quick tier settles the question with the
    // expected rule, and the full tier agrees.
    Result<ImplicationAnswer> quick_answer = question.ask(quick_engine);
    if (!quick_answer.ok() ||
        quick_answer->tier != ImplicationTier::kQuick ||
        quick_answer->rule != question.rule) {
      std::fprintf(stderr, "%s: quick tier did not fire rule %s\n",
                   question.name.c_str(), question.rule.c_str());
      return 1;
    }
    Measurement m;
    m.name = question.name;
    m.rule = question.rule;
    m.quick_us = TimeQuestion(question, quick_engine, config.quick_reps);
    m.full_us = TimeQuestion(question, full_engine, config.full_reps);
    if (m.quick_us < 0 || m.full_us < 0) {
      std::fprintf(stderr, "%s: tiers disagree or a check failed\n",
                   question.name.c_str());
      return 1;
    }
    m.speedup = m.quick_us > 0 ? m.full_us / m.quick_us
                               : m.full_us / 0.01;  // sub-us quick calls
    measurements.push_back(m);
  }

  std::vector<double> speedups;
  for (const Measurement& m : measurements) speedups.push_back(m.speedup);
  std::sort(speedups.begin(), speedups.end());
  double median = speedups[speedups.size() / 2];

  std::printf("implication ablation: %zu questions, quick_reps=%d "
              "full_reps=%d\n",
              pool.size(), config.quick_reps, config.full_reps);
  for (const Measurement& m : measurements) {
    std::printf("  %-26s %-18s quick %8.2fus  full %10.2fus  %8.1fx\n",
                m.name.c_str(), m.rule.c_str(), m.quick_us, m.full_us,
                m.speedup);
  }
  std::printf("  median speedup: %.1fx (acceptance: >= 5x)\n", median);

  std::ofstream out(config.out);
  out << "{\n"
      << "  \"bench\": \"implication\",\n"
      << "  \"config\": {\"questions\": " << measurements.size()
      << ", \"quick_reps\": " << config.quick_reps
      << ", \"full_reps\": " << config.full_reps << "},\n"
      << "  \"questions\": [\n";
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"rule\": \"%s\", "
                  "\"quick_us\": %.2f, \"full_us\": %.2f, "
                  "\"speedup\": %.1f}%s\n",
                  m.name.c_str(), m.rule.c_str(), m.quick_us, m.full_us,
                  m.speedup, i + 1 < measurements.size() ? "," : "");
    out << line;
  }
  char tail[96];
  std::snprintf(tail, sizeof(tail),
                "  ],\n  \"median_speedup\": %.1f,\n  \"gate\": 5.0\n}\n",
                median);
  out << tail;
  std::printf("  wrote %s\n", config.out.c_str());
  return median < 5.0 ? 2 : 0;
}

}  // namespace
}  // namespace xmlverify

int main(int argc, char** argv) {
  xmlverify::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--quick-reps=")) {
      config.quick_reps = std::atoi(v);
    } else if (const char* v = value("--full-reps=")) {
      config.full_reps = std::atoi(v);
    } else if (const char* v = value("--out=")) {
      config.out = v;
    } else {
      std::fprintf(stderr,
                   "usage: bench_implication_ablation [--quick-reps=N] "
                   "[--full-reps=N] [--out=PATH]\n");
      return 1;
    }
  }
  return xmlverify::Run(config);
}
