// Robustness-layer overhead and degradation latency.
//
// Two questions (docs/robustness.md):
//   * What does resource governance cost when nothing is exhausted?
//     BM_SolverUnguarded vs BM_SolverGuarded run the same
//     branch-and-bound search without and with an armed memory budget
//     — the delta is the per-node charge/release overhead (budget:
//     < 2% on the solver hot loop).
//   * What does a degraded answer cost relative to the exact one?
//     BM_CheckExact vs BM_CheckDegraded time the same specification
//     through the exact path and through the ladder's bounded rung.
#include <benchmark/benchmark.h>

#include "core/consistency.h"
#include "ilp/solver.h"

namespace xmlverify {
namespace {

IntegerProgram KnapsackProgram(int n) {
  IntegerProgram program;
  LinearExpr sum;
  for (int v = 0; v < n; ++v) {
    VarId var = program.NewVariable("x" + std::to_string(v));
    program.SetUpperBound(var, BigInt(1));
    sum.Add(var, BigInt(2 * v + 3));
  }
  int64_t total = 0;
  for (int v = 0; v < n; ++v) total += 2 * v + 3;
  program.AddLinear(std::move(sum), Relation::kEq, BigInt(total / 2 + 1));
  return program;
}

// Baseline: no limits set — every budget check short-circuits.
void BM_SolverUnguarded(benchmark::State& state) {
  IntegerProgram program = KnapsackProgram(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SolveResult result = IlpSolver().Solve(program);
    benchmark::DoNotOptimize(result.outcome);
  }
}
BENCHMARK(BM_SolverUnguarded)->Arg(10)->Arg(14)->Unit(benchmark::kMillisecond);

// Same search under a generous (never-hit) memory ceiling: the hot
// loop now pays the charge/release accounting on every node.
void BM_SolverGuarded(benchmark::State& state) {
  IntegerProgram program = KnapsackProgram(static_cast<int>(state.range(0)));
  SolverOptions options;
  options.budget.set_memory_limit_bytes(int64_t{1} << 33);  // 8 GiB
  for (auto _ : state) {
    SolveResult result = IlpSolver(options).Solve(program);
    benchmark::DoNotOptimize(result.outcome);
  }
}
BENCHMARK(BM_SolverGuarded)->Arg(10)->Arg(14)->Unit(benchmark::kMillisecond);

Specification WideSpec(int width) {
  std::string dtd = "<!ELEMENT r (";
  for (int i = 0; i < width; ++i) {
    if (i > 0) dtd += ", ";
    dtd += "a" + std::to_string(i) + "+";
  }
  dtd += ")>\n";
  std::string constraints;
  for (int i = 0; i < width; ++i) {
    dtd += "<!ATTLIST a" + std::to_string(i) + " v>\n";
    constraints += "a" + std::to_string(i) + ".v -> a" + std::to_string(i) +
                   "\n";
  }
  return Specification::Parse(dtd, constraints).ValueOrDie();
}

// The exact path, full budget.
void BM_CheckExact(benchmark::State& state) {
  Specification spec = WideSpec(static_cast<int>(state.range(0)));
  ConsistencyChecker::Options options;
  options.build_witness = false;
  ConsistencyChecker checker(options);
  for (auto _ : state) {
    auto verdict = checker.Check(spec);
    benchmark::DoNotOptimize(verdict.ok());
  }
}
BENCHMARK(BM_CheckExact)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// The ladder's rung: the exact stage gives up immediately (zero
// branch-and-bound nodes), so each iteration times one full
// degradation — exact attempt, then the small bounded search.
void BM_CheckDegraded(benchmark::State& state) {
  Specification spec = WideSpec(static_cast<int>(state.range(0)));
  ConsistencyChecker::Options options;
  options.build_witness = false;
  options.solver.max_nodes = 0;
  ConsistencyChecker checker(options);
  int64_t degraded = 0;
  for (auto _ : state) {
    auto verdict = checker.Check(spec);
    benchmark::DoNotOptimize(verdict.ok());
    if (verdict.ok() && !verdict->degradation.empty()) ++degraded;
  }
  state.counters["degraded"] = static_cast<double>(degraded);
}
BENCHMARK(BM_CheckDegraded)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xmlverify

BENCHMARK_MAIN();
