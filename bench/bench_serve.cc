// Load generator for the verification service (src/serve): an
// in-process ServeServer driven over real loopback sockets by
// concurrent ServeClient threads. Two timed phases over a pool of
// difftest-generated specifications:
//
//   cold   every distinct spec once — each request runs the full
//          parse -> canonicalize -> check pipeline and fills the
//          verdict cache;
//   hit    concurrent clients replaying the definitive subset — every
//          request is a raw-tier verdict-cache hit.
//
// Reports throughput and p50/p95/p99 latency per phase plus the
// hit-vs-cold speedup (the serving PR's acceptance number: >= 10x),
// and writes the machine-readable snapshot to BENCH_serve.json
// (--out=PATH to override; see docs/performance.md).
//
// Unlike the bench_* microbenchmarks this is a standalone driver, not
// a google-benchmark binary: the quantities of interest are tail
// latencies across concurrent connections, which need one measured
// sample per request rather than a tight single-threaded loop.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "difftest/spec_generator.h"
#include "serve/client.h"
#include "serve/server.h"
#include "trace/trace.h"

namespace xmlverify {
namespace {

struct BenchConfig {
  int pool = 48;           // distinct specs in the cold phase
  int hit_requests = 512;  // total requests in the hit phase
  int clients = 4;         // concurrent connections in the hit phase
  int jobs = 4;            // server worker threads
  int retries = 0;         // hit-phase CallWithRetry budget (0: single-shot)
  std::string out = "BENCH_serve.json";
};

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else {
      out += c;
    }
  }
  return out;
}

struct LatencyStats {
  int64_t count = 0;
  double mean_us = 0;
  int64_t p50_us = 0;
  int64_t p95_us = 0;
  int64_t p99_us = 0;
  double throughput_rps = 0;
};

LatencyStats Summarize(std::vector<int64_t> latencies_us,
                       int64_t wall_micros) {
  LatencyStats stats;
  stats.count = static_cast<int64_t>(latencies_us.size());
  if (latencies_us.empty()) return stats;
  std::sort(latencies_us.begin(), latencies_us.end());
  double total = 0;
  for (int64_t v : latencies_us) total += static_cast<double>(v);
  stats.mean_us = total / static_cast<double>(latencies_us.size());
  auto percentile = [&](double p) {
    size_t index = static_cast<size_t>(p * (latencies_us.size() - 1) + 0.5);
    return latencies_us[std::min(index, latencies_us.size() - 1)];
  };
  stats.p50_us = percentile(0.50);
  stats.p95_us = percentile(0.95);
  stats.p99_us = percentile(0.99);
  if (wall_micros > 0) {
    stats.throughput_rps = static_cast<double>(latencies_us.size()) * 1e6 /
                           static_cast<double>(wall_micros);
  }
  return stats;
}

std::string StatsJson(const LatencyStats& stats) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"requests\": %lld, \"throughput_rps\": %.1f, "
                "\"latency_us\": {\"mean\": %.1f, \"p50\": %lld, "
                "\"p95\": %lld, \"p99\": %lld}}",
                static_cast<long long>(stats.count), stats.throughput_rps,
                stats.mean_us, static_cast<long long>(stats.p50_us),
                static_cast<long long>(stats.p95_us),
                static_cast<long long>(stats.p99_us));
  return buffer;
}

int Run(const BenchConfig& config) {
  StatsRegistry registry;
  ServeOptions options;
  options.jobs = config.jobs;
  options.stats = &registry;
  ServeServer server(options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.message().c_str());
    return 1;
  }

  // A seed-deterministic spec pool spanning every difftest class, so
  // the cold phase exercises each checking procedure.
  std::vector<std::string> pool;
  std::vector<DifftestClass> classes = AllDifftestClasses();
  for (uint64_t seed = 1; pool.size() < static_cast<size_t>(config.pool);
       ++seed) {
    for (DifftestClass cls : classes) {
      if (pool.size() >= static_cast<size_t>(config.pool)) break;
      Result<GeneratedSpec> generated = GenerateSpec(seed, cls);
      if (generated.ok()) pool.push_back(generated->text);
    }
  }

  // Cold phase: one client, every spec once, nothing cached yet.
  std::vector<std::string> definitive;  // cacheable subset for phase 2
  std::vector<int64_t> cold_us;
  int64_t cold_start = NowMicros();
  {
    Result<ServeClient> client = ServeClient::Connect("127.0.0.1",
                                                      server.port());
    if (!client.ok()) {
      std::fprintf(stderr, "connect: %s\n", client.status().message().c_str());
      return 1;
    }
    for (size_t i = 0; i < pool.size(); ++i) {
      std::string request = "{\"id\":\"cold" + std::to_string(i) +
                            "\",\"spec\":\"" + JsonEscape(pool[i]) + "\"}";
      int64_t begin = NowMicros();
      if (!client->SendLine(request).ok()) return 1;
      Result<std::string> response = client->ReadLine();
      if (!response.ok()) return 1;
      cold_us.push_back(NowMicros() - begin);
      bool cacheable =
          response->find("\"verdict\":\"CONSISTENT\"") != std::string::npos ||
          response->find("\"verdict\":\"INCONSISTENT\"") != std::string::npos;
      if (cacheable) definitive.push_back(pool[i]);
    }
  }
  int64_t cold_wall = NowMicros() - cold_start;

  if (definitive.empty()) {
    std::fprintf(stderr, "no definitive verdicts in the pool\n");
    return 1;
  }

  // Hit phase: concurrent clients replaying the definitive subset;
  // every request must be served from the verdict cache.
  std::vector<int64_t> hit_us;
  std::mutex hit_mutex;
  std::atomic<int> next_request{0};
  std::atomic<int> not_cached{0};
  std::atomic<int> failures{0};
  int64_t hit_start = NowMicros();
  std::vector<std::thread> threads;
  for (int c = 0; c < config.clients; ++c) {
    threads.emplace_back([&, c] {
      // With --retries, shed responses (queue full, connection cap)
      // are retried with backoff instead of counting as failures —
      // the realistic client behavior under deliberate overload.
      ClientOptions client_options;
      client_options.max_retries = config.retries;
      client_options.jitter_seed = static_cast<uint64_t>(c) + 1;
      Result<ServeClient> client = ServeClient::Connect(
          "127.0.0.1", server.port(), client_options);
      if (!client.ok()) {
        ++failures;
        return;
      }
      std::vector<int64_t> local;
      int index;
      while ((index = next_request.fetch_add(1)) < config.hit_requests) {
        const std::string& spec = definitive[index % definitive.size()];
        std::string request = "{\"id\":\"hit" + std::to_string(index) +
                              "\",\"spec\":\"" + JsonEscape(spec) + "\"}";
        int64_t begin = NowMicros();
        Result<std::string> response =
            config.retries > 0 ? client->CallWithRetry(request)
                               : (client->SendLine(request).ok()
                                      ? client->ReadLine()
                                      : Status::Internal("send failed"));
        if (!response.ok()) {
          ++failures;
          return;
        }
        local.push_back(NowMicros() - begin);
        if (response->find("\"cached\":true") == std::string::npos) {
          ++not_cached;
        }
      }
      std::lock_guard<std::mutex> lock(hit_mutex);
      hit_us.insert(hit_us.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  int64_t hit_wall = NowMicros() - hit_start;
  server.Shutdown();

  if (failures.load() > 0) {
    std::fprintf(stderr, "%d client failures\n", failures.load());
    return 1;
  }

  LatencyStats cold = Summarize(std::move(cold_us), cold_wall);
  LatencyStats hit = Summarize(std::move(hit_us), hit_wall);
  double speedup_p50 =
      hit.p50_us > 0 ? static_cast<double>(cold.p50_us) /
                           static_cast<double>(hit.p50_us)
                     : 0;
  double speedup_mean = hit.mean_us > 0 ? cold.mean_us / hit.mean_us : 0;

  std::printf("serve bench: pool=%d definitive=%zu clients=%d jobs=%d\n",
              config.pool, definitive.size(), config.clients, config.jobs);
  std::printf("  cold: %s\n", StatsJson(cold).c_str());
  std::printf("  hit:  %s\n", StatsJson(hit).c_str());
  std::printf("  hit speedup: p50 %.1fx, mean %.1fx (acceptance: >= 10x)\n",
              speedup_p50, speedup_mean);
  if (not_cached.load() > 0) {
    std::printf("  WARNING: %d hit-phase responses were not cache hits\n",
                not_cached.load());
  }

  std::ofstream out(config.out);
  out << "{\n"
      << "  \"bench\": \"serve\",\n"
      << "  \"config\": {\"pool\": " << config.pool
      << ", \"definitive\": " << definitive.size()
      << ", \"hit_requests\": " << config.hit_requests
      << ", \"clients\": " << config.clients << ", \"jobs\": " << config.jobs
      << "},\n"
      << "  \"cold\": " << StatsJson(cold) << ",\n"
      << "  \"hit\": " << StatsJson(hit) << ",\n";
  char ratio[128];
  std::snprintf(ratio, sizeof(ratio),
                "  \"hit_speedup\": {\"p50\": %.1f, \"mean\": %.1f},\n",
                speedup_p50, speedup_mean);
  out << ratio << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : registry.Counters()) {
    if (name.rfind("serve/", 0) != 0) continue;
    if (!first) out << ", ";
    first = false;
    out << "\"" << name << "\": " << value;
  }
  out << "}\n}\n";
  std::printf("  wrote %s\n", config.out.c_str());
  return (not_cached.load() > 0 || speedup_p50 < 10.0) ? 2 : 0;
}

}  // namespace
}  // namespace xmlverify

int main(int argc, char** argv) {
  xmlverify::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--pool=")) {
      config.pool = std::atoi(v);
    } else if (const char* v = value("--requests=")) {
      config.hit_requests = std::atoi(v);
    } else if (const char* v = value("--clients=")) {
      config.clients = std::atoi(v);
    } else if (const char* v = value("--jobs=")) {
      config.jobs = std::atoi(v);
    } else if (const char* v = value("--retries=")) {
      config.retries = std::atoi(v);
    } else if (const char* v = value("--out=")) {
      config.out = v;
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--pool=N] [--requests=N] "
                   "[--clients=N] [--jobs=N] [--retries=N] [--out=PATH]\n");
      return 1;
    }
  }
  return xmlverify::Run(config);
}
