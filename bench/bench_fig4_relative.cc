// Figure 4: relative constraints.
//   * column 2 (RC_{K,FK}): undecidable (Theorem 4.1) — the
//     Diophantine-encoded family runs through the bounded searcher;
//   * column 3 (HRC_{K,FK}): decidable, EXPSPACE upper / PSPACE-hard —
//     BM_HierarchicalNesting scales the number and nesting of scopes;
//   * column 4 (d-HRC): PSPACE-complete — BM_QbfHrc runs the
//     Theorem 4.4 QBF reduction (2-local instances).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/brute_force.h"
#include "core/consistency.h"
#include "reductions/diophantine_relative.h"
#include "reductions/qbf.h"
#include "reductions/qbf_hrc.h"

namespace xmlverify {
namespace {

// `levels` nested scope layers, each with a relative key, fanout 2.
Specification NestedScopes(int levels) {
  std::string dtd_text = "<!ELEMENT s0 (s1, s1)>\n";
  std::string constraints;
  for (int level = 1; level < levels; ++level) {
    dtd_text += "<!ELEMENT s" + std::to_string(level) + " (s" +
                std::to_string(level + 1) + ", s" +
                std::to_string(level + 1) + ")>\n";
  }
  dtd_text += "<!ELEMENT s" + std::to_string(levels) + " EMPTY>\n";
  for (int level = 1; level <= levels; ++level) {
    dtd_text += "<!ATTLIST s" + std::to_string(level) + " v>\n";
    constraints += "s" + std::to_string(level - 1) + "(s" +
                   std::to_string(level) + ".v -> s" +
                   std::to_string(level) + ")\n";
  }
  return Specification::Parse(dtd_text, constraints).ValueOrDie();
}

void BM_HierarchicalNesting(benchmark::State& state) {
  Specification spec = NestedScopes(static_cast<int>(state.range(0)));
  ConsistencyChecker checker;
  ConsistencyVerdict verdict;
  BenchTrace trace(state);
  for (auto _ : state) {
    verdict = checker.Check(spec).ValueOrDie();
    benchmark::DoNotOptimize(verdict.outcome);
  }
  RecordStats(state, verdict);
  state.counters["scopes"] = static_cast<double>(verdict.stats.subproblems);
  state.counters["consistent"] = verdict.consistent() ? 1 : 0;
}
BENCHMARK(BM_HierarchicalNesting)
    ->DenseRange(1, 6, 1)
    ->Unit(benchmark::kMillisecond);

void BM_QbfHrc(benchmark::State& state) {
  const int num_variables = static_cast<int>(state.range(0));
  QbfFormula formula = QbfFormula::Random(num_variables, 3, 2, 11);
  Specification spec = QbfTo2HrcSpec(formula).ValueOrDie();
  ConsistencyChecker checker;
  ConsistencyVerdict verdict;
  BenchTrace trace(state);
  for (auto _ : state) {
    verdict = checker.Check(spec).ValueOrDie();
    benchmark::DoNotOptimize(verdict.outcome);
  }
  RecordStats(state, verdict);
  state.counters["scopes"] = static_cast<double>(verdict.stats.subproblems);
  state.counters["consistent"] = verdict.consistent() ? 1 : 0;
  state.counters["valid_qbf"] = formula.Evaluate() ? 1 : 0;
}
BENCHMARK(BM_QbfHrc)
    ->DenseRange(1, 5, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_UndecidableDiophantine(benchmark::State& state) {
  // A quadratic equation with a small solution: x0 * x1 = constant.
  // Not hierarchical, so only bounded search applies; cost grows
  // steeply with the node budget.
  QuadraticEquation equation;
  equation.num_variables = 2;
  equation.lhs_quadratic.push_back({1, 0, 1});
  equation.constant = 1;
  Specification spec =
      QuadraticEquationToRelativeSpec(equation).ValueOrDie();
  ConsistencyChecker::Options options;
  options.bounded.max_nodes = static_cast<int>(state.range(0));
  options.bounded.max_candidates = 200000;
  ConsistencyChecker checker(options);
  ConsistencyVerdict verdict;
  BenchTrace trace(state);
  for (auto _ : state) {
    verdict = checker.Check(spec).ValueOrDie();
    benchmark::DoNotOptimize(verdict.outcome);
  }
  state.counters["candidates"] =
      static_cast<double>(verdict.stats.subproblems);
  state.counters["consistent"] = verdict.consistent() ? 1 : 0;
}
BENCHMARK(BM_UndecidableDiophantine)
    ->DenseRange(4, 8, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xmlverify

int main(int argc, char** argv) {
  xmlverify::PrintPaperRow(
      "Figure 4", "RC_{K,FK} / HRC_{K,FK} / d-HRC_{K,FK}",
      "relative keys and foreign keys: general, hierarchical, d-local",
      "undecidable / EXPSPACE / PSPACE",
      "undecidable / PSPACE-hard / PSPACE-hard (QBF, Theorem 4.4)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
