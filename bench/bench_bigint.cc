// Microbenchmark gate for the sub-quadratic BigInt kernels
// (base/bigint.cc): multiply, divmod, and gcd families across limb
// sizes, each measured twice on identical operands — once with the
// production kernels (64-bit word schoolbook + Karatsuba, Knuth
// Algorithm D, Stein GCD) and once with the compiled-in schoolbook
// reference suite behind BigInt::ForceReferenceKernels. Results are
// asserted equal before timing counts, so the ratio can never come
// from a wrong answer.
//
// Prints a per-family table and writes BENCH_bigint.json (--out=PATH
// to override). Exits non-zero when a gate fails: >= 3x on the
// 32-limb multiply and >= 2x on the 32-limb divmod (see
// docs/performance.md, "BigInt kernels").
//
// Standalone driver, not a google-benchmark binary: the quantity of
// interest is a paired fast-vs-reference ratio on identical operands,
// plus a hard gate, which does not fit the independent-loop model.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "base/bigint.h"

namespace xmlverify {
namespace {

struct BenchConfig {
  std::string out = "BENCH_bigint.json";
  // Repetition budget scale; families pick reps = max(1, budget / cost)
  // with a per-family cost model so slow reference kernels (binary
  // long division, Euclid on big operands) stay bounded.
  int budget = 400000;
};

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Deterministic dense magnitude of exactly `limbs` 32-bit limbs.
BigInt RandomMagnitude(SplitMix64* rng, size_t limbs) {
  BigInt value;
  for (size_t i = 0; i < limbs; ++i) {
    uint32_t chunk = static_cast<uint32_t>(rng->Next());
    if (i + 1 == limbs && chunk == 0) chunk = 1;
    value.ShlBits(32);
    value += BigInt(static_cast<int64_t>(chunk));
  }
  return value;
}

struct Family {
  std::string name;
  size_t limbs = 0;       // headline operand size
  double fast_us = 0;     // mean per operation
  double ref_us = 0;
  double speedup = 0;
  double gate = 0;        // 0 = informational only
};

// Times `op` under the current kernel selection: splits `reps` into a
// few timed blocks and returns the minimum per-run mean. The workload
// is deterministic, so the minimum is the noise-robust estimator on a
// shared machine — interference can only inflate a block, never
// deflate it.
double TimeOp(const std::function<void()>& op, int reps) {
  op();  // warm-up (first-touch allocations)
  constexpr int kBlocks = 5;
  const int per_block = std::max(1, reps / kBlocks);
  double best = 0;
  for (int block = 0; block < kBlocks; ++block) {
    int64_t start = NowMicros();
    for (int i = 0; i < per_block; ++i) op();
    double mean = static_cast<double>(NowMicros() - start) / per_block;
    if (block == 0 || mean < best) best = mean;
  }
  return best;
}

// Measures one family: checks fast == reference on every operand pair,
// then times both suites on the identical workload.
Family MeasureFamily(const std::string& name, size_t limbs, double gate,
                     const std::vector<std::function<BigInt()>>& ops,
                     int fast_reps, int ref_reps) {
  Family family;
  family.name = name;
  family.limbs = limbs;
  family.gate = gate;
  // Correctness pairing first: the ratio is meaningless if the suites
  // disagree, so disagreement is fatal.
  std::vector<BigInt> fast_results;
  for (const auto& op : ops) fast_results.push_back(op());
  BigInt::ForceReferenceKernels(true);
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i]() != fast_results[i]) {
      BigInt::ForceReferenceKernels(false);
      std::fprintf(stderr, "%s: fast and reference kernels disagree\n",
                   name.c_str());
      std::exit(1);
    }
  }
  BigInt::ForceReferenceKernels(false);

  auto run_all = [&ops] {
    for (const auto& op : ops) op();
  };
  family.fast_us = TimeOp(run_all, fast_reps) / ops.size();
  BigInt::ForceReferenceKernels(true);
  family.ref_us = TimeOp(run_all, ref_reps) / ops.size();
  BigInt::ForceReferenceKernels(false);
  family.speedup = family.fast_us > 0 ? family.ref_us / family.fast_us
                                      : family.ref_us / 0.001;
  return family;
}

int Run(const BenchConfig& config) {
  SplitMix64 rng(0xb16b00b5cafef00dULL);
  std::vector<Family> families;

  // --- multiply: n-limb x n-limb ------------------------------------
  for (size_t limbs : {8u, 16u, 32u, 64u, 128u, 256u}) {
    std::vector<std::function<BigInt()>> ops;
    for (int pair = 0; pair < 4; ++pair) {
      BigInt a = RandomMagnitude(&rng, limbs);
      BigInt b = RandomMagnitude(&rng, limbs);
      ops.push_back([a, b] { return a * b; });
    }
    // Reference cost ~ limbs^2 32-bit mults; keep the total bounded.
    int reps = std::max(1, config.budget / static_cast<int>(limbs * limbs));
    families.push_back(MeasureFamily("mul-" + std::to_string(limbs),
                                     limbs, limbs == 32 ? 3.0 : 0.0, ops,
                                     reps, reps));
  }

  // --- divmod: 2n-limb dividend / n-limb divisor --------------------
  for (size_t limbs : {16u, 32u, 64u, 128u}) {
    std::vector<std::function<BigInt()>> ops;
    for (int pair = 0; pair < 4; ++pair) {
      BigInt a = RandomMagnitude(&rng, limbs);
      BigInt b = RandomMagnitude(&rng, limbs / 2);
      // Fold quotient and remainder into one checkable value.
      ops.push_back([a, b] {
        BigInt q;
        BigInt r;
        if (!a.DivMod(b, &q, &r).ok()) return BigInt(0);
        return q.ShlBits(1) += r;
      });
    }
    // The reference is binary long division: ~bits iterations over
    // ~limbs-sized magnitudes.
    int ref_cost = static_cast<int>(limbs * 32 * limbs) / 16;
    int reps = std::max(1, config.budget / std::max(1, ref_cost));
    families.push_back(MeasureFamily("divmod-" + std::to_string(limbs),
                                     limbs, limbs == 32 ? 2.0 : 0.0, ops,
                                     reps * 8, reps));
  }

  // --- gcd: n-limb operands sharing an n/2-limb factor --------------
  for (size_t limbs : {8u, 16u, 32u}) {
    std::vector<std::function<BigInt()>> ops;
    for (int pair = 0; pair < 2; ++pair) {
      BigInt g = RandomMagnitude(&rng, limbs / 2);
      BigInt a = g * RandomMagnitude(&rng, limbs - limbs / 2);
      BigInt b = g * RandomMagnitude(&rng, limbs - limbs / 2);
      ops.push_back([a, b] { return BigInt::Gcd(a, b); });
    }
    // Euclid-via-long-division reference: ~bits iterations, each a
    // full binary division — the steepest reference cost here.
    int ref_cost = static_cast<int>(limbs * 32 * limbs * limbs) / 8;
    int reps = std::max(1, config.budget / std::max(1, ref_cost));
    families.push_back(MeasureFamily("gcd-" + std::to_string(limbs),
                                     limbs, 0.0, ops, reps * 8, reps));
  }

  bool gates_met = true;
  std::printf("bigint kernels: fast (Karatsuba/Knuth-D/Stein) vs "
              "schoolbook reference\n");
  for (const Family& family : families) {
    bool gated = family.gate > 0;
    bool ok = !gated || family.speedup >= family.gate;
    if (!ok) gates_met = false;
    std::printf("  %-12s %4zu limbs  fast %10.2fus  ref %12.2fus  %8.1fx%s\n",
                family.name.c_str(), family.limbs, family.fast_us,
                family.ref_us, family.speedup,
                gated ? (ok ? "  [gate ok]" : "  [GATE FAILED]") : "");
  }

  std::ofstream out(config.out);
  out << "{\n"
      << "  \"bench\": \"bigint\",\n"
      << "  \"families\": [\n";
  for (size_t i = 0; i < families.size(); ++i) {
    const Family& family = families[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"limbs\": %zu, "
                  "\"fast_us\": %.3f, \"ref_us\": %.3f, "
                  "\"speedup\": %.1f, \"gate\": %.1f}%s\n",
                  family.name.c_str(), family.limbs, family.fast_us,
                  family.ref_us, family.speedup, family.gate,
                  i + 1 < families.size() ? "," : "");
    out << line;
  }
  out << "  ],\n"
      << "  \"gates\": {\"mul_32_limbs\": 3.0, \"divmod_32_limbs\": 2.0},\n"
      << "  \"gates_met\": " << (gates_met ? "true" : "false") << "\n"
      << "}\n";
  std::printf("  wrote %s\n", config.out.c_str());
  return gates_met ? 0 : 2;
}

}  // namespace
}  // namespace xmlverify

int main(int argc, char** argv) {
  xmlverify::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--out=")) {
      config.out = v;
    } else if (const char* v = value("--budget=")) {
      config.budget = std::atoi(v);
    } else {
      std::fprintf(stderr, "usage: bench_bigint [--budget=N] [--out=PATH]\n");
      return 1;
    }
  }
  return xmlverify::Run(config);
}
