// Batch-driver throughput: the same manifest of specifications
// checked at increasing worker counts. The specs are spec-level
// independent (the paper's consistency problem is embarrassingly
// parallel across specifications), so throughput should scale with
// --jobs until memory bandwidth or the shared memo caches saturate;
// the jobs/1 vs jobs/8 ratio is the acceptance number for the batch
// driver. Entries deliberately repeat a few spec shapes so the DFA
// and cardinality-plan caches get hits, as a batch of related
// real-world specs would.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "batch/batch_runner.h"
#include "trace/trace.h"

namespace xmlverify {
namespace {

// A school-style spec of parameterized width: `kinds` student kinds,
// each with a key and a foreign key into a shared course roster.
std::string MakeSpec(int kinds, bool consistent) {
  // The inconsistent variant forces two s0 elements against a single
  // course: two distinct key values cannot fit one cid value.
  std::string dtd = "<!ELEMENT school (";
  if (!consistent) dtd += "s0, s0, ";
  for (int k = 0; k < kinds; ++k) {
    dtd += "s" + std::to_string(k) + "*, ";
  }
  dtd += consistent ? "course*" : "course";
  dtd += ")>\n";
  for (int k = 0; k < kinds; ++k) {
    dtd += "<!ATTLIST s" + std::to_string(k) + " sid aid>\n";
  }
  dtd += "<!ATTLIST course cid>\n";
  std::string constraints;
  for (int k = 0; k < kinds; ++k) {
    const std::string s = "s" + std::to_string(k);
    constraints += s + ".sid -> " + s + "\n";
    constraints += "fk " + s + ".sid <= course.cid\n";
  }
  return dtd + "%%\n" + constraints;
}

// Writes the spec corpus and a manifest into a temp directory once;
// returns the manifest entries.
const std::vector<BatchEntry>& Manifest() {
  static const std::vector<BatchEntry>* entries = [] {
    auto* list = new std::vector<BatchEntry>();
    std::string dir = std::filesystem::temp_directory_path().string();
    int line = 0;
    for (int copy = 0; copy < 8; ++copy) {
      for (int kinds = 2; kinds <= 5; ++kinds) {
        std::string path = dir + "/bench_spec_" + std::to_string(kinds) +
                           "_" + std::to_string(copy % 2) + ".xvc";
        std::ofstream out(path);
        out << MakeSpec(kinds, copy % 2 == 0);
        BatchEntry entry;
        entry.dtd_path = path;
        entry.line = ++line;
        list->push_back(entry);
      }
    }
    return list;
  }();
  return *entries;
}

void BM_BatchThroughput(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  StatsRegistry registry;
  int verdicts = 0;
  for (auto _ : state) {
    BatchOptions options;
    options.jobs = jobs;
    options.stats = &registry;
    BatchResult result = RunBatch(Manifest(), options);
    benchmark::DoNotOptimize(result.consistent);
    verdicts = static_cast<int>(result.items.size());
  }
  state.counters["specs"] = verdicts;
  state.counters["dfa_hits"] =
      static_cast<double>(registry.Counter("cache/dfa_hits"));
  state.counters["cardinality_hits"] =
      static_cast<double>(registry.Counter("cache/cardinality_hits"));
}
BENCHMARK(BM_BatchThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace xmlverify

BENCHMARK_MAIN();
