// Figure 3, column AC_{K,FK}: unary keys and foreign keys —
// NP-complete [14]. Measured families:
//   * BM_CnfDepth2: the depth-2 CNF-SAT reduction (Theorem 3.5a),
//     scaling in the number of propositional variables — worst-case
//     exponential growth is expected from an NP-complete fragment;
//   * BM_SubsetSum2Constraints: the 2-constraint SUBSET-SUM reduction,
//     scaling in the bit width of the target;
//   * BM_WideConsistentChain: a benign consistent family (foreign-key
//     chains), scaling near-polynomially — typical inputs are easy.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/consistency.h"
#include "reductions/cnf.h"
#include "reductions/cnf_depth2.h"
#include "reductions/subset_sum.h"

namespace xmlverify {
namespace {

void BM_CnfDepth2(benchmark::State& state) {
  const int num_variables = static_cast<int>(state.range(0));
  CnfFormula formula =
      CnfFormula::Random(num_variables, 2 * num_variables, 3, 42);
  Specification spec = CnfToDepth2Spec(formula).ValueOrDie();
  ConsistencyChecker checker;
  ConsistencyVerdict verdict;
  BenchTrace trace(state);
  for (auto _ : state) {
    verdict = checker.Check(spec).ValueOrDie();
    benchmark::DoNotOptimize(verdict.outcome);
  }
  RecordStats(state, verdict);
  state.counters["consistent"] = verdict.consistent() ? 1 : 0;
}
BENCHMARK(BM_CnfDepth2)
    ->DenseRange(2, 12, 2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_SubsetSum2Constraints(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  // Target with all bits set; items are powers of two plus a filler,
  // so a solution exists.
  SubsetSumInstance instance;
  instance.target = (int64_t{1} << bits) - 1;
  for (int b = 0; b < bits; ++b) instance.items.push_back(int64_t{1} << b);
  Specification spec = SubsetSumToSpec(instance).ValueOrDie();
  ConsistencyChecker checker;
  ConsistencyVerdict verdict;
  BenchTrace trace(state);
  for (auto _ : state) {
    verdict = checker.Check(spec).ValueOrDie();
    benchmark::DoNotOptimize(verdict.outcome);
  }
  RecordStats(state, verdict);
  state.counters["consistent"] = verdict.consistent() ? 1 : 0;
}
BENCHMARK(BM_SubsetSum2Constraints)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);

void BM_WideConsistentChain(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  // t0 <= t1 <= ... <= t_{w-1}: a long foreign-key chain, consistent.
  std::string dtd_text = "<!ELEMENT r (";
  std::string constraints;
  for (int t = 0; t < width; ++t) {
    if (t > 0) dtd_text += ",";
    dtd_text += "t" + std::to_string(t) + "+";
  }
  dtd_text += ")>\n";
  for (int t = 0; t < width; ++t) {
    dtd_text += "<!ATTLIST t" + std::to_string(t) + " v>\n";
    if (t + 1 < width) {
      constraints += "fk t" + std::to_string(t) + ".v <= t" +
                     std::to_string(t + 1) + ".v\n";
    }
  }
  Specification spec =
      Specification::Parse(dtd_text, constraints).ValueOrDie();
  ConsistencyChecker checker;
  ConsistencyVerdict verdict;
  BenchTrace trace(state);
  for (auto _ : state) {
    verdict = checker.Check(spec).ValueOrDie();
    benchmark::DoNotOptimize(verdict.outcome);
  }
  RecordStats(state, verdict);
  state.counters["consistent"] = verdict.consistent() ? 1 : 0;
}
BENCHMARK(BM_WideConsistentChain)
    ->DenseRange(4, 32, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xmlverify

int main(int argc, char** argv) {
  xmlverify::PrintPaperRow(
      "Figure 3 / column 4", "AC_{K,FK}",
      "unary keys and unary foreign keys",
      "NP (membership via cardinality coding + integer programming)",
      "NP-hard (CNF-SAT via depth-2 DTDs; SUBSET SUM via 2 constraints)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
