// Figure 3, columns 1 and 2: multi-attribute constraints.
//
// Column 2 — AC^{*,1}_{PK,FK} (multi-attribute primary keys, unary
// foreign keys): polynomially equivalent to PDE (Theorem 3.1);
// NP-hard, in NEXPTIME. Measured:
//   * BM_PdeReduction: PDE instances pushed through the appendix
//     reduction and decided by the consistency checker;
//   * BM_PdeDirect: the same instances decided directly (the
//     SAT -> PDE direction), for the equivalence;
//   * BM_KeyWidth: growing key width k (prequadratic chain length).
//
// Column 1 — AC^{*,*}_{K,FK} is undecidable [14]: the bounded
// searcher is the only tool; BM_UndecidableBounded shows its cost.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/brute_force.h"
#include "core/consistency.h"
#include "reductions/pde_reduction.h"

namespace xmlverify {
namespace {

PdeSystem FamilyInstance(int size) {
  // x0 >= size, x0 <= x1 * x2, x1 <= ceil(sqrt(size)), x2 <= size.
  PdeSystem system;
  system.num_variables = 3;
  system.rows.push_back({{1, 0, 0}, false, size});
  int64_t cap = 1;
  while (cap * cap < size) ++cap;
  system.rows.push_back({{0, 1, 0}, true, cap});
  system.rows.push_back({{0, 0, 1}, true, size});
  system.prequadratics.push_back({0, 1, 2});
  return system;
}

void BM_PdeReduction(benchmark::State& state) {
  Specification spec =
      PdeToSpec(FamilyInstance(static_cast<int>(state.range(0))))
          .ValueOrDie();
  ConsistencyChecker checker;
  ConsistencyVerdict verdict;
  BenchTrace trace(state);
  for (auto _ : state) {
    verdict = checker.Check(spec).ValueOrDie();
    benchmark::DoNotOptimize(verdict.outcome);
  }
  RecordStats(state, verdict);
  state.counters["consistent"] = verdict.consistent() ? 1 : 0;
}
BENCHMARK(BM_PdeReduction)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_PdeDirect(benchmark::State& state) {
  PdeSystem system = FamilyInstance(static_cast<int>(state.range(0)));
  SolveResult result;
  for (auto _ : state) {
    result = SolvePde(system).ValueOrDie();
    benchmark::DoNotOptimize(result.outcome);
  }
  state.counters["solver_nodes"] = static_cast<double>(result.nodes_explored);
  state.counters["sat"] = result.outcome == SolveOutcome::kSat ? 1 : 0;
}
BENCHMARK(BM_PdeDirect)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_KeyWidth(benchmark::State& state) {
  // One element type with a k-attribute primary key; each attribute
  // is a foreign key into a pool of 2 values; 2^k - 1 elements fit.
  const int k = static_cast<int>(state.range(0));
  std::string attrs;
  std::string keys = "p[";
  std::string constraints;
  for (int a = 0; a < k; ++a) {
    attrs += " a" + std::to_string(a);
    if (a > 0) keys += ",";
    keys += "a" + std::to_string(a);
    constraints += "fk p.a" + std::to_string(a) + " <= q.v\n";
  }
  keys += "] -> p\n";
  int elements = (1 << k) - 1;
  std::string dtd_text = "<!ELEMENT r (q,q";
  for (int e = 0; e < elements; ++e) dtd_text += ",p";
  dtd_text += ")>\n<!ATTLIST p" + attrs + ">\n<!ATTLIST q v>\n";
  Specification spec =
      Specification::Parse(dtd_text, keys + constraints).ValueOrDie();
  ConsistencyChecker checker;
  ConsistencyVerdict verdict;
  BenchTrace trace(state);
  for (auto _ : state) {
    verdict = checker.Check(spec).ValueOrDie();
    benchmark::DoNotOptimize(verdict.outcome);
  }
  RecordStats(state, verdict);
  state.counters["consistent"] = verdict.consistent() ? 1 : 0;
}
BENCHMARK(BM_KeyWidth)->DenseRange(1, 4, 1)->Unit(benchmark::kMillisecond);

void BM_UndecidableBounded(benchmark::State& state) {
  // A multi-attribute inclusion (outside every decidable fragment):
  // bounded search is the honest fallback; cost grows with the node
  // budget.
  Specification spec =
      Specification::Parse(
          "<!ELEMENT r (p+, q+)>\n<!ATTLIST p a b>\n<!ATTLIST q c d>\n",
          "p[a,b] <= q[c,d]\n")
          .ValueOrDie();
  ConsistencyChecker::Options options;
  options.bounded.max_nodes = static_cast<int>(state.range(0));
  ConsistencyChecker checker(options);
  ConsistencyVerdict verdict;
  BenchTrace trace(state);
  for (auto _ : state) {
    verdict = checker.Check(spec).ValueOrDie();
    benchmark::DoNotOptimize(verdict.outcome);
  }
  state.counters["consistent"] = verdict.consistent() ? 1 : 0;
  state.counters["candidates"] =
      static_cast<double>(verdict.stats.subproblems);
}
BENCHMARK(BM_UndecidableBounded)
    ->DenseRange(3, 6, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xmlverify

int main(int argc, char** argv) {
  xmlverify::PrintPaperRow(
      "Figure 3 / columns 1-2", "AC^{*,*}_{K,FK} and AC^{*,1}_{PK,FK}",
      "multi-attribute keys (general: undecidable; primary + unary "
      "foreign keys: equivalent to PDE)",
      "undecidable / NEXPTIME (PDE, McAllester et al.)",
      "undecidable / NP-hard (Theorem 3.1)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
