// Figure 3, column AC^{reg}_{K,FK}: unary regular-path constraints —
// NEXPTIME upper bound (Theorem 3.4a), PSPACE-hard (Theorem 3.4b).
// Measured families:
//   * BM_QbfRegular: the QBF reduction, scaling in quantified
//     variables — the z_theta block doubles per constraint pair, so
//     exponential growth in both size and time is the expected shape;
//   * BM_SchoolFamily: school-style specifications with a growing
//     number of course/lab branches — realistic consistent inputs;
//   * BM_ExpressionBlowup: constraint count k against the 2^k
//     value-partition variables (size counter), the NEXPTIME driver.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/consistency.h"
#include "reductions/qbf.h"
#include "reductions/qbf_regular.h"

namespace xmlverify {
namespace {

void BM_QbfRegular(benchmark::State& state) {
  const int num_variables = static_cast<int>(state.range(0));
  QbfFormula formula = QbfFormula::Random(num_variables, 3, 2, 7);
  Specification spec = QbfToRegularSpec(formula).ValueOrDie();
  ConsistencyChecker::Options options;
  options.max_expressions = 20;
  ConsistencyChecker checker(options);
  ConsistencyVerdict verdict;
  BenchTrace trace(state);
  for (auto _ : state) {
    verdict = checker.Check(spec).ValueOrDie();
    benchmark::DoNotOptimize(verdict.outcome);
  }
  RecordStats(state, verdict);
  state.counters["consistent"] = verdict.consistent() ? 1 : 0;
  state.counters["valid_qbf"] = formula.Evaluate() ? 1 : 0;
}
BENCHMARK(BM_QbfRegular)
    ->DenseRange(1, 3, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// A consistent school-like specification with `branches` course
// branches, each carrying a key and a foreign key into the student
// registry.
Specification SchoolFamily(int branches) {
  std::string dtd_text =
      "<!ELEMENT r (students, courses)>\n"
      "<!ELEMENT students (student+)>\n"
      "<!ELEMENT student (record)>\n"
      "<!ELEMENT record EMPTY>\n"
      "<!ATTLIST record id>\n";
  std::string courses;
  std::string constraints =
      "r._*.record.id -> r._*.record\n";
  for (int b = 0; b < branches; ++b) {
    std::string course = "course" + std::to_string(b);
    if (!courses.empty()) courses += ",";
    courses += course;
    dtd_text += "<!ELEMENT " + course + " (takenBy" + std::to_string(b) +
                "+)>\n<!ATTLIST takenBy" + std::to_string(b) + " sid>\n";
    constraints += "fk r.courses." + course + ".takenBy" + std::to_string(b) +
                   ".sid <= r._*.student.record.id\n";
  }
  dtd_text += "<!ELEMENT courses (" + courses + ")>\n";
  return Specification::Parse(dtd_text, constraints).ValueOrDie();
}

void BM_SchoolFamily(benchmark::State& state) {
  Specification spec = SchoolFamily(static_cast<int>(state.range(0)));
  ConsistencyChecker::Options options;
  options.max_expressions = 20;
  ConsistencyChecker checker(options);
  ConsistencyVerdict verdict;
  BenchTrace trace(state);
  for (auto _ : state) {
    verdict = checker.Check(spec).ValueOrDie();
    benchmark::DoNotOptimize(verdict.outcome);
  }
  RecordStats(state, verdict);
  state.counters["consistent"] = verdict.consistent() ? 1 : 0;
}
BENCHMARK(BM_SchoolFamily)
    ->DenseRange(1, 5, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ExpressionBlowup(benchmark::State& state) {
  // k parallel item branches, each with its own key constraint: the
  // number of distinct expressions is k+... and the encoded program
  // doubles its z block per expression.
  const int k = static_cast<int>(state.range(0));
  std::string dtd_text = "<!ELEMENT r (";
  std::string constraints;
  for (int b = 0; b < k; ++b) {
    if (b > 0) dtd_text += ",";
    dtd_text += "br" + std::to_string(b);
  }
  dtd_text += ")>\n";
  for (int b = 0; b < k; ++b) {
    dtd_text += "<!ELEMENT br" + std::to_string(b) + " (item+)>\n";
  }
  dtd_text += "<!ATTLIST item id>\n";
  for (int b = 0; b < k; ++b) {
    constraints += "r.br" + std::to_string(b) + ".item.id -> r.br" +
                   std::to_string(b) + ".item\n";
  }
  Specification spec =
      Specification::Parse(dtd_text, constraints).ValueOrDie();
  ConsistencyChecker::Options options;
  options.max_expressions = 20;
  ConsistencyChecker checker(options);
  ConsistencyVerdict verdict;
  BenchTrace trace(state);
  for (auto _ : state) {
    verdict = checker.Check(spec).ValueOrDie();
    benchmark::DoNotOptimize(verdict.outcome);
  }
  RecordStats(state, verdict);
}
BENCHMARK(BM_ExpressionBlowup)
    ->DenseRange(1, 7, 2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xmlverify

int main(int argc, char** argv) {
  xmlverify::PrintPaperRow(
      "Figure 3 / column 3", "AC^{reg}_{K,FK}",
      "unary regular path constraints (keys, foreign keys)",
      "NEXPTIME (state-tagged cardinality coding, exponential z block)",
      "PSPACE-hard (QBF reduction, Theorem 3.4b)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
