// Gate benchmark for the parallel branch-and-bound solver core and
// its dual-simplex warm starts: the production configuration
// (--solver-jobs=4, warm starts on) must beat the previous default
// (serial, cold re-solves) by the acceptance floor end to end, with
// byte-identical verdicts on every instance.
//
// Two instance families:
//   * Fig-3 multi-attribute key specs (KeyWidth) decided through the
//     full ConsistencyChecker — the end-to-end path the paper's
//     figure measures;
//   * knapsack-style equality programs hitting IlpSolver directly —
//     the branch-heavy substrate where warm starts pay per node.
//
// Four configurations run per instance: baseline (jobs=1, cold),
// warm-serial and parallel-cold ablations, and the new default
// (jobs=4, warm). The gate compares aggregate baseline time against
// aggregate new-default time. Verdict identity is asserted between
// every configuration, and witness identity between job counts at
// fixed warm setting (the canonical-order determinism contract).
//
// Writes BENCH_solver_parallel.json (--out=PATH to override) and
// exits 2 below the speedup floor (--min-speedup=X, default 1.5), 1
// on any verdict or witness mismatch. Standalone driver (paired
// cross-configuration measurements, like bench_implication_ablation).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/consistency.h"
#include "core/specification.h"
#include "ilp/solver.h"

namespace xmlverify {
namespace {

struct BenchConfig {
  int reps = 5;
  double min_speedup = 1.5;
  std::string out = "BENCH_solver_parallel.json";
};

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SolverConfig {
  const char* name;
  bool warm;
  int jobs;
};

constexpr SolverConfig kBaseline{"baseline", false, 1};
constexpr SolverConfig kWarmSerial{"warm_serial", true, 1};
constexpr SolverConfig kParallelCold{"parallel_cold", false, 4};
constexpr SolverConfig kNewDefault{"parallel_warm", true, 4};

SolverOptions MakeSolverOptions(const SolverConfig& config) {
  SolverOptions options;
  options.warm_start = config.warm;
  options.jobs = config.jobs;
  return options;
}

// Fig 3, column 2: one element type with a k-attribute primary key,
// each attribute a foreign key into a 2-value pool; 2^k - 1 elements
// fill the product space exactly (consistent, and the solver has to
// prove it through the prequadratic encoding).
Specification KeyWidthSpec(int k) {
  std::string attrs;
  std::string keys = "p[";
  std::string constraints;
  for (int a = 0; a < k; ++a) {
    attrs += " a" + std::to_string(a);
    if (a > 0) keys += ",";
    keys += "a" + std::to_string(a);
    constraints += "fk p.a" + std::to_string(a) + " <= q.v\n";
  }
  keys += "] -> p\n";
  int elements = (1 << k) - 1;
  std::string dtd_text = "<!ELEMENT r (q,q";
  for (int e = 0; e < elements; ++e) dtd_text += ",p";
  dtd_text += ")>\n<!ATTLIST p" + attrs + ">\n<!ATTLIST q v>\n";
  return Specification::Parse(dtd_text, keys + constraints).ValueOrDie();
}

// Branch-heavy substrate: 0/1 knapsack equality with a target that
// forces search (same family bench_solver tracks).
IntegerProgram KnapsackProgram(int n) {
  IntegerProgram program;
  LinearExpr sum;
  for (int v = 0; v < n; ++v) {
    VarId var = program.NewVariable("x" + std::to_string(v));
    program.SetUpperBound(var, BigInt(1));
    sum.Add(var, BigInt(2 * v + 3));
  }
  int64_t total = 0;
  for (int v = 0; v < n; ++v) total += 2 * v + 3;
  program.AddLinear(std::move(sum), Relation::kEq, BigInt(total / 2 + 1));
  return program;
}

// One instance = a closure that runs the workload under a solver
// configuration and reports (verdict code, witness fingerprint).
struct RunOutcome {
  int verdict = -1;
  std::string witness;  // empty when the config has no witness to pin
};

struct Instance {
  std::string name;
  std::string family;
  RunOutcome (*run)(const void* payload, const SolverConfig& config);
  const void* payload;
};

RunOutcome RunChecker(const void* payload, const SolverConfig& config) {
  const Specification& spec = *static_cast<const Specification*>(payload);
  ConsistencyChecker::Options options;
  options.solver = MakeSolverOptions(config);
  ConsistencyVerdict verdict =
      ConsistencyChecker(options).Check(spec).ValueOrDie();
  // Witness documents vary legitimately between warm settings (the
  // LP reaches different vertices); identity across job counts is
  // asserted at the solver layer below.
  return RunOutcome{static_cast<int>(verdict.outcome), ""};
}

RunOutcome RunSolver(const void* payload, const SolverConfig& config) {
  const IntegerProgram& program =
      *static_cast<const IntegerProgram*>(payload);
  SolveResult result =
      IlpSolver(MakeSolverOptions(config)).Solve(program);
  std::string witness;
  for (const BigInt& value : result.assignment) {
    witness += value.ToString();
    witness += ",";
  }
  return RunOutcome{static_cast<int>(result.outcome), witness};
}

struct Measurement {
  std::string name;
  std::string family;
  double baseline_us = 0;
  double warm_serial_us = 0;
  double parallel_cold_us = 0;
  double parallel_warm_us = 0;
  double speedup = 0;
};

// Best-of-reps wall time: the gate is about algorithmic cost, and the
// minimum is the most schedule-noise-resistant point estimate.
double TimeConfig(const Instance& instance, const SolverConfig& config,
                  int reps) {
  double best = -1;
  for (int rep = 0; rep < reps; ++rep) {
    int64_t begin = NowMicros();
    RunOutcome outcome = instance.run(instance.payload, config);
    double us = static_cast<double>(NowMicros() - begin);
    if (outcome.verdict < 0) return -1;
    if (best < 0 || us < best) best = us;
  }
  return best;
}

int Run(const BenchConfig& config) {
  Specification key3 = KeyWidthSpec(3);
  Specification key4 = KeyWidthSpec(4);
  IntegerProgram knap12 = KnapsackProgram(12);
  IntegerProgram knap18 = KnapsackProgram(18);
  std::vector<Instance> instances = {
      {"fig3-keywidth-3", "fig3", RunChecker, &key3},
      {"fig3-keywidth-4", "fig3", RunChecker, &key4},
      {"knapsack-12", "solver", RunSolver, &knap12},
      {"knapsack-18", "solver", RunSolver, &knap18},
  };

  std::vector<Measurement> measurements;
  for (const Instance& instance : instances) {
    // Correctness first: all four configurations agree on the
    // verdict, and witnesses are identical across job counts at a
    // fixed warm setting (canonical node order).
    RunOutcome baseline = instance.run(instance.payload, kBaseline);
    for (const SolverConfig* other :
         {&kWarmSerial, &kParallelCold, &kNewDefault}) {
      RunOutcome outcome = instance.run(instance.payload, *other);
      if (outcome.verdict != baseline.verdict) {
        std::fprintf(stderr, "%s: verdict mismatch baseline=%d %s=%d\n",
                     instance.name.c_str(), baseline.verdict, other->name,
                     outcome.verdict);
        return 1;
      }
    }
    RunOutcome cold4 = instance.run(instance.payload, kParallelCold);
    RunOutcome warm1 = instance.run(instance.payload, kWarmSerial);
    RunOutcome warm4 = instance.run(instance.payload, kNewDefault);
    if (cold4.witness != baseline.witness || warm4.witness != warm1.witness) {
      std::fprintf(stderr, "%s: witness diverges across job counts\n",
                   instance.name.c_str());
      return 1;
    }

    Measurement m;
    m.name = instance.name;
    m.family = instance.family;
    m.baseline_us = TimeConfig(instance, kBaseline, config.reps);
    m.warm_serial_us = TimeConfig(instance, kWarmSerial, config.reps);
    m.parallel_cold_us = TimeConfig(instance, kParallelCold, config.reps);
    m.parallel_warm_us = TimeConfig(instance, kNewDefault, config.reps);
    if (m.baseline_us < 0 || m.warm_serial_us < 0 ||
        m.parallel_cold_us < 0 || m.parallel_warm_us < 0) {
      std::fprintf(stderr, "%s: a configuration failed\n",
                   instance.name.c_str());
      return 1;
    }
    m.speedup = m.parallel_warm_us > 0 ? m.baseline_us / m.parallel_warm_us
                                       : 0;
    measurements.push_back(m);
  }

  double baseline_total = 0;
  double new_total = 0;
  for (const Measurement& m : measurements) {
    baseline_total += m.baseline_us;
    new_total += m.parallel_warm_us;
  }
  double aggregate = new_total > 0 ? baseline_total / new_total : 0;

  std::printf("solver parallel gate: %zu instances, reps=%d, "
              "hardware_concurrency=%u\n",
              measurements.size(), config.reps,
              std::thread::hardware_concurrency());
  for (const Measurement& m : measurements) {
    std::printf("  %-18s base %9.0fus  warm1 %9.0fus  cold4 %9.0fus  "
                "warm4 %9.0fus  %5.2fx\n",
                m.name.c_str(), m.baseline_us, m.warm_serial_us,
                m.parallel_cold_us, m.parallel_warm_us, m.speedup);
  }
  std::printf("  aggregate speedup: %.2fx (acceptance: >= %.2fx)\n",
              aggregate, config.min_speedup);

  std::ofstream out(config.out);
  out << "{\n"
      << "  \"bench\": \"solver_parallel\",\n"
      << "  \"config\": {\"reps\": " << config.reps
      << ", \"jobs\": 4, \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << "},\n"
      << "  \"instances\": [\n";
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    char line[320];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"family\": \"%s\", "
                  "\"baseline_us\": %.0f, \"warm_serial_us\": %.0f, "
                  "\"parallel_cold_us\": %.0f, \"parallel_warm_us\": %.0f, "
                  "\"speedup\": %.2f}%s\n",
                  m.name.c_str(), m.family.c_str(), m.baseline_us,
                  m.warm_serial_us, m.parallel_cold_us, m.parallel_warm_us,
                  m.speedup, i + 1 < measurements.size() ? "," : "");
    out << line;
  }
  char tail[128];
  std::snprintf(tail, sizeof(tail),
                "  ],\n  \"aggregate_speedup\": %.2f,\n  \"gate\": %.2f\n}\n",
                aggregate, config.min_speedup);
  out << tail;
  std::printf("  wrote %s\n", config.out.c_str());
  return aggregate < config.min_speedup ? 2 : 0;
}

}  // namespace
}  // namespace xmlverify

int main(int argc, char** argv) {
  xmlverify::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--reps=")) {
      config.reps = std::atoi(v);
    } else if (const char* v = value("--min-speedup=")) {
      config.min_speedup = std::atof(v);
    } else if (const char* v = value("--out=")) {
      config.out = v;
    } else {
      std::fprintf(stderr,
                   "usage: bench_solver_parallel [--reps=N] "
                   "[--min-speedup=X] [--out=PATH]\n");
      return 1;
    }
  }
  return xmlverify::Run(config);
}
