// Differential-testing throughput: how many specs per second the
// subsystem can generate, cross-check, and (when needed) shrink.
//
// Three questions (docs/testing.md):
//   * Generation cost — BM_GenerateSpec: the seeded generator alone,
//     per class. This bounds how cheap a "spec" is as a unit of work.
//   * Cross-check cost — BM_CrossCheck: one spec through every
//     applicable procedure, witness replay included. This is the
//     dominant term of a difftest sweep and sets the seeds/second a
//     nightly run can afford.
//   * Shrink cost — BM_Shrink: delta-debugging a spec to a local
//     minimum under a size predicate (a stand-in for "the cross-check
//     still disagrees", which is mercifully rare on healthy builds).
#include <benchmark/benchmark.h>

#include "difftest/oracle.h"
#include "difftest/shrinker.h"
#include "difftest/spec_generator.h"

namespace xmlverify {
namespace {

DifftestClass ClassArg(int64_t arg) {
  return AllDifftestClasses()[static_cast<size_t>(arg)];
}

void BM_GenerateSpec(benchmark::State& state) {
  DifftestClass cls = ClassArg(state.range(0));
  uint64_t seed = 1;
  for (auto _ : state) {
    Result<GeneratedSpec> generated = GenerateSpec(seed++, cls, {});
    benchmark::DoNotOptimize(generated.ok());
  }
  state.SetLabel(DifftestClassName(cls));
}
BENCHMARK(BM_GenerateSpec)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_CrossCheck(benchmark::State& state) {
  DifftestClass cls = ClassArg(state.range(0));
  uint64_t seed = 1;
  for (auto _ : state) {
    Result<GeneratedSpec> generated = GenerateSpec(seed++, cls, {});
    CrossCheckReport report = CrossCheckSpecification(generated.value().spec);
    benchmark::DoNotOptimize(report.agreed());
  }
  state.SetLabel(DifftestClassName(cls));
}
BENCHMARK(BM_CrossCheck)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_Shrink(benchmark::State& state) {
  // Shrink toward "still has at least one constraint" — every
  // candidate evaluation is cheap, so this times the shrinker's own
  // candidate enumeration and recomposition machinery.
  Result<GeneratedSpec> generated =
      GenerateSpec(11, DifftestClass::kAcUnary, {});
  const Specification& spec = generated.value().spec;
  SpecPredicate keep = [](const Specification& candidate) {
    return candidate.constraints.size() >= 1;
  };
  for (auto _ : state) {
    ShrinkOutcome outcome = ShrinkSpecification(spec, keep, {});
    benchmark::DoNotOptimize(outcome.rounds);
  }
}
BENCHMARK(BM_Shrink)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xmlverify

BENCHMARK_MAIN();
