// Theorem 3.5: the tractability crossover for non-recursive no-star
// DTDs.
//   (a) bounding only the DTD depth (depth-2 CNF family) or only the
//       constraint count (2-constraint SUBSET-SUM family) leaves the
//       problem NP-hard — expected exponential scaling;
//   (b) bounding BOTH (fixed k constraints and depth d) admits the
//       polynomial Count-style procedure — BM_FixedKD scales the DTD
//       width |D| and should stay near-linear.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/sat_bounded.h"
#include "core/specification.h"
#include "reductions/cnf.h"
#include "reductions/cnf_depth2.h"
#include "reductions/subset_sum.h"

namespace xmlverify {
namespace {

void BM_DepthBoundedOnly_CnfFamily(benchmark::State& state) {
  // Depth fixed at 2, constraints grow with the formula: NP-hard.
  // Larger instances overflow the achievable-vector cap — that blow-up
  // IS the measurement, so it is reported rather than fatal.
  const int num_variables = static_cast<int>(state.range(0));
  CnfFormula formula =
      CnfFormula::Random(num_variables, 2 * num_variables, 3, 23);
  Specification spec = CnfToDepth2Spec(formula).ValueOrDie();
  NoStarCheckOptions options;
  options.max_vectors = 2000000;
  ConsistencyVerdict verdict;
  for (auto _ : state) {
    Result<ConsistencyVerdict> result =
        CheckNoStarConsistency(spec.dtd, spec.constraints, options);
    if (!result.ok()) {
      state.SkipWithError(
          ("vector-set blow-up: " + result.status().message()).c_str());
      return;
    }
    verdict = std::move(result).value();
    benchmark::DoNotOptimize(verdict.outcome);
  }
  state.counters["constraints"] =
      static_cast<double>(spec.constraints.size());
  state.counters["root_vectors"] =
      static_cast<double>(verdict.stats.subproblems);
}
BENCHMARK(BM_DepthBoundedOnly_CnfFamily)
    ->DenseRange(2, 8, 2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ConstraintBoundedOnly_SubsetSum(benchmark::State& state) {
  // Two constraints, depth grows with the bit width: NP-hard.
  const int bits = static_cast<int>(state.range(0));
  SubsetSumInstance instance;
  instance.target = (int64_t{1} << bits) - 1;
  for (int b = 0; b < bits; ++b) instance.items.push_back(int64_t{1} << b);
  Specification spec = SubsetSumToSpec(instance).ValueOrDie();
  ConsistencyVerdict verdict;
  for (auto _ : state) {
    verdict =
        CheckNoStarConsistency(spec.dtd, spec.constraints).ValueOrDie();
    benchmark::DoNotOptimize(verdict.outcome);
  }
  state.counters["depth"] =
      static_cast<double>(spec.dtd.Depth().ValueOrDie());
}
BENCHMARK(BM_ConstraintBoundedOnly_SubsetSum)
    ->DenseRange(2, 9, 1)
    ->Unit(benchmark::kMillisecond);

void BM_FixedKD_WideDtd(benchmark::State& state) {
  // k = 2 constraints, depth 2, but the DTD grows wide: tractable.
  const int width = static_cast<int>(state.range(0));
  std::string dtd_text = "<!ELEMENT r (a,(a|b),b";
  for (int w = 0; w < width; ++w) {
    dtd_text += ",(f" + std::to_string(w) + "|g" + std::to_string(w) + ")";
  }
  dtd_text += ")>\n<!ATTLIST a v>\n<!ATTLIST b v>\n";
  Specification spec =
      Specification::Parse(dtd_text, "a.v -> a\nfk a.v <= b.v\n")
          .ValueOrDie();
  ConsistencyVerdict verdict;
  for (auto _ : state) {
    verdict =
        CheckNoStarConsistency(spec.dtd, spec.constraints).ValueOrDie();
    benchmark::DoNotOptimize(verdict.outcome);
  }
  state.counters["dtd_types"] =
      static_cast<double>(spec.dtd.num_element_types());
  state.counters["consistent"] = verdict.consistent() ? 1 : 0;
}
BENCHMARK(BM_FixedKD_WideDtd)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xmlverify

int main(int argc, char** argv) {
  xmlverify::PrintPaperRow(
      "Theorem 3.5 (tractable restrictions)", "AC_{K,FK} restricted",
      "k-constraint and/or depth-d restrictions on no-star DTDs",
      "NLOGSPACE when BOTH k and d are fixed (3.5b)",
      "NP-hard when only one of them is (3.5a)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
