// Substrate benchmark: the exact integer solver (rational simplex +
// branch and bound) that underlies every consistency verdict. Not a
// paper figure — it calibrates where encoder-level costs end and
// solver-level costs begin, and tracks the solver fast path against
// the legacy reference pipeline (see docs/performance.md):
//   * fast   — presolve + sparse two-tier (int64/BigInt) simplex,
//              dual-simplex warm starts (the default pipeline)
//   * legacy — no presolve, dense BigInt tableau, cold re-solves
// Branch-and-bound ablations isolate the warm-start and parallel
// layers (ColdStart = fast minus warm starts; Parallel = fast at
// jobs=4). BENCH_solver.json records the before/after numbers; the
// gated end-to-end comparison lives in bench_solver_parallel.
#include <benchmark/benchmark.h>

#include "base/bigint.h"
#include "ilp/simplex.h"
#include "ilp/solver.h"

namespace xmlverify {
namespace {

SolverOptions PipelineOptions(bool fast) {
  SolverOptions options;
  options.use_presolve = fast;
  options.use_sparse_simplex = fast;
  return options;
}

// A dense feasible LP: n variables, n rows of sum-style constraints.
// Worst case for the sparse engine (every row touches every column);
// the two-tier cells still pay off.
std::vector<LinearConstraint> DenseLp(int n) {
  std::vector<LinearConstraint> constraints;
  for (int r = 0; r < n; ++r) {
    LinearConstraint c;
    for (int v = 0; v < n; ++v) {
      c.lhs.Add(v, BigInt((v + r) % 5 + 1));
    }
    c.relation = r % 2 == 0 ? Relation::kGe : Relation::kLe;
    c.rhs = BigInt(r % 2 == 0 ? n : 10 * n);
    constraints.push_back(std::move(c));
  }
  return constraints;
}

// A banded feasible LP: n variables, each row touches 4 consecutive
// columns — the cardinality-encoding shape the checkers actually emit
// (each flow row mentions one parent and its children only).
std::vector<LinearConstraint> BandLp(int n) {
  std::vector<LinearConstraint> constraints;
  for (int r = 0; r < n; ++r) {
    LinearConstraint c;
    for (int k = 0; k < 4; ++k) {
      c.lhs.Add((r + k) % n, BigInt(k + 1));
    }
    c.relation = r % 2 == 0 ? Relation::kGe : Relation::kLe;
    c.rhs = BigInt(r % 2 == 0 ? 2 : 5 * n);
    constraints.push_back(std::move(c));
  }
  return constraints;
}

void SimplexBench(benchmark::State& state,
                  std::vector<LinearConstraint> (*make)(int), bool sparse) {
  const int n = static_cast<int>(state.range(0));
  std::vector<LinearConstraint> constraints = make(n);
  SimplexOptions options{sparse};
  int64_t pivots = 0;
  for (auto _ : state) {
    SimplexResult result =
        SolveLp(n, constraints, Deadline(), nullptr, options);
    benchmark::DoNotOptimize(result.feasible);
    pivots = result.pivots;
  }
  state.counters["pivots"] = static_cast<double>(pivots);
}

void BM_SimplexDense_Fast(benchmark::State& state) {
  SimplexBench(state, DenseLp, /*sparse=*/true);
}
void BM_SimplexDense_Legacy(benchmark::State& state) {
  SimplexBench(state, DenseLp, /*sparse=*/false);
}
BENCHMARK(BM_SimplexDense_Fast)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimplexDense_Legacy)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_SimplexBand_Fast(benchmark::State& state) {
  SimplexBench(state, BandLp, /*sparse=*/true);
}
void BM_SimplexBand_Legacy(benchmark::State& state) {
  SimplexBench(state, BandLp, /*sparse=*/false);
}
// Arg capped at 64: past ~100 variables Bland's rule needs thousands
// of pivots on this family and a single iteration takes seconds.
BENCHMARK(BM_SimplexBand_Fast)
    ->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimplexBand_Legacy)
    ->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Integer feasibility with branching: knapsack-style equality.
IntegerProgram Knapsack(int n) {
  IntegerProgram program;
  LinearExpr sum;
  for (int v = 0; v < n; ++v) {
    VarId var = program.NewVariable("x" + std::to_string(v));
    program.SetUpperBound(var, BigInt(1));
    sum.Add(var, BigInt(2 * v + 3));
  }
  // Target chosen to require search: half the total, offset by one.
  int64_t total = 0;
  for (int v = 0; v < n; ++v) total += 2 * v + 3;
  program.AddLinear(std::move(sum), Relation::kEq, BigInt(total / 2 + 1));
  return program;
}

void BranchAndBoundBench(benchmark::State& state, SolverOptions options) {
  const int n = static_cast<int>(state.range(0));
  IntegerProgram program = Knapsack(n);
  int64_t nodes = 0;
  for (auto _ : state) {
    SolveResult result = IlpSolver(options).Solve(program);
    benchmark::DoNotOptimize(result.outcome);
    nodes = result.nodes_explored;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}

void BM_BranchAndBound_Fast(benchmark::State& state) {
  BranchAndBoundBench(state, PipelineOptions(/*fast=*/true));
}
void BM_BranchAndBound_Legacy(benchmark::State& state) {
  BranchAndBoundBench(state, PipelineOptions(/*fast=*/false));
}
// Ablation: sparse simplex without presolve isolates each layer's
// contribution.
void BM_BranchAndBound_SparseNoPresolve(benchmark::State& state) {
  SolverOptions options;
  options.use_presolve = false;
  options.use_sparse_simplex = true;
  BranchAndBoundBench(state, options);
}
BENCHMARK(BM_BranchAndBound_Fast)
    ->Arg(6)->Arg(10)->Arg(14)->Arg(18)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BranchAndBound_Legacy)
    ->Arg(6)->Arg(10)->Arg(14)->Arg(18)
    ->Unit(benchmark::kMillisecond);
// Ablation: the fast pipeline with warm starts disabled — every node
// re-solves its LP from scratch. The gap to Fast is the per-node
// saving of resuming from the parent's final tableau.
void BM_BranchAndBound_ColdStart(benchmark::State& state) {
  SolverOptions options = PipelineOptions(/*fast=*/true);
  options.warm_start = false;
  BranchAndBoundBench(state, options);
}
// Ablation: the fast pipeline under the work-stealing node pool.
// Same verdicts and witnesses as serial (canonical node order); the
// timing delta is thread overhead vs. useful overlap at this core
// count.
void BM_BranchAndBound_Parallel(benchmark::State& state) {
  SolverOptions options = PipelineOptions(/*fast=*/true);
  options.jobs = 4;
  BranchAndBoundBench(state, options);
}
BENCHMARK(BM_BranchAndBound_SparseNoPresolve)
    ->Arg(6)->Arg(10)->Arg(14)->Arg(18)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BranchAndBound_ColdStart)
    ->Arg(6)->Arg(10)->Arg(14)->Arg(18)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BranchAndBound_Parallel)
    ->Arg(6)->Arg(10)->Arg(14)->Arg(18)
    ->Unit(benchmark::kMillisecond);

// Coefficient growth: a small system scaled by 10^k plus a chained
// tail whose pivots keep remixing the scaled coefficients. Small
// scales sit in the int64 tier; large scales force promotion to BigInt
// cells, so the fast/legacy gap narrows as digits grow and the
// arithmetic-kernel ablation below widens instead (hundreds of digits
// is where Karatsuba/Knuth-D/Stein carry the verdict).
void BigCoefficientsBench(benchmark::State& state, SolverOptions options,
                          bool reference_kernels = false) {
  const int scale_digits = static_cast<int>(state.range(0));
  BigInt scale = BigInt::Pow(BigInt(10), scale_digits);
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  LinearExpr a;
  a.Add(x, BigInt(3) * scale);
  a.Add(y, BigInt(5) * scale);
  program.AddLinear(std::move(a), Relation::kEq, BigInt(17) * scale);
  // Chained tail: each row couples two neighbors with scaled,
  // offset coefficients so eliminations multiply and divide
  // many-hundred-digit rationals instead of cancelling early.
  constexpr int kTail = 6;
  std::vector<VarId> tail;
  for (int v = 0; v < kTail; ++v) {
    tail.push_back(program.NewVariable("t" + std::to_string(v)));
  }
  for (int v = 0; v + 1 < kTail; ++v) {
    LinearExpr row;
    row.Add(tail[v], BigInt(2 * v + 3) * scale + BigInt(v + 1));
    row.Add(tail[v + 1], BigInt(2 * v + 5) * scale - BigInt(v + 2));
    program.AddLinear(std::move(row), Relation::kGe, BigInt(v + 1) * scale);
  }
  // Verdict identity across kernel suites is asserted before timing:
  // an ablation speedup from a wrong answer would be meaningless.
  SolveResult fast_result = IlpSolver(options).Solve(program);
  BigInt::ForceReferenceKernels(true);
  SolveResult ref_result = IlpSolver(options).Solve(program);
  BigInt::ForceReferenceKernels(false);
  if (fast_result.outcome != ref_result.outcome) {
    state.SkipWithError("fast and reference kernels disagree on verdict");
    return;
  }
  BigInt::ForceReferenceKernels(reference_kernels);
  for (auto _ : state) {
    SolveResult result = IlpSolver(options).Solve(program);
    benchmark::DoNotOptimize(result.outcome);
  }
  BigInt::ForceReferenceKernels(false);
}

void BM_BigCoefficients_Fast(benchmark::State& state) {
  BigCoefficientsBench(state, PipelineOptions(/*fast=*/true));
}
void BM_BigCoefficients_Legacy(benchmark::State& state) {
  BigCoefficientsBench(state, PipelineOptions(/*fast=*/false));
}
// Ablation: the fast pipeline with the schoolbook reference arithmetic
// forced on (BigInt::ForceReferenceKernels) — the gap to Fast is what
// the sub-quadratic BigInt kernels contribute end to end at identical
// verdicts.
void BM_BigCoefficients_ReferenceArithmetic(benchmark::State& state) {
  BigCoefficientsBench(state, PipelineOptions(/*fast=*/true),
                       /*reference_kernels=*/true);
}
BENCHMARK(BM_BigCoefficients_Fast)
    ->Arg(0)->Arg(10)->Arg(30)->Arg(60)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BigCoefficients_Legacy)
    ->Arg(0)->Arg(10)->Arg(30)->Arg(60)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BigCoefficients_ReferenceArithmetic)
    ->Arg(0)->Arg(10)->Arg(30)->Arg(60)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace xmlverify

BENCHMARK_MAIN();
