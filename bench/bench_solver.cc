// Substrate benchmark: the exact integer solver (rational simplex +
// branch and bound) that underlies every consistency verdict. Not a
// paper figure — it calibrates where encoder-level costs end and
// solver-level costs begin, and tracks the effect of the BigInt
// small-value fast paths.
#include <benchmark/benchmark.h>

#include "ilp/simplex.h"
#include "ilp/solver.h"

namespace xmlverify {
namespace {

// A dense feasible LP: n variables, n rows of sum-style constraints.
void BM_SimplexDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<LinearConstraint> constraints;
  for (int r = 0; r < n; ++r) {
    LinearConstraint c;
    for (int v = 0; v < n; ++v) {
      c.lhs.Add(v, BigInt((v + r) % 5 + 1));
    }
    c.relation = r % 2 == 0 ? Relation::kGe : Relation::kLe;
    c.rhs = BigInt(r % 2 == 0 ? n : 10 * n);
    constraints.push_back(std::move(c));
  }
  int64_t pivots = 0;
  for (auto _ : state) {
    SimplexResult result = SolveLp(n, constraints);
    benchmark::DoNotOptimize(result.feasible);
    pivots = result.pivots;
  }
  state.counters["pivots"] = static_cast<double>(pivots);
}
BENCHMARK(BM_SimplexDense)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Integer feasibility with branching: knapsack-style equality.
void BM_BranchAndBound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  IntegerProgram program;
  LinearExpr sum;
  for (int v = 0; v < n; ++v) {
    VarId var = program.NewVariable("x" + std::to_string(v));
    program.SetUpperBound(var, BigInt(1));
    sum.Add(var, BigInt(2 * v + 3));
  }
  // Target chosen to require search: half the total, offset by one.
  int64_t total = 0;
  for (int v = 0; v < n; ++v) total += 2 * v + 3;
  program.AddLinear(std::move(sum), Relation::kEq, BigInt(total / 2 + 1));
  int64_t nodes = 0;
  for (auto _ : state) {
    SolveResult result = IlpSolver().Solve(program);
    benchmark::DoNotOptimize(result.outcome);
    nodes = result.nodes_explored;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_BranchAndBound)
    ->Arg(6)
    ->Arg(10)
    ->Arg(14)
    ->Arg(18)
    ->Unit(benchmark::kMillisecond);

// Coefficient growth: the same system scaled by 10^k exercises the
// BigInt paths beyond the 64-bit fast lane.
void BM_BigCoefficients(benchmark::State& state) {
  const int scale_digits = static_cast<int>(state.range(0));
  BigInt scale = BigInt::Pow(BigInt(10), scale_digits);
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  LinearExpr a;
  a.Add(x, BigInt(3) * scale);
  a.Add(y, BigInt(5) * scale);
  program.AddLinear(std::move(a), Relation::kEq, BigInt(17) * scale);
  for (auto _ : state) {
    SolveResult result = IlpSolver().Solve(program);
    benchmark::DoNotOptimize(result.outcome);
  }
}
BENCHMARK(BM_BigCoefficients)
    ->Arg(0)
    ->Arg(10)
    ->Arg(30)
    ->Arg(60)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace xmlverify

BENCHMARK_MAIN();
