// Ablation study for the regular-path encoder (DESIGN.md §5): the two
// refinement families added on top of the paper's C_Sigma —
// realizability zero-cells and per-key Hall capacities — are both
// load-bearing. This bench measures their cost on consistent inputs
// and demonstrates (as a correctness counter, not a timing) that
// switching either off mis-judges the paper's school example.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "checker/document_checker.h"
#include "core/specification.h"
#include "encoding/regular_encoder.h"
#include "ilp/solver.h"

namespace xmlverify {
namespace {

constexpr char kSchoolDtd[] = R"(
<!ELEMENT r (students, courses, faculty, labs)>
<!ELEMENT students (student+)>
<!ELEMENT courses (cs340, cs108, cs434)>
<!ELEMENT faculty (prof+)>
<!ELEMENT labs (dbLab, pcLab)>
<!ELEMENT student (record)>
<!ELEMENT prof (record)>
<!ELEMENT cs340 (takenBy+)>
<!ELEMENT cs108 (takenBy+)>
<!ELEMENT cs434 (takenBy+)>
<!ELEMENT dbLab (acc+)>
<!ELEMENT pcLab (acc+)>
<!ATTLIST record id>
<!ATTLIST takenBy sid>
<!ATTLIST acc num>
)";

constexpr char kInconsistentSchool[] = R"(
r._*.(student|prof).record.id -> r._*.(student|prof).record
r._*.cs434.takenBy.sid -> r._*.cs434.takenBy
fk r._*.cs434.takenBy.sid <= r._*.student.record.id
fk r._*.dbLab.acc.num <= r._*.cs434.takenBy.sid
fk r.faculty.prof.record.id <= r._*.dbLab.acc.num
)";

// Solves the school specification under the given encoder switches;
// returns whether the (correct) INCONSISTENT verdict is reached.
bool SolveSchool(const RegularEncoderOptions& encoder_options,
                 int64_t* pivots) {
  Specification spec =
      Specification::Parse(kSchoolDtd, kInconsistentSchool).ValueOrDie();
  ConstraintSet regular =
      AbsoluteAsRegular(spec.constraints, spec.dtd).ValueOrDie();
  IntegerProgram program;
  auto encoder = RegularEncoder::Build(spec.dtd, regular, &program,
                                       encoder_options)
                     .ValueOrDie();
  SolveResult solved = IlpSolver().Solve(program);
  *pivots = solved.lp_pivots;
  return solved.outcome == SolveOutcome::kUnsat;
}

void BM_FullEncoder(benchmark::State& state) {
  RegularEncoderOptions options;
  int64_t pivots = 0;
  bool correct = false;
  for (auto _ : state) {
    correct = SolveSchool(options, &pivots);
    benchmark::DoNotOptimize(correct);
  }
  state.counters["verdict_correct"] = correct ? 1 : 0;
  state.counters["lp_pivots"] = static_cast<double>(pivots);
}
BENCHMARK(BM_FullEncoder)->Unit(benchmark::kMillisecond);

void BM_NoRealizabilityCells(benchmark::State& state) {
  RegularEncoderOptions options;
  options.realizability_cells = false;
  int64_t pivots = 0;
  bool correct = false;
  for (auto _ : state) {
    correct = SolveSchool(options, &pivots);
    benchmark::DoNotOptimize(correct);
  }
  // Measured: still correct — on THIS example the key-capacity family
  // covers for the missing cells (see BM_BareLemma4 for both-off and
  // BM_ImplicationRealizability for a cells-only case).
  state.counters["verdict_correct"] = correct ? 1 : 0;
  state.counters["lp_pivots"] = static_cast<double>(pivots);
}
BENCHMARK(BM_NoRealizabilityCells)->Unit(benchmark::kMillisecond);

void BM_NoKeyCapacities(benchmark::State& state) {
  RegularEncoderOptions options;
  options.key_capacities = false;
  int64_t pivots = 0;
  bool correct = false;
  for (auto _ : state) {
    correct = SolveSchool(options, &pivots);
    benchmark::DoNotOptimize(correct);
  }
  state.counters["verdict_correct"] = correct ? 1 : 0;
  state.counters["lp_pivots"] = static_cast<double>(pivots);
}
BENCHMARK(BM_NoKeyCapacities)->Unit(benchmark::kMillisecond);

void BM_BareLemma4(benchmark::State& state) {
  // Both refinements off: exactly the constraints the paper's Lemma 4
  // spells out. Expected verdict_correct = 0 — the school example is
  // wrongly accepted, which is why the refinements exist.
  RegularEncoderOptions options;
  options.realizability_cells = false;
  options.key_capacities = false;
  int64_t pivots = 0;
  bool correct = false;
  for (auto _ : state) {
    correct = SolveSchool(options, &pivots);
    benchmark::DoNotOptimize(correct);
  }
  state.counters["verdict_correct"] = correct ? 1 : 0;
  state.counters["lp_pivots"] = static_cast<double>(pivots);
}
BENCHMARK(BM_BareLemma4)->Unit(benchmark::kMillisecond);

// A case only the realizability cells can decide: in this DTD items
// occur exclusively under `a`, so the syntactically-larger path
// r._*.item denotes the same node set as r.a.item — the inclusion of
// one id set in the other must be judged implied even though the
// languages are incomparable. (Used via the negated-inclusion hook.)
bool SolveUnreachableEscape(const RegularEncoderOptions& encoder_options) {
  Specification spec =
      Specification::Parse(R"(
<!ELEMENT r (a+)>
<!ELEMENT a (item+)>
<!ATTLIST item id>
)",
                           "")
          .ValueOrDie();
  auto resolve = [&spec](const std::string& name) {
    return spec.dtd.FindType(name);
  };
  int item = spec.dtd.TypeId("item").ValueOrDie();
  RegularNegation negation;
  negation.inclusion = RegularInclusion{
      ParseRegex("r._*.item", resolve).ValueOrDie(), item, "id",
      ParseRegex("r.a.item", resolve).ValueOrDie(), item, "id"};
  IntegerProgram program;
  auto encoder = RegularEncoder::Build(spec.dtd, ConstraintSet(), &program,
                                       encoder_options, &negation)
                     .ValueOrDie();
  // Implied iff the negated system is UNSAT.
  return IlpSolver().Solve(program).outcome == SolveOutcome::kUnsat;
}

void BM_ImplicationRealizability(benchmark::State& state) {
  RegularEncoderOptions with_cells;
  RegularEncoderOptions without_cells;
  without_cells.realizability_cells = false;
  bool with_correct = false;
  bool without_correct = false;
  for (auto _ : state) {
    with_correct = SolveUnreachableEscape(with_cells);
    without_correct = SolveUnreachableEscape(without_cells);
    benchmark::DoNotOptimize(with_correct);
  }
  state.counters["with_cells_correct"] = with_correct ? 1 : 0;
  state.counters["without_cells_correct"] = without_correct ? 1 : 0;
}
BENCHMARK(BM_ImplicationRealizability)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xmlverify

int main(int argc, char** argv) {
  xmlverify::PrintPaperRow(
      "Ablation (DESIGN.md §5)", "AC^{reg}_{K,FK} encoder refinements",
      "realizability zero-cells and per-key Hall capacities vs the bare "
      "C_Sigma of Lemma 4",
      "both ON: exact verdicts (verdict_correct=1 expected)",
      "both OFF (bare Lemma 4): the school example is mis-judged; "
      "realizability cells alone decide the unreachable-escape "
      "implication");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
