// Chaos soak harness for the verification service (docs/serving.md,
// "Chaos soak"): spawns a real xmlvc-serve process with fault
// injection armed, batters it for a fixed duration with a seeded mix
// of hostile and valid traffic —
//
//   valid requests        (via CallWithRetry, exercising the client
//                          retry/backoff policy against shed load)
//   malformed frames      (non-JSON junk, truncated objects)
//   oversized lines       (past --max-line-bytes)
//   mid-request aborts    (half a request, then an RST)
//   slowloris connections (a few bytes, then silence past the idle
//                          deadline)
//
// — and then asserts the crash-resilience contract:
//
//   1. the process is alive and still answers (no wedged threads);
//   2. every definitive post-chaos verdict is identical to a one-shot
//      `xmlvc check` of the same specification;
//   3. counters are sane (traffic was actually served; the slowloris
//      connections were reclaimed by the idle deadline);
//   4. after SIGTERM + restart with the same --cache-snapshot, at
//      least 90% of the definitive verdicts come back `cached:true`,
//      and the snapshot loads with zero skipped records.
//
// Exits non-zero on any violation, so CI can run it directly. Like
// bench_serve this is a standalone driver, not a google-benchmark
// binary: the quantity of interest is "nothing broke", not a latency
// distribution.
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "difftest/spec_generator.h"
#include "serve/client.h"

#ifndef XMLVC_SERVE_BINARY_PATH
#define XMLVC_SERVE_BINARY_PATH ""
#endif
#ifndef XMLVC_BINARY_PATH
#define XMLVC_BINARY_PATH ""
#endif

namespace xmlverify {
namespace {

struct ChaosConfig {
  std::string server_binary = XMLVC_SERVE_BINARY_PATH;
  std::string xmlvc_binary = XMLVC_BINARY_PATH;
  int duration_s = 30;
  uint64_t seed = 1;
  int clients = 4;
  int pool = 24;  // distinct specs in the valid-traffic pool
  std::string snapshot = "bench_chaos_snapshot.xvcsnap";
  // Armed on the soak server only; the restart phase runs clean so
  // the snapshot round-trip invariant (zero skipped records) holds.
  std::string fault_spec = "socket_accept=%11,cache_snapshot_write=%4";
};

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  std::printf("%s %s\n", ok ? "ok  " : "FAIL", what.c_str());
  if (!ok) ++g_failures;
}

uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else {
      out += c;
    }
  }
  return out;
}

/// The first definitive verdict token in `text`, or "" when none.
/// INCONSISTENT is probed first because CONSISTENT is its substring.
std::string VerdictToken(const std::string& text) {
  if (text.find("INCONSISTENT") != std::string::npos) return "INCONSISTENT";
  if (text.find("CONSISTENT") != std::string::npos) return "CONSISTENT";
  return std::string();
}

/// A spawned xmlvc-serve with its stdout on a pipe (fork/exec rather
/// than popen: the harness needs the pid for SIGTERM and waitpid).
struct ServerProc {
  pid_t pid = -1;
  int out_fd = -1;
  int port = 0;
  std::string captured;  // everything read from stdout so far

  bool alive() const {
    if (pid <= 0) return false;
    int status = 0;
    return ::waitpid(pid, &status, WNOHANG) == 0;
  }

  /// Reads stdout until `pattern` appears or `timeout_ms` elapses.
  bool WaitForOutput(const std::string& pattern, int timeout_ms) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (captured.find(pattern) == std::string::npos) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - std::chrono::steady_clock::now())
                      .count();
      if (left <= 0) return false;
      pollfd pfd{};
      pfd.fd = out_fd;
      pfd.events = POLLIN;
      int ready = ::poll(&pfd, 1, static_cast<int>(left));
      if (ready <= 0) continue;
      char chunk[4096];
      ssize_t n = ::read(out_fd, chunk, sizeof(chunk));
      if (n <= 0) return false;
      captured.append(chunk, static_cast<size_t>(n));
    }
    return true;
  }

  /// SIGTERM, drain stdout to EOF, reap. False if the process did not
  /// exit within `timeout_ms` (wedged threads) — it is then SIGKILLed
  /// so the harness itself always terminates.
  bool TerminateAndReap(int timeout_ms) {
    if (pid <= 0) return false;
    ::kill(pid, SIGTERM);
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    // Drain stdout so the child can flush its --stats report.
    while (true) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - std::chrono::steady_clock::now())
                      .count();
      if (left <= 0) break;
      pollfd pfd{};
      pfd.fd = out_fd;
      pfd.events = POLLIN;
      int ready = ::poll(&pfd, 1, static_cast<int>(left));
      if (ready <= 0) break;
      char chunk[4096];
      ssize_t n = ::read(out_fd, chunk, sizeof(chunk));
      if (n <= 0) break;
      captured.append(chunk, static_cast<size_t>(n));
    }
    ::close(out_fd);
    out_fd = -1;
    while (std::chrono::steady_clock::now() < deadline) {
      int status = 0;
      pid_t done = ::waitpid(pid, &status, WNOHANG);
      if (done == pid) {
        pid = -1;
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    pid = -1;
    return false;
  }

  /// Counter value from the captured --stats JSON, or -1 when absent.
  int64_t Counter(const std::string& name) const {
    std::string key = "\"" + name + "\": ";
    size_t pos = captured.find(key);
    if (pos == std::string::npos) return -1;
    return std::atoll(captured.c_str() + pos + key.size());
  }
};

bool SpawnServer(const std::string& binary,
                 const std::vector<std::string>& args, ServerProc* proc) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return false;
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return false;
  }
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    // The soak server's faults come in via --fault-inject; make sure
    // nothing leaks in from the harness environment either way.
    ::unsetenv("XMLVERIFY_FAULT_INJECT");
    ::unsetenv("XMLVERIFY_FAULT_SEED");
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    std::_Exit(127);
  }
  ::close(pipe_fds[1]);
  proc->pid = pid;
  proc->out_fd = pipe_fds[0];
  if (!proc->WaitForOutput("LISTENING 127.0.0.1 ", 15000)) {
    proc->TerminateAndReap(2000);
    return false;
  }
  size_t pos = proc->captured.find("LISTENING 127.0.0.1 ");
  proc->port = std::atoi(proc->captured.c_str() + pos +
                         std::strlen("LISTENING 127.0.0.1 "));
  return proc->port > 0;
}

/// One-shot oracle: `xmlvc check` on the spec written to a temp file.
/// Returns the verdict token ("" when xmlvc itself was indefinitive).
std::string OneShotVerdict(const std::string& xmlvc, const std::string& spec,
                           int index) {
  std::string path =
      "bench_chaos_spec_" + std::to_string(index) + ".xvc";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << spec;
  }
  std::string command = xmlvc + " check " + path + " 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return std::string();
  std::string output;
  char chunk[1024];
  while (std::fgets(chunk, sizeof(chunk), pipe) != nullptr) output += chunk;
  ::pclose(pipe);
  std::remove(path.c_str());
  return VerdictToken(output);
}

int Run(const ChaosConfig& config) {
  if (config.server_binary.empty() || config.xmlvc_binary.empty()) {
    std::fprintf(stderr,
                 "usage: bench_chaos --server=PATH --xmlvc=PATH "
                 "[--duration-s=N] [--seed=N] [--clients=N] "
                 "[--snapshot=PATH] [--fault-spec=SPEC]\n");
    return 2;
  }
  std::remove(config.snapshot.c_str());

  // Seed-deterministic valid-traffic pool across every difftest class.
  std::vector<std::string> pool;
  std::vector<DifftestClass> classes = AllDifftestClasses();
  for (uint64_t seed = config.seed;
       pool.size() < static_cast<size_t>(config.pool); ++seed) {
    for (DifftestClass cls : classes) {
      if (pool.size() >= static_cast<size_t>(config.pool)) break;
      Result<GeneratedSpec> generated = GenerateSpec(seed, cls);
      if (generated.ok()) pool.push_back(generated->text);
    }
  }

  constexpr size_t kMaxLineBytes = 65536;
  ServerProc soak;
  {
    std::vector<std::string> args = {
        "--port=0",
        "--jobs=4",
        "--queue-limit=64",
        "--timeout=2000",
        "--max-line-bytes=" + std::to_string(kMaxLineBytes),
        "--idle-timeout-ms=1000",
        "--write-timeout-ms=2000",
        "--max-connections=64",
        "--cache-snapshot=" + config.snapshot,
        "--snapshot-interval-ms=500",
        "--stats",
    };
    if (!config.fault_spec.empty()) {
      args.push_back("--fault-inject=" + config.fault_spec);
      args.push_back("--fault-seed=" + std::to_string(config.seed));
    }
    if (!SpawnServer(config.server_binary, args, &soak)) {
      std::fprintf(stderr, "cannot spawn soak server\n");
      return 2;
    }
  }
  std::printf("soak: pid=%d port=%d duration=%ds seed=%llu faults=%s\n",
              static_cast<int>(soak.pid), soak.port, config.duration_s,
              static_cast<unsigned long long>(config.seed),
              config.fault_spec.empty() ? "(none)"
                                        : config.fault_spec.c_str());

  // ---- Soak phase ----
  auto soak_end = std::chrono::steady_clock::now() +
                  std::chrono::seconds(config.duration_s);
  std::atomic<int64_t> valid_ok{0};
  std::atomic<int64_t> valid_failed{0};
  std::atomic<int64_t> hostile_sent{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < config.clients; ++c) {
    threads.emplace_back([&, c] {
      uint64_t rng = config.seed * 0x9e3779b9ULL + static_cast<uint64_t>(c);
      ClientOptions retry;
      retry.max_retries = 5;
      retry.base_backoff_millis = 5;
      retry.max_backoff_millis = 200;
      retry.jitter_seed = rng;
      int request_id = 0;
      while (std::chrono::steady_clock::now() < soak_end) {
        uint64_t roll = NextRand(&rng) % 100;
        if (roll < 60) {
          // Valid request through the retrying client.
          Result<ServeClient> client =
              ServeClient::Connect("127.0.0.1", soak.port, retry);
          if (!client.ok()) continue;
          client->set_recv_timeout_millis(5000).CheckOK();
          const std::string& spec = pool[NextRand(&rng) % pool.size()];
          std::string request =
              "{\"id\":\"c" + std::to_string(c) + "-" +
              std::to_string(request_id++) + "\",\"timeout_ms\":2000," +
              "\"spec\":\"" + JsonEscape(spec) + "\"}";
          Result<std::string> response = client->CallWithRetry(request);
          if (response.ok()) {
            ++valid_ok;
          } else {
            ++valid_failed;
          }
        } else if (roll < 75) {
          // Malformed frame: junk the parser must reject politely.
          Result<ServeClient> client =
              ServeClient::Connect("127.0.0.1", soak.port);
          if (!client.ok()) continue;
          static const char* kJunk[] = {
              "not json at all",
              "{\"id\":\"x\", truncated",
              "{\"spec\": 12}",
              "\x01\x02\x7f garbage \x1b",
          };
          (void)client->SendLine(kJunk[NextRand(&rng) % 4]);
          ++hostile_sent;
          client->set_recv_timeout_millis(1000).CheckOK();
          (void)client->ReadLine();  // INVALID_REQUEST, or nothing
        } else if (roll < 85) {
          // Oversized line: must be answered LINE_TOO_LONG and the
          // tail discarded, never buffered without bound.
          Result<ServeClient> client =
              ServeClient::Connect("127.0.0.1", soak.port);
          if (!client.ok()) continue;
          std::string big(kMaxLineBytes + 512, 'x');
          (void)client->SendLine(big);
          ++hostile_sent;
          client->set_recv_timeout_millis(1000).CheckOK();
          (void)client->ReadLine();
        } else if (roll < 95) {
          // Mid-request death: half a frame, then an RST.
          Result<ServeClient> client =
              ServeClient::Connect("127.0.0.1", soak.port);
          if (!client.ok()) continue;
          const std::string& spec = pool[NextRand(&rng) % pool.size()];
          std::string request = "{\"id\":\"dead\",\"spec\":\"" +
                                JsonEscape(spec) + "\"}";
          // Raw half-frame without the newline, then an RST: the
          // reader sees a recv error mid-request and must cancel.
          (void)client->SendRaw(request.substr(0, request.size() / 2));
          ++hostile_sent;
          client->Abort();
        } else {
          // Slowloris: a few bytes, then silence. The idle deadline
          // must reclaim the connection; the short sleep here just
          // keeps it open long enough to be a real parked reader.
          Result<ServeClient> client =
              ServeClient::Connect("127.0.0.1", soak.port);
          if (!client.ok()) continue;
          (void)client->SendRaw("{\"id\":");
          ++hostile_sent;
          std::this_thread::sleep_for(std::chrono::milliseconds(
              100 + NextRand(&rng) % 150));
          client->Abort();
        }
      }
    });
  }
  // One dedicated slowloris that outwaits the idle deadline, so the
  // serve/idle_timeouts counter check below is deterministic. The
  // armed socket_accept fault can RST any individual connection right
  // after the handshake — so park until the server itself closes the
  // connection, and redial if that happens before the idle deadline
  // could plausibly have been the reason.
  threads.emplace_back([&] {
    for (int attempt = 0; attempt < 10; ++attempt) {
      Result<ServeClient> client =
          ServeClient::Connect("127.0.0.1", soak.port);
      if (!client.ok()) continue;
      (void)client->SendRaw("{\"id\"");
      auto parked = std::chrono::steady_clock::now();
      (void)client->set_recv_timeout_millis(5000);
      (void)client->ReadLine();  // blocks until the server closes us
      auto held = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - parked);
      client->Abort();
      if (held.count() >= 1000) return;  // outlived the idle budget
    }
  });
  for (std::thread& t : threads) t.join();

  std::printf("soak done: valid_ok=%lld valid_failed=%lld hostile=%lld\n",
              static_cast<long long>(valid_ok.load()),
              static_cast<long long>(valid_failed.load()),
              static_cast<long long>(hostile_sent.load()));
  Check(soak.alive(), "server process alive after soak");
  Check(valid_ok.load() > 0, "valid requests were answered during soak");

  // ---- Post-chaos verification: server answers, and definitive
  // verdicts agree byte-for-byte with one-shot xmlvc. ----
  std::vector<size_t> definitive;  // pool indices with definitive verdicts
  {
    ClientOptions retry;
    retry.max_retries = 10;
    retry.base_backoff_millis = 5;
    retry.max_backoff_millis = 200;
    retry.jitter_seed = config.seed;
    Result<ServeClient> client =
        ServeClient::Connect("127.0.0.1", soak.port, retry);
    Check(client.ok(), "post-chaos connect");
    if (client.ok()) {
      client->set_recv_timeout_millis(10000).CheckOK();
      size_t mismatches = 0;
      size_t answered = 0;
      for (size_t i = 0; i < pool.size(); ++i) {
        std::string request = "{\"id\":\"post" + std::to_string(i) +
                              "\",\"spec\":\"" + JsonEscape(pool[i]) + "\"}";
        Result<std::string> response = client->CallWithRetry(request);
        if (!response.ok()) continue;
        ++answered;
        std::string served = VerdictToken(*response);
        if (served.empty()) continue;  // indefinite under chaos: tolerated
        definitive.push_back(i);
        std::string oneshot =
            OneShotVerdict(config.xmlvc_binary, pool[i], static_cast<int>(i));
        if (!oneshot.empty() && served != oneshot) {
          ++mismatches;
          std::printf("  mismatch on pool[%zu]: served %s, xmlvc %s\n", i,
                      served.c_str(), oneshot.c_str());
        }
      }
      Check(answered == pool.size(), "post-chaos responses for every spec");
      Check(mismatches == 0, "post-chaos verdicts match one-shot xmlvc");
      Check(!definitive.empty(), "some definitive verdicts under chaos");
    }
  }

  // ---- Drain + counter sanity. ----
  Check(soak.TerminateAndReap(15000),
        "soak server drained cleanly on SIGTERM (no wedged threads)");
  Check(soak.Counter("serve/requests") > 0, "counter serve/requests > 0");
  Check(soak.Counter("serve/responses") > 0, "counter serve/responses > 0");
  Check(soak.Counter("serve/idle_timeouts") >= 1,
        "idle deadline reclaimed the slowloris connection");
  Check(soak.Counter("serve/oversized_lines") >= 1,
        "oversized lines were rejected");
  {
    std::ifstream snap(config.snapshot);
    Check(snap.good(), "snapshot file exists after drain");
  }

  // ---- Kill-and-restart: the warm cache survives. ----
  ServerProc warm;
  {
    std::vector<std::string> args = {
        "--port=0",
        "--jobs=2",
        "--timeout=2000",
        "--cache-snapshot=" + config.snapshot,
        "--stats",
    };
    if (!SpawnServer(config.server_binary, args, &warm)) {
      std::fprintf(stderr, "cannot spawn restart server\n");
      return g_failures + 1;
    }
  }
  {
    Result<ServeClient> client = ServeClient::Connect("127.0.0.1", warm.port);
    Check(client.ok(), "restart connect");
    size_t cached = 0;
    if (client.ok()) {
      client->set_recv_timeout_millis(10000).CheckOK();
      for (size_t index : definitive) {
        std::string request = "{\"id\":\"warm" + std::to_string(index) +
                              "\",\"spec\":\"" + JsonEscape(pool[index]) +
                              "\"}";
        if (!client->SendLine(request).ok()) break;
        Result<std::string> response = client->ReadLine();
        if (!response.ok()) break;
        if (response->find("\"cached\":true") != std::string::npos) ++cached;
      }
    }
    double fraction = definitive.empty()
                          ? 0.0
                          : static_cast<double>(cached) /
                                static_cast<double>(definitive.size());
    std::printf("restart: %zu/%zu definitive verdicts served from the "
                "snapshot (%.0f%%)\n",
                cached, definitive.size(), fraction * 100.0);
    Check(fraction >= 0.9, "restart restores >= 90% of definitive verdicts");
  }
  Check(warm.TerminateAndReap(15000), "restart server drained cleanly");
  Check(warm.Counter("serve/cache_snapshot_loaded") >= 1,
        "snapshot records loaded on restart");
  Check(warm.Counter("serve/cache_snapshot_skipped") <= 0,
        "snapshot round-trip clean (no skipped records)");

  std::printf(g_failures == 0 ? "CHAOS PASS\n" : "CHAOS FAIL (%d)\n",
              g_failures);
  return g_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace xmlverify

int main(int argc, char** argv) {
  xmlverify::ChaosConfig config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--server=")) {
      config.server_binary = v;
    } else if (const char* v = value("--xmlvc=")) {
      config.xmlvc_binary = v;
    } else if (const char* v = value("--duration-s=")) {
      config.duration_s = std::atoi(v);
    } else if (const char* v = value("--seed=")) {
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--clients=")) {
      config.clients = std::atoi(v);
    } else if (const char* v = value("--snapshot=")) {
      config.snapshot = v;
    } else if (const char* v = value("--fault-spec=")) {
      config.fault_spec = v;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }
  return xmlverify::Run(config);
}
