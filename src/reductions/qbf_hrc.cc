#include "reductions/qbf_hrc.h"

#include <cstdlib>

namespace xmlverify {

Result<Specification> QbfTo2HrcSpec(const QbfFormula& formula) {
  const int m = formula.num_variables();
  if (m == 0) return Status::InvalidArgument("QBF has no variables");
  auto pos = [](int i) { return "x" + std::to_string(i); };
  auto neg = [](int i) { return "nx" + std::to_string(i); };
  auto one = [](int i) { return "one" + std::to_string(i); };
  auto zero = [](int i) { return "zero" + std::to_string(i); };
  auto a_mark = [](int i) { return "A" + std::to_string(i); };
  auto b_mark = [](int i) { return "B" + std::to_string(i); };
  auto n_spine = [](int i) { return "N" + std::to_string(i); };
  auto p_spine = [](int i) { return "P" + std::to_string(i); };

  // Only literals occurring in the matrix become element types.
  std::vector<bool> pos_occurs(m + 1, false);
  std::vector<bool> neg_occurs(m + 1, false);
  for (const std::vector<int>& clause : formula.matrix.clauses) {
    for (int literal : clause) {
      if (literal > 0) {
        pos_occurs[literal] = true;
      } else {
        neg_occurs[-literal] = true;
      }
    }
  }

  std::vector<std::string> names = {"r", "C"};
  for (int i = 1; i <= m; ++i) {
    if (pos_occurs[i]) names.push_back(pos(i));
    if (neg_occurs[i]) names.push_back(neg(i));
    for (const std::string& name :
         {one(i), zero(i), a_mark(i), b_mark(i), n_spine(i), p_spine(i)}) {
      names.push_back(name);
    }
  }

  Dtd::Builder builder(names, "r");
  auto level_content = [&](int i) {
    return formula.existential[i - 1]
               ? "(" + n_spine(i) + "|" + p_spine(i) + ")"
               : "(" + n_spine(i) + "," + p_spine(i) + ")";
  };
  builder.SetContent("r", level_content(1));
  for (int i = 1; i < m; ++i) {
    builder.SetContent(n_spine(i), level_content(i + 1));
    builder.SetContent(p_spine(i), level_content(i + 1));
  }
  // Leaf content: one C, the restated assignment, then one witnessing
  // literal per clause.
  std::string leaf_content = "C";
  for (int i = 1; i <= m; ++i) {
    leaf_content += ",(" + zero(i) + "," + a_mark(i) + "," + a_mark(i) +
                    "|" + one(i) + "," + b_mark(i) + "," + b_mark(i) + ")";
  }
  for (const std::vector<int>& clause : formula.matrix.clauses) {
    std::string tr;
    for (int literal : clause) {
      if (!tr.empty()) tr += "|";
      tr += literal > 0 ? pos(literal) : neg(-literal);
    }
    leaf_content += ",(" + tr + ")";
  }
  builder.SetContent(n_spine(m), leaf_content);
  builder.SetContent(p_spine(m), leaf_content);

  builder.AddAttribute("C", "v");
  for (int i = 1; i <= m; ++i) {
    if (pos_occurs[i]) builder.AddAttribute(pos(i), "v");
    if (neg_occurs[i]) builder.AddAttribute(neg(i), "v");
    for (const std::string& name :
         {one(i), zero(i), a_mark(i), b_mark(i)}) {
      builder.AddAttribute(name, "v");
    }
  }

  Specification spec;
  ASSIGN_OR_RETURN(spec.dtd, builder.Build());
  auto type_of = [&spec](const std::string& name) {
    return spec.dtd.TypeId(name);
  };
  ASSIGN_OR_RETURN(int c_type, type_of("C"));
  ASSIGN_OR_RETURN(int leaf_n, type_of(n_spine(m)));
  ASSIGN_OR_RETURN(int leaf_p, type_of(p_spine(m)));

  for (int i = 1; i <= m; ++i) {
    ASSIGN_OR_RETURN(int spine_n, type_of(n_spine(i)));
    ASSIGN_OR_RETURN(int spine_p, type_of(p_spine(i)));
    ASSIGN_OR_RETURN(int a_type, type_of(a_mark(i)));
    ASSIGN_OR_RETURN(int b_type, type_of(b_mark(i)));
    ASSIGN_OR_RETURN(int one_type, type_of(one(i)));
    ASSIGN_OR_RETURN(int zero_type, type_of(zero(i)));

    // Path-consistency: below an N_i (x_i = 0) context, v is a key of
    // the B_i marks — a leaf restating x_i = 1 would carry two B_i
    // children whose values are squeezed into the single C value by
    // the leaf-local inclusion below, violating the key. Dually for
    // P_i / A_i.
    spec.constraints.Add(RelativeKey{spine_n, b_type, "v"});
    spec.constraints.Add(RelativeKey{spine_p, a_type, "v"});

    for (int leaf : {leaf_n, leaf_p}) {
      // Leaf-local squeezes: every mark value must equal the single
      // C value of the same leaf.
      spec.constraints.AddForeignKey(
          RelativeInclusion{leaf, a_type, "v", c_type, "v"});
      spec.constraints.AddForeignKey(
          RelativeInclusion{leaf, b_type, "v", c_type, "v"});
      // Clause-witness consistency: a positive witness x_i needs the
      // leaf to restate x_i = 1 (a one_i child), dually for nx_i.
      if (pos_occurs[i]) {
        ASSIGN_OR_RETURN(int pos_type, type_of(pos(i)));
        spec.constraints.AddForeignKey(
            RelativeInclusion{leaf, pos_type, "v", one_type, "v"});
      }
      if (neg_occurs[i]) {
        ASSIGN_OR_RETURN(int neg_type, type_of(neg(i)));
        spec.constraints.AddForeignKey(
            RelativeInclusion{leaf, neg_type, "v", zero_type, "v"});
      }
    }
  }
  RETURN_IF_ERROR(spec.constraints.Validate(spec.dtd));
  return spec;
}

}  // namespace xmlverify
