#include "reductions/qbf_regular.h"

#include <cstdlib>

namespace xmlverify {

Result<Specification> QbfToRegularSpec(const QbfFormula& formula) {
  const int m = formula.num_variables();
  if (m == 0) return Status::InvalidArgument("QBF has no variables");
  auto pos = [](int i) { return "x" + std::to_string(i); };
  auto neg = [](int i) { return "nx" + std::to_string(i); };
  auto n_spine = [](int i) { return "N" + std::to_string(i); };
  auto p_spine = [](int i) { return "P" + std::to_string(i); };

  // Only literals occurring in the matrix become element types;
  // others would be disconnected from the root.
  std::vector<bool> pos_occurs(m + 1, false);
  std::vector<bool> neg_occurs(m + 1, false);
  for (const std::vector<int>& clause : formula.matrix.clauses) {
    for (int literal : clause) {
      if (literal > 0) {
        pos_occurs[literal] = true;
      } else {
        neg_occurs[-literal] = true;
      }
    }
  }

  std::vector<std::string> names = {"r", "C"};
  for (int i = 1; i <= m; ++i) {
    if (pos_occurs[i]) names.push_back(pos(i));
    if (neg_occurs[i]) names.push_back(neg(i));
    names.push_back(n_spine(i));
    names.push_back(p_spine(i));
  }

  Dtd::Builder builder(names, "r");
  // The root and the spine branch per quantifier: choice for exists,
  // both children for forall. The root also carries the lone C child
  // (so r.C.C denotes the empty node set).
  auto level_content = [&](int i) {
    return formula.existential[i - 1]
               ? "(" + n_spine(i) + "|" + p_spine(i) + ")"
               : "(" + n_spine(i) + "," + p_spine(i) + ")";
  };
  builder.SetContent("r", level_content(1) + ",C");
  for (int i = 1; i < m; ++i) {
    builder.SetContent(n_spine(i), level_content(i + 1));
    builder.SetContent(p_spine(i), level_content(i + 1));
  }
  // The leaf level spells out one witnessing literal per clause.
  std::string matrix_content;
  for (const std::vector<int>& clause : formula.matrix.clauses) {
    std::string tr;
    for (int literal : clause) {
      if (!tr.empty()) tr += "|";
      tr += literal > 0 ? pos(literal) : neg(-literal);
    }
    if (!matrix_content.empty()) matrix_content += ",";
    matrix_content += "(" + tr + ")";
  }
  if (matrix_content.empty()) matrix_content = "%";
  builder.SetContent(n_spine(m), matrix_content);
  builder.SetContent(p_spine(m), matrix_content);

  builder.AddAttribute("C", "l");
  for (int i = 1; i <= m; ++i) {
    if (pos_occurs[i]) builder.AddAttribute(pos(i), "l");
    if (neg_occurs[i]) builder.AddAttribute(neg(i), "l");
  }

  Specification spec;
  ASSIGN_OR_RETURN(spec.dtd, builder.Build());

  // Helper to parse the constraint paths against the built DTD.
  auto resolve = [&spec](const std::string& name) {
    return spec.dtd.FindType(name);
  };
  auto parse_path = [&](const std::string& text) {
    return ParseRegex(text, resolve);
  };
  ASSIGN_OR_RETURN(Regex ccl_path, parse_path("r.C.C"));
  ASSIGN_OR_RETURN(int c_type, spec.dtd.TypeId("C"));
  for (int i = 1; i <= m; ++i) {
    // r._*.N_i._*.x_i.l <= r.C.C.l : a satisfied positive literal may
    // not sit below a negative choice for its variable (and dually).
    if (pos_occurs[i]) {
      ASSIGN_OR_RETURN(Regex pos_path,
                       parse_path("r._*." + n_spine(i) + "._*." + pos(i)));
      ASSIGN_OR_RETURN(int pos_type, spec.dtd.TypeId(pos(i)));
      spec.constraints.AddForeignKey(
          RegularInclusion{pos_path, pos_type, "l", ccl_path, c_type, "l"});
    }
    if (neg_occurs[i]) {
      ASSIGN_OR_RETURN(Regex neg_path,
                       parse_path("r._*." + p_spine(i) + "._*." + neg(i)));
      ASSIGN_OR_RETURN(int neg_type, spec.dtd.TypeId(neg(i)));
      spec.constraints.AddForeignKey(
          RegularInclusion{neg_path, neg_type, "l", ccl_path, c_type, "l"});
    }
  }
  RETURN_IF_ERROR(spec.constraints.Validate(spec.dtd));
  return spec;
}

}  // namespace xmlverify
