// Proposition 3.6: SAT(C) reduces (in logspace) to the complement of
// Impl(C), pinning coNP/PSPACE/undecidability lower bounds for the
// implication problem (Corollaries 3.7 and 4.5).
//
// Given (D, Sigma), the construction appends two D_Y elements and one
// E_X element under the root, with a fresh attribute K, and asks
// whether Sigma plus the foreign key  D_Y.K <= E_X.K  implies the key
// D_Y.K -> D_Y: it does not iff (D, Sigma) is consistent.
#ifndef XMLVERIFY_REDUCTIONS_IMPL_REDUCTION_H_
#define XMLVERIFY_REDUCTIONS_IMPL_REDUCTION_H_

#include "base/status.h"
#include "core/specification.h"

namespace xmlverify {

struct ImplicationInstance {
  /// D' and Sigma ∪ {psi} (psi = the foreign key D_Y.K <= E_X.K).
  Specification spec;
  /// phi = D_Y.K -> D_Y: implied iff the original spec is inconsistent.
  AbsoluteKey phi;
};

Result<ImplicationInstance> SatToImplication(const Specification& original);

}  // namespace xmlverify

#endif  // XMLVERIFY_REDUCTIONS_IMPL_REDUCTION_H_
