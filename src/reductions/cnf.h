// Propositional CNF formulas: the source problem of the depth-2
// NP-hardness reduction (Theorem 3.5a) and the matrix of QBF
// instances. Includes a small DPLL solver used as a test oracle.
#ifndef XMLVERIFY_REDUCTIONS_CNF_H_
#define XMLVERIFY_REDUCTIONS_CNF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace xmlverify {

struct CnfFormula {
  int num_variables = 0;
  /// DIMACS-style clauses: literal +v / -v, variables 1-based.
  std::vector<std::vector<int>> clauses;

  /// Uniform random k-CNF from a deterministic generator.
  static CnfFormula Random(int num_variables, int num_clauses,
                           int clause_size, uint64_t seed);

  /// True under `assignment` (index 0 = variable 1).
  bool Evaluate(const std::vector<bool>& assignment) const;

  /// DPLL with unit propagation; exact. Returns a model or nullopt.
  std::optional<std::vector<bool>> Solve() const;

  std::string ToString() const;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_REDUCTIONS_CNF_H_
