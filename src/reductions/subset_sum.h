// Theorem 3.5(a), second half: SUBSET SUM reduces to SAT(AC_{K,FK})
// with only TWO constraints, over a non-recursive no-star DTD whose
// depth grows with the bit width — bounding the number of constraints
// alone does not buy tractability either.
#ifndef XMLVERIFY_REDUCTIONS_SUBSET_SUM_H_
#define XMLVERIFY_REDUCTIONS_SUBSET_SUM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "base/status.h"
#include "core/specification.h"

namespace xmlverify {

struct SubsetSumInstance {
  int64_t target = 0;
  std::vector<int64_t> items;

  /// Exact pseudo-polynomial DP oracle.
  bool HasSolution() const;
};

/// D_{a,S} and the two foreign keys tau.l <-> tau'.l of the proof:
/// binary-counter gadgets X_i (doubling chains) encode `target` below
/// V and each item below an optional V_j; the two inclusions force
/// |ext(tau)| = |ext(tau')|, i.e., a subset of items summing to the
/// target.
Result<Specification> SubsetSumToSpec(const SubsetSumInstance& instance);

}  // namespace xmlverify

#endif  // XMLVERIFY_REDUCTIONS_SUBSET_SUM_H_
