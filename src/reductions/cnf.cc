#include "reductions/cnf.h"

#include <algorithm>

namespace xmlverify {

namespace {

// SplitMix64: small deterministic generator for reproducible
// instances.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

enum class Value { kUnset, kTrue, kFalse };

// Recursive DPLL over a partial assignment.
bool Dpll(const std::vector<std::vector<int>>& clauses,
          std::vector<Value>* assignment) {
  // Unit propagation to fixpoint.
  std::vector<std::pair<int, Value>> trail;
  bool changed = true;
  bool conflict = false;
  while (changed && !conflict) {
    changed = false;
    for (const std::vector<int>& clause : clauses) {
      int unassigned = 0;
      int last_literal = 0;
      bool satisfied = false;
      for (int literal : clause) {
        Value value = (*assignment)[std::abs(literal) - 1];
        if (value == Value::kUnset) {
          ++unassigned;
          last_literal = literal;
        } else if ((value == Value::kTrue) == (literal > 0)) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      if (unassigned == 0) {
        conflict = true;
        break;
      }
      if (unassigned == 1) {
        Value forced = last_literal > 0 ? Value::kTrue : Value::kFalse;
        (*assignment)[std::abs(last_literal) - 1] = forced;
        trail.emplace_back(std::abs(last_literal) - 1, forced);
        changed = true;
      }
    }
  }
  if (!conflict) {
    int branch = -1;
    for (size_t i = 0; i < assignment->size(); ++i) {
      if ((*assignment)[i] == Value::kUnset) {
        branch = static_cast<int>(i);
        break;
      }
    }
    if (branch < 0) return true;  // complete, conflict-free
    for (Value value : {Value::kTrue, Value::kFalse}) {
      (*assignment)[branch] = value;
      if (Dpll(clauses, assignment)) return true;
    }
    (*assignment)[branch] = Value::kUnset;
  }
  for (auto& [index, value] : trail) {
    (void)value;
    (*assignment)[index] = Value::kUnset;
  }
  return false;
}

}  // namespace

CnfFormula CnfFormula::Random(int num_variables, int num_clauses,
                              int clause_size, uint64_t seed) {
  CnfFormula formula;
  formula.num_variables = num_variables;
  uint64_t state = seed;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<int> clause;
    std::vector<int> pool(num_variables);
    for (int i = 0; i < num_variables; ++i) pool[i] = i + 1;
    for (int l = 0; l < clause_size && !pool.empty(); ++l) {
      size_t pick = NextRandom(&state) % pool.size();
      int variable = pool[pick];
      pool.erase(pool.begin() + pick);
      bool negated = NextRandom(&state) % 2 == 0;
      clause.push_back(negated ? -variable : variable);
    }
    formula.clauses.push_back(std::move(clause));
  }
  return formula;
}

bool CnfFormula::Evaluate(const std::vector<bool>& assignment) const {
  for (const std::vector<int>& clause : clauses) {
    bool satisfied = false;
    for (int literal : clause) {
      bool value = assignment[std::abs(literal) - 1];
      if ((literal > 0) == value) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::optional<std::vector<bool>> CnfFormula::Solve() const {
  std::vector<Value> assignment(num_variables, Value::kUnset);
  if (!Dpll(clauses, &assignment)) return std::nullopt;
  std::vector<bool> model(num_variables);
  for (int i = 0; i < num_variables; ++i) {
    model[i] = assignment[i] == Value::kTrue;
  }
  return model;
}

std::string CnfFormula::ToString() const {
  std::string out;
  for (const std::vector<int>& clause : clauses) {
    out += "(";
    for (size_t i = 0; i < clause.size(); ++i) {
      if (i > 0) out += " | ";
      if (clause[i] < 0) out += "!";
      out += "x" + std::to_string(std::abs(clause[i]));
    }
    out += ")";
  }
  return out;
}

}  // namespace xmlverify
