// Theorem 3.4(b): QBF reduces to SAT(AC^{reg}_{K,FK}) over
// non-recursive no-star DTDs. Paths through the N_i/P_i spine encode
// truth assignments; foreign keys into the empty node set r.C.C
// forbid a satisfied literal from contradicting the polarity chosen
// on its path. The specification is consistent iff the formula is
// valid.
#ifndef XMLVERIFY_REDUCTIONS_QBF_REGULAR_H_
#define XMLVERIFY_REDUCTIONS_QBF_REGULAR_H_

#include "base/status.h"
#include "core/specification.h"
#include "reductions/qbf.h"

namespace xmlverify {

Result<Specification> QbfToRegularSpec(const QbfFormula& formula);

}  // namespace xmlverify

#endif  // XMLVERIFY_REDUCTIONS_QBF_REGULAR_H_
