#include "reductions/diophantine_relative.h"

namespace xmlverify {

int64_t QuadraticEquation::Imbalance(const std::vector<int64_t>& values) const {
  int64_t total = 0;
  for (const LinearTerm& term : lhs_linear) {
    total += term.coefficient * values[term.variable];
  }
  for (const QuadraticTerm& term : lhs_quadratic) {
    total += term.coefficient * values[term.first] * values[term.second];
  }
  for (const LinearTerm& term : rhs_linear) {
    total -= term.coefficient * values[term.variable];
  }
  for (const QuadraticTerm& term : rhs_quadratic) {
    total -= term.coefficient * values[term.first] * values[term.second];
  }
  return total - constant;
}

bool QuadraticEquation::HasSolutionUpTo(int64_t bound) const {
  std::vector<int64_t> values(num_variables, 0);
  while (true) {
    if (Imbalance(values) == 0) return true;
    int position = 0;
    while (position < num_variables) {
      if (++values[position] <= bound) break;
      values[position] = 0;
      ++position;
    }
    if (position == num_variables) return false;
  }
}

namespace {

// Per-side naming: prefix "a" for the left-hand side, "g" for the
// right-hand side; `target` is "X" or "Y".
struct SideNames {
  std::string prefix;
  std::string target;

  std::string Linear(size_t t) const {
    return prefix + "L" + std::to_string(t);
  }
  std::string Alpha(size_t t) const {
    return prefix + "Q" + std::to_string(t);
  }
  std::string AlphaPrime(size_t t) const {
    return prefix + "Qp" + std::to_string(t);
  }
  std::string Beta(size_t t) const {
    return prefix + "b" + std::to_string(t);
  }
  std::string C(size_t t) const { return prefix + "c" + std::to_string(t); }
  std::string D(size_t t) const { return prefix + "d" + std::to_string(t); }
  std::string E(size_t t) const { return prefix + "e" + std::to_string(t); }
};

std::string Repeat(const std::string& name, int64_t count) {
  std::string out;
  for (int64_t c = 0; c < count; ++c) {
    if (!out.empty()) out += ",";
    out += name;
  }
  return out.empty() ? std::string("%") : out;
}

}  // namespace

Result<Specification> QuadraticEquationToRelativeSpec(
    const QuadraticEquation& equation) {
  if (equation.constant < 0) {
    return Status::InvalidArgument("constant must be nonnegative");
  }
  auto n_name = [](int i) { return "n" + std::to_string(i); };
  SideNames lhs{"a", "X"};
  SideNames rhs{"g", "Y"};

  std::vector<std::string> names = {"r", "X", "Y"};
  for (int i = 0; i < equation.num_variables; ++i) names.push_back(n_name(i));
  auto add_side_names = [&names](const SideNames& side,
                                 size_t linear_count, size_t quad_count) {
    for (size_t t = 0; t < linear_count; ++t) names.push_back(side.Linear(t));
    for (size_t t = 0; t < quad_count; ++t) {
      names.push_back(side.Alpha(t));
      names.push_back(side.AlphaPrime(t));
      names.push_back(side.Beta(t));
      names.push_back(side.C(t));
      names.push_back(side.D(t));
      names.push_back(side.E(t));
    }
  };
  add_side_names(lhs, equation.lhs_linear.size(), equation.lhs_quadratic.size());
  add_side_names(rhs, equation.rhs_linear.size(), equation.rhs_quadratic.size());

  Dtd::Builder builder(names, "r");

  // P(r): free counters n_i*, starred linear gadgets, one root
  // instance of each quadratic gadget, and Y^o for the constant.
  std::string root_content;
  auto append = [](std::string* content, const std::string& piece) {
    if (!content->empty()) *content += ",";
    *content += piece;
  };
  for (int i = 0; i < equation.num_variables; ++i) {
    append(&root_content, n_name(i) + "*");
  }
  for (size_t t = 0; t < equation.lhs_linear.size(); ++t) {
    append(&root_content, lhs.Linear(t) + "*");
  }
  for (size_t t = 0; t < equation.lhs_quadratic.size(); ++t) {
    append(&root_content, lhs.Alpha(t));
  }
  for (size_t t = 0; t < equation.rhs_linear.size(); ++t) {
    append(&root_content, rhs.Linear(t) + "*");
  }
  for (size_t t = 0; t < equation.rhs_quadratic.size(); ++t) {
    append(&root_content, rhs.Alpha(t));
  }
  if (equation.constant > 0) append(&root_content, Repeat("Y", equation.constant));
  builder.SetContent("r", root_content);

  auto build_side = [&](const SideNames& side,
                        const std::vector<QuadraticEquation::LinearTerm>&
                            linear,
                        const std::vector<QuadraticEquation::QuadraticTerm>&
                            quadratic) {
    for (size_t t = 0; t < linear.size(); ++t) {
      // P(L_t) = target^{a_t}.
      builder.SetContent(side.Linear(t),
                         Repeat(side.target, linear[t].coefficient));
    }
    for (size_t t = 0; t < quadratic.size(); ++t) {
      // P(alpha_t) = (beta_t, c_t, c_t, target^{a_t})*, alpha'_t.
      builder.SetContent(
          side.Alpha(t),
          "(" + side.Beta(t) + "," + side.C(t) + "," + side.C(t) + "," +
              Repeat(side.target, quadratic[t].coefficient) + ")*," +
              side.AlphaPrime(t));
      // P(alpha'_t) = (beta_t, d_t, d_t)*, (alpha_t | (c_t, e_t)*).
      builder.SetContent(
          side.AlphaPrime(t),
          "(" + side.Beta(t) + "," + side.D(t) + "," + side.D(t) + ")*,(" +
              side.Alpha(t) + "|(" + side.C(t) + "," + side.E(t) + ")*)");
    }
  };
  build_side(lhs, equation.lhs_linear, equation.lhs_quadratic);
  build_side(rhs, equation.rhs_linear, equation.rhs_quadratic);

  // Attributes: v on every counted type.
  builder.AddAttribute("X", "v");
  builder.AddAttribute("Y", "v");
  for (int i = 0; i < equation.num_variables; ++i) {
    builder.AddAttribute(n_name(i), "v");
  }
  auto side_attributes = [&](const SideNames& side, size_t linear_count,
                             size_t quad_count) {
    for (size_t t = 0; t < linear_count; ++t) {
      builder.AddAttribute(side.Linear(t), "v");
    }
    for (size_t t = 0; t < quad_count; ++t) {
      builder.AddAttribute(side.Alpha(t), "v");
      builder.AddAttribute(side.Beta(t), "v");
      builder.AddAttribute(side.C(t), "v");
      builder.AddAttribute(side.D(t), "v");
      builder.AddAttribute(side.E(t), "v");
    }
  };
  side_attributes(lhs, equation.lhs_linear.size(),
                  equation.lhs_quadratic.size());
  side_attributes(rhs, equation.rhs_linear.size(),
                  equation.rhs_quadratic.size());

  Specification spec;
  ASSIGN_OR_RETURN(spec.dtd, builder.Build());
  auto type_of = [&spec](const std::string& name) {
    return spec.dtd.TypeId(name);
  };

  auto add_key = [&](const std::string& name) -> Status {
    ASSIGN_OR_RETURN(int type, type_of(name));
    spec.constraints.Add(AbsoluteKey{type, {"v"}});
    return Status::OK();
  };
  auto tie_counts = [&](const std::string& a, const std::string& b) -> Status {
    // Absolute inclusions both ways: with the keys, |ext(a)|=|ext(b)|.
    ASSIGN_OR_RETURN(int type_a, type_of(a));
    ASSIGN_OR_RETURN(int type_b, type_of(b));
    spec.constraints.Add(AbsoluteInclusion{type_a, {"v"}, type_b, {"v"}});
    spec.constraints.Add(AbsoluteInclusion{type_b, {"v"}, type_a, {"v"}});
    return Status::OK();
  };

  RETURN_IF_ERROR(add_key("X"));
  RETURN_IF_ERROR(add_key("Y"));
  RETURN_IF_ERROR(tie_counts("X", "Y"));
  for (int i = 0; i < equation.num_variables; ++i) {
    RETURN_IF_ERROR(add_key(n_name(i)));
  }

  auto side_constraints = [&](const SideNames& side,
                              const std::vector<QuadraticEquation::LinearTerm>&
                                  linear,
                              const std::vector<
                                  QuadraticEquation::QuadraticTerm>& quadratic)
      -> Status {
    for (size_t t = 0; t < linear.size(); ++t) {
      RETURN_IF_ERROR(add_key(side.Linear(t)));
      // |ext(L_t)| = x_var: L_t contributes a_t * x_var target nodes.
      RETURN_IF_ERROR(tie_counts(side.Linear(t), n_name(linear[t].variable)));
    }
    for (size_t t = 0; t < quadratic.size(); ++t) {
      for (const std::string& name :
           {side.Alpha(t), side.Beta(t), side.C(t), side.D(t), side.E(t)}) {
        RETURN_IF_ERROR(add_key(name));
      }
      // |ext(alpha_t)| = x_first (nesting depth).
      RETURN_IF_ERROR(
          tie_counts(side.Alpha(t), n_name(quadratic[t].first)));
      // |ext(e_t)| = x_second (innermost (c,e)* run length).
      RETURN_IF_ERROR(tie_counts(side.E(t), n_name(quadratic[t].second)));
      // Relative counters: inside each alpha node, the beta run equals
      // half the d run; inside each alpha' node, the beta run equals
      // half the c run — together these replicate x_second down every
      // nesting level (the appendix's induction).
      ASSIGN_OR_RETURN(int alpha, type_of(side.Alpha(t)));
      ASSIGN_OR_RETURN(int alpha_prime, type_of(side.AlphaPrime(t)));
      ASSIGN_OR_RETURN(int beta, type_of(side.Beta(t)));
      ASSIGN_OR_RETURN(int c_type, type_of(side.C(t)));
      ASSIGN_OR_RETURN(int d_type, type_of(side.D(t)));
      spec.constraints.AddForeignKey(
          RelativeInclusion{alpha, beta, "v", d_type, "v"});
      spec.constraints.AddForeignKey(
          RelativeInclusion{alpha, d_type, "v", beta, "v"});
      spec.constraints.AddForeignKey(
          RelativeInclusion{alpha_prime, beta, "v", c_type, "v"});
      spec.constraints.AddForeignKey(
          RelativeInclusion{alpha_prime, c_type, "v", beta, "v"});
    }
    return Status::OK();
  };
  RETURN_IF_ERROR(side_constraints(lhs, equation.lhs_linear,
                                   equation.lhs_quadratic));
  RETURN_IF_ERROR(side_constraints(rhs, equation.rhs_linear,
                                   equation.rhs_quadratic));

  RETURN_IF_ERROR(spec.constraints.Validate(spec.dtd));
  return spec;
}

}  // namespace xmlverify
