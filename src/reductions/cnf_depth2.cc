#include "reductions/cnf_depth2.h"

#include <cstdlib>
#include <set>

namespace xmlverify {

Result<Specification> CnfToDepth2Spec(const CnfFormula& formula) {
  // Element type names.
  auto pos_var = [](int v) { return "x" + std::to_string(v); };
  auto neg_var = [](int v) { return "nx" + std::to_string(v); };
  auto pos_lit = [](int c, int v) {
    return "c" + std::to_string(c) + "_" + std::to_string(v);
  };
  auto neg_lit = [](int c, int v) {
    return "nc" + std::to_string(c) + "_" + std::to_string(v);
  };

  std::vector<std::string> names = {"r"};
  std::set<std::string> seen = {"r"};
  auto add_name = [&](const std::string& name) {
    if (seen.insert(name).second) names.push_back(name);
  };
  for (int v = 1; v <= formula.num_variables; ++v) {
    add_name(pos_var(v));
    add_name(neg_var(v));
  }
  for (size_t c = 0; c < formula.clauses.size(); ++c) {
    for (int literal : formula.clauses[c]) {
      add_name(literal > 0 ? pos_lit(static_cast<int>(c), literal)
                           : neg_lit(static_cast<int>(c), -literal));
    }
  }

  Dtd::Builder builder(names, "r");
  // P(r) = tr(C_1), ..., tr(C_n), (x_1|nx_1), ..., (x_m|nx_m).
  std::string root_content;
  for (size_t c = 0; c < formula.clauses.size(); ++c) {
    std::string tr;
    for (int literal : formula.clauses[c]) {
      if (!tr.empty()) tr += "|";
      tr += literal > 0 ? pos_lit(static_cast<int>(c), literal)
                        : neg_lit(static_cast<int>(c), -literal);
    }
    if (!root_content.empty()) root_content += ",";
    root_content += "(" + tr + ")";
  }
  for (int v = 1; v <= formula.num_variables; ++v) {
    if (!root_content.empty()) root_content += ",";
    root_content += "(" + pos_var(v) + "|" + neg_var(v) + ")";
  }
  builder.SetContent("r", root_content);
  for (const std::string& name : names) {
    if (name != "r") builder.AddAttribute(name, "l");
  }

  Specification spec;
  ASSIGN_OR_RETURN(spec.dtd, builder.Build());

  // Foreign keys C_{i,j}.l <= x_j.l (with the key on the referenced
  // side), and the negated-literal counterparts.
  for (size_t c = 0; c < formula.clauses.size(); ++c) {
    for (int literal : formula.clauses[c]) {
      std::string lit_name = literal > 0
                                 ? pos_lit(static_cast<int>(c), literal)
                                 : neg_lit(static_cast<int>(c), -literal);
      std::string var_name =
          literal > 0 ? pos_var(literal) : neg_var(-literal);
      ASSIGN_OR_RETURN(int lit_type, spec.dtd.TypeId(lit_name));
      ASSIGN_OR_RETURN(int var_type, spec.dtd.TypeId(var_name));
      spec.constraints.AddForeignKey(
          AbsoluteInclusion{lit_type, {"l"}, var_type, {"l"}});
    }
  }
  RETURN_IF_ERROR(spec.constraints.Validate(spec.dtd));
  return spec;
}

}  // namespace xmlverify
