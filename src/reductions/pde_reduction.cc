#include "reductions/pde_reduction.h"

#include "ilp/linear.h"

namespace xmlverify {

Status PdeSystem::Validate() const {
  for (const LinearRow& row : rows) {
    if (static_cast<int>(row.coefficients.size()) != num_variables) {
      return Status::InvalidArgument("row arity mismatch");
    }
    for (int64_t coefficient : row.coefficients) {
      if (coefficient < 0) {
        return Status::InvalidArgument(
            "PDE reduction requires nonnegative coefficients");
      }
    }
    if (row.rhs < 0) {
      return Status::InvalidArgument("PDE rhs must be nonnegative");
    }
    bool all_zero = true;
    for (int64_t coefficient : row.coefficients) {
      if (coefficient > 0) all_zero = false;
    }
    if (all_zero) {
      return Status::Unsupported(
          "degenerate all-zero row; simplify the system first");
    }
    if (row.is_le && row.rhs == 0) {
      return Status::Unsupported(
          "'<= 0' rows force variables to zero; substitute them away "
          "before reducing");
    }
  }
  for (const Prequadratic& pq : prequadratics) {
    if (pq.x < 0 || pq.x >= num_variables || pq.y < 0 ||
        pq.y >= num_variables || pq.z < 0 || pq.z >= num_variables) {
      return Status::InvalidArgument("prequadratic variable out of range");
    }
  }
  return Status::OK();
}

Result<SolveResult> SolvePde(const PdeSystem& system,
                             const SolverOptions& options) {
  RETURN_IF_ERROR(system.Validate());
  IntegerProgram program;
  for (int i = 0; i < system.num_variables; ++i) {
    program.NewVariable("x" + std::to_string(i));
  }
  for (const PdeSystem::LinearRow& row : system.rows) {
    LinearExpr lhs;
    for (int i = 0; i < system.num_variables; ++i) {
      lhs.Add(i, BigInt(row.coefficients[i]));
    }
    program.AddLinear(std::move(lhs),
                      row.is_le ? Relation::kLe : Relation::kGe,
                      BigInt(row.rhs));
  }
  for (const PdeSystem::Prequadratic& pq : system.prequadratics) {
    program.AddPrequadratic(pq.x, pq.y, pq.z);
  }
  IlpSolver solver(options);
  if (system.prequadratics.empty()) return solver.Solve(program);
  return solver.SolveWithDeepening(program, BigInt(16), BigInt::Pow2(24));
}

Result<Specification> PdeToSpec(const PdeSystem& system) {
  RETURN_IF_ERROR(system.Validate());
  const int n = system.num_variables;
  const int m = static_cast<int>(system.rows.size());
  auto coef = [&system](int j, int i) {
    return system.rows[j].coefficients[i];
  };

  auto x_name = [](int i) { return "X" + std::to_string(i); };
  auto cx_name = [](int i, int j) {
    return "CX" + std::to_string(i) + "_" + std::to_string(j);
  };
  auto dx_name = [](int i, int j) {
    return "DX" + std::to_string(i) + "_" + std::to_string(j);
  };
  auto e_name = [](int j) { return "E" + std::to_string(j); };
  auto u_name = [](int j) { return "U" + std::to_string(j); };
  auto b_name = [](int j) { return "B" + std::to_string(j); };
  auto uij_name = [](int i, int j) {
    return "U" + std::to_string(i) + "_" + std::to_string(j);
  };
  auto xp_name = [](int p) { return "XP" + std::to_string(p); };
  auto nxp_name = [](int p) { return "NXP" + std::to_string(p); };
  auto cxp_name = [](int p, int j) {
    return "CXP" + std::to_string(p) + "_" + std::to_string(j);
  };
  auto dxp_name = [](int p, int j) {
    return "DXP" + std::to_string(p) + "_" + std::to_string(j);
  };

  // Types for zero-coefficient terms are omitted entirely: they would
  // be unreachable in the DTD and their terms contribute nothing.
  std::vector<std::string> names = {"r"};
  for (int i = 0; i < n; ++i) {
    names.push_back(x_name(i));
    for (int j = 0; j < m; ++j) {
      if (coef(j, i) == 0) continue;
      names.push_back(cx_name(i, j));
      names.push_back(dx_name(i, j));
      names.push_back(uij_name(i, j));
    }
  }
  for (int j = 0; j < m; ++j) {
    names.push_back(e_name(j));
    names.push_back(u_name(j));
    names.push_back(b_name(j));
  }
  for (size_t sp = 0; sp < system.prequadratics.size(); ++sp) {
    int p = static_cast<int>(sp);
    int i = system.prequadratics[sp].x;
    names.push_back(xp_name(p));
    names.push_back(nxp_name(p));
    for (int j = 0; j < m; ++j) {
      if (coef(j, i) == 0) continue;
      names.push_back(cxp_name(p, j));
      names.push_back(dxp_name(p, j));
    }
  }

  Dtd::Builder builder(names, "r");

  // P(r) = E_0,...,E_{m-1}, X_0*,...,X_{n-1}*, XP_0*,... .
  std::string root_content;
  auto append = [](std::string* content, const std::string& piece) {
    if (!content->empty()) *content += ",";
    *content += piece;
  };
  for (int j = 0; j < m; ++j) append(&root_content, e_name(j));
  for (int i = 0; i < n; ++i) append(&root_content, x_name(i) + "*");
  for (size_t sp = 0; sp < system.prequadratics.size(); ++sp) {
    append(&root_content, xp_name(static_cast<int>(sp)) + "*");
  }
  builder.SetContent("r", root_content);

  auto repeat = [](const std::string& name, int64_t count) {
    std::string out;
    for (int64_t c = 0; c < count; ++c) {
      if (!out.empty()) out += ",";
      out += name;
    }
    return out.empty() ? std::string("%") : out;
  };

  // P(E_j) = B_j^{b_j}, U_{i,j}* over the row's support. A ">= 0" row
  // gets an optional B_j so the type stays reachable (the row is
  // vacuous either way).
  for (int j = 0; j < m; ++j) {
    std::string content = system.rows[j].rhs == 0
                              ? "(" + b_name(j) + "|%)"
                              : repeat(b_name(j), system.rows[j].rhs);
    for (int i = 0; i < n; ++i) {
      if (coef(j, i) > 0) append(&content, uij_name(i, j) + "*");
    }
    builder.SetContent(e_name(j), content);
    for (int i = 0; i < n; ++i) {
      if (coef(j, i) > 0) builder.SetContent(uij_name(i, j), u_name(j));
    }
  }

  // P(X_i) = CX_{i,j} over the support; P(CX_{i,j}) = DX_{i,j}^{a^j_i}.
  for (int i = 0; i < n; ++i) {
    std::string content;
    for (int j = 0; j < m; ++j) {
      if (coef(j, i) > 0) append(&content, cx_name(i, j));
    }
    builder.SetContent(x_name(i), content.empty() ? "%" : content);
    for (int j = 0; j < m; ++j) {
      if (coef(j, i) == 0) continue;
      builder.SetContent(cx_name(i, j), repeat(dx_name(i, j), coef(j, i)));
    }
  }

  // Prequadratic copies: P(XP_p) = CXP_{p,j} over the support of x_i,
  // then NXP_p (which pins |ext(XP_p)| = |ext(NXP_p)|).
  for (size_t sp = 0; sp < system.prequadratics.size(); ++sp) {
    int p = static_cast<int>(sp);
    int i = system.prequadratics[sp].x;
    std::string content;
    for (int j = 0; j < m; ++j) {
      if (coef(j, i) > 0) append(&content, cxp_name(p, j));
    }
    append(&content, nxp_name(p));
    builder.SetContent(xp_name(p), content);
    for (int j = 0; j < m; ++j) {
      if (coef(j, i) == 0) continue;
      builder.SetContent(cxp_name(p, j), repeat(dxp_name(p, j), coef(j, i)));
    }
  }

  // Attributes: l on the counted types; ly and lz on each copy XP_p.
  for (int i = 0; i < n; ++i) {
    builder.AddAttribute(x_name(i), "l");
    for (int j = 0; j < m; ++j) {
      if (coef(j, i) == 0) continue;
      builder.AddAttribute(uij_name(i, j), "l");
      builder.AddAttribute(dx_name(i, j), "l");
    }
  }
  for (int j = 0; j < m; ++j) {
    builder.AddAttribute(u_name(j), "l");
    builder.AddAttribute(b_name(j), "l");
  }
  for (size_t sp = 0; sp < system.prequadratics.size(); ++sp) {
    int p = static_cast<int>(sp);
    int i = system.prequadratics[sp].x;
    builder.AddAttribute(nxp_name(p), "l");
    builder.AddAttribute(xp_name(p), "ly");
    builder.AddAttribute(xp_name(p), "lz");
    for (int j = 0; j < m; ++j) {
      if (coef(j, i) > 0) builder.AddAttribute(dxp_name(p, j), "l");
    }
  }

  Specification spec;
  ASSIGN_OR_RETURN(spec.dtd, builder.Build());
  auto type_of = [&spec](const std::string& name) {
    return spec.dtd.TypeId(name);
  };

  // (1) l is a (primary, unary) key of every counted type.
  auto add_key = [&](const std::string& name) -> Status {
    ASSIGN_OR_RETURN(int type, type_of(name));
    spec.constraints.Add(AbsoluteKey{type, {"l"}});
    return Status::OK();
  };
  for (int i = 0; i < n; ++i) {
    RETURN_IF_ERROR(add_key(x_name(i)));
    for (int j = 0; j < m; ++j) {
      if (coef(j, i) == 0) continue;
      RETURN_IF_ERROR(add_key(uij_name(i, j)));
      RETURN_IF_ERROR(add_key(dx_name(i, j)));
    }
  }
  for (int j = 0; j < m; ++j) {
    RETURN_IF_ERROR(add_key(u_name(j)));
    RETURN_IF_ERROR(add_key(b_name(j)));
  }
  for (size_t sp = 0; sp < system.prequadratics.size(); ++sp) {
    int p = static_cast<int>(sp);
    int i = system.prequadratics[sp].x;
    RETURN_IF_ERROR(add_key(nxp_name(p)));
    for (int j = 0; j < m; ++j) {
      if (coef(j, i) > 0) RETURN_IF_ERROR(add_key(dxp_name(p, j)));
    }
  }

  auto both_ways = [&](const std::string& a, const std::string& b) -> Status {
    ASSIGN_OR_RETURN(int type_a, type_of(a));
    ASSIGN_OR_RETURN(int type_b, type_of(b));
    spec.constraints.Add(AbsoluteInclusion{type_a, {"l"}, type_b, {"l"}});
    spec.constraints.Add(AbsoluteInclusion{type_b, {"l"}, type_a, {"l"}});
    return Status::OK();
  };

  // (2) the U_{i,j} extents agree with the DX_{i,j} extents (and with
  // the prequadratic copies' DXP extents): both encode a^j_i * x_i.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      if (coef(j, i) == 0) continue;
      RETURN_IF_ERROR(both_ways(uij_name(i, j), dx_name(i, j)));
      for (size_t sp = 0; sp < system.prequadratics.size(); ++sp) {
        if (system.prequadratics[sp].x != i) continue;
        RETURN_IF_ERROR(
            both_ways(uij_name(i, j), dxp_name(static_cast<int>(sp), j)));
      }
    }
  }

  // (3) each linear row: U_j.l <= B_j.l for "<=", the reverse for ">=".
  for (int j = 0; j < m; ++j) {
    ASSIGN_OR_RETURN(int u_type, type_of(u_name(j)));
    ASSIGN_OR_RETURN(int b_type, type_of(b_name(j)));
    if (system.rows[j].is_le) {
      spec.constraints.Add(AbsoluteInclusion{u_type, {"l"}, b_type, {"l"}});
    } else {
      spec.constraints.Add(AbsoluteInclusion{b_type, {"l"}, u_type, {"l"}});
    }
  }

  // (4) prequadratic p: x_i <= x_y * x_z via the two-attribute primary
  // key on the copy XP_p and unary inclusions into X_y.l and X_z.l;
  // (5) |ext(X_i)| = |ext(NXP_p)| (= |ext(XP_p)| by the DTD).
  for (size_t sp = 0; sp < system.prequadratics.size(); ++sp) {
    int p = static_cast<int>(sp);
    ASSIGN_OR_RETURN(int xp_type, type_of(xp_name(p)));
    ASSIGN_OR_RETURN(int y_type, type_of(x_name(system.prequadratics[sp].y)));
    ASSIGN_OR_RETURN(int z_type, type_of(x_name(system.prequadratics[sp].z)));
    spec.constraints.Add(AbsoluteKey{xp_type, {"ly", "lz"}});
    spec.constraints.Add(AbsoluteInclusion{xp_type, {"ly"}, y_type, {"l"}});
    spec.constraints.Add(AbsoluteInclusion{xp_type, {"lz"}, z_type, {"l"}});
    RETURN_IF_ERROR(
        both_ways(x_name(system.prequadratics[sp].x), nxp_name(p)));
  }

  RETURN_IF_ERROR(spec.constraints.Validate(spec.dtd));
  return spec;
}

}  // namespace xmlverify
