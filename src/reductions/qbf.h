// Quantified boolean formulas in prenex CNF: the source problem of
// both PSPACE-hardness reductions (Theorem 3.4b for AC^{reg} and
// Theorem 4.4 for 2-local hierarchical relative constraints).
#ifndef XMLVERIFY_REDUCTIONS_QBF_H_
#define XMLVERIFY_REDUCTIONS_QBF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "reductions/cnf.h"

namespace xmlverify {

struct QbfFormula {
  /// Quantifier per variable, outermost first; true = exists.
  std::vector<bool> existential;
  /// Matrix over the same variables (matrix.num_variables ==
  /// existential.size()).
  CnfFormula matrix;

  int num_variables() const { return static_cast<int>(existential.size()); }

  /// Exact recursive evaluation (exponential; for small instances).
  bool Evaluate() const;

  /// Random prenex-CNF QBF with alternating quantifiers starting from
  /// a universal.
  static QbfFormula Random(int num_variables, int num_clauses,
                           int clause_size, uint64_t seed);

  std::string ToString() const;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_REDUCTIONS_QBF_H_
