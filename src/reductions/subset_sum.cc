#include "reductions/subset_sum.h"

#include <set>

namespace xmlverify {

bool SubsetSumInstance::HasSolution() const {
  std::set<int64_t> reachable = {0};
  for (int64_t item : items) {
    std::set<int64_t> next = reachable;
    for (int64_t sum : reachable) {
      if (sum + item <= target) next.insert(sum + item);
    }
    reachable = std::move(next);
  }
  return reachable.count(target) > 0;
}

namespace {

// Highest set bit position of v (v >= 1).
int HighestBit(int64_t v) {
  int bit = 0;
  while (v >> (bit + 1)) ++bit;
  return bit;
}

}  // namespace

Result<Specification> SubsetSumToSpec(const SubsetSumInstance& instance) {
  if (instance.target <= 0) {
    return Status::InvalidArgument("target must be positive");
  }
  for (int64_t item : instance.items) {
    if (item <= 0) return Status::InvalidArgument("items must be positive");
  }

  auto x_chain = [](int i) { return "X" + std::to_string(i); };
  auto y_chain = [](int i) { return "Y" + std::to_string(i); };
  auto v_item = [](size_t j) { return "V" + std::to_string(j + 1); };

  int max_x_bit = HighestBit(instance.target);
  int max_y_bit = 0;
  for (int64_t item : instance.items) {
    max_y_bit = std::max(max_y_bit, HighestBit(item));
  }

  std::vector<std::string> names = {"r", "V", "tau", "tauP"};
  for (int i = 0; i <= max_x_bit; ++i) names.push_back(x_chain(i));
  if (!instance.items.empty()) {
    for (int i = 0; i <= max_y_bit; ++i) names.push_back(y_chain(i));
  }
  for (size_t j = 0; j < instance.items.size(); ++j) {
    names.push_back(v_item(j));
  }

  Dtd::Builder builder(names, "r");
  // P(r) = V, (V_1|%), ..., (V_n|%).
  std::string root_content = "V";
  for (size_t j = 0; j < instance.items.size(); ++j) {
    root_content += ",(" + v_item(j) + "|%)";
  }
  builder.SetContent("r", root_content);

  // Doubling chains: X_0 -> tau, X_i -> X_{i-1}, X_{i-1}.
  builder.SetContent(x_chain(0), "tau");
  for (int i = 1; i <= max_x_bit; ++i) {
    builder.SetContent(x_chain(i), x_chain(i - 1) + "," + x_chain(i - 1));
  }
  if (!instance.items.empty()) {
    builder.SetContent(y_chain(0), "tauP");
    for (int i = 1; i <= max_y_bit; ++i) {
      builder.SetContent(y_chain(i), y_chain(i - 1) + "," + y_chain(i - 1));
    }
  }

  // V spells out the binary expansion of the target; V_j of item j.
  auto bits_content = [](int64_t value, auto chain) {
    std::string content;
    for (int bit = 0; value >> bit; ++bit) {
      if ((value >> bit) & 1) {
        if (!content.empty()) content += ",";
        content += chain(bit);
      }
    }
    return content;
  };
  builder.SetContent("V", bits_content(instance.target, x_chain));
  for (size_t j = 0; j < instance.items.size(); ++j) {
    builder.SetContent(v_item(j), bits_content(instance.items[j], y_chain));
  }

  builder.AddAttribute("tau", "l");
  builder.AddAttribute("tauP", "l");

  Specification spec;
  ASSIGN_OR_RETURN(spec.dtd, builder.Build());
  ASSIGN_OR_RETURN(int tau, spec.dtd.TypeId("tau"));
  ASSIGN_OR_RETURN(int tau_p, spec.dtd.TypeId("tauP"));
  // The two foreign keys: tau.l <= tauP.l and tauP.l <= tau.l.
  spec.constraints.AddForeignKey(AbsoluteInclusion{tau, {"l"}, tau_p, {"l"}});
  spec.constraints.AddForeignKey(AbsoluteInclusion{tau_p, {"l"}, tau, {"l"}});
  RETURN_IF_ERROR(spec.constraints.Validate(spec.dtd));
  return spec;
}

}  // namespace xmlverify
