// Theorem 3.5(a), first half: CNF-SAT reduces to SAT(AC_{K,FK}) over
// depth-2 non-recursive no-star DTDs. The produced specification is
// consistent iff the formula is satisfiable, witnessing that bounding
// the DTD depth alone does not buy tractability.
#ifndef XMLVERIFY_REDUCTIONS_CNF_DEPTH2_H_
#define XMLVERIFY_REDUCTIONS_CNF_DEPTH2_H_

#include "base/status.h"
#include "core/specification.h"
#include "reductions/cnf.h"

namespace xmlverify {

/// D_phi and Sigma_phi of the proof: the root chooses one witnessing
/// literal type per clause and one polarity type per variable; foreign
/// keys C_{i,j}.l <= x_j.l force witnessing literals to match the
/// chosen polarities.
Result<Specification> CnfToDepth2Spec(const CnfFormula& formula);

}  // namespace xmlverify

#endif  // XMLVERIFY_REDUCTIONS_CNF_DEPTH2_H_
