// Theorem 4.4: QBF reduces to SAT(2-HRC_{K,FK}) — hierarchical,
// 2-local relative constraints. The N_i/P_i spine again encodes
// assignments; each leaf re-states the whole assignment through
// 0_i/1_i children, kept consistent with the path by relative keys at
// the spine contexts (the A_i/B_i doubling trick), and clause
// witnesses are checked against the restated assignment by relative
// foreign keys local to the leaf.
#ifndef XMLVERIFY_REDUCTIONS_QBF_HRC_H_
#define XMLVERIFY_REDUCTIONS_QBF_HRC_H_

#include "base/status.h"
#include "core/specification.h"
#include "reductions/qbf.h"

namespace xmlverify {

Result<Specification> QbfTo2HrcSpec(const QbfFormula& formula);

}  // namespace xmlverify

#endif  // XMLVERIFY_REDUCTIONS_QBF_HRC_H_
