// Theorem 4.1: SAT(RC_{K,FK}) is undecidable, by reduction from the
// positive quadratic Diophantine problem (Hilbert's 10th, [21]).
//
// This file provides the equation type and the reduction: a recursive
// DTD whose alpha_i / alpha'_i nesting implements multiplication by
// repeated copying, with relative foreign keys tying each level's
// counters together. The resulting specifications are, by design,
// outside every decidable fragment (they are not hierarchical), and
// are used to demonstrate the undecidability frontier with the
// bounded searcher.
#ifndef XMLVERIFY_REDUCTIONS_DIOPHANTINE_RELATIVE_H_
#define XMLVERIFY_REDUCTIONS_DIOPHANTINE_RELATIVE_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "core/specification.h"

namespace xmlverify {

/// One positive quadratic equation
///   sum a_i * x_{alpha_i} + sum a_i * x_{alpha_i} * x_{beta_i}
///     = sum b_i * x_{gamma_i} + sum b_i * x_{gamma_i} * x_{delta_i} + o
/// over variables 0..num_variables-1, all coefficients positive.
struct QuadraticEquation {
  int num_variables = 0;
  struct LinearTerm {
    int64_t coefficient;  // > 0
    int variable;
  };
  struct QuadraticTerm {
    int64_t coefficient;  // > 0
    int first;
    int second;
  };
  std::vector<LinearTerm> lhs_linear;
  std::vector<QuadraticTerm> lhs_quadratic;
  std::vector<LinearTerm> rhs_linear;
  std::vector<QuadraticTerm> rhs_quadratic;
  int64_t constant = 0;  // o >= 0, on the right-hand side

  /// Exhaustive search for a solution with all variables <= bound.
  bool HasSolutionUpTo(int64_t bound) const;
  /// Evaluates lhs - rhs - constant under an assignment.
  int64_t Imbalance(const std::vector<int64_t>& values) const;
};

Result<Specification> QuadraticEquationToRelativeSpec(
    const QuadraticEquation& equation);

}  // namespace xmlverify

#endif  // XMLVERIFY_REDUCTIONS_DIOPHANTINE_RELATIVE_H_
