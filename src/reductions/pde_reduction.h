// Theorem 3.1: SAT(AC^{*,1}_{PK,FK}) and PDE (prequadratic
// Diophantine equations, McAllester et al. [22]) are polynomially
// equivalent. This file provides the PDE instance type, a direct
// solver (via the library's integer solver — the SAT -> PDE
// direction in executable form), and the PDE -> SAT reduction from
// the appendix.
#ifndef XMLVERIFY_REDUCTIONS_PDE_REDUCTION_H_
#define XMLVERIFY_REDUCTIONS_PDE_REDUCTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/specification.h"
#include "ilp/solver.h"

namespace xmlverify {

/// A system of nonnegative-coefficient linear inequalities plus
/// prequadratic side conditions x_i <= x_j * x_k, over nonnegative
/// integer variables.
struct PdeSystem {
  int num_variables = 0;
  struct LinearRow {
    std::vector<int64_t> coefficients;  // one per variable, >= 0
    bool is_le = true;                  // sum <= rhs, else sum >= rhs
    int64_t rhs = 0;                    // >= 0
  };
  std::vector<LinearRow> rows;
  struct Prequadratic {
    int x;
    int y;
    int z;
  };
  std::vector<Prequadratic> prequadratics;

  Status Validate() const;
};

/// Decides the PDE directly with the integer solver (iterative
/// deepening for the prequadratic part).
Result<SolveResult> SolvePde(const PdeSystem& system,
                             const SolverOptions& options = {});

/// The appendix construction: a DTD D and a primary set of
/// multi-attribute keys and unary foreign keys such that the
/// specification is consistent iff the PDE has a solution. |ext(X_i)|
/// encodes x_i; copies X_i^p with two-attribute primary keys encode
/// each prequadratic constraint.
Result<Specification> PdeToSpec(const PdeSystem& system);

}  // namespace xmlverify

#endif  // XMLVERIFY_REDUCTIONS_PDE_REDUCTION_H_
