#include "reductions/qbf.h"

namespace xmlverify {

namespace {

bool EvaluateFrom(const QbfFormula& formula, size_t depth,
                  std::vector<bool>* assignment) {
  if (depth == formula.existential.size()) {
    return formula.matrix.Evaluate(*assignment);
  }
  bool result = formula.existential[depth] ? false : true;
  for (bool value : {false, true}) {
    (*assignment)[depth] = value;
    bool branch = EvaluateFrom(formula, depth + 1, assignment);
    if (formula.existential[depth]) {
      result = result || branch;
      if (result) break;
    } else {
      result = result && branch;
      if (!result) break;
    }
  }
  return result;
}

}  // namespace

bool QbfFormula::Evaluate() const {
  std::vector<bool> assignment(existential.size(), false);
  return EvaluateFrom(*this, 0, &assignment);
}

QbfFormula QbfFormula::Random(int num_variables, int num_clauses,
                              int clause_size, uint64_t seed) {
  QbfFormula formula;
  for (int i = 0; i < num_variables; ++i) {
    formula.existential.push_back(i % 2 == 1);  // forall, exists, ...
  }
  formula.matrix =
      CnfFormula::Random(num_variables, num_clauses, clause_size, seed);
  return formula;
}

std::string QbfFormula::ToString() const {
  std::string out;
  for (size_t i = 0; i < existential.size(); ++i) {
    out += existential[i] ? "E" : "A";
    out += "x" + std::to_string(i + 1) + ".";
  }
  return out + " " + matrix.ToString();
}

}  // namespace xmlverify
