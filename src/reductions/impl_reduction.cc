#include "reductions/impl_reduction.h"

namespace xmlverify {

Result<ImplicationInstance> SatToImplication(const Specification& original) {
  const Dtd& dtd = original.dtd;
  // D' = D with P'(r) = P(r), D_Y, D_Y, E_X and fresh attribute K.
  std::vector<std::string> names;
  for (int type = 0; type < dtd.num_element_types(); ++type) {
    names.push_back(dtd.TypeName(type));
  }
  const std::string dy_name = "implDY";
  const std::string ex_name = "implEX";
  if (dtd.FindType(dy_name) >= 0 || dtd.FindType(ex_name) >= 0) {
    return Status::InvalidArgument(
        "the specification already uses the reserved type names implDY/"
        "implEX");
  }
  names.push_back(dy_name);
  names.push_back(ex_name);

  Dtd::Builder builder(names, dtd.TypeName(dtd.root()));
  auto name_of = [&dtd](int symbol) { return dtd.SymbolName(symbol); };
  for (int type = 0; type < dtd.num_element_types(); ++type) {
    // Symbol ids of the original types are preserved (same order), but
    // the pcdata symbol moves from |E| to |E|+2. Note that the id of
    // implDY equals the ORIGINAL pcdata id, so the remap must happen
    // before the fresh symbols are appended.
    int old_pcdata = dtd.pcdata_symbol();
    int new_pcdata = builder.pcdata_symbol();
    Regex content = RemapSymbols(dtd.Content(type), [&](int symbol) {
      return symbol == old_pcdata ? new_pcdata : symbol;
    });
    if (type == dtd.root()) {
      content = Regex::ConcatAll(
          {content, Regex::Symbol(builder.Symbol(dy_name)),
           Regex::Symbol(builder.Symbol(dy_name)),
           Regex::Symbol(builder.Symbol(ex_name))});
    }
    builder.SetContent(dtd.TypeName(type), std::move(content));
    (void)name_of;
    for (const std::string& attribute : dtd.Attributes(type)) {
      builder.AddAttribute(dtd.TypeName(type), attribute);
    }
  }
  builder.AddAttribute(dy_name, "K");
  builder.AddAttribute(ex_name, "K");

  ImplicationInstance instance;
  ASSIGN_OR_RETURN(instance.spec.dtd, builder.Build());
  const Dtd& new_dtd = instance.spec.dtd;

  // Copy Sigma: type ids are unchanged by construction.
  instance.spec.constraints = original.constraints;
  ASSIGN_OR_RETURN(int dy_type, new_dtd.TypeId(dy_name));
  ASSIGN_OR_RETURN(int ex_type, new_dtd.TypeId(ex_name));
  // psi: D_Y.K <= E_X.K with the key on E_X.
  instance.spec.constraints.AddForeignKey(
      AbsoluteInclusion{dy_type, {"K"}, ex_type, {"K"}});
  // phi: D_Y.K -> D_Y.
  instance.phi = AbsoluteKey{dy_type, {"K"}};
  RETURN_IF_ERROR(instance.spec.constraints.Validate(new_dtd));
  return instance;
}

}  // namespace xmlverify
