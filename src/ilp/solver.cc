#include "ilp/solver.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "ilp/presolve.h"
#include "ilp/simplex.h"
#include "trace/trace.h"

namespace xmlverify {

namespace {

// A search node: the base program plus branching decisions, expressed
// as extra linear constraints.
struct SearchNode {
  std::vector<LinearConstraint> extra;
  // Conditionals whose antecedent has been branched to zero; the
  // remaining ones are re-checked against each integer candidate.
  std::vector<bool> conditional_decided;
};

LinearConstraint VarBound(VarId var, Relation relation, BigInt bound,
                          std::string label) {
  LinearConstraint constraint;
  constraint.lhs.Add(var, BigInt(1));
  constraint.relation = relation;
  constraint.rhs = std::move(bound);
  constraint.label = std::move(label);
  return constraint;
}

// Approximate resident footprint of one search node, charged against
// the memory budget while the node sits on the branch stack.
int64_t ApproxNodeBytes(const SearchNode& node) {
  return 64 + static_cast<int64_t>(node.extra.size()) * 128 +
         static_cast<int64_t>(node.conditional_decided.size());
}

// Per-row gcd test: an equality sum a_i x_i = b with gcd(a_i) not
// dividing b has no integer solution at all.
bool GcdRefutes(const LinearConstraint& constraint) {
  if (constraint.relation != Relation::kEq) return false;
  if (constraint.lhs.terms().empty()) {
    return !constraint.rhs.is_zero();
  }
  BigInt gcd(0);
  for (const auto& [var, coeff] : constraint.lhs.terms()) {
    (void)var;
    gcd = BigInt::Gcd(gcd, coeff);
  }
  if (gcd.is_zero() || gcd == BigInt(1)) return false;
  return !(constraint.rhs % gcd).is_zero();
}

}  // namespace

SolveResult IlpSolver::Solve(const IntegerProgram& program) const {
  SolveResult result;

  // Honour exhausted budgets before doing any work (including
  // presolve): an expired deadline or a zero node budget must yield
  // the non-verdict outcome the caller asked for, not a refutation
  // computed on borrowed time.
  if (options_.deadline.Expired()) {
    trace::Count("solver/deadline_exceeded");
    result.outcome = SolveOutcome::kDeadlineExceeded;
    result.note = "deadline exceeded";
    return result;
  }
  if (options_.max_nodes <= 0) {
    result.outcome = SolveOutcome::kUnknown;
    result.note = "node limit reached";
    return result;
  }

  // Base constraint list shared by all nodes, either from the presolve
  // pass (reduced rows + tightened bound rows, possibly over a reduced
  // variable space) or assembled directly from the program (legacy
  // path). Cap rows are kept in a separate trailing block so
  // infeasibility can be attributed to them.
  std::optional<PresolveInfo> presolve;
  int search_vars = program.num_variables();
  std::vector<LinearConstraint> base;
  if (options_.use_presolve) {
    PresolveOptions presolve_options;
    // Conditionals and prequadratics reference variables by original
    // id outside the linear rows, so the space must stay intact.
    presolve_options.allow_variable_elimination =
        program.conditionals().empty() && program.prequadratics().empty();
    presolve = PresolveProgram(program, presolve_options);
    if (presolve->infeasible()) {
      result.outcome = SolveOutcome::kUnsat;
      result.note = presolve->infeasible_reason();
      return result;
    }
    base = presolve->rows();
    search_vars = presolve->reduced_num_vars();
  } else {
    base = program.linear();
    for (VarId var = 0; var < program.num_variables(); ++var) {
      const BigInt* bound = program.UpperBound(var);
      if (bound != nullptr) {
        base.push_back(VarBound(var, Relation::kLe, *bound, "ub"));
      }
    }
    // Per-row gcd test (the presolve pass subsumes this when enabled).
    for (const LinearConstraint& constraint : base) {
      if (GcdRefutes(constraint)) {
        trace::Count("solver/gcd_refutations");
        result.outcome = SolveOutcome::kUnsat;
        result.note = "gcd test refutes: " +
                      constraint.ToString(program.variable_names());
        return result;
      }
    }
  }
  const SimplexOptions simplex_options{options_.use_sparse_simplex};
  const size_t uncapped_size = base.size();
  bool cap_active = options_.variable_cap.has_value();
  bool cap_was_relevant = false;
  if (cap_active) {
    for (VarId var = 0; var < search_vars; ++var) {
      base.push_back(
          VarBound(var, Relation::kLe, *options_.variable_cap, "cap"));
    }
  }
  trace::Max("solver/max_branch_depth", 0);

  std::deque<SearchNode> stack;
  // Nodes are charged against the memory budget while resident on the
  // stack; whatever is still resident when we return (SAT found, any
  // limit) is released here so a budget shared with a fallback stage
  // is not permanently drained.
  int64_t stack_bytes = 0;
  struct StackRelease {
    const ResourceBudget& budget;
    int64_t& bytes;
    ~StackRelease() { budget.ReleaseMemory(bytes); }
  } stack_release{options_.budget, stack_bytes};
  Status push_status;
  auto push_node = [&](SearchNode&& node) {
    int64_t bytes = ApproxNodeBytes(node);
    push_status = options_.budget.ChargeMemory(bytes, "solver/node");
    if (!push_status.ok()) return false;
    stack_bytes += bytes;
    stack.push_back(std::move(node));
    return true;
  };
  auto exhausted = [&](SolveResult* out) {
    trace::Count("solver/resource_exhausted");
    out->outcome = SolveOutcome::kResourceExhausted;
    out->note = push_status.message();
  };
  SearchNode root;
  root.conditional_decided.assign(program.conditionals().size(), false);
  if (!push_node(std::move(root))) {
    exhausted(&result);
    return result;
  }

  while (!stack.empty()) {
    if (result.nodes_explored >= options_.max_nodes) {
      result.outcome = SolveOutcome::kUnknown;
      result.note = "node limit reached";
      return result;
    }
    // Each node does a full LP solve, so an unamortized clock read per
    // node is already cheap; SolveLp polls internally for long pivots.
    if (options_.deadline.Expired()) {
      trace::Count("solver/deadline_exceeded");
      result.outcome = SolveOutcome::kDeadlineExceeded;
      result.note = "deadline exceeded";
      return result;
    }
    SearchNode node = std::move(stack.back());
    stack.pop_back();
    {
      int64_t node_bytes = ApproxNodeBytes(node);
      options_.budget.ReleaseMemory(node_bytes);
      stack_bytes -= node_bytes;
    }
    ++result.nodes_explored;
    trace::Count("solver/nodes");
    trace::Max("solver/max_branch_depth",
               static_cast<int64_t>(node.extra.size()));

    std::vector<LinearConstraint> constraints = base;
    constraints.insert(constraints.end(), node.extra.begin(),
                       node.extra.end());
    SimplexResult lp = SolveLp(search_vars, constraints, options_.deadline,
                               &options_.budget, simplex_options);
    result.lp_pivots += lp.pivots;
    trace::Count("solver/lp_pivots", lp.pivots);
    // An aborted LP has no verdict: interpreting `feasible` here would
    // turn a timeout into a spurious prune (and so a false kUnsat).
    if (lp.deadline_exceeded) {
      trace::Count("solver/deadline_exceeded");
      result.outcome = SolveOutcome::kDeadlineExceeded;
      result.note = "deadline exceeded";
      return result;
    }
    if (lp.resource_exhausted) {
      trace::Count("solver/resource_exhausted");
      result.outcome = SolveOutcome::kResourceExhausted;
      result.note = lp.note;
      return result;
    }
    if (!lp.feasible) {
      // Attribute the prune: if dropping the cap rows restores
      // feasibility, the cap mattered and an exhausted search cannot
      // claim unsatisfiability.
      if (cap_active && !cap_was_relevant) {
        std::vector<LinearConstraint> uncapped(
            base.begin(), base.begin() + uncapped_size);
        uncapped.insert(uncapped.end(), node.extra.begin(), node.extra.end());
        SimplexResult relaxed =
            SolveLp(search_vars, uncapped, options_.deadline, &options_.budget,
                    simplex_options);
        result.lp_pivots += relaxed.pivots;
        trace::Count("solver/lp_pivots", relaxed.pivots);
        trace::Count("solver/cap_relevance_probes");
        if (relaxed.deadline_exceeded) {
          trace::Count("solver/deadline_exceeded");
          result.outcome = SolveOutcome::kDeadlineExceeded;
          result.note = "deadline exceeded";
          return result;
        }
        if (relaxed.resource_exhausted) {
          trace::Count("solver/resource_exhausted");
          result.outcome = SolveOutcome::kResourceExhausted;
          result.note = relaxed.note;
          return result;
        }
        if (relaxed.feasible) cap_was_relevant = true;
      }
      continue;
    }

    // Branch on the first fractional coordinate.
    int fractional = -1;
    for (int var = 0; var < search_vars; ++var) {
      if (!lp.solution[var].is_integer()) {
        fractional = var;
        break;
      }
    }
    if (fractional >= 0) {
      const Rational& value = lp.solution[fractional];
      SearchNode low = node;
      low.extra.push_back(
          VarBound(fractional, Relation::kLe, value.Floor(), "branch<="));
      SearchNode high = std::move(node);
      high.extra.push_back(
          VarBound(fractional, Relation::kGe, value.Ceil(), "branch>="));
      // Explore the >= child first: cardinality encodings usually need
      // populated extents, so rounding up tends to reach SAT sooner.
      if (!push_node(std::move(low)) || !push_node(std::move(high))) {
        exhausted(&result);
        return result;
      }
      continue;
    }

    // Integral candidate, mapped back onto the original variables when
    // presolve reduced the space (identity when conditionals or
    // prequadratics kept the space intact, so the id-based checks
    // below stay valid either way).
    std::vector<BigInt> candidate(search_vars);
    for (int var = 0; var < search_vars; ++var) {
      candidate[var] = lp.solution[var].numerator();
    }
    if (presolve.has_value()) candidate = presolve->MapSolution(candidate);

    // Violated conditional? Split: either the antecedent is zero, or
    // it is >= 1 and the consequent becomes a hard constraint.
    int violated_conditional = -1;
    for (size_t i = 0; i < program.conditionals().size(); ++i) {
      if (node.conditional_decided[i]) continue;
      const ConditionalConstraint& conditional = program.conditionals()[i];
      if (candidate[conditional.antecedent] >= BigInt(1) &&
          !conditional.consequent.IsSatisfied(candidate)) {
        violated_conditional = static_cast<int>(i);
        break;
      }
    }
    if (violated_conditional >= 0) {
      const ConditionalConstraint& conditional =
          program.conditionals()[violated_conditional];
      SearchNode zero = node;
      zero.conditional_decided[violated_conditional] = true;
      zero.extra.push_back(VarBound(conditional.antecedent, Relation::kLe,
                                    BigInt(0), "cond-zero"));
      SearchNode active = std::move(node);
      active.conditional_decided[violated_conditional] = true;
      active.extra.push_back(VarBound(conditional.antecedent, Relation::kGe,
                                      BigInt(1), "cond-active"));
      active.extra.push_back(conditional.consequent);
      if (!push_node(std::move(zero)) || !push_node(std::move(active))) {
        exhausted(&result);
        return result;
      }
      continue;
    }

    // Violated prequadratic x <= y*z? Spatial branch on y at its
    // current value v: in the y<=v child the product is linearized as
    // x <= v*z; the y>=v+1 child makes progress on the lower bound.
    const PrequadraticConstraint* violated_pq = nullptr;
    for (const PrequadraticConstraint& pq : program.prequadratics()) {
      if (candidate[pq.x] > candidate[pq.y] * candidate[pq.z]) {
        violated_pq = &pq;
        break;
      }
    }
    if (violated_pq != nullptr) {
      const BigInt v = candidate[violated_pq->y];
      SearchNode low = node;
      low.extra.push_back(
          VarBound(violated_pq->y, Relation::kLe, v, "pq-y<=v"));
      {
        // x - v*z <= 0.
        LinearConstraint linearized;
        linearized.lhs.Add(violated_pq->x, BigInt(1));
        linearized.lhs.Add(violated_pq->z, -v);
        linearized.relation = Relation::kLe;
        linearized.rhs = BigInt(0);
        linearized.label = "pq-linearized";
        low.extra.push_back(std::move(linearized));
      }
      SearchNode high = std::move(node);
      high.extra.push_back(
          VarBound(violated_pq->y, Relation::kGe, v + BigInt(1), "pq-y>v"));
      if (!push_node(std::move(high)) || !push_node(std::move(low))) {
        exhausted(&result);
        return result;
      }
      continue;
    }

    // All constraint classes satisfied by an integral point. When the
    // point went through the presolve back-map, re-check it against
    // the full original program: a mismatch would mean an unsound
    // reduction, and the legacy pipeline decides instead of us.
    if (presolve.has_value() && !program.IsSatisfied(candidate)) {
      trace::Count("solver/presolve_mapback_mismatch");
      SolverOptions legacy = options_;
      legacy.use_presolve = false;
      return IlpSolver(legacy).Solve(program);
    }
    result.outcome = SolveOutcome::kSat;
    result.assignment = std::move(candidate);
    return result;
  }

  if (cap_active && cap_was_relevant) {
    result.outcome = SolveOutcome::kUnknown;
    result.note = "search exhausted under variable cap " +
                  options_.variable_cap->ToString();
  } else {
    result.outcome = SolveOutcome::kUnsat;
  }
  return result;
}

SolveResult IlpSolver::SolveWithDeepening(const IntegerProgram& program,
                                          const BigInt& initial_cap,
                                          const BigInt& max_cap) const {
  BigInt cap = initial_cap;
  SolveResult last;
  while (true) {
    trace::Count("solver/deepening_rounds");
    SolverOptions options = options_;
    options.variable_cap = cap;
    IlpSolver capped(options);
    last = capped.Solve(program);
    if (last.outcome == SolveOutcome::kSat ||
        last.outcome == SolveOutcome::kUnsat ||
        last.outcome == SolveOutcome::kDeadlineExceeded ||
        last.outcome == SolveOutcome::kResourceExhausted) {
      return last;
    }
    if (cap >= max_cap) return last;
    cap = cap * cap;  // square the cap: doubly-exponential deepening
    if (cap > max_cap) cap = max_cap;
  }
}

}  // namespace xmlverify
