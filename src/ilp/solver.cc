#include "ilp/solver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "ilp/presolve.h"
#include "ilp/simplex.h"
#include "trace/trace.h"

namespace xmlverify {

namespace {

// A search node: the base program plus branching decisions, expressed
// as extra linear constraints.
struct SearchNode {
  std::vector<LinearConstraint> extra;
  // Conditionals whose antecedent has been branched to zero; the
  // remaining ones are re-checked against each integer candidate.
  std::vector<bool> conditional_decided;
  // Number of trailing `extra` rows added by this node's own branch —
  // the delta against the parent's tableau for dual-simplex warm
  // starts (0 at the root: no parent, cold solve).
  int delta = 0;
  // Canonical exploration-order key: the branch path from the root,
  // one entry per level (0 = the child the serial search explores
  // first, 1 = second). Lexicographic order on these keys is exactly
  // serial DFS preorder, which is the order the parallel search's
  // first-definitive-leaf rule is defined over.
  std::vector<uint32_t> order;
  // The parent's final LP tableau (sparse engine only), shared between
  // siblings — and across threads; SimplexWarmState is immutable.
  std::shared_ptr<const SimplexWarmState> warm;
};

LinearConstraint VarBound(VarId var, Relation relation, BigInt bound,
                          std::string label) {
  LinearConstraint constraint;
  constraint.lhs.Add(var, BigInt(1));
  constraint.relation = relation;
  constraint.rhs = std::move(bound);
  constraint.label = std::move(label);
  return constraint;
}

// Approximate resident footprint of one search node, charged against
// the memory budget while the node sits in the branch pool. Sized by
// the actual limb storage of each extra constraint (a branch bound
// carrying a huge BigInt costs what it holds); the shared parent
// tableau is charged transiently by the LP layer during each solve
// and its retention is bounded by branch depth, not pool size.
int64_t ApproxNodeBytes(const SearchNode& node) {
  int64_t bytes = 64 + static_cast<int64_t>(node.conditional_decided.size()) +
                  static_cast<int64_t>(node.order.size() * sizeof(uint32_t));
  for (const LinearConstraint& constraint : node.extra) {
    bytes += ApproxConstraintBytes(constraint);
  }
  return bytes;
}

// Per-row gcd test: an equality sum a_i x_i = b with gcd(a_i) not
// dividing b has no integer solution at all.
bool GcdRefutes(const LinearConstraint& constraint) {
  if (constraint.relation != Relation::kEq) return false;
  if (constraint.lhs.terms().empty()) {
    return !constraint.rhs.is_zero();
  }
  BigInt gcd(0);
  for (const auto& [var, coeff] : constraint.lhs.terms()) {
    (void)var;
    gcd = BigInt::Gcd(gcd, coeff);
  }
  if (gcd.is_zero() || gcd == BigInt(1)) return false;
  return !(constraint.rhs % gcd).is_zero();
}

// A definitive leaf outcome: an integral SAT candidate, or a presolve
// mapback mismatch deferring the decision to the legacy pipeline.
// Tagged with the leaf's canonical order key; only the canonically
// first event survives, which is exactly the leaf serial DFS would
// have returned first.
struct LeafEvent {
  std::vector<uint32_t> order;
  bool legacy_rerun = false;
  std::vector<BigInt> assignment;  // SAT only
};

// A non-verdict stop: deadline, node limit, memory, injected fault.
struct AbortState {
  SolveOutcome outcome;
  std::string note;
};

// State shared by every worker of one Solve call. Counters are
// atomics; the result slots are guarded by result_mu.
struct SearchContext {
  SearchContext(const IntegerProgram& program_in,
                const SolverOptions& options_in,
                const std::vector<LinearConstraint>& base_in,
                size_t uncapped_size_in, int search_vars_in,
                const std::optional<PresolveInfo>& presolve_in,
                const SimplexOptions& simplex_options_in, bool cap_active_in,
                bool warm_enabled_in)
      : program(program_in),
        options(options_in),
        base(base_in),
        uncapped_size(uncapped_size_in),
        search_vars(search_vars_in),
        presolve(presolve_in),
        simplex_options(simplex_options_in),
        cap_active(cap_active_in),
        warm_enabled(warm_enabled_in) {}

  const IntegerProgram& program;
  const SolverOptions& options;
  const std::vector<LinearConstraint>& base;
  size_t uncapped_size;
  int search_vars;
  const std::optional<PresolveInfo>& presolve;
  SimplexOptions simplex_options;
  bool cap_active;
  bool warm_enabled;

  std::atomic<int64_t> nodes_explored{0};
  std::atomic<int64_t> lp_pivots{0};
  std::atomic<bool> cap_was_relevant{false};
  // Node bytes currently charged to the budget; whatever is still
  // resident when Solve returns (SAT found, any limit) is released in
  // one step so a budget shared with a fallback stage is not drained.
  std::atomic<int64_t> stack_bytes{0};
  // Raised only on abort: workers stop claiming nodes. A recorded
  // leaf event does NOT stop the search — canonically earlier nodes
  // must still be explored; the discard rule drains the rest.
  std::atomic<bool> stop{false};
  std::atomic<bool> has_event{false};

  std::mutex result_mu;
  std::optional<LeafEvent> event;
  std::optional<AbortState> abort;
};

// Keeps the canonically-first event (smallest order key).
void RecordEvent(SearchContext& ctx, LeafEvent&& event) {
  std::lock_guard<std::mutex> lock(ctx.result_mu);
  if (!ctx.event.has_value() || event.order < ctx.event->order) {
    ctx.event = std::move(event);
  }
  ctx.has_event.store(true, std::memory_order_release);
}

// Records the first abort and raises the stop flag. Returns false so
// callers can `return RecordAbort(...)` from bool-returning paths.
bool RecordAbort(SearchContext& ctx, SolveOutcome outcome, std::string note) {
  {
    std::lock_guard<std::mutex> lock(ctx.result_mu);
    if (!ctx.abort.has_value()) {
      ctx.abort = AbortState{outcome, std::move(note)};
    }
  }
  ctx.stop.store(true, std::memory_order_release);
  return false;
}

// A node canonically after the recorded event cannot improve on it:
// its whole subtree would come later in serial DFS preorder too.
bool ShouldDiscard(SearchContext& ctx, const SearchNode& node) {
  if (!ctx.has_event.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(ctx.result_mu);
  return ctx.event.has_value() && node.order > ctx.event->order;
}

// Expands one claimed node: LP relaxation, then prune / branch /
// leaf. Children are appended in push order — under LIFO popping the
// last-pushed child is explored first. Returns false when the search
// must stop (an abort was recorded).
bool ProcessNode(SearchContext& ctx, SearchNode&& node,
                 std::vector<SearchNode>* children) {
  // Each node does a full LP solve, so an unamortized clock read per
  // node is already cheap; the LP layer polls internally for long
  // pivot chains.
  if (ctx.options.deadline.Expired()) {
    trace::Count("solver/deadline_exceeded");
    return RecordAbort(ctx, SolveOutcome::kDeadlineExceeded,
                       "deadline exceeded");
  }
  int64_t prior = ctx.nodes_explored.fetch_add(1, std::memory_order_relaxed);
  if (prior >= ctx.options.max_nodes) {
    // Un-count the node we did not actually process.
    ctx.nodes_explored.fetch_sub(1, std::memory_order_relaxed);
    return RecordAbort(ctx, SolveOutcome::kUnknown, "node limit reached");
  }
  trace::Count("solver/nodes");
  trace::Max("solver/max_branch_depth",
             static_cast<int64_t>(node.extra.size()));

  std::vector<LinearConstraint> constraints = ctx.base;
  constraints.insert(constraints.end(), node.extra.begin(), node.extra.end());
  SimplexResult lp;
  if (ctx.warm_enabled && node.warm != nullptr && node.delta > 0) {
    lp = ResolveLp(node.warm, constraints, node.delta, ctx.search_vars,
                   ctx.options.deadline, &ctx.options.budget,
                   ctx.simplex_options);
    if (lp.warm_used) trace::Count("solver/warm_starts");
    if (lp.warm_fallback) trace::Count("solver/warm_start_fallbacks");
  } else {
    lp = SolveLp(ctx.search_vars, constraints, ctx.options.deadline,
                 &ctx.options.budget, ctx.simplex_options);
  }
  ctx.lp_pivots.fetch_add(lp.pivots, std::memory_order_relaxed);
  trace::Count("solver/lp_pivots", lp.pivots);
  // An aborted LP has no verdict: interpreting `feasible` here would
  // turn a timeout into a spurious prune (and so a false kUnsat).
  if (lp.deadline_exceeded) {
    trace::Count("solver/deadline_exceeded");
    return RecordAbort(ctx, SolveOutcome::kDeadlineExceeded,
                       "deadline exceeded");
  }
  if (lp.resource_exhausted) {
    trace::Count("solver/resource_exhausted");
    return RecordAbort(ctx, SolveOutcome::kResourceExhausted, lp.note);
  }
  if (!lp.feasible) {
    // Attribute the prune: if dropping the cap rows restores
    // feasibility, the cap mattered and an exhausted search cannot
    // claim unsatisfiability. The flag only ever goes false -> true,
    // and kUnsat requires a full drain, so every schedule converges
    // to the same final value.
    if (ctx.cap_active && !ctx.cap_was_relevant.load(std::memory_order_relaxed)) {
      std::vector<LinearConstraint> uncapped(
          ctx.base.begin(), ctx.base.begin() + ctx.uncapped_size);
      uncapped.insert(uncapped.end(), node.extra.begin(), node.extra.end());
      SimplexOptions probe_options = ctx.simplex_options;
      probe_options.export_warm_state = false;
      SimplexResult relaxed_lp =
          SolveLp(ctx.search_vars, uncapped, ctx.options.deadline,
                  &ctx.options.budget, probe_options);
      ctx.lp_pivots.fetch_add(relaxed_lp.pivots, std::memory_order_relaxed);
      trace::Count("solver/lp_pivots", relaxed_lp.pivots);
      trace::Count("solver/cap_relevance_probes");
      if (relaxed_lp.deadline_exceeded) {
        trace::Count("solver/deadline_exceeded");
        return RecordAbort(ctx, SolveOutcome::kDeadlineExceeded,
                           "deadline exceeded");
      }
      if (relaxed_lp.resource_exhausted) {
        trace::Count("solver/resource_exhausted");
        return RecordAbort(ctx, SolveOutcome::kResourceExhausted,
                           relaxed_lp.note);
      }
      if (relaxed_lp.feasible) {
        ctx.cap_was_relevant.store(true, std::memory_order_relaxed);
      }
    }
    return true;
  }

  // Branch on the first fractional coordinate.
  int fractional = -1;
  for (int var = 0; var < ctx.search_vars; ++var) {
    if (!lp.solution[var].is_integer()) {
      fractional = var;
      break;
    }
  }
  if (fractional >= 0) {
    const Rational& value = lp.solution[fractional];
    // Child exploration-order convention (uniform across all three
    // branch kinds, locked by SolverParallelTest.NodeOrderConvention):
    // the >= / growth child is explored first — order bit 0 —
    // because cardinality encodings usually need populated extents,
    // so rounding up tends to reach SAT sooner. Under LIFO popping,
    // first-explored means pushed last.
    SearchNode low = node;
    low.extra.push_back(
        VarBound(fractional, Relation::kLe, value.Floor(), "branch<="));
    low.delta = 1;
    low.order.push_back(1);
    low.warm = lp.warm_state;
    SearchNode high = std::move(node);
    high.extra.push_back(
        VarBound(fractional, Relation::kGe, value.Ceil(), "branch>="));
    high.delta = 1;
    high.order.push_back(0);
    high.warm = lp.warm_state;
    children->push_back(std::move(low));
    children->push_back(std::move(high));
    return true;
  }

  // Integral candidate, mapped back onto the original variables when
  // presolve reduced the space (identity when conditionals or
  // prequadratics kept the space intact, so the id-based checks
  // below stay valid either way).
  std::vector<BigInt> candidate(ctx.search_vars);
  for (int var = 0; var < ctx.search_vars; ++var) {
    candidate[var] = lp.solution[var].numerator();
  }
  if (ctx.presolve.has_value()) {
    candidate = ctx.presolve->MapSolution(candidate);
  }

  // Violated conditional? Split: either the antecedent is zero, or
  // it is >= 1 and the consequent becomes a hard constraint. The
  // active child is the growth child and is explored first.
  int violated_conditional = -1;
  for (size_t i = 0; i < ctx.program.conditionals().size(); ++i) {
    if (node.conditional_decided[i]) continue;
    const ConditionalConstraint& conditional = ctx.program.conditionals()[i];
    if (candidate[conditional.antecedent] >= BigInt(1) &&
        !conditional.consequent.IsSatisfied(candidate)) {
      violated_conditional = static_cast<int>(i);
      break;
    }
  }
  if (violated_conditional >= 0) {
    const ConditionalConstraint& conditional =
        ctx.program.conditionals()[violated_conditional];
    SearchNode zero = node;
    zero.conditional_decided[violated_conditional] = true;
    zero.extra.push_back(VarBound(conditional.antecedent, Relation::kLe,
                                  BigInt(0), "cond-zero"));
    zero.delta = 1;
    zero.order.push_back(1);
    zero.warm = lp.warm_state;
    SearchNode active = std::move(node);
    active.conditional_decided[violated_conditional] = true;
    active.extra.push_back(VarBound(conditional.antecedent, Relation::kGe,
                                    BigInt(1), "cond-active"));
    active.extra.push_back(conditional.consequent);
    active.delta = 2;
    active.order.push_back(0);
    active.warm = lp.warm_state;
    children->push_back(std::move(zero));
    children->push_back(std::move(active));
    return true;
  }

  // Violated prequadratic x <= y*z? Spatial branch on y at its
  // current value v: in the y<=v child the product is linearized as
  // x <= v*z; the y>=v+1 child makes progress on the lower bound and
  // — per the uniform convention above — is explored first. (The
  // prequadratic branch historically explored the <= child first,
  // the opposite of the fractional branch.)
  const PrequadraticConstraint* violated_pq = nullptr;
  for (const PrequadraticConstraint& pq : ctx.program.prequadratics()) {
    if (candidate[pq.x] > candidate[pq.y] * candidate[pq.z]) {
      violated_pq = &pq;
      break;
    }
  }
  if (violated_pq != nullptr) {
    const BigInt v = candidate[violated_pq->y];
    SearchNode low = node;
    low.extra.push_back(VarBound(violated_pq->y, Relation::kLe, v, "pq-y<=v"));
    {
      // x - v*z <= 0.
      LinearConstraint linearized;
      linearized.lhs.Add(violated_pq->x, BigInt(1));
      linearized.lhs.Add(violated_pq->z, -v);
      linearized.relation = Relation::kLe;
      linearized.rhs = BigInt(0);
      linearized.label = "pq-linearized";
      low.extra.push_back(std::move(linearized));
    }
    low.delta = 2;
    low.order.push_back(1);
    low.warm = lp.warm_state;
    SearchNode high = std::move(node);
    high.extra.push_back(
        VarBound(violated_pq->y, Relation::kGe, v + BigInt(1), "pq-y>v"));
    high.delta = 1;
    high.order.push_back(0);
    high.warm = lp.warm_state;
    children->push_back(std::move(low));
    children->push_back(std::move(high));
    return true;
  }

  // All constraint classes satisfied by an integral point. When the
  // point went through the presolve back-map, re-check it against
  // the full original program: a mismatch would mean an unsound
  // reduction, and the legacy pipeline decides instead of us.
  if (ctx.presolve.has_value() && !ctx.program.IsSatisfied(candidate)) {
    trace::Count("solver/presolve_mapback_mismatch");
    RecordEvent(ctx, LeafEvent{std::move(node.order), true, {}});
    return true;
  }
  RecordEvent(ctx, LeafEvent{std::move(node.order), false, std::move(candidate)});
  return true;
}

// Charges a node to the budget; on failure records the abort.
bool ChargeNode(SearchContext& ctx, const SearchNode& node) {
  int64_t bytes = ApproxNodeBytes(node);
  Status status = ctx.options.budget.ChargeMemory(bytes, "solver/node");
  if (!status.ok()) {
    trace::Count("solver/resource_exhausted");
    RecordAbort(ctx, SolveOutcome::kResourceExhausted,
                std::string(status.message()));
    return false;
  }
  ctx.stack_bytes.fetch_add(bytes, std::memory_order_relaxed);
  return true;
}

void ReleaseNode(SearchContext& ctx, const SearchNode& node) {
  int64_t bytes = ApproxNodeBytes(node);
  ctx.options.budget.ReleaseMemory(bytes);
  ctx.stack_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Serial driver: jobs == 1. One LIFO stack, identical exploration
// order to the historical loop. The discard rule doubles as the
// early-return on SAT: in DFS preorder every pending node is
// canonically after a recorded leaf, so the stack drains without
// further LP work.
void RunSerial(SearchContext& ctx, SearchNode&& root) {
  std::vector<SearchNode> stack;
  if (!ChargeNode(ctx, root)) return;
  stack.push_back(std::move(root));
  std::vector<SearchNode> children;
  while (!stack.empty()) {
    SearchNode node = std::move(stack.back());
    stack.pop_back();
    ReleaseNode(ctx, node);
    if (ShouldDiscard(ctx, node)) {
      trace::Count("solver/nodes_discarded");
      continue;
    }
    children.clear();
    if (!ProcessNode(ctx, std::move(node), &children)) return;
    for (SearchNode& child : children) {
      if (!ChargeNode(ctx, child)) return;
      stack.push_back(std::move(child));
    }
  }
}

// ---------------------------------------------------------------------
// Parallel driver: a work-stealing node pool. Each worker owns a
// deque (own end popped LIFO, so a worker alone explores in serial
// DFS order); idle workers steal from the front of a victim's deque,
// taking the shallowest — largest — pending subtree. `pending` counts
// nodes that are queued or being expanded; the search is drained when
// it reaches zero.

struct WorkerQueue {
  std::mutex mu;
  std::deque<SearchNode> nodes;
};

struct WorkPool {
  explicit WorkPool(int jobs) : queues(jobs) {}
  std::vector<WorkerQueue> queues;
  std::atomic<int64_t> pending{0};
  std::mutex wake_mu;
  std::condition_variable wake_cv;
};

bool PushNode(SearchContext& ctx, WorkPool& pool, int target,
              SearchNode&& node) {
  if (!ChargeNode(ctx, node)) return false;
  pool.pending.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(pool.queues[target].mu);
    pool.queues[target].nodes.push_back(std::move(node));
  }
  pool.wake_cv.notify_one();
  return true;
}

std::optional<SearchNode> ClaimNode(WorkPool& pool, int self,
                                    uint64_t* rotation) {
  {
    WorkerQueue& own = pool.queues[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.nodes.empty()) {
      SearchNode node = std::move(own.nodes.back());
      own.nodes.pop_back();
      return node;
    }
  }
  int n = static_cast<int>(pool.queues.size());
  if (n > 1) {
    // Seeded rotation spreads victim choice across workers; purely a
    // scheduling heuristic — results never depend on who steals what.
    *rotation = *rotation * 6364136223846793005ull + 1442695040888963407ull;
    int start = static_cast<int>(*rotation % static_cast<uint64_t>(n));
    for (int k = 0; k < n; ++k) {
      int victim = (start + k) % n;
      if (victim == self) continue;
      WorkerQueue& queue = pool.queues[victim];
      std::lock_guard<std::mutex> lock(queue.mu);
      if (!queue.nodes.empty()) {
        SearchNode node = std::move(queue.nodes.front());
        queue.nodes.pop_front();
        trace::Count("solver/steals");
        return node;
      }
    }
  }
  return std::nullopt;
}

void WorkerLoop(SearchContext& ctx, WorkPool& pool, int self,
                StatsRegistry* registry) {
  // Join the parent's stats registry (thread-safe); sinks stay with
  // the owning thread.
  std::optional<TraceSession> session;
  if (registry != nullptr) session.emplace(registry);
  uint64_t rotation = (ctx.options.seed ^ 0x9E3779B97F4A7C15ull) +
                      0x632BE59BD9B4E019ull * static_cast<uint64_t>(self + 1);
  std::vector<SearchNode> children;
  bool counted_idle = false;
  while (!ctx.stop.load(std::memory_order_acquire)) {
    std::optional<SearchNode> node = ClaimNode(pool, self, &rotation);
    if (!node.has_value()) {
      if (pool.pending.load(std::memory_order_acquire) == 0) break;
      if (!counted_idle) {
        trace::Count("solver/workers_idle");
        counted_idle = true;
      }
      // Timed wait instead of a strict notify protocol: spurious and
      // missed wakeups both resolve within the timeout, so drained /
      // stopped states are always observed.
      std::unique_lock<std::mutex> lock(pool.wake_mu);
      pool.wake_cv.wait_for(lock, std::chrono::microseconds(200));
      continue;
    }
    counted_idle = false;
    ReleaseNode(ctx, *node);
    bool ok = true;
    if (ShouldDiscard(ctx, *node)) {
      trace::Count("solver/nodes_discarded");
    } else {
      children.clear();
      ok = ProcessNode(ctx, std::move(*node), &children);
      if (ok) {
        for (SearchNode& child : children) {
          if (!PushNode(ctx, pool, self, std::move(child))) {
            ok = false;
            break;
          }
        }
      }
    }
    pool.pending.fetch_sub(1, std::memory_order_acq_rel);
    if (!ok) break;  // abort recorded; stop flag is up
    if (pool.pending.load(std::memory_order_acquire) == 0) break;
  }
  pool.wake_cv.notify_all();
}

void RunParallel(SearchContext& ctx, SearchNode&& root, int jobs) {
  WorkPool pool(jobs);
  if (!PushNode(ctx, pool, 0, std::move(root))) return;
  StatsRegistry* registry = trace::ActiveRegistry();
  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (int worker = 0; worker < jobs; ++worker) {
    workers.emplace_back([&ctx, &pool, worker, registry] {
      WorkerLoop(ctx, pool, worker, registry);
    });
  }
  for (std::thread& thread : workers) thread.join();
}

}  // namespace

SolveResult IlpSolver::Solve(const IntegerProgram& program) const {
  SolveResult result;

  // Honour exhausted budgets before doing any work (including
  // presolve): an expired deadline or a zero node budget must yield
  // the non-verdict outcome the caller asked for, not a refutation
  // computed on borrowed time.
  if (options_.deadline.Expired()) {
    trace::Count("solver/deadline_exceeded");
    result.outcome = SolveOutcome::kDeadlineExceeded;
    result.note = "deadline exceeded";
    return result;
  }
  if (options_.max_nodes <= 0) {
    result.outcome = SolveOutcome::kUnknown;
    result.note = "node limit reached";
    return result;
  }

  // Base constraint list shared by all nodes, either from the presolve
  // pass (reduced rows + tightened bound rows, possibly over a reduced
  // variable space) or assembled directly from the program (legacy
  // path). Cap rows are kept in a separate trailing block so
  // infeasibility can be attributed to them.
  std::optional<PresolveInfo> presolve;
  int search_vars = program.num_variables();
  std::vector<LinearConstraint> base;
  if (options_.use_presolve) {
    PresolveOptions presolve_options;
    // Conditionals and prequadratics reference variables by original
    // id outside the linear rows, so the space must stay intact.
    presolve_options.allow_variable_elimination =
        program.conditionals().empty() && program.prequadratics().empty();
    presolve = PresolveProgram(program, presolve_options);
    if (presolve->infeasible()) {
      result.outcome = SolveOutcome::kUnsat;
      result.note = presolve->infeasible_reason();
      return result;
    }
    base = presolve->rows();
    search_vars = presolve->reduced_num_vars();
  } else {
    base = program.linear();
    for (VarId var = 0; var < program.num_variables(); ++var) {
      const BigInt* bound = program.UpperBound(var);
      if (bound != nullptr) {
        base.push_back(VarBound(var, Relation::kLe, *bound, "ub"));
      }
    }
    // Per-row gcd test (the presolve pass subsumes this when enabled).
    for (const LinearConstraint& constraint : base) {
      if (GcdRefutes(constraint)) {
        trace::Count("solver/gcd_refutations");
        result.outcome = SolveOutcome::kUnsat;
        result.note = "gcd test refutes: " +
                      constraint.ToString(program.variable_names());
        return result;
      }
    }
  }
  SimplexOptions simplex_options;
  simplex_options.sparse = options_.use_sparse_simplex;
  const bool warm_enabled =
      options_.warm_start && options_.use_sparse_simplex;
  simplex_options.export_warm_state = warm_enabled;
  const size_t uncapped_size = base.size();
  bool cap_active = options_.variable_cap.has_value();
  if (cap_active) {
    for (VarId var = 0; var < search_vars; ++var) {
      base.push_back(
          VarBound(var, Relation::kLe, *options_.variable_cap, "cap"));
    }
  }
  trace::Max("solver/max_branch_depth", 0);

  SearchContext ctx{program,     options_,        base,
                    uncapped_size, search_vars,   presolve,
                    simplex_options, cap_active,  warm_enabled};
  // Whatever is still charged when we return (SAT found, any limit)
  // is released here so a budget shared with a fallback stage is not
  // permanently drained.
  struct StackRelease {
    SearchContext& ctx;
    ~StackRelease() {
      ctx.options.budget.ReleaseMemory(
          ctx.stack_bytes.load(std::memory_order_relaxed));
    }
  } stack_release{ctx};

  SearchNode root;
  root.conditional_decided.assign(program.conditionals().size(), false);
  const int jobs = std::clamp(options_.jobs, 1, 64);
  if (jobs <= 1) {
    RunSerial(ctx, std::move(root));
  } else {
    RunParallel(ctx, std::move(root), jobs);
  }

  result.nodes_explored = ctx.nodes_explored.load(std::memory_order_relaxed);
  result.lp_pivots = ctx.lp_pivots.load(std::memory_order_relaxed);
  // A SAT leaf outranks a concurrent abort: the witness is valid
  // regardless of which limit fired on another subtree. (With one
  // worker the two are mutually exclusive, as before.)
  if (ctx.event.has_value() && !ctx.event->legacy_rerun) {
    result.outcome = SolveOutcome::kSat;
    result.assignment = std::move(ctx.event->assignment);
    return result;
  }
  if (ctx.abort.has_value()) {
    result.outcome = ctx.abort->outcome;
    result.note = std::move(ctx.abort->note);
    return result;
  }
  if (ctx.event.has_value()) {
    // Presolve mapback mismatch on the canonical leaf: the reduction
    // is suspect, and the legacy pipeline decides instead of us.
    SolverOptions legacy = options_;
    legacy.use_presolve = false;
    return IlpSolver(legacy).Solve(program);
  }
  if (cap_active && ctx.cap_was_relevant.load(std::memory_order_relaxed)) {
    result.outcome = SolveOutcome::kUnknown;
    result.note = "search exhausted under variable cap " +
                  options_.variable_cap->ToString();
  } else {
    result.outcome = SolveOutcome::kUnsat;
  }
  return result;
}

SolveResult IlpSolver::SolveWithDeepening(const IntegerProgram& program,
                                          const BigInt& initial_cap,
                                          const BigInt& max_cap) const {
  BigInt cap = initial_cap;
  SolveResult last;
  while (true) {
    trace::Count("solver/deepening_rounds");
    SolverOptions options = options_;
    options.variable_cap = cap;
    IlpSolver capped(options);
    last = capped.Solve(program);
    if (last.outcome == SolveOutcome::kSat ||
        last.outcome == SolveOutcome::kUnsat ||
        last.outcome == SolveOutcome::kDeadlineExceeded ||
        last.outcome == SolveOutcome::kResourceExhausted) {
      return last;
    }
    if (cap >= max_cap) return last;
    // Square the cap (doubly-exponential deepening) — but force
    // progress: 0 and 1 are fixed points of squaring, so a caller
    // starting at cap <= 1 would otherwise never reach max_cap.
    // Growth is clamped to at least double, and at minimum +1.
    BigInt next = cap * cap;
    BigInt doubled = cap + cap;
    if (next < doubled) next = doubled;
    if (next <= cap) next = cap + BigInt(1);
    cap = std::move(next);
    if (cap > max_cap) cap = max_cap;
  }
}

}  // namespace xmlverify
