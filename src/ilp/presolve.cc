#include "ilp/presolve.h"

#include <map>
#include <optional>
#include <string>
#include <utility>

#include "trace/trace.h"

namespace xmlverify {

namespace {

// Mutable working copy of one constraint row, kept in the ORIGINAL
// variable id space until emission.
struct WorkRow {
  std::map<VarId, BigInt> terms;
  Relation relation = Relation::kLe;
  BigInt rhs;
  std::string label;
  bool alive = true;
};

// Shared mutable state of one presolve run.
struct Work {
  std::vector<WorkRow> rows;
  std::vector<BigInt> lb;                  // >= 0 always
  std::vector<std::optional<BigInt>> ub;   // nullopt: unbounded
  std::vector<std::optional<BigInt>> fixed;
  const std::vector<std::string>* names = nullptr;
  PresolveStats stats;
  bool infeasible = false;
  std::string reason;
  bool changed = false;

  void Refute(const WorkRow& row, const std::string& why) {
    if (infeasible) return;
    infeasible = true;
    LinearConstraint rendered;
    for (const auto& [var, coeff] : row.terms) rendered.lhs.Add(var, coeff);
    rendered.relation = row.relation;
    rendered.rhs = row.rhs;
    rendered.label = row.label;
    reason = "presolve refutes (" + why + "): " + rendered.ToString(*names);
  }

  void RefuteBounds(VarId var) {
    if (infeasible) return;
    infeasible = true;
    reason = "presolve refutes (empty domain): " + (*names)[var] + " in [" +
             lb[var].ToString() + ", " + (*ub[var]).ToString() + "]";
  }

  // Bound tighteners; both flag `changed` only on actual progress and
  // refute when a domain empties.
  void TightenUb(VarId var, const BigInt& bound) {
    if (bound.is_negative()) {
      infeasible = true;
      reason = "presolve refutes (negative upper bound): " + (*names)[var] +
               " <= " + bound.ToString();
      return;
    }
    if (!ub[var].has_value() || bound < *ub[var]) {
      ub[var] = bound;
      changed = true;
    }
    if (ub[var].has_value() && lb[var] > *ub[var]) RefuteBounds(var);
  }
  void TightenLb(VarId var, const BigInt& bound) {
    if (bound > lb[var]) {
      lb[var] = bound;
      changed = true;
    }
    if (ub[var].has_value() && lb[var] > *ub[var]) RefuteBounds(var);
  }
};

// Substitutes every fixed variable out of `row`, folding coeff*value
// into the right-hand side.
void SubstituteFixed(Work* work, WorkRow* row) {
  for (auto it = row->terms.begin(); it != row->terms.end();) {
    const std::optional<BigInt>& value = work->fixed[it->first];
    if (value.has_value()) {
      row->rhs -= it->second * *value;
      it = row->terms.erase(it);
      work->changed = true;
    } else {
      ++it;
    }
  }
}

// One normalization+reduction visit of a single row. May drop the
// row, tighten bounds, or refute.
void ReduceRow(Work* work, WorkRow* row) {
  SubstituteFixed(work, row);

  // Empty rows resolve immediately: 0 rel rhs.
  if (row->terms.empty()) {
    bool holds = false;
    switch (row->relation) {
      case Relation::kLe: holds = !row->rhs.is_negative(); break;
      case Relation::kGe: holds = row->rhs.sign() <= 0; break;
      case Relation::kEq: holds = row->rhs.is_zero(); break;
    }
    if (!holds) {
      work->Refute(*row, "empty row");
      return;
    }
    row->alive = false;
    ++work->stats.rows_dropped;
    work->changed = true;
    return;
  }

  // Sign canonicalization: an all-negative row negates to an
  // all-positive one (flipping <= / >=), so the positivity reductions
  // below and the duplicate detection see one canonical form.
  bool all_negative = true;
  bool all_positive = true;
  for (const auto& [var, coeff] : row->terms) {
    (void)var;
    if (coeff.is_negative()) {
      all_positive = false;
    } else {
      all_negative = false;
    }
  }
  if (all_negative) {
    for (auto& [var, coeff] : row->terms) {
      (void)var;
      coeff = -coeff;
    }
    row->rhs = -row->rhs;
    if (row->relation == Relation::kLe) {
      row->relation = Relation::kGe;
    } else if (row->relation == Relation::kGe) {
      row->relation = Relation::kLe;
    }
    all_positive = true;
  }

  // Row gcd normalization with integer rounding. Any integer point
  // makes the left side a multiple of g, so equalities demand
  // divisibility and inequalities round toward the feasible side.
  BigInt gcd(0);
  for (const auto& [var, coeff] : row->terms) {
    (void)var;
    gcd = BigInt::Gcd(gcd, coeff);
  }
  if (gcd > BigInt(1)) {
    if (row->relation == Relation::kEq && !(row->rhs % gcd).is_zero()) {
      work->Refute(*row, "gcd divisibility");
      return;
    }
    for (auto& [var, coeff] : row->terms) {
      (void)var;
      coeff = coeff / gcd;
    }
    switch (row->relation) {
      case Relation::kEq: row->rhs = row->rhs / gcd; break;
      case Relation::kLe: row->rhs = row->rhs.FloorDiv(gcd); break;
      case Relation::kGe: row->rhs = row->rhs.CeilDiv(gcd); break;
    }
    ++work->stats.gcd_tightened;
    work->changed = true;
  }

  // All-positive rows resolve against the implicit x >= 0 domain.
  if (all_positive) {
    if (row->rhs.is_negative()) {
      if (row->relation != Relation::kGe) {
        work->Refute(*row, "positive row, negative rhs");
        return;
      }
      // sum of nonnegatives >= negative: trivially true.
      row->alive = false;
      ++work->stats.rows_dropped;
      work->changed = true;
      return;
    }
    if (row->rhs.is_zero()) {
      if (row->relation == Relation::kGe) {
        row->alive = false;  // lhs >= 0 always holds
        ++work->stats.rows_dropped;
        work->changed = true;
        return;
      }
      // <= 0 or == 0 with positive coefficients forces every variable
      // in the row to zero.
      for (const auto& [var, coeff] : row->terms) {
        (void)coeff;
        work->TightenUb(var, BigInt(0));
        if (work->infeasible) return;
      }
      row->alive = false;
      ++work->stats.rows_dropped;
      work->changed = true;
      return;
    }
  }

  // Singleton row -> variable bound. The coefficient is positive here:
  // a lone negative coefficient was sign-canonicalized above.
  if (row->terms.size() == 1) {
    const auto& [var, coeff] = *row->terms.begin();
    switch (row->relation) {
      case Relation::kEq: {
        if (!(row->rhs % coeff).is_zero()) {
          work->Refute(*row, "singleton divisibility");
          return;
        }
        BigInt value = row->rhs / coeff;
        if (value.is_negative()) {
          work->Refute(*row, "singleton below zero");
          return;
        }
        work->TightenLb(var, value);
        if (!work->infeasible) work->TightenUb(var, value);
        break;
      }
      case Relation::kLe:
        work->TightenUb(var, row->rhs.FloorDiv(coeff));
        break;
      case Relation::kGe:
        work->TightenLb(var, row->rhs.CeilDiv(coeff));
        break;
    }
    if (work->infeasible) return;
    row->alive = false;
    ++work->stats.singleton_bounds;
    work->changed = true;
    return;
  }
}

// Relation-independent canonical key of a row's left-hand side.
std::string LhsKey(const WorkRow& row) {
  std::string key;
  for (const auto& [var, coeff] : row.terms) {
    key += std::to_string(var);
    key += ':';
    key += coeff.ToString();
    key += ',';
  }
  return key;
}

// Collapses rows with identical left-hand sides to their tightest
// representatives; conflicting pairs refute.
void MergeDuplicates(Work* work) {
  struct Group {
    int eq = -1;
    int le = -1;
    int ge = -1;
  };
  std::map<std::string, Group> groups;
  for (size_t i = 0; i < work->rows.size(); ++i) {
    WorkRow& row = work->rows[i];
    if (!row.alive) continue;
    Group& group = groups[LhsKey(row)];
    auto merge = [&](int* slot, bool keep_smaller_rhs) {
      if (*slot < 0) {
        *slot = static_cast<int>(i);
        return;
      }
      WorkRow& kept = work->rows[*slot];
      bool replace = keep_smaller_rhs ? row.rhs < kept.rhs : row.rhs > kept.rhs;
      if (replace) {
        kept.alive = false;
        *slot = static_cast<int>(i);
      } else {
        row.alive = false;
      }
      ++work->stats.duplicates_merged;
      work->changed = true;
    };
    switch (row.relation) {
      case Relation::kEq:
        if (group.eq >= 0) {
          if (row.rhs != work->rows[group.eq].rhs) {
            work->Refute(row, "conflicting equalities");
            return;
          }
          row.alive = false;
          ++work->stats.duplicates_merged;
          work->changed = true;
        } else {
          group.eq = static_cast<int>(i);
        }
        break;
      case Relation::kLe:
        merge(&group.le, /*keep_smaller_rhs=*/true);
        break;
      case Relation::kGe:
        merge(&group.ge, /*keep_smaller_rhs=*/false);
        break;
    }
  }
  // Cross-relation resolution per group.
  for (auto& [key, group] : groups) {
    (void)key;
    auto drop = [&](int index) {
      if (index >= 0 && work->rows[index].alive) {
        work->rows[index].alive = false;
        ++work->stats.rows_dropped;
        work->changed = true;
      }
    };
    if (group.eq >= 0 && work->rows[group.eq].alive) {
      const BigInt& value = work->rows[group.eq].rhs;
      if (group.le >= 0 && work->rows[group.le].alive) {
        if (value > work->rows[group.le].rhs) {
          work->Refute(work->rows[group.eq], "equality above upper row");
          return;
        }
        drop(group.le);
      }
      if (group.ge >= 0 && work->rows[group.ge].alive) {
        if (value < work->rows[group.ge].rhs) {
          work->Refute(work->rows[group.eq], "equality below lower row");
          return;
        }
        drop(group.ge);
      }
      continue;
    }
    if (group.le >= 0 && group.ge >= 0 && work->rows[group.le].alive &&
        work->rows[group.ge].alive) {
      WorkRow& le = work->rows[group.le];
      WorkRow& ge = work->rows[group.ge];
      if (ge.rhs > le.rhs) {
        work->Refute(le, "crossed <= / >= pair");
        return;
      }
      if (ge.rhs == le.rhs) {
        le.relation = Relation::kEq;  // pinched to equality
        drop(group.ge);
      }
    }
  }
}

}  // namespace

std::vector<BigInt> PresolveInfo::MapSolution(
    const std::vector<BigInt>& reduced) const {
  std::vector<BigInt> original(vars_.size());
  for (size_t var = 0; var < vars_.size(); ++var) {
    const VarEntry& entry = vars_[var];
    original[var] = entry.eliminated ? entry.value : reduced[entry.reduced];
  }
  return original;
}

PresolveInfo PresolveProgram(const IntegerProgram& program,
                             const PresolveOptions& options) {
  const int n = program.num_variables();
  Work work;
  work.names = &program.variable_names();
  work.lb.assign(n, BigInt(0));
  work.ub.assign(n, std::nullopt);
  work.fixed.assign(n, std::nullopt);
  for (VarId var = 0; var < n; ++var) {
    const BigInt* bound = program.UpperBound(var);
    if (bound != nullptr) work.ub[var] = *bound;
  }
  work.rows.reserve(program.linear().size());
  for (const LinearConstraint& constraint : program.linear()) {
    WorkRow row;
    row.terms = constraint.lhs.terms();
    row.relation = constraint.relation;
    row.rhs = constraint.rhs;
    row.label = constraint.label;
    work.rows.push_back(std::move(row));
  }

  // Reduction fixpoint.
  for (int pass = 0; pass < options.max_passes; ++pass) {
    work.changed = false;
    for (WorkRow& row : work.rows) {
      if (!row.alive) continue;
      ReduceRow(&work, &row);
      if (work.infeasible) break;
    }
    if (!work.infeasible) MergeDuplicates(&work);
    if (work.infeasible) break;
    // Equal bounds pin the variable; substitution happens on the next
    // visit of each row (or the final sweep below).
    for (VarId var = 0; var < n; ++var) {
      if (work.fixed[var].has_value()) continue;
      if (work.ub[var].has_value() && work.lb[var] == *work.ub[var]) {
        work.fixed[var] = work.lb[var];
        ++work.stats.vars_fixed;
        work.changed = true;
      }
    }
    if (!work.changed) break;
  }
  // Final substitution sweep: the fixpoint loop may have exited (pass
  // budget) with fixes not yet folded into every row.
  if (!work.infeasible) {
    for (WorkRow& row : work.rows) {
      if (!row.alive) continue;
      SubstituteFixed(&work, &row);
      if (row.terms.empty()) {
        bool holds = false;
        switch (row.relation) {
          case Relation::kLe: holds = !row.rhs.is_negative(); break;
          case Relation::kGe: holds = row.rhs.sign() <= 0; break;
          case Relation::kEq: holds = row.rhs.is_zero(); break;
        }
        if (!holds) {
          work.Refute(row, "empty row");
          break;
        }
        row.alive = false;
        ++work.stats.rows_dropped;
      }
    }
  }

  PresolveInfo info;
  info.vars_.resize(n);
  info.stats_ = work.stats;
  trace::Count("solver/presolve_calls");
  if (work.infeasible) {
    info.infeasible_ = true;
    info.reason_ = work.reason;
    trace::Count("solver/presolve_refutations");
    return info;
  }

  // Variable mapping. With elimination allowed, fixed variables and
  // variables absent from every surviving row leave the space (pinned
  // to their value / lower bound); survivors renumber densely. With
  // elimination disallowed the mapping is the identity and pinned
  // variables keep their columns, held in place by bound rows.
  std::vector<bool> referenced(n, false);
  for (const WorkRow& row : work.rows) {
    if (!row.alive) continue;
    for (const auto& [var, coeff] : row.terms) {
      (void)coeff;
      referenced[var] = true;
    }
  }
  int next_id = 0;
  for (VarId var = 0; var < n; ++var) {
    PresolveInfo::VarEntry& entry = info.vars_[var];
    if (options.allow_variable_elimination) {
      if (work.fixed[var].has_value()) {
        entry.eliminated = true;
        entry.value = *work.fixed[var];
        continue;
      }
      if (!referenced[var]) {
        // Unconstrained beyond its (consistent) bounds: pin to lb.
        entry.eliminated = true;
        entry.value = work.lb[var];
        ++info.stats_.vars_fixed;
        continue;
      }
    }
    entry.eliminated = false;
    entry.reduced = next_id++;
  }
  info.reduced_num_vars_ = next_id;

  // Emit surviving rows in the reduced space...
  for (const WorkRow& row : work.rows) {
    if (!row.alive) continue;
    LinearConstraint out;
    for (const auto& [var, coeff] : row.terms) {
      out.lhs.Add(info.vars_[var].reduced, coeff);
    }
    out.relation = row.relation;
    out.rhs = row.rhs;
    out.label = row.label;
    info.rows_.push_back(std::move(out));
  }
  // ...followed by the tightened bounds of surviving variables.
  for (VarId var = 0; var < n; ++var) {
    const PresolveInfo::VarEntry& entry = info.vars_[var];
    if (entry.eliminated) continue;
    if (work.ub[var].has_value()) {
      LinearConstraint bound;
      bound.lhs.Add(entry.reduced, BigInt(1));
      bound.relation = Relation::kLe;
      bound.rhs = *work.ub[var];
      bound.label = "pre-ub";
      info.rows_.push_back(std::move(bound));
    }
    if (work.lb[var] > BigInt(0)) {
      LinearConstraint bound;
      bound.lhs.Add(entry.reduced, BigInt(1));
      bound.relation = Relation::kGe;
      bound.rhs = work.lb[var];
      bound.label = "pre-lb";
      info.rows_.push_back(std::move(bound));
    }
  }

  trace::Count("solver/presolve_rows_dropped", info.stats_.rows_dropped);
  trace::Count("solver/presolve_gcd_tightened", info.stats_.gcd_tightened);
  trace::Count("solver/presolve_singleton_bounds",
               info.stats_.singleton_bounds);
  trace::Count("solver/presolve_duplicates_merged",
               info.stats_.duplicates_merged);
  trace::Count("solver/presolve_vars_fixed", info.stats_.vars_fixed);
  return info;
}

}  // namespace xmlverify
