// Exact rational simplex (phase-1 feasibility).
//
// Decides feasibility of { A x rel b, x >= 0 } and produces a basic
// feasible point. Exactness matters: the consistency verdicts of the
// checkers reduce to feasibility questions, and floating-point LP
// could flip a verdict. Bland's rule guarantees termination.
//
// Two tableau engines share the pivot driver (see docs/performance.md):
//   * sparse (default): rows stored as sorted (column, value) pairs of
//     two-tier rationals (int64 fast tier, BigInt on overflow), pivots
//     walk nonzeros only;
//   * dense (legacy): the original dense BigInt-rational tableau, kept
//     as the differential-testing reference engine.
#ifndef XMLVERIFY_ILP_SIMPLEX_H_
#define XMLVERIFY_ILP_SIMPLEX_H_

#include <memory>
#include <string>
#include <vector>

#include "base/deadline.h"
#include "base/rational.h"
#include "base/resource_guard.h"
#include "ilp/linear.h"

namespace xmlverify {

/// Opaque snapshot of a feasible sparse solve's final tableau, used to
/// warm-start the re-solve of a nearby system (same rows plus a few
/// extra bounds) through a short dual-simplex run instead of a
/// from-scratch phase-1. Produced only by the sparse engine, on
/// request (SimplexOptions::export_warm_state); immutable once built,
/// so siblings in a branch-and-bound tree — including ones solved on
/// different threads — may share one snapshot.
struct SimplexWarmState;

/// Approximate resident footprint of a warm-state snapshot.
int64_t WarmStateBytes(const SimplexWarmState& state);

struct SimplexOptions {
  /// Use the sparse two-tier tableau. Off selects the legacy dense
  /// BigInt tableau (slower; used as the difftest reference).
  bool sparse = true;
  /// On a feasible sparse solve, move the final tableau into
  /// SimplexResult::warm_state so the caller can warm-start re-solves
  /// of child systems via ResolveLp. No effect on the dense engine.
  bool export_warm_state = false;
};

struct SimplexResult {
  bool feasible = false;
  // The deadline expired mid-optimization. When set, `feasible` is
  // meaningless (the tableau was abandoned, not proven infeasible) and
  // callers must not draw verdicts from it.
  bool deadline_exceeded = false;
  // The memory budget was exhausted (or a solver_pivot fault was
  // injected) mid-optimization. Same contract as deadline_exceeded:
  // `feasible` is meaningless and carries no verdict.
  bool resource_exhausted = false;
  // Values of the structural variables 0..num_vars-1 (only meaningful
  // when feasible).
  std::vector<Rational> solution;
  // Number of pivots performed (for diagnostics/benchmarks).
  int64_t pivots = 0;
  // Diagnostic detail for resource_exhausted.
  std::string note;
  // Final tableau of a feasible sparse solve, when
  // SimplexOptions::export_warm_state asked for it.
  std::shared_ptr<const SimplexWarmState> warm_state;
  // ResolveLp only: the verdict came from the warm dual re-solve.
  bool warm_used = false;
  // ResolveLp only: the warm path was unusable (equality delta row,
  // dense engine, degenerate dual chain) and the system was re-solved
  // cold from scratch.
  bool warm_fallback = false;
};

/// Finds a nonnegative rational point satisfying all `constraints`
/// over variables 0..num_vars-1, or reports infeasibility. The pivot
/// loop polls `deadline` cooperatively (amortized); on expiry the
/// result has deadline_exceeded set and no verdict. When `budget` is
/// given, the tableau's footprint is charged against its memory
/// ceiling before optimization, and the pivot loop consults the
/// `solver_pivot` fault-injection point; either exhaustion sets
/// resource_exhausted (again: no verdict).
SimplexResult SolveLp(int num_vars,
                      const std::vector<LinearConstraint>& constraints,
                      const Deadline& deadline = Deadline(),
                      const ResourceBudget* budget = nullptr,
                      const SimplexOptions& options = {});

/// Re-solves a system that extends `parent`'s by the trailing `delta`
/// rows of `constraints` (which must list the parent's rows followed
/// by exactly the delta rows). Each inequality delta row is appended
/// to a copy of the parent's final tableau with its slack basic — no
/// artificials, so the parent's phase-1 optimality is preserved as
/// dual feasibility — and a Bland-rule dual simplex restores primal
/// feasibility in typically a handful of pivots. Falls back to a cold
/// SolveLp over `constraints` (setting warm_fallback) when the warm
/// path does not apply: null/absent parent state, dense engine, an
/// equality delta row, or a degenerate dual chain exceeding the pivot
/// valve. Either way the result is exactly equivalent to a cold solve
/// in its feasibility verdict, and observes the same deadline, budget,
/// and fault-injection contracts as SolveLp.
SimplexResult ResolveLp(const std::shared_ptr<const SimplexWarmState>& parent,
                        const std::vector<LinearConstraint>& constraints,
                        int delta, int num_vars,
                        const Deadline& deadline = Deadline(),
                        const ResourceBudget* budget = nullptr,
                        const SimplexOptions& options = {});

}  // namespace xmlverify

#endif  // XMLVERIFY_ILP_SIMPLEX_H_
