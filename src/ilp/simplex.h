// Exact rational simplex (phase-1 feasibility).
//
// Decides feasibility of { A x rel b, x >= 0 } and produces a basic
// feasible point. Exactness matters: the consistency verdicts of the
// checkers reduce to feasibility questions, and floating-point LP
// could flip a verdict. Bland's rule guarantees termination.
//
// Two tableau engines share the pivot driver (see docs/performance.md):
//   * sparse (default): rows stored as sorted (column, value) pairs of
//     two-tier rationals (int64 fast tier, BigInt on overflow), pivots
//     walk nonzeros only;
//   * dense (legacy): the original dense BigInt-rational tableau, kept
//     as the differential-testing reference engine.
#ifndef XMLVERIFY_ILP_SIMPLEX_H_
#define XMLVERIFY_ILP_SIMPLEX_H_

#include <string>
#include <vector>

#include "base/deadline.h"
#include "base/rational.h"
#include "base/resource_guard.h"
#include "ilp/linear.h"

namespace xmlverify {

struct SimplexOptions {
  /// Use the sparse two-tier tableau. Off selects the legacy dense
  /// BigInt tableau (slower; used as the difftest reference).
  bool sparse = true;
};

struct SimplexResult {
  bool feasible = false;
  // The deadline expired mid-optimization. When set, `feasible` is
  // meaningless (the tableau was abandoned, not proven infeasible) and
  // callers must not draw verdicts from it.
  bool deadline_exceeded = false;
  // The memory budget was exhausted (or a solver_pivot fault was
  // injected) mid-optimization. Same contract as deadline_exceeded:
  // `feasible` is meaningless and carries no verdict.
  bool resource_exhausted = false;
  // Values of the structural variables 0..num_vars-1 (only meaningful
  // when feasible).
  std::vector<Rational> solution;
  // Number of pivots performed (for diagnostics/benchmarks).
  int64_t pivots = 0;
  // Diagnostic detail for resource_exhausted.
  std::string note;
};

/// Finds a nonnegative rational point satisfying all `constraints`
/// over variables 0..num_vars-1, or reports infeasibility. The pivot
/// loop polls `deadline` cooperatively (amortized); on expiry the
/// result has deadline_exceeded set and no verdict. When `budget` is
/// given, the tableau's footprint is charged against its memory
/// ceiling before optimization, and the pivot loop consults the
/// `solver_pivot` fault-injection point; either exhaustion sets
/// resource_exhausted (again: no verdict).
SimplexResult SolveLp(int num_vars,
                      const std::vector<LinearConstraint>& constraints,
                      const Deadline& deadline = Deadline(),
                      const ResourceBudget* budget = nullptr,
                      const SimplexOptions& options = {});

}  // namespace xmlverify

#endif  // XMLVERIFY_ILP_SIMPLEX_H_
