// Exact rational simplex (phase-1 feasibility) over BigInt rationals.
//
// Decides feasibility of { A x rel b, x >= 0 } and produces a basic
// feasible point. Exactness matters: the consistency verdicts of the
// checkers reduce to feasibility questions, and floating-point LP
// could flip a verdict. Bland's rule guarantees termination.
#ifndef XMLVERIFY_ILP_SIMPLEX_H_
#define XMLVERIFY_ILP_SIMPLEX_H_

#include <vector>

#include "base/deadline.h"
#include "base/rational.h"
#include "ilp/linear.h"

namespace xmlverify {

struct SimplexResult {
  bool feasible = false;
  // The deadline expired mid-optimization. When set, `feasible` is
  // meaningless (the tableau was abandoned, not proven infeasible) and
  // callers must not draw verdicts from it.
  bool deadline_exceeded = false;
  // Values of the structural variables 0..num_vars-1 (only meaningful
  // when feasible).
  std::vector<Rational> solution;
  // Number of pivots performed (for diagnostics/benchmarks).
  int64_t pivots = 0;
};

/// Finds a nonnegative rational point satisfying all `constraints`
/// over variables 0..num_vars-1, or reports infeasibility. The pivot
/// loop polls `deadline` cooperatively (amortized); on expiry the
/// result has deadline_exceeded set and no verdict.
SimplexResult SolveLp(int num_vars,
                      const std::vector<LinearConstraint>& constraints,
                      const Deadline& deadline = Deadline());

}  // namespace xmlverify

#endif  // XMLVERIFY_ILP_SIMPLEX_H_
