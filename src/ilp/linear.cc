#include "ilp/linear.h"

namespace xmlverify {

LinearExpr& LinearExpr::Add(VarId var, BigInt coeff) {
  if (coeff.is_zero()) return *this;
  auto [it, inserted] = terms_.emplace(var, coeff);
  if (!inserted) {
    it->second += coeff;
    if (it->second.is_zero()) terms_.erase(it);
  }
  return *this;
}

LinearExpr& LinearExpr::AddExpr(const LinearExpr& other) {
  for (const auto& [var, coeff] : other.terms_) Add(var, coeff);
  return *this;
}

BigInt LinearExpr::Evaluate(const std::vector<BigInt>& assignment) const {
  BigInt total(0);
  for (const auto& [var, coeff] : terms_) {
    total += coeff * assignment[var];
  }
  return total;
}

std::string LinearExpr::ToString(
    const std::vector<std::string>& variable_names) const {
  if (terms_.empty()) return "0";
  std::string out;
  for (const auto& [var, coeff] : terms_) {
    if (!out.empty()) out += " + ";
    if (coeff != BigInt(1)) out += coeff.ToString() + "*";
    out += variable_names[var];
  }
  return out;
}

std::string RelationToString(Relation relation) {
  switch (relation) {
    case Relation::kLe: return "<=";
    case Relation::kGe: return ">=";
    case Relation::kEq: return "=";
  }
  return "?";
}

bool LinearConstraint::IsSatisfied(
    const std::vector<BigInt>& assignment) const {
  BigInt value = lhs.Evaluate(assignment);
  switch (relation) {
    case Relation::kLe: return value <= rhs;
    case Relation::kGe: return value >= rhs;
    case Relation::kEq: return value == rhs;
  }
  return false;
}

std::string LinearConstraint::ToString(
    const std::vector<std::string>& variable_names) const {
  std::string out = lhs.ToString(variable_names) + " " +
                    RelationToString(relation) + " " + rhs.ToString();
  if (!label.empty()) out += "    [" + label + "]";
  return out;
}

VarId IntegerProgram::NewVariable(std::string name) {
  names_.push_back(std::move(name));
  return static_cast<VarId>(names_.size()) - 1;
}

void IntegerProgram::AddLinear(LinearExpr lhs, Relation relation, BigInt rhs,
                               std::string label) {
  linear_.push_back(
      {std::move(lhs), relation, std::move(rhs), std::move(label)});
}

void IntegerProgram::AddConditional(VarId antecedent, LinearExpr lhs,
                                    Relation relation, BigInt rhs,
                                    std::string label) {
  conditionals_.push_back(
      {antecedent,
       {std::move(lhs), relation, std::move(rhs), std::move(label)}});
}

void IntegerProgram::AddPrequadratic(VarId x, VarId y, VarId z) {
  prequadratics_.push_back({x, y, z});
}

void IntegerProgram::SetUpperBound(VarId var, BigInt bound) {
  auto [it, inserted] = upper_bounds_.emplace(var, bound);
  if (!inserted && bound < it->second) it->second = std::move(bound);
}

const BigInt* IntegerProgram::UpperBound(VarId var) const {
  auto it = upper_bounds_.find(var);
  return it == upper_bounds_.end() ? nullptr : &it->second;
}

bool IntegerProgram::IsSatisfied(const std::vector<BigInt>& assignment) const {
  for (const LinearConstraint& constraint : linear_) {
    if (!constraint.IsSatisfied(assignment)) return false;
  }
  for (const ConditionalConstraint& conditional : conditionals_) {
    if (assignment[conditional.antecedent] >= BigInt(1) &&
        !conditional.consequent.IsSatisfied(assignment)) {
      return false;
    }
  }
  for (const PrequadraticConstraint& pq : prequadratics_) {
    if (assignment[pq.x] > assignment[pq.y] * assignment[pq.z]) return false;
  }
  for (const auto& [var, bound] : upper_bounds_) {
    if (assignment[var] > bound) return false;
  }
  for (const BigInt& value : assignment) {
    if (value.is_negative()) return false;
  }
  return true;
}

namespace {

// Inline object header plus heap limb storage, rounded up to bytes.
int64_t ApproxBigIntBytes(const BigInt& value) {
  return 16 + static_cast<int64_t>((value.BitLength() + 7) / 8);
}

}  // namespace

int64_t ApproxConstraintBytes(const LinearConstraint& constraint) {
  // Struct body, label characters, and the bound's limbs...
  int64_t bytes = 64 + static_cast<int64_t>(constraint.label.size()) +
                  ApproxBigIntBytes(constraint.rhs);
  // ...plus one map node (pointers + key) per term and each
  // coefficient's limbs.
  for (const auto& [var, coeff] : constraint.lhs.terms()) {
    (void)var;
    bytes += 48 + ApproxBigIntBytes(coeff);
  }
  return bytes;
}

std::string IntegerProgram::ToString() const {
  std::string out;
  for (const LinearConstraint& constraint : linear_) {
    out += constraint.ToString(names_) + "\n";
  }
  for (const ConditionalConstraint& conditional : conditionals_) {
    out += "(" + names_[conditional.antecedent] + " >= 1) -> (" +
           conditional.consequent.ToString(names_) + ")\n";
  }
  for (const PrequadraticConstraint& pq : prequadratics_) {
    out += names_[pq.x] + " <= " + names_[pq.y] + " * " + names_[pq.z] + "\n";
  }
  for (const auto& [var, bound] : upper_bounds_) {
    out += names_[var] + " <= " + bound.ToString() + "\n";
  }
  return out;
}

}  // namespace xmlverify
