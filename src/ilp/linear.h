// Integer constraint systems over nonnegative integer variables.
//
// This is the target language of every encoding in the paper:
//   * linear (in)equalities — the cardinality constraints Psi_D, C_Sigma;
//   * conditional constraints  (x >= 1) -> (e >= c)  — the paper's
//     "(x > 0) -> (y > 0)" form (Lemma 8);
//   * prequadratic constraints  x <= y * z  — the PDE extension of
//     integer linear programming (McAllester et al. [22], Theorem 3.1).
#ifndef XMLVERIFY_ILP_LINEAR_H_
#define XMLVERIFY_ILP_LINEAR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/bigint.h"
#include "base/status.h"

namespace xmlverify {

using VarId = int;

/// A linear form sum_i coeff_i * x_i with BigInt coefficients.
class LinearExpr {
 public:
  LinearExpr() = default;

  /// Adds coeff * var to the form.
  LinearExpr& Add(VarId var, BigInt coeff);
  /// Adds every term of `other`.
  LinearExpr& AddExpr(const LinearExpr& other);

  const std::map<VarId, BigInt>& terms() const { return terms_; }
  bool empty() const { return terms_.empty(); }

  /// Evaluates the form under an assignment (missing vars are 0).
  BigInt Evaluate(const std::vector<BigInt>& assignment) const;

  std::string ToString(
      const std::vector<std::string>& variable_names) const;

 private:
  std::map<VarId, BigInt> terms_;  // zero coefficients are dropped
};

enum class Relation { kLe, kGe, kEq };

std::string RelationToString(Relation relation);

/// lhs <relation> rhs.
struct LinearConstraint {
  LinearExpr lhs;
  Relation relation;
  BigInt rhs;
  std::string label;  // provenance, for diagnostics

  bool IsSatisfied(const std::vector<BigInt>& assignment) const;
  std::string ToString(const std::vector<std::string>& variable_names) const;
};

/// Approximate resident footprint of one constraint in bytes, sized
/// by the actual limb storage of its BigInt coefficients and bound —
/// a branch bound carrying a 4096-bit value costs what it holds, not
/// a flat per-row estimate. Used by the solver's search-node memory
/// accounting (see SolverOptions::budget).
int64_t ApproxConstraintBytes(const LinearConstraint& constraint);

/// (antecedent >= 1) -> consequent. Encodes the paper's
/// "(|ext(tau)| > 0) -> (|ext(tau.l)| > 0)" constraints.
struct ConditionalConstraint {
  VarId antecedent;
  LinearConstraint consequent;
};

/// x <= y * z over nonnegative integers.
struct PrequadraticConstraint {
  VarId x;
  VarId y;
  VarId z;
};

/// A full system. All variables range over nonnegative integers; an
/// optional per-variable upper bound may be set.
class IntegerProgram {
 public:
  VarId NewVariable(std::string name);

  int num_variables() const { return static_cast<int>(names_.size()); }
  const std::string& VariableName(VarId var) const { return names_[var]; }
  const std::vector<std::string>& variable_names() const { return names_; }

  void AddLinear(LinearExpr lhs, Relation relation, BigInt rhs,
                 std::string label = "");
  /// (antecedent >= 1) -> (lhs relation rhs).
  void AddConditional(VarId antecedent, LinearExpr lhs, Relation relation,
                      BigInt rhs, std::string label = "");
  /// x <= y * z.
  void AddPrequadratic(VarId x, VarId y, VarId z);
  /// var <= bound (tightens; keeps the smaller of repeated bounds).
  void SetUpperBound(VarId var, BigInt bound);

  const std::vector<LinearConstraint>& linear() const { return linear_; }
  const std::vector<ConditionalConstraint>& conditionals() const {
    return conditionals_;
  }
  const std::vector<PrequadraticConstraint>& prequadratics() const {
    return prequadratics_;
  }
  /// Upper bound of `var`, or nullptr if unbounded.
  const BigInt* UpperBound(VarId var) const;

  /// Checks a full assignment against every constraint class.
  bool IsSatisfied(const std::vector<BigInt>& assignment) const;

  /// Multi-line rendering for debugging.
  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::vector<LinearConstraint> linear_;
  std::vector<ConditionalConstraint> conditionals_;
  std::vector<PrequadraticConstraint> prequadratics_;
  std::map<VarId, BigInt> upper_bounds_;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_ILP_LINEAR_H_
