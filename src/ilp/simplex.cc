#include "ilp/simplex.h"

#include <algorithm>
#include <optional>

#include "base/deadline.h"
#include "base/fault_injection.h"
#include "trace/trace.h"

namespace xmlverify {

namespace {

// Dense phase-1 tableau. Columns: structural vars, slack/surplus vars,
// artificial vars, then the right-hand side.
class Tableau {
 public:
  Tableau(int num_vars, const std::vector<LinearConstraint>& constraints)
      : num_vars_(num_vars), num_rows_(static_cast<int>(constraints.size())) {
    // One slack/surplus per inequality, one artificial per row.
    int num_slacks = 0;
    for (const LinearConstraint& constraint : constraints) {
      if (constraint.relation != Relation::kEq) ++num_slacks;
    }
    slack_base_ = num_vars_;
    artificial_base_ = slack_base_ + num_slacks;
    num_cols_ = artificial_base_ + num_rows_;

    rows_.assign(num_rows_, std::vector<Rational>(num_cols_, Rational(0)));
    rhs_.assign(num_rows_, Rational(0));
    basis_.assign(num_rows_, -1);

    int next_slack = slack_base_;
    for (int i = 0; i < num_rows_; ++i) {
      const LinearConstraint& constraint = constraints[i];
      // Row: lhs (rel) rhs. Bring to equality form with a slack.
      for (const auto& [var, coeff] : constraint.lhs.terms()) {
        rows_[i][var] = Rational(coeff);
      }
      rhs_[i] = Rational(constraint.rhs);
      if (constraint.relation == Relation::kLe) {
        rows_[i][next_slack++] = Rational(1);
      } else if (constraint.relation == Relation::kGe) {
        rows_[i][next_slack++] = Rational(-1);
      }
      // Normalize to a nonnegative right-hand side.
      if (rhs_[i].is_negative()) {
        for (Rational& cell : rows_[i]) cell = -cell;
        rhs_[i] = -rhs_[i];
      }
      // Artificial variable provides the initial basis.
      int artificial = artificial_base_ + i;
      rows_[i][artificial] = Rational(1);
      basis_[i] = artificial;
    }

    // Phase-1 reduced costs: minimize the sum of artificials. With the
    // artificials basic, r_j = -sum_i rows[i][j] for non-artificial j.
    reduced_.assign(num_cols_, Rational(0));
    objective_ = Rational(0);
    for (int i = 0; i < num_rows_; ++i) {
      for (int j = 0; j < artificial_base_; ++j) {
        reduced_[j] -= rows_[i][j];
      }
      objective_ += rhs_[i];
    }
  }

  // Footprint of the dense tableau, for the memory budget: every cell
  // is a Rational (two BigInts with inline limb storage).
  int64_t ApproxBytes() const {
    return static_cast<int64_t>(num_rows_ + 1) *
           static_cast<int64_t>(num_cols_ + 1) * 64;
  }

  // Runs phase-1 to optimality. Returns true if the artificial sum
  // reaches zero (feasible). Sets *deadline_exceeded and bails out if
  // the deadline expires first; sets *resource_exhausted when the
  // solver_pivot fault point fires. Either way the return value is
  // then meaningless.
  bool Optimize(int64_t* pivots, const Deadline& deadline,
                bool* deadline_exceeded, bool* resource_exhausted) {
    PeriodicDeadlineCheck check(deadline, /*stride=*/16);
    while (true) {
      if (check.Expired()) {
        *deadline_exceeded = true;
        return false;
      }
      if (FaultInjector::ShouldFail("solver_pivot")) {
        *resource_exhausted = true;
        return false;
      }
      // Bland's rule: entering column = smallest index with negative
      // reduced cost.
      int entering = -1;
      for (int j = 0; j < num_cols_; ++j) {
        if (reduced_[j].is_negative()) {
          entering = j;
          break;
        }
      }
      if (entering < 0) break;  // optimal
      // Ratio test; Bland tie-break on the smallest basis variable.
      int leaving_row = -1;
      Rational best_ratio(0);
      for (int i = 0; i < num_rows_; ++i) {
        if (rows_[i][entering].sign() <= 0) continue;
        Rational ratio = rhs_[i] / rows_[i][entering];
        if (leaving_row < 0 || ratio < best_ratio ||
            (ratio == best_ratio && basis_[i] < basis_[leaving_row])) {
          leaving_row = i;
          best_ratio = ratio;
        }
      }
      if (leaving_row < 0) {
        // Phase-1 objective is bounded below by zero, so this cannot
        // happen with exact arithmetic; treat as optimal defensively.
        break;
      }
      Pivot(leaving_row, entering);
      ++*pivots;
    }
    return objective_.is_zero();
  }

  std::vector<Rational> Solution() const {
    std::vector<Rational> solution(num_vars_, Rational(0));
    for (int i = 0; i < num_rows_; ++i) {
      if (basis_[i] < num_vars_) solution[basis_[i]] = rhs_[i];
    }
    return solution;
  }

 private:
  void Pivot(int pivot_row, int pivot_col) {
    // Normalize the pivot row.
    Rational pivot_value = rows_[pivot_row][pivot_col];
    for (Rational& cell : rows_[pivot_row]) {
      if (!cell.is_zero()) cell /= pivot_value;
    }
    rhs_[pivot_row] /= pivot_value;
    // Eliminate the pivot column from the other rows and the
    // reduced-cost row.
    for (int i = 0; i < num_rows_; ++i) {
      if (i == pivot_row || rows_[i][pivot_col].is_zero()) continue;
      Rational factor = rows_[i][pivot_col];
      for (int j = 0; j < num_cols_; ++j) {
        if (!rows_[pivot_row][j].is_zero()) {
          rows_[i][j] -= factor * rows_[pivot_row][j];
        }
      }
      rhs_[i] -= factor * rhs_[pivot_row];
    }
    if (!reduced_[pivot_col].is_zero()) {
      Rational factor = reduced_[pivot_col];
      for (int j = 0; j < num_cols_; ++j) {
        if (!rows_[pivot_row][j].is_zero()) {
          reduced_[j] -= factor * rows_[pivot_row][j];
        }
      }
      // z_new = z_old + r_entering * t  (t = normalized pivot rhs).
      objective_ += factor * rhs_[pivot_row];
    }
    basis_[pivot_row] = pivot_col;
  }

  int num_vars_;
  int num_rows_;
  int num_cols_ = 0;
  int slack_base_ = 0;
  int artificial_base_ = 0;
  std::vector<std::vector<Rational>> rows_;
  std::vector<Rational> rhs_;
  std::vector<Rational> reduced_;
  Rational objective_;
  std::vector<int> basis_;
};

}  // namespace

SimplexResult SolveLp(int num_vars,
                      const std::vector<LinearConstraint>& constraints,
                      const Deadline& deadline, const ResourceBudget* budget) {
  SimplexResult result;
  Tableau tableau(num_vars, constraints);
  // Charge the tableau against the memory ceiling for the duration of
  // the solve; an over-budget tableau is abandoned without a verdict,
  // exactly like a deadline expiry.
  std::optional<ScopedMemoryCharge> charge;
  if (budget != nullptr) {
    charge.emplace(*budget, tableau.ApproxBytes(), "simplex/tableau");
    if (!charge->status().ok()) {
      result.resource_exhausted = true;
      result.note = charge->status().message();
      trace::Count("simplex/resource_exhausted");
      return result;
    }
  }
  result.feasible =
      tableau.Optimize(&result.pivots, deadline, &result.deadline_exceeded,
                       &result.resource_exhausted);
  if (result.deadline_exceeded) {
    result.feasible = false;
    trace::Count("simplex/deadline_exceeded");
    return result;
  }
  if (result.resource_exhausted) {
    result.feasible = false;
    result.note = "injected fault at solver_pivot";
    trace::Count("simplex/resource_exhausted");
    return result;
  }
  if (result.feasible) result.solution = tableau.Solution();
  trace::Count("simplex/calls");
  trace::Count("simplex/pivots", result.pivots);
  if (!result.feasible) trace::Count("simplex/infeasible");
  return result;
}

}  // namespace xmlverify
