#include "ilp/simplex.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>

#include "base/deadline.h"
#include "base/fault_injection.h"
#include "base/smallrat.h"
#include "trace/trace.h"

namespace xmlverify {

namespace {

// ---------------------------------------------------------------------
// Legacy dense phase-1 tableau over BigInt rationals. Kept
// semantically frozen as the reference engine for --solver=legacy
// differential runs (the row updates below now go through the fused
// Rational::SubMul kernel, which computes the identical exact values
// without per-cell temporaries).
// Columns: structural vars, slack/surplus vars, artificial vars, then
// the right-hand side.
class DenseTableau {
 public:
  DenseTableau(int num_vars, const std::vector<LinearConstraint>& constraints)
      : num_vars_(num_vars), num_rows_(static_cast<int>(constraints.size())) {
    // One slack/surplus per inequality, one artificial per row.
    int num_slacks = 0;
    for (const LinearConstraint& constraint : constraints) {
      if (constraint.relation != Relation::kEq) ++num_slacks;
    }
    slack_base_ = num_vars_;
    artificial_base_ = slack_base_ + num_slacks;
    num_cols_ = artificial_base_ + num_rows_;

    rows_.assign(num_rows_, std::vector<Rational>(num_cols_, Rational(0)));
    rhs_.assign(num_rows_, Rational(0));
    basis_.assign(num_rows_, -1);

    int next_slack = slack_base_;
    for (int i = 0; i < num_rows_; ++i) {
      const LinearConstraint& constraint = constraints[i];
      // Row: lhs (rel) rhs. Bring to equality form with a slack.
      for (const auto& [var, coeff] : constraint.lhs.terms()) {
        rows_[i][var] = Rational(coeff);
      }
      rhs_[i] = Rational(constraint.rhs);
      if (constraint.relation == Relation::kLe) {
        rows_[i][next_slack++] = Rational(1);
      } else if (constraint.relation == Relation::kGe) {
        rows_[i][next_slack++] = Rational(-1);
      }
      // Normalize to a nonnegative right-hand side.
      if (rhs_[i].is_negative()) {
        for (Rational& cell : rows_[i]) cell = -cell;
        rhs_[i] = -rhs_[i];
      }
      // Artificial variable provides the initial basis.
      int artificial = artificial_base_ + i;
      rows_[i][artificial] = Rational(1);
      basis_[i] = artificial;
    }

    // Phase-1 reduced costs: minimize the sum of artificials. With the
    // artificials basic, r_j = -sum_i rows[i][j] for non-artificial j.
    reduced_.assign(num_cols_, Rational(0));
    objective_ = Rational(0);
    for (int i = 0; i < num_rows_; ++i) {
      for (int j = 0; j < artificial_base_; ++j) {
        reduced_[j] -= rows_[i][j];
      }
      objective_ += rhs_[i];
    }
  }

  // Footprint of the dense tableau, for the memory budget: every cell
  // is a Rational (two BigInts with inline limb storage).
  int64_t ApproxBytes() const {
    return static_cast<int64_t>(num_rows_ + 1) *
           static_cast<int64_t>(num_cols_ + 1) * 64;
  }

  int64_t Nonzeros() const {
    int64_t count = 0;
    for (const auto& row : rows_) {
      for (const Rational& cell : row) {
        if (!cell.is_zero()) ++count;
      }
    }
    return count;
  }

  // Runs phase-1 to optimality. Returns true if the artificial sum
  // reaches zero (feasible). Sets *deadline_exceeded and bails out if
  // the deadline expires first; sets *resource_exhausted when the
  // solver_pivot fault point fires. Either way the return value is
  // then meaningless.
  bool Optimize(int64_t* pivots, const Deadline& deadline,
                bool* deadline_exceeded, bool* resource_exhausted) {
    PeriodicDeadlineCheck check(deadline, /*stride=*/16);
    while (true) {
      if (check.Expired()) {
        *deadline_exceeded = true;
        return false;
      }
      if (FaultInjector::ShouldFail("solver_pivot")) {
        *resource_exhausted = true;
        return false;
      }
      // Bland's rule: entering column = smallest index with negative
      // reduced cost.
      int entering = -1;
      for (int j = 0; j < num_cols_; ++j) {
        if (reduced_[j].is_negative()) {
          entering = j;
          break;
        }
      }
      if (entering < 0) break;  // optimal
      // Ratio test; Bland tie-break on the smallest basis variable.
      int leaving_row = -1;
      Rational best_ratio(0);
      for (int i = 0; i < num_rows_; ++i) {
        if (rows_[i][entering].sign() <= 0) continue;
        Rational ratio = rhs_[i] / rows_[i][entering];
        if (leaving_row < 0 || ratio < best_ratio ||
            (ratio == best_ratio && basis_[i] < basis_[leaving_row])) {
          leaving_row = i;
          best_ratio = ratio;
        }
      }
      if (leaving_row < 0) {
        // Phase-1 objective is bounded below by zero, so this cannot
        // happen with exact arithmetic; treat as optimal defensively.
        break;
      }
      Pivot(leaving_row, entering);
      ++*pivots;
    }
    return objective_.is_zero();
  }

  std::vector<Rational> Solution() const {
    std::vector<Rational> solution(num_vars_, Rational(0));
    for (int i = 0; i < num_rows_; ++i) {
      if (basis_[i] < num_vars_) solution[basis_[i]] = rhs_[i];
    }
    return solution;
  }

 private:
  void Pivot(int pivot_row, int pivot_col) {
    // Normalize the pivot row.
    Rational pivot_value = rows_[pivot_row][pivot_col];
    for (Rational& cell : rows_[pivot_row]) {
      if (!cell.is_zero()) cell /= pivot_value;
    }
    rhs_[pivot_row] /= pivot_value;
    // Eliminate the pivot column from the other rows and the
    // reduced-cost row.
    for (int i = 0; i < num_rows_; ++i) {
      if (i == pivot_row || rows_[i][pivot_col].is_zero()) continue;
      Rational factor = rows_[i][pivot_col];
      for (int j = 0; j < num_cols_; ++j) {
        if (!rows_[pivot_row][j].is_zero()) {
          rows_[i][j].SubMul(factor, rows_[pivot_row][j]);
        }
      }
      rhs_[i].SubMul(factor, rhs_[pivot_row]);
    }
    if (!reduced_[pivot_col].is_zero()) {
      Rational factor = reduced_[pivot_col];
      for (int j = 0; j < num_cols_; ++j) {
        if (!rows_[pivot_row][j].is_zero()) {
          reduced_[j].SubMul(factor, rows_[pivot_row][j]);
        }
      }
      // z_new = z_old + r_entering * t  (t = normalized pivot rhs).
      objective_ += factor * rhs_[pivot_row];
    }
    basis_[pivot_row] = pivot_col;
  }

  int num_vars_;
  int num_rows_;
  int num_cols_ = 0;
  int slack_base_ = 0;
  int artificial_base_ = 0;
  std::vector<std::vector<Rational>> rows_;
  std::vector<Rational> rhs_;
  std::vector<Rational> reduced_;
  Rational objective_;
  std::vector<int> basis_;
};

}  // namespace

// ---------------------------------------------------------------------
// Sparse phase-1 tableau over two-tier rationals. Rows are sorted
// (column, value) pair vectors holding nonzeros only; row combination
// is a merge walk that drops exact cancellations, so sparsity survives
// pivoting wherever the arithmetic allows. Cells start in the int64
// tier and promote to BigInt individually on overflow. Column layout
// matches the dense engine: vars, slack/surplus, artificials. Lives in
// a named namespace (not the anonymous one) because SimplexWarmState —
// an external-linkage type — embeds a finished tableau by value.
namespace simplex_detail {

class SparseTableau {
 public:
  using Cell = std::pair<int, TwoTierRational>;
  using SparseRow = std::vector<Cell>;

  SparseTableau(int num_vars, const std::vector<LinearConstraint>& constraints)
      : num_vars_(num_vars), num_rows_(static_cast<int>(constraints.size())) {
    int num_slacks = 0;
    for (const LinearConstraint& constraint : constraints) {
      if (constraint.relation != Relation::kEq) ++num_slacks;
    }
    slack_base_ = num_vars_;
    artificial_base_ = slack_base_ + num_slacks;
    num_cols_ = artificial_base_ + num_rows_;

    rows_.resize(num_rows_);
    rhs_.resize(num_rows_);
    basis_.assign(num_rows_, -1);

    int next_slack = slack_base_;
    for (int i = 0; i < num_rows_; ++i) {
      const LinearConstraint& constraint = constraints[i];
      SparseRow& row = rows_[i];
      row.reserve(constraint.lhs.terms().size() + 2);
      // LinearExpr terms are map-ordered and the slack and artificial
      // columns come after every structural column, so appending keeps
      // the row sorted.
      for (const auto& [var, coeff] : constraint.lhs.terms()) {
        row.emplace_back(var, TwoTierRational(coeff));
      }
      rhs_[i] = TwoTierRational(constraint.rhs);
      if (constraint.relation == Relation::kLe) {
        row.emplace_back(next_slack++, TwoTierRational(int64_t{1}));
      } else if (constraint.relation == Relation::kGe) {
        row.emplace_back(next_slack++, TwoTierRational(int64_t{-1}));
      }
      if (rhs_[i].is_negative()) {
        for (Cell& cell : row) cell.second.Negate();
        rhs_[i].Negate();
      }
      int artificial = artificial_base_ + i;
      row.emplace_back(artificial, TwoTierRational(int64_t{1}));
      basis_[i] = artificial;
    }

    // Phase-1 reduced costs (dense: the cost row fills in quickly and
    // the Bland scan wants positional access anyway).
    reduced_.assign(num_cols_, TwoTierRational());
    objective_ = TwoTierRational();
    for (int i = 0; i < num_rows_; ++i) {
      for (const Cell& cell : rows_[i]) {
        if (cell.first < artificial_base_) {
          reduced_[cell.first] -= cell.second;
        }
      }
      objective_ += rhs_[i];
    }
  }

  // Initial footprint for the memory budget: stored nonzeros plus the
  // dense cost row and per-row vectors. Fill-in during pivoting is not
  // re-charged; the deadline and the solver_pivot fault point bound
  // runaway growth instead.
  int64_t ApproxBytes() const {
    int64_t cells = static_cast<int64_t>(num_cols_) + 2 * num_rows_;
    for (const SparseRow& row : rows_) {
      cells += static_cast<int64_t>(row.size());
    }
    return cells * static_cast<int64_t>(sizeof(Cell));
  }

  int64_t Nonzeros() const {
    int64_t count = 0;
    for (const SparseRow& row : rows_) {
      count += static_cast<int64_t>(row.size());
    }
    return count;
  }

  bool Optimize(int64_t* pivots, const Deadline& deadline,
                bool* deadline_exceeded, bool* resource_exhausted) {
    PeriodicDeadlineCheck check(deadline, /*stride=*/16);
    while (true) {
      if (check.Expired()) {
        *deadline_exceeded = true;
        return false;
      }
      if (FaultInjector::ShouldFail("solver_pivot")) {
        *resource_exhausted = true;
        return false;
      }
      // Bland's rule: entering column = smallest index with negative
      // reduced cost.
      int entering = -1;
      for (int j = 0; j < num_cols_; ++j) {
        if (reduced_[j].is_negative()) {
          entering = j;
          break;
        }
      }
      if (entering < 0) break;  // optimal
      // Ratio test over rows with a positive entering-column entry;
      // Bland tie-break on the smallest basis variable.
      int leaving_row = -1;
      std::optional<TwoTierRational> best_ratio;
      for (int i = 0; i < num_rows_; ++i) {
        const TwoTierRational* coeff = Find(rows_[i], entering);
        if (coeff == nullptr || coeff->sign() <= 0) continue;
        TwoTierRational ratio = rhs_[i];
        ratio /= *coeff;
        if (leaving_row < 0) {
          leaving_row = i;
          best_ratio = std::move(ratio);
          continue;
        }
        int cmp = ratio.Compare(*best_ratio);
        if (cmp < 0 || (cmp == 0 && basis_[i] < basis_[leaving_row])) {
          leaving_row = i;
          best_ratio = std::move(ratio);
        }
      }
      if (leaving_row < 0) {
        // Phase-1 objective is bounded below by zero, so this cannot
        // happen with exact arithmetic; treat as optimal defensively.
        break;
      }
      Pivot(leaving_row, entering);
      ++*pivots;
    }
    return objective_.is_zero();
  }

  std::vector<Rational> Solution() const {
    std::vector<Rational> solution(num_vars_, Rational(0));
    for (int i = 0; i < num_rows_; ++i) {
      if (basis_[i] < num_vars_) solution[basis_[i]] = rhs_[i].ToRational();
    }
    return solution;
  }

  // Appends one inequality row to an already-optimized tableau with
  // the row's fresh slack as its basic variable. The slack enters at
  // coefficient +1 (kGe rows are negated into kLe form first) with
  // zero phase-1 cost, so the reduced-cost row and objective are
  // untouched: a dual-feasible basis stays dual feasible, which is the
  // warm-start invariant DualReoptimize relies on. The new row is
  // brought into reduced form by eliminating every currently-basic
  // column (each appears in exactly its own pivot row, so one pass
  // suffices). Requires relation != kEq — an equality row would need
  // an artificial, destroying dual feasibility; callers fall back to a
  // cold solve instead.
  void AppendRelaxedRow(const LinearConstraint& constraint) {
    const bool flip = constraint.relation == Relation::kGe;
    SparseRow row;
    row.reserve(constraint.lhs.terms().size() + 1);
    for (const auto& [var, coeff] : constraint.lhs.terms()) {
      TwoTierRational value(coeff);
      if (flip) value.Negate();
      row.emplace_back(var, std::move(value));
    }
    TwoTierRational rhs(constraint.rhs);
    if (flip) rhs.Negate();

    // Column -> pivot row of the current basis.
    std::vector<int> basic_row(num_cols_, -1);
    for (int i = 0; i < num_rows_; ++i) basic_row[basis_[i]] = i;
    std::vector<int> original_cols;
    original_cols.reserve(row.size());
    for (const Cell& cell : row) original_cols.push_back(cell.first);
    for (int col : original_cols) {
      int pivot_row = basic_row[col];
      if (pivot_row < 0) continue;
      // Re-read: an earlier elimination may have changed (or
      // cancelled) this column's coefficient.
      const TwoTierRational* current = Find(row, col);
      if (current == nullptr || current->is_zero()) continue;
      TwoTierRational factor = *current;
      // The basic column's own-row coefficient is 1 by the pivot
      // normalization invariant; divide anyway so the elimination
      // stays exact even if that invariant ever drifts.
      const TwoTierRational* diagonal = Find(rows_[pivot_row], col);
      if (diagonal != nullptr) factor /= *diagonal;
      RowSubMul(&row, factor, rows_[pivot_row]);
      rhs.SubMul(factor, rhs_[pivot_row]);
    }

    int slack_col = num_cols_++;
    row.emplace_back(slack_col, TwoTierRational(int64_t{1}));
    rows_.push_back(std::move(row));
    rhs_.push_back(std::move(rhs));
    basis_.push_back(slack_col);
    reduced_.push_back(TwoTierRational());
    ++num_rows_;
  }

  enum class DualStatus {
    kPrimalFeasible,  // all rhs >= 0: hand over to the primal epilogue
    kInfeasible,      // a row refutes the system (sound: no artificials
                      // were introduced by AppendRelaxedRow)
    kGaveUp,          // pivot valve tripped: caller re-solves cold
  };

  // Dual simplex from a dual-feasible basis with (a few) negative
  // right-hand sides, as left behind by AppendRelaxedRow. Bland's
  // rule on both choices: leaving row = the negative-rhs row whose
  // basic variable has the smallest index; entering column = among
  // the row's negative entries, the smallest index minimizing
  // reduced_j / -a_rj, which keeps every reduced cost nonnegative. A
  // row with a negative rhs and no negative entry proves infeasibility
  // outright. The pivot valve bounds degenerate chains (possible only
  // if the parent basis was not dual feasible, a cannot-happen path
  // handled defensively): the caller falls back to a cold solve.
  // Observes the same deadline/fault contract as Optimize; when either
  // out-flag is set the status carries no verdict.
  DualStatus DualReoptimize(int64_t* pivots, const Deadline& deadline,
                            bool* deadline_exceeded,
                            bool* resource_exhausted) {
    PeriodicDeadlineCheck check(deadline, /*stride=*/16);
    const int64_t valve = 32 + static_cast<int64_t>(num_rows_) + num_cols_;
    int64_t steps = 0;
    while (true) {
      if (check.Expired()) {
        *deadline_exceeded = true;
        return DualStatus::kPrimalFeasible;
      }
      if (FaultInjector::ShouldFail("solver_pivot")) {
        *resource_exhausted = true;
        return DualStatus::kPrimalFeasible;
      }
      int leaving = -1;
      for (int i = 0; i < num_rows_; ++i) {
        if (rhs_[i].is_negative() &&
            (leaving < 0 || basis_[i] < basis_[leaving])) {
          leaving = i;
        }
      }
      if (leaving < 0) return DualStatus::kPrimalFeasible;
      if (steps >= valve) return DualStatus::kGaveUp;
      int entering = -1;
      std::optional<TwoTierRational> best_ratio;
      // Rows are sorted by column, so the strict `<` keeps the
      // smallest column on ties (Bland).
      for (const Cell& cell : rows_[leaving]) {
        if (cell.second.sign() >= 0) continue;
        TwoTierRational ratio = reduced_[cell.first];
        TwoTierRational denominator = cell.second;
        denominator.Negate();
        ratio /= denominator;
        if (entering < 0 || ratio.Compare(*best_ratio) < 0) {
          entering = cell.first;
          best_ratio = std::move(ratio);
        }
      }
      if (entering < 0) return DualStatus::kInfeasible;
      Pivot(leaving, entering);
      ++*pivots;
      ++steps;
    }
  }

 private:
  // Binary search for a column's cell; nullptr when structurally zero.
  static const TwoTierRational* Find(const SparseRow& row, int col) {
    auto it = std::lower_bound(
        row.begin(), row.end(), col,
        [](const Cell& cell, int c) { return cell.first < c; });
    if (it == row.end() || it->first != col) return nullptr;
    return &it->second;
  }

  // target -= factor * src, as one sorted merge walk. Exact
  // cancellations are dropped, so fill-in only happens where the
  // combined entry is genuinely nonzero.
  static void RowSubMul(SparseRow* target, const TwoTierRational& factor,
                        const SparseRow& src) {
    SparseRow result;
    result.reserve(target->size() + src.size());
    auto t = target->begin();
    auto s = src.begin();
    while (t != target->end() || s != src.end()) {
      if (s == src.end() || (t != target->end() && t->first < s->first)) {
        result.push_back(std::move(*t));
        ++t;
      } else if (t == target->end() || s->first < t->first) {
        // 0 - factor*src: the product of nonzero rationals is nonzero.
        TwoTierRational value = factor;
        value *= s->second;
        value.Negate();
        result.emplace_back(s->first, std::move(value));
        ++s;
      } else {
        t->second.SubMul(factor, s->second);
        if (!t->second.is_zero()) result.push_back(std::move(*t));
        ++t;
        ++s;
      }
    }
    target->swap(result);
  }

  void Pivot(int pivot_row, int pivot_col) {
    SparseRow& prow = rows_[pivot_row];
    // Normalize the pivot row (copy the pivot value first: the loop
    // divides it by itself in place).
    TwoTierRational pivot_value = *Find(prow, pivot_col);
    for (Cell& cell : prow) cell.second /= pivot_value;
    rhs_[pivot_row] /= pivot_value;
    // Eliminate the pivot column from the other rows.
    for (int i = 0; i < num_rows_; ++i) {
      if (i == pivot_row) continue;
      const TwoTierRational* entry = Find(rows_[i], pivot_col);
      if (entry == nullptr || entry->is_zero()) continue;
      // Copy: RowSubMul rebuilds the row the factor points into.
      TwoTierRational factor = *entry;
      RowSubMul(&rows_[i], factor, prow);
      rhs_[i].SubMul(factor, rhs_[pivot_row]);
    }
    // Reduced-cost row: same elimination against the dense cost row.
    if (!reduced_[pivot_col].is_zero()) {
      TwoTierRational factor = reduced_[pivot_col];
      for (const Cell& cell : prow) {
        reduced_[cell.first].SubMul(factor, cell.second);
      }
      // z_new = z_old + r_entering * t  (t = normalized pivot rhs).
      TwoTierRational delta = factor;
      delta *= rhs_[pivot_row];
      objective_ += delta;
    }
    basis_[pivot_row] = pivot_col;
  }

  int num_vars_;
  int num_rows_;
  int num_cols_ = 0;
  int slack_base_ = 0;
  int artificial_base_ = 0;
  std::vector<SparseRow> rows_;
  std::vector<TwoTierRational> rhs_;
  std::vector<TwoTierRational> reduced_;
  TwoTierRational objective_;
  std::vector<int> basis_;
};

}  // namespace simplex_detail

// Definition of the header's opaque warm-state handle: a finished
// sparse tableau, immutable once wrapped in shared_ptr<const>.
struct SimplexWarmState {
  simplex_detail::SparseTableau tableau;
};

int64_t WarmStateBytes(const SimplexWarmState& state) {
  return state.tableau.ApproxBytes();
}

namespace {

using simplex_detail::SparseTableau;

// Shared solve driver: budget charge, optimize, counters.
template <typename TableauT>
SimplexResult RunWithTableau(int num_vars,
                             const std::vector<LinearConstraint>& constraints,
                             const Deadline& deadline,
                             const ResourceBudget* budget,
                             const SimplexOptions& options) {
  SimplexResult result;
  TableauT tableau(num_vars, constraints);
  trace::Count("simplex/nnz", tableau.Nonzeros());
  // Charge the tableau against the memory ceiling for the duration of
  // the solve; an over-budget tableau is abandoned without a verdict,
  // exactly like a deadline expiry.
  std::optional<ScopedMemoryCharge> charge;
  if (budget != nullptr) {
    charge.emplace(*budget, tableau.ApproxBytes(), "simplex/tableau");
    if (!charge->status().ok()) {
      result.resource_exhausted = true;
      result.note = charge->status().message();
      trace::Count("simplex/resource_exhausted");
      return result;
    }
  }
  result.feasible =
      tableau.Optimize(&result.pivots, deadline, &result.deadline_exceeded,
                       &result.resource_exhausted);
  if (result.deadline_exceeded) {
    result.feasible = false;
    trace::Count("simplex/deadline_exceeded");
    return result;
  }
  if (result.resource_exhausted) {
    result.feasible = false;
    result.note = "injected fault at solver_pivot";
    trace::Count("simplex/resource_exhausted");
    return result;
  }
  if (result.feasible) result.solution = tableau.Solution();
  trace::Count("simplex/calls");
  trace::Count("simplex/pivots", result.pivots);
  if (!result.feasible) trace::Count("simplex/infeasible");
  if constexpr (std::is_same_v<TableauT, SparseTableau>) {
    if (result.feasible && options.export_warm_state) {
      result.warm_state = std::make_shared<const SimplexWarmState>(
          SimplexWarmState{std::move(tableau)});
    }
  }
  return result;
}

}  // namespace

SimplexResult SolveLp(int num_vars,
                      const std::vector<LinearConstraint>& constraints,
                      const Deadline& deadline, const ResourceBudget* budget,
                      const SimplexOptions& options) {
  if (options.sparse) {
    trace::Count("simplex/sparse_calls");
    return RunWithTableau<SparseTableau>(num_vars, constraints, deadline,
                                         budget, options);
  }
  trace::Count("simplex/dense_calls");
  return RunWithTableau<DenseTableau>(num_vars, constraints, deadline, budget,
                                      options);
}

SimplexResult ResolveLp(const std::shared_ptr<const SimplexWarmState>& parent,
                        const std::vector<LinearConstraint>& constraints,
                        int delta, int num_vars, const Deadline& deadline,
                        const ResourceBudget* budget,
                        const SimplexOptions& options) {
  bool warm_eligible = options.sparse && parent != nullptr && delta > 0 &&
                       delta <= static_cast<int>(constraints.size());
  if (warm_eligible) {
    for (size_t i = constraints.size() - delta; i < constraints.size(); ++i) {
      if (constraints[i].relation == Relation::kEq) {
        warm_eligible = false;
        break;
      }
    }
  }
  if (!warm_eligible) {
    SimplexResult cold =
        SolveLp(num_vars, constraints, deadline, budget, options);
    cold.warm_fallback = true;
    trace::Count("simplex/warm_fallbacks");
    return cold;
  }

  trace::Count("simplex/warm_calls");
  SimplexResult result;
  int64_t warm_pivots = 0;
  {
    SparseTableau tableau(parent->tableau);  // deep copy
    for (size_t i = constraints.size() - delta; i < constraints.size(); ++i) {
      tableau.AppendRelaxedRow(constraints[i]);
    }
    std::optional<ScopedMemoryCharge> charge;
    if (budget != nullptr) {
      charge.emplace(*budget, tableau.ApproxBytes(), "simplex/tableau");
      if (!charge->status().ok()) {
        result.resource_exhausted = true;
        result.note = charge->status().message();
        trace::Count("simplex/resource_exhausted");
        return result;
      }
    }
    SparseTableau::DualStatus dual = tableau.DualReoptimize(
        &result.pivots, deadline, &result.deadline_exceeded,
        &result.resource_exhausted);
    trace::Count("simplex/dual_pivots", result.pivots);
    if (result.deadline_exceeded) {
      trace::Count("simplex/deadline_exceeded");
      return result;
    }
    if (result.resource_exhausted) {
      result.note = "injected fault at solver_pivot";
      trace::Count("simplex/resource_exhausted");
      return result;
    }
    if (dual != SparseTableau::DualStatus::kGaveUp) {
      if (dual == SparseTableau::DualStatus::kInfeasible) {
        result.feasible = false;
      } else {
        // Primal epilogue from the restored feasible basis. Normally
        // every reduced cost is already nonnegative and this is a
        // single optimality scan deciding objective == 0; it only
        // pivots further on the defensive not-dual-feasible path.
        result.feasible =
            tableau.Optimize(&result.pivots, deadline,
                             &result.deadline_exceeded,
                             &result.resource_exhausted);
        if (result.deadline_exceeded) {
          result.feasible = false;
          trace::Count("simplex/deadline_exceeded");
          return result;
        }
        if (result.resource_exhausted) {
          result.feasible = false;
          result.note = "injected fault at solver_pivot";
          trace::Count("simplex/resource_exhausted");
          return result;
        }
        if (result.feasible) result.solution = tableau.Solution();
      }
      result.warm_used = true;
      trace::Count("simplex/calls");
      trace::Count("simplex/pivots", result.pivots);
      if (!result.feasible) trace::Count("simplex/infeasible");
      if (result.feasible && options.export_warm_state) {
        result.warm_state = std::make_shared<const SimplexWarmState>(
            SimplexWarmState{std::move(tableau)});
      }
      return result;
    }
    warm_pivots = result.pivots;
  }
  // Pivot valve tripped: the dual chain degenerated (only reachable
  // when the parent basis was not dual feasible). Re-solve cold; the
  // wasted dual pivots stay in the count.
  trace::Count("simplex/warm_fallbacks");
  SimplexResult cold = SolveLp(num_vars, constraints, deadline, budget,
                               options);
  cold.pivots += warm_pivots;
  cold.warm_fallback = true;
  return cold;
}

}  // namespace xmlverify
