// Branch-and-bound solver for IntegerProgram.
//
// Completeness notes (documented behaviour, see DESIGN.md §2):
//  * Linear fragment: exact. Satisfiable systems yield a BigInt
//    witness; unsatisfiable systems are refuted by LP infeasibility
//    along every branch (plus per-row gcd preprocessing).
//  * Conditional constraints are resolved by branching, exactly the
//    2^p case analysis of Lemma 8, but lazily (only violated
//    conditionals split).
//  * Prequadratic constraints (PDE) use spatial branching with an
//    optional global cap on variable values; exhausting the search
//    under a cap yields kUnknown rather than a false kUnsat, mirroring
//    the bounded-model flavour of the NEXPTIME upper bound.
#ifndef XMLVERIFY_ILP_SOLVER_H_
#define XMLVERIFY_ILP_SOLVER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/bigint.h"
#include "base/deadline.h"
#include "base/resource_guard.h"
#include "ilp/linear.h"

namespace xmlverify {

enum class SolveOutcome {
  kSat,      // witness assignment available
  kUnsat,    // proven infeasible over nonnegative integers
  kUnknown,  // search capped (node limit or variable cap)
  kDeadlineExceeded,  // wall-clock budget expired before a verdict
  kResourceExhausted,  // memory budget exhausted (or fault injected)
};

struct SolveResult {
  SolveOutcome outcome = SolveOutcome::kUnknown;
  std::vector<BigInt> assignment;  // kSat only
  int64_t nodes_explored = 0;
  int64_t lp_pivots = 0;
  std::string note;
};

struct SolverOptions {
  /// Maximum branch-and-bound nodes before giving up with kUnknown.
  int64_t max_nodes = 500000;
  /// If set, adds `x <= variable_cap` for every variable. Required for
  /// guaranteed termination in the presence of prequadratic
  /// constraints; exhausting the search with a cap active reports
  /// kUnknown, not kUnsat.
  std::optional<BigInt> variable_cap;
  /// Wall-clock budget, polled at every branch-and-bound node and
  /// (amortized) inside the simplex pivot loop. Expiry yields
  /// kDeadlineExceeded — never a definitive verdict. Default: never.
  Deadline deadline;
  /// Memory/depth budget. Search nodes are charged while resident on
  /// the branch stack and each LP tableau is charged for the solve's
  /// duration; exhaustion yields kResourceExhausted — like a deadline
  /// expiry, never a definitive verdict. Default: unlimited.
  ResourceBudget budget;
  /// Run the exact MIP presolve pass (src/ilp/presolve.h) before
  /// branch-and-bound. Variable elimination engages only for purely
  /// linear programs; with conditionals or prequadratics present the
  /// row reductions still apply over the original variable space.
  /// Off restores the legacy pipeline (the difftest reference).
  bool use_presolve = true;
  /// Use the sparse two-tier simplex for LP relaxations; off selects
  /// the legacy dense BigInt tableau.
  bool use_sparse_simplex = true;
  /// Dual-simplex warm starts: each branch child re-solves its LP from
  /// the parent's final tableau (the child differs by one or two bound
  /// rows) through a short dual-simplex run instead of a from-scratch
  /// phase-1. Sparse engine only — with use_sparse_simplex off the
  /// flag is ignored, so the legacy pipeline stays the cold,
  /// difftest-comparable reference. Equality delta rows and degenerate
  /// dual chains fall back to cold solves automatically (counted as
  /// solver/warm_start_fallbacks). Retained parent tableaus are shared
  /// between siblings and bounded by the branch depth; they are
  /// charged to the budget transiently during each re-solve.
  bool warm_start = true;
  /// Worker threads exploring branch-and-bound subtrees within a
  /// single Solve call, as a work-stealing node pool. 1 (default)
  /// keeps the serial loop. Verdicts are deterministic at any job
  /// count on limit-free runs: every node carries a canonical
  /// exploration-order key (its branch path; lexicographic order is
  /// exactly serial DFS preorder) and the canonically-first definitive
  /// leaf wins, so kSat witnesses are identical to the serial
  /// search's. Which non-verdict limit (deadline / node / memory)
  /// fires first may vary with scheduling, as it already does across
  /// machines.
  int jobs = 1;
  /// Seed for the steal-victim rotation. Scheduling diversification
  /// only; never affects the result (see `jobs`).
  uint64_t seed = 0;
};

class IlpSolver {
 public:
  explicit IlpSolver(SolverOptions options = {}) : options_(options) {}

  SolveResult Solve(const IntegerProgram& program) const;

  /// Repeatedly solves with caps initial_cap, initial_cap^2, ... up to
  /// max_cap (needed only when `program` has prequadratic
  /// constraints). Returns the first kSat, or kUnknown/kUnsat from the
  /// final attempt.
  SolveResult SolveWithDeepening(const IntegerProgram& program,
                                 const BigInt& initial_cap,
                                 const BigInt& max_cap) const;

 private:
  SolverOptions options_;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_ILP_SOLVER_H_
