// ILP presolve: standard MIP-style reductions applied to the linear
// fragment of an IntegerProgram before branch-and-bound (see
// docs/performance.md). All reductions are exact over nonnegative
// integers, so verdicts carry over both ways: a presolve infeasibility
// is a genuine kUnsat, and any integer point of the reduced system
// maps back (via PresolveInfo) to a point of the original one.
//
// Reductions performed, to a fixpoint:
//   * empty-row / trivial-infeasibility detection (0 rel b);
//   * row gcd normalization with integer rounding — an equality whose
//     coefficient gcd does not divide its right-hand side refutes the
//     whole system (subsumes the solver's old per-row gcd test), and
//     inequalities tighten to floor/ceil(b/g);
//   * sign-canonical rows whose coefficients are all positive resolve
//     directly against x >= 0 (infeasible, redundant, or forcing every
//     variable in the row to zero);
//   * singleton rows convert to variable bounds;
//   * duplicate/dominated rows with identical left-hand sides merge to
//     the tightest representative (conflicting equalities and crossed
//     <=/>= pairs refute);
//   * fixed variables (lower bound == upper bound) substitute out, and
//     variables absent from every surviving row pin to their lower
//     bound — both only when variable elimination is allowed.
#ifndef XMLVERIFY_ILP_PRESOLVE_H_
#define XMLVERIFY_ILP_PRESOLVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/bigint.h"
#include "ilp/linear.h"

namespace xmlverify {

struct PresolveOptions {
  /// Allow removing variables (fixed-variable substitution and
  /// unused-variable elimination) and renumbering the survivors.
  /// Callers owning constraint classes that reference variables by id
  /// outside the linear rows (conditionals, prequadratics) must turn
  /// this off; every other reduction still applies.
  bool allow_variable_elimination = true;
  /// Fixpoint guard: maximum full passes over the row set.
  int max_passes = 8;
};

struct PresolveStats {
  int64_t rows_dropped = 0;       // redundant or merged away
  int64_t gcd_tightened = 0;      // rows divided through by their gcd
  int64_t singleton_bounds = 0;   // singleton rows turned into bounds
  int64_t duplicates_merged = 0;  // same-lhs rows collapsed
  int64_t vars_fixed = 0;         // variables substituted out
};

/// Outcome of one presolve run: either a proof of integer
/// infeasibility, or the reduced system plus the witness back-map.
class PresolveInfo {
 public:
  bool infeasible() const { return infeasible_; }
  /// Human-readable refutation (set only when infeasible()).
  const std::string& infeasible_reason() const { return reason_; }

  /// The reduced system: surviving rows over the reduced variable
  /// space, followed by bound rows ("pre-ub"/"pre-lb") for surviving
  /// variables with tightened bounds.
  const std::vector<LinearConstraint>& rows() const { return rows_; }
  int reduced_num_vars() const { return reduced_num_vars_; }
  int original_num_vars() const {
    return static_cast<int>(vars_.size());
  }

  /// Reduced id of an original variable, or -1 when eliminated.
  VarId ReducedVar(VarId original) const {
    return vars_[original].eliminated ? -1 : vars_[original].reduced;
  }

  /// Maps a reduced-space assignment back onto the original variables:
  /// surviving variables copy through, eliminated ones take their
  /// pinned value. The result satisfies the original linear rows
  /// whenever `reduced` satisfies rows().
  std::vector<BigInt> MapSolution(const std::vector<BigInt>& reduced) const;

  const PresolveStats& stats() const { return stats_; }

 private:
  friend PresolveInfo PresolveProgram(const IntegerProgram& program,
                                      const PresolveOptions& options);
  struct VarEntry {
    bool eliminated = false;
    VarId reduced = -1;   // valid when !eliminated
    BigInt value;         // valid when eliminated
  };

  bool infeasible_ = false;
  std::string reason_;
  std::vector<LinearConstraint> rows_;
  std::vector<VarEntry> vars_;
  int reduced_num_vars_ = 0;
  PresolveStats stats_;
};

/// Presolves the linear rows and upper bounds of `program`. The
/// conditional and prequadratic constraint classes are untouched; when
/// any exist, pass allow_variable_elimination = false so their
/// variable ids stay valid in the reduced space.
PresolveInfo PresolveProgram(const IntegerProgram& program,
                             const PresolveOptions& options = {});

}  // namespace xmlverify

#endif  // XMLVERIFY_ILP_PRESOLVE_H_
