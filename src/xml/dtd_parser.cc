#include "xml/dtd_parser.h"

#include <cctype>
#include <set>
#include <vector>

#include "base/string_util.h"

namespace xmlverify {

namespace {

struct Declaration {
  enum Kind { kElement, kAttlist, kRoot } kind;
  std::string name;
  std::string body;  // content text for kElement, attribute list for kAttlist
};

// Extracts identifier tokens (candidate element-type names) from a
// content-model string.
std::vector<std::string> NameTokens(const std::string& text) {
  std::vector<std::string> names;
  size_t pos = 0;
  while (pos < text.size()) {
    char c = text[pos];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '_' || text[pos] == '-')) {
        ++pos;
      }
      names.push_back(text.substr(start, pos - start));
    } else {
      ++pos;
    }
  }
  return names;
}

Result<std::vector<Declaration>> Scan(const std::string& text) {
  std::vector<Declaration> declarations;
  size_t pos = 0;
  while (pos < text.size()) {
    // Skip whitespace and /* ... */ comments (the paper's DTD listings
    // use them) as well as <!-- ... --> XML comments.
    if (std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
      continue;
    }
    if (StartsWith(std::string_view(text).substr(pos), "/*")) {
      size_t end = text.find("*/", pos + 2);
      // An unterminated comment runs to end of line, as in the paper.
      size_t eol = text.find('\n', pos);
      pos = end == std::string::npos ? (eol == std::string::npos
                                            ? text.size()
                                            : eol + 1)
                                     : std::min(end + 2, eol == std::string::npos
                                                             ? end + 2
                                                             : eol + 1);
      continue;
    }
    if (StartsWith(std::string_view(text).substr(pos), "<!--")) {
      size_t end = text.find("-->", pos + 4);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated XML comment in DTD");
      }
      pos = end + 3;
      continue;
    }
    if (text[pos] == '<') {
      size_t end = text.find('>', pos);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated declaration in DTD");
      }
      std::string decl = text.substr(pos + 1, end - pos - 1);
      pos = end + 1;
      std::string_view view = StripWhitespace(decl);
      if (StartsWith(view, "!ELEMENT")) {
        view = StripWhitespace(view.substr(8));
        size_t name_end = 0;
        while (name_end < view.size() &&
               !std::isspace(static_cast<unsigned char>(view[name_end]))) {
          ++name_end;
        }
        Declaration d;
        d.kind = Declaration::kElement;
        d.name = std::string(view.substr(0, name_end));
        d.body = std::string(StripWhitespace(view.substr(name_end)));
        declarations.push_back(std::move(d));
      } else if (StartsWith(view, "!ATTLIST")) {
        view = StripWhitespace(view.substr(8));
        size_t name_end = 0;
        while (name_end < view.size() &&
               !std::isspace(static_cast<unsigned char>(view[name_end]))) {
          ++name_end;
        }
        Declaration d;
        d.kind = Declaration::kAttlist;
        d.name = std::string(view.substr(0, name_end));
        d.body = std::string(StripWhitespace(view.substr(name_end)));
        declarations.push_back(std::move(d));
      } else {
        return Status::InvalidArgument("unrecognized declaration: <" + decl +
                                       ">");
      }
      continue;
    }
    // Bare "root name" directive.
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string_view line = StripWhitespace(
        std::string_view(text).substr(pos, eol - pos));
    pos = eol + 1;
    if (line.empty()) continue;
    if (StartsWith(line, "root")) {
      Declaration d;
      d.kind = Declaration::kRoot;
      d.name = std::string(StripWhitespace(line.substr(4)));
      declarations.push_back(std::move(d));
      continue;
    }
    return Status::InvalidArgument("unrecognized DTD line: '" +
                                   std::string(line) + "'");
  }
  return declarations;
}

}  // namespace

Result<Dtd> ParseDtd(const std::string& text) {
  ASSIGN_OR_RETURN(std::vector<Declaration> declarations, Scan(text));

  // Pass 1: collect element-type names in declaration order, then
  // names referenced only inside content models.
  std::vector<std::string> names;
  std::set<std::string> seen;
  std::string root_name;
  auto add_name = [&](const std::string& name) {
    if (seen.insert(name).second) names.push_back(name);
  };
  for (const Declaration& d : declarations) {
    if (d.kind == Declaration::kElement) {
      add_name(d.name);
      if (root_name.empty()) root_name = d.name;
    } else if (d.kind == Declaration::kRoot) {
      root_name = d.name;
    }
  }
  for (const Declaration& d : declarations) {
    if (d.kind != Declaration::kElement) continue;
    for (const std::string& token : NameTokens(d.body)) {
      if (token == "EMPTY" || token == "PCDATA" || token == "ANY" ||
          token == "epsilon" || token == "__pcdata__") {
        continue;
      }
      add_name(token);
    }
  }
  if (names.empty()) {
    return Status::InvalidArgument("DTD declares no element types");
  }
  if (root_name.empty()) root_name = names[0];
  add_name(root_name);

  // Pass 2: build.
  Dtd::Builder builder(names, root_name);
  for (const Declaration& d : declarations) {
    switch (d.kind) {
      case Declaration::kElement: {
        std::string body = d.body;
        if (StripWhitespace(body) == "EMPTY" || StripWhitespace(body).empty()) {
          builder.SetContent(d.name, Regex::Epsilon());
        } else if (StripWhitespace(body) == "ANY") {
          return Status::Unsupported("ANY content models are not supported");
        } else {
          builder.SetContent(d.name, body);
        }
        break;
      }
      case Declaration::kAttlist: {
        for (const std::string& token : NameTokens(d.body)) {
          if (token == "CDATA" || token == "ID" || token == "IDREF" ||
              token == "REQUIRED" || token == "IMPLIED" || token == "FIXED") {
            continue;
          }
          builder.AddAttribute(d.name, token);
        }
        break;
      }
      case Declaration::kRoot:
        break;
    }
  }
  return builder.Build();
}

}  // namespace xmlverify
