// Minimal XML document parser, sufficient for documents in the
// paper's model: elements with attributes and text content. No
// namespaces, processing instructions, CDATA sections, or entity
// references other than the five predefined ones.
#ifndef XMLVERIFY_XML_XML_PARSER_H_
#define XMLVERIFY_XML_XML_PARSER_H_

#include <string>

#include "base/status.h"
#include "xml/dtd.h"
#include "xml/tree.h"

namespace xmlverify {

/// Parses `text` into an XmlTree whose element names are resolved
/// against `dtd`. The document's root element must be the DTD's root
/// type. Whitespace-only text between elements is dropped.
Result<XmlTree> ParseXmlDocument(const std::string& text, const Dtd& dtd);

}  // namespace xmlverify

#endif  // XMLVERIFY_XML_XML_PARSER_H_
