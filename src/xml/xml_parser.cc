#include "xml/xml_parser.h"

#include <cctype>
#include <optional>
#include <vector>

#include "base/string_util.h"

namespace xmlverify {

namespace {

class XmlParser {
 public:
  XmlParser(const std::string& text, const Dtd& dtd)
      : text_(text), dtd_(dtd) {}

  Result<XmlTree> Parse() {
    SkipMisc();
    ASSIGN_OR_RETURN(std::string root_name, ExpectOpenTag());
    ASSIGN_OR_RETURN(int root_type, dtd_.TypeId(root_name));
    if (root_type != dtd_.root()) {
      return Status::InvalidArgument("document root '" + root_name +
                                     "' is not the DTD root '" +
                                     dtd_.TypeName(dtd_.root()) + "'");
    }
    XmlTree tree(root_type);
    RETURN_IF_ERROR(ParseAttributesAndBody(&tree, tree.root(), root_name));
    SkipMisc();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing content after root element");
    }
    return tree;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // Skips whitespace, comments, and the XML declaration.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (StartsWith(Rest(), "<?")) {
        size_t end = text_.find("?>", pos_);
        pos_ = end == std::string::npos ? text_.size() : end + 2;
        continue;
      }
      if (StartsWith(Rest(), "<!--")) {
        size_t end = text_.find("-->", pos_);
        pos_ = end == std::string::npos ? text_.size() : end + 3;
        continue;
      }
      break;
    }
  }

  std::string_view Rest() const {
    return std::string_view(text_).substr(pos_);
  }

  Result<std::string> ReadName() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected a name at offset " +
                                     std::to_string(pos_));
    }
    return text_.substr(start, pos_ - start);
  }

  // Consumes "<name" and returns the name.
  Result<std::string> ExpectOpenTag() {
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Status::InvalidArgument("expected '<' at offset " +
                                     std::to_string(pos_));
    }
    ++pos_;
    return ReadName();
  }

  static std::string DecodeEntities(std::string_view raw) {
    std::string out;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      std::string_view rest = raw.substr(i);
      struct Entity { std::string_view name; char value; };
      static constexpr Entity kEntities[] = {
          {"&lt;", '<'}, {"&gt;", '>'}, {"&amp;", '&'},
          {"&quot;", '"'}, {"&apos;", '\''}};
      bool matched = false;
      for (const Entity& entity : kEntities) {
        if (StartsWith(rest, entity.name)) {
          out += entity.value;
          i += entity.name.size() - 1;
          matched = true;
          break;
        }
      }
      if (!matched) out += raw[i];
    }
    return out;
  }

  // After "<name": parses attributes, then either "/>" or
  // ">children</name>".
  Status ParseAttributesAndBody(XmlTree* tree, NodeId node,
                                const std::string& name) {
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated tag <" + name + ">");
      }
      if (StartsWith(Rest(), "/>")) {
        pos_ += 2;
        return Status::OK();
      }
      if (text_[pos_] == '>') {
        ++pos_;
        return ParseChildren(tree, node, name);
      }
      ASSIGN_OR_RETURN(std::string attribute, ReadName());
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '=') {
        return Status::InvalidArgument("expected '=' after attribute '" +
                                       attribute + "'");
      }
      ++pos_;
      SkipWhitespace();
      if (pos_ >= text_.size() ||
          (text_[pos_] != '"' && text_[pos_] != '\'')) {
        return Status::InvalidArgument("expected quoted value for '" +
                                       attribute + "'");
      }
      char quote = text_[pos_++];
      size_t end = text_.find(quote, pos_);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated attribute value for '" +
                                       attribute + "'");
      }
      tree->SetAttribute(
          node, attribute,
          DecodeEntities(std::string_view(text_).substr(pos_, end - pos_)));
      pos_ = end + 1;
    }
  }

  Status ParseChildren(XmlTree* tree, NodeId node, const std::string& name) {
    std::string pending_text;
    auto flush_text = [&]() {
      std::string_view stripped = StripWhitespace(pending_text);
      if (!stripped.empty()) {
        tree->AddText(node, DecodeEntities(stripped));
      }
      pending_text.clear();
    };
    while (true) {
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("missing </" + name + ">");
      }
      if (StartsWith(Rest(), "</")) {
        flush_text();
        pos_ += 2;
        ASSIGN_OR_RETURN(std::string close_name, ReadName());
        if (close_name != name) {
          return Status::InvalidArgument("mismatched close tag </" +
                                         close_name + "> for <" + name + ">");
        }
        SkipWhitespace();
        if (pos_ >= text_.size() || text_[pos_] != '>') {
          return Status::InvalidArgument("malformed close tag </" +
                                         close_name + ">");
        }
        ++pos_;
        return Status::OK();
      }
      if (StartsWith(Rest(), "<!--")) {
        size_t end = text_.find("-->", pos_);
        if (end == std::string::npos) {
          return Status::InvalidArgument("unterminated comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (text_[pos_] == '<') {
        flush_text();
        ASSIGN_OR_RETURN(std::string child_name, ExpectOpenTag());
        ASSIGN_OR_RETURN(int child_type, dtd_.TypeId(child_name));
        NodeId child = tree->AddElement(node, child_type);
        RETURN_IF_ERROR(ParseAttributesAndBody(tree, child, child_name));
        continue;
      }
      pending_text += text_[pos_++];
    }
  }

  const std::string& text_;
  const Dtd& dtd_;
  size_t pos_ = 0;
};

}  // namespace

Result<XmlTree> ParseXmlDocument(const std::string& text, const Dtd& dtd) {
  XmlParser parser(text, dtd);
  return parser.Parse();
}

}  // namespace xmlverify
