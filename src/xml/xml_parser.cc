#include "xml/xml_parser.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <optional>
#include <vector>

#include "base/resource_guard.h"
#include "base/string_util.h"

namespace xmlverify {

namespace {

class XmlParser {
 public:
  XmlParser(const std::string& text, const Dtd& dtd)
      : text_(text), dtd_(dtd) {}

  Result<XmlTree> Parse() {
    SkipMisc();
    ASSIGN_OR_RETURN(std::string root_name, ExpectOpenTag());
    ASSIGN_OR_RETURN(int root_type, dtd_.TypeId(root_name));
    if (root_type != dtd_.root()) {
      return Status::InvalidArgument("document root '" + root_name +
                                     "' is not the DTD root '" +
                                     dtd_.TypeName(dtd_.root()) + "'");
    }
    XmlTree tree(root_type);
    RETURN_IF_ERROR(ParseAttributesAndBody(&tree, tree.root(), root_name));
    SkipMisc();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing content after root element");
    }
    return tree;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // Skips whitespace, comments, and the XML declaration.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (StartsWith(Rest(), "<?")) {
        size_t end = text_.find("?>", pos_);
        pos_ = end == std::string::npos ? text_.size() : end + 2;
        continue;
      }
      if (StartsWith(Rest(), "<!--")) {
        size_t end = text_.find("-->", pos_);
        pos_ = end == std::string::npos ? text_.size() : end + 3;
        continue;
      }
      break;
    }
  }

  std::string_view Rest() const {
    return std::string_view(text_).substr(pos_);
  }

  Result<std::string> ReadName() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected a name at offset " +
                                     std::to_string(pos_));
    }
    return text_.substr(start, pos_ - start);
  }

  // Consumes "<name" and returns the name.
  Result<std::string> ExpectOpenTag() {
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Status::InvalidArgument("expected '<' at offset " +
                                     std::to_string(pos_));
    }
    ++pos_;
    return ReadName();
  }

  // Appends the UTF-8 encoding of `code_point` (already validated as
  // a scalar value) to `out`.
  static void AppendUtf8(uint32_t code_point, std::string* out) {
    if (code_point < 0x80) {
      out->push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else if (code_point < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
  }

  // Decodes the five XML named entities plus numeric character
  // references (&#NN; decimal, &#xHH; hex). XML allows no unescaped
  // '&' in content or attribute values, so a bare, unterminated,
  // unknown, or malformed reference is an InvalidArgument — passing
  // the raw '&' through would silently change attribute values that
  // the key/foreign-key semantics compare for equality.
  static Result<std::string> DecodeEntities(std::string_view raw) {
    // Longest legal reference we accept: "&#x10FFFF;" and the named
    // entities are all far shorter.
    constexpr size_t kMaxReferenceLength = 12;
    std::string out;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      std::string_view rest = raw.substr(i);
      size_t semi = rest.find(';');
      if (semi == std::string_view::npos || semi > kMaxReferenceLength) {
        return Status::InvalidArgument(
            "unterminated entity reference at '" +
            std::string(rest.substr(0, std::min<size_t>(rest.size(),
                                                        kMaxReferenceLength))) +
            "'");
      }
      std::string_view body = rest.substr(1, semi - 1);
      if (body.empty()) {
        return Status::InvalidArgument("empty entity reference '&;'");
      }
      if (body[0] == '#') {
        bool hex = body.size() >= 2 && (body[1] == 'x' || body[1] == 'X');
        std::string_view digits = body.substr(hex ? 2 : 1);
        if (digits.empty()) {
          return Status::InvalidArgument(
              "numeric character reference with no digits: '&" +
              std::string(body) + ";'");
        }
        uint32_t value = 0;
        for (char c : digits) {
          int digit;
          if (c >= '0' && c <= '9') {
            digit = c - '0';
          } else if (hex && c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
          } else if (hex && c >= 'A' && c <= 'F') {
            digit = c - 'A' + 10;
          } else {
            return Status::InvalidArgument(
                "malformed numeric character reference: '&" +
                std::string(body) + ";'");
          }
          value = value * (hex ? 16 : 10) + static_cast<uint32_t>(digit);
          if (value > 0x10FFFF) {
            return Status::InvalidArgument(
                "character reference beyond U+10FFFF: '&" +
                std::string(body) + ";'");
          }
        }
        // U+0000 and the surrogate block are not XML characters.
        if (value == 0 || (value >= 0xD800 && value <= 0xDFFF)) {
          return Status::InvalidArgument("invalid character reference: '&" +
                                         std::string(body) + ";'");
        }
        AppendUtf8(value, &out);
        i += semi;
        continue;
      }
      struct Entity { std::string_view name; char value; };
      static constexpr Entity kEntities[] = {
          {"lt", '<'}, {"gt", '>'}, {"amp", '&'},
          {"quot", '"'}, {"apos", '\''}};
      bool matched = false;
      for (const Entity& entity : kEntities) {
        if (body == entity.name) {
          out += entity.value;
          matched = true;
          break;
        }
      }
      if (!matched) {
        return Status::InvalidArgument("unknown entity reference: '&" +
                                       std::string(body) + ";'");
      }
      i += semi;
    }
    return out;
  }

  // After "<name": parses attributes, then either "/>" or
  // ">children</name>".
  Status ParseAttributesAndBody(XmlTree* tree, NodeId node,
                                const std::string& name) {
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated tag <" + name + ">");
      }
      if (StartsWith(Rest(), "/>")) {
        pos_ += 2;
        return Status::OK();
      }
      if (text_[pos_] == '>') {
        ++pos_;
        return ParseChildren(tree, node, name);
      }
      ASSIGN_OR_RETURN(std::string attribute, ReadName());
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '=') {
        return Status::InvalidArgument("expected '=' after attribute '" +
                                       attribute + "'");
      }
      ++pos_;
      SkipWhitespace();
      if (pos_ >= text_.size() ||
          (text_[pos_] != '"' && text_[pos_] != '\'')) {
        return Status::InvalidArgument("expected quoted value for '" +
                                       attribute + "'");
      }
      char quote = text_[pos_++];
      size_t end = text_.find(quote, pos_);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated attribute value for '" +
                                       attribute + "'");
      }
      ASSIGN_OR_RETURN(
          std::string value,
          DecodeEntities(std::string_view(text_).substr(pos_, end - pos_)));
      // Well-formedness constraint "Unique Att Spec": <a x="1" x="2"/>
      // is not XML. Last-write-wins here would silently change the
      // attribute values the key/foreign-key semantics compare.
      if (tree->HasAttribute(node, attribute)) {
        return Status::InvalidArgument("duplicate attribute '" + attribute +
                                       "' on <" + name + ">");
      }
      tree->SetAttribute(node, attribute, std::move(value));
      pos_ = end + 1;
    }
  }

  Status ParseChildren(XmlTree* tree, NodeId node, const std::string& name) {
    std::string pending_text;
    auto flush_text = [&]() -> Status {
      std::string_view stripped = StripWhitespace(pending_text);
      if (!stripped.empty()) {
        ASSIGN_OR_RETURN(std::string decoded, DecodeEntities(stripped));
        tree->AddText(node, std::move(decoded));
      }
      pending_text.clear();
      return Status::OK();
    };
    while (true) {
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("missing </" + name + ">");
      }
      if (StartsWith(Rest(), "</")) {
        RETURN_IF_ERROR(flush_text());
        pos_ += 2;
        ASSIGN_OR_RETURN(std::string close_name, ReadName());
        if (close_name != name) {
          return Status::InvalidArgument("mismatched close tag </" +
                                         close_name + "> for <" + name + ">");
        }
        SkipWhitespace();
        if (pos_ >= text_.size() || text_[pos_] != '>') {
          return Status::InvalidArgument("malformed close tag </" +
                                         close_name + ">");
        }
        ++pos_;
        return Status::OK();
      }
      if (StartsWith(Rest(), "<!--")) {
        size_t end = text_.find("-->", pos_);
        if (end == std::string::npos) {
          return Status::InvalidArgument("unterminated comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (text_[pos_] == '<') {
        RETURN_IF_ERROR(flush_text());
        ASSIGN_OR_RETURN(std::string child_name, ExpectOpenTag());
        ASSIGN_OR_RETURN(int child_type, dtd_.TypeId(child_name));
        NodeId child = tree->AddElement(node, child_type);
        // Element nesting drives the ParseChildren <->
        // ParseAttributesAndBody recursion; guard it so pathologically
        // deep documents fail as a parse error, not a stack overflow.
        if (++depth_ > MaxParseDepth()) {
          --depth_;
          return Status::ResourceExhausted(
              "element nesting exceeds the depth ceiling of " +
              std::to_string(MaxParseDepth()));
        }
        Status body = ParseAttributesAndBody(tree, child, child_name);
        --depth_;
        RETURN_IF_ERROR(body);
        continue;
      }
      pending_text += text_[pos_++];
    }
  }

  const std::string& text_;
  const Dtd& dtd_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<XmlTree> ParseXmlDocument(const std::string& text, const Dtd& dtd) {
  XmlParser parser(text, dtd);
  return parser.Parse();
}

}  // namespace xmlverify
