// XML trees, following Definition 2.2 of the paper:
// T = (V, lab, ele, att, val, root). Element nodes carry an element
// type and an ordered child list; text nodes carry a string value;
// attributes are stored inline on their element (equivalent to the
// paper's attribute nodes, since attributes are unordered and
// identified by name).
#ifndef XMLVERIFY_XML_TREE_H_
#define XMLVERIFY_XML_TREE_H_

#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "xml/dtd.h"

namespace xmlverify {

/// Node handle. The root element is always node 0.
using NodeId = int;

class XmlTree {
 public:
  static constexpr int kTextNode = -1;

  /// Creates a tree whose root element has type `root_type`.
  explicit XmlTree(int root_type);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  NodeId root() const { return 0; }

  bool IsText(NodeId node) const { return nodes_[node].type == kTextNode; }
  /// Element type of an element node.
  int TypeOf(NodeId node) const { return nodes_[node].type; }
  /// Value of a text node.
  const std::string& TextOf(NodeId node) const { return nodes_[node].text; }
  NodeId ParentOf(NodeId node) const { return nodes_[node].parent; }
  /// Ordered subelements and text children (the paper's ele).
  const std::vector<NodeId>& ChildrenOf(NodeId node) const {
    return nodes_[node].children;
  }

  /// Appends a new element child of type `type` under `parent`.
  NodeId AddElement(NodeId parent, int type);
  /// Appends a new text child with value `text` under `parent`.
  NodeId AddText(NodeId parent, std::string text);

  /// Sets attribute `name` of an element node (the paper's att/val).
  void SetAttribute(NodeId node, const std::string& name, std::string value);
  bool HasAttribute(NodeId node, const std::string& name) const;
  /// Value of attribute `name`; error if absent.
  Result<std::string> Attribute(NodeId node, const std::string& name) const;
  const std::map<std::string, std::string>& AttributesOf(NodeId node) const {
    return nodes_[node].attributes;
  }

  /// ext(tau): all element nodes of type `type`, in document order.
  std::vector<NodeId> ElementsOfType(int type) const;

  /// True if `descendant` is a proper descendant of `ancestor`
  /// (the paper's x ≺ y).
  bool IsDescendant(NodeId ancestor, NodeId descendant) const;

  /// Element-type path from the root to `node` (the paper's
  /// rho(root, node)), as symbol ids, including both endpoints.
  std::vector<int> PathFromRoot(NodeId node) const;

  /// Pre-order list of all element nodes.
  std::vector<NodeId> AllElements() const;

  /// Serializes as indented XML text using the DTD's type names.
  std::string ToXml(const Dtd& dtd) const;

 private:
  struct Node {
    int type;  // element type id, or kTextNode
    NodeId parent;
    std::vector<NodeId> children;
    std::map<std::string, std::string> attributes;
    std::string text;  // text nodes only
  };

  std::vector<Node> nodes_;
};

/// Structural equality: same shape, element types, attribute maps,
/// and text values, with children compared in document order. This is
/// the equality the serializer↔parser round-trip property is stated
/// over (Parse(Serialize(T)) == T).
bool TreesEqual(const XmlTree& a, const XmlTree& b);

}  // namespace xmlverify

#endif  // XMLVERIFY_XML_TREE_H_
