#include "xml/validator.h"

namespace xmlverify {

Status CheckConforms(const XmlTree& tree, const Dtd& dtd) {
  if (tree.TypeOf(tree.root()) != dtd.root()) {
    return Status::InvalidArgument(
        "root element has type '" + dtd.TypeName(tree.TypeOf(tree.root())) +
        "', expected '" + dtd.TypeName(dtd.root()) + "'");
  }
  for (NodeId node : tree.AllElements()) {
    int type = tree.TypeOf(node);
    // Child label word must be in L(P(tau)).
    const Dfa& dfa = dtd.ContentDfa(type);
    int state = dfa.start();
    for (NodeId child : tree.ChildrenOf(node)) {
      int symbol = tree.IsText(child) ? dtd.pcdata_symbol()
                                      : tree.TypeOf(child);
      state = dfa.Next(state, symbol);
    }
    if (!dfa.IsAccepting(state)) {
      std::string word;
      for (NodeId child : tree.ChildrenOf(node)) {
        if (!word.empty()) word += ".";
        word += tree.IsText(child) ? "#PCDATA"
                                   : dtd.TypeName(tree.TypeOf(child));
      }
      return Status::InvalidArgument(
          "children of a '" + dtd.TypeName(type) + "' element (" + word +
          ") do not match its content model");
    }
    // Attributes must be exactly R(tau).
    for (const std::string& attribute : dtd.Attributes(type)) {
      if (!tree.HasAttribute(node, attribute)) {
        return Status::InvalidArgument("a '" + dtd.TypeName(type) +
                                       "' element is missing attribute '" +
                                       attribute + "'");
      }
    }
    for (const auto& [attribute, value] : tree.AttributesOf(node)) {
      (void)value;
      if (!dtd.HasAttribute(type, attribute)) {
        return Status::InvalidArgument(
            "a '" + dtd.TypeName(type) + "' element carries attribute '" +
            attribute + "' not declared in the DTD");
      }
    }
  }
  return Status::OK();
}

bool Conforms(const XmlTree& tree, const Dtd& dtd) {
  return CheckConforms(tree, dtd).ok();
}

}  // namespace xmlverify
