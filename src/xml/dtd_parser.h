// Parser for textual DTDs.
//
// Supported declarations, one per line (whitespace-insensitive):
//   <!ELEMENT name (content)>      content in DTD syntax: ',' or '.'
//                                  for sequence, '|' for choice, '*',
//                                  '+', '?', '#PCDATA', EMPTY
//   <!ATTLIST name attr1 attr2 …>  attributes of `name` (all CDATA
//                                  #REQUIRED in the paper's model; any
//                                  trailing CDATA/#REQUIRED tokens are
//                                  accepted and ignored)
//   root name                      designates the root element type
//                                  (defaults to the first ELEMENT)
// Element types referenced in content but never declared default to
// empty content (epsilon), matching the paper's habit of omitting
// trivial declarations.
#ifndef XMLVERIFY_XML_DTD_PARSER_H_
#define XMLVERIFY_XML_DTD_PARSER_H_

#include <string>

#include "base/status.h"
#include "xml/dtd.h"

namespace xmlverify {

Result<Dtd> ParseDtd(const std::string& text);

}  // namespace xmlverify

#endif  // XMLVERIFY_XML_DTD_PARSER_H_
