// DTD conformance checking: T |= D (Definition 2.2).
#ifndef XMLVERIFY_XML_VALIDATOR_H_
#define XMLVERIFY_XML_VALIDATOR_H_

#include "base/status.h"
#include "xml/dtd.h"
#include "xml/tree.h"

namespace xmlverify {

/// Verifies that `tree` conforms to `dtd`:
///   * the root has the root element type;
///   * each element's ordered child labels match P(tau) (content
///     models are compiled to DFAs);
///   * each element carries exactly the attributes R(tau);
///   * text nodes appear only where the content model admits S.
/// Returns OK or the first violation found.
Status CheckConforms(const XmlTree& tree, const Dtd& dtd);

/// Convenience wrapper: true iff CheckConforms returns OK.
bool Conforms(const XmlTree& tree, const Dtd& dtd);

}  // namespace xmlverify

#endif  // XMLVERIFY_XML_VALIDATOR_H_
