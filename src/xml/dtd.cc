#include "xml/dtd.h"

#include <algorithm>
#include <deque>
#include <set>

#include "base/string_util.h"

namespace xmlverify {

std::string Dtd::SymbolName(int symbol) const {
  if (symbol == pcdata_symbol()) return "#PCDATA";
  return types_[symbol].name;
}

Result<int> Dtd::TypeId(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("unknown element type: '" + name + "'");
  }
  return it->second;
}

int Dtd::FindType(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

bool Dtd::HasAttribute(int type, const std::string& attribute) const {
  const std::vector<std::string>& attrs = types_[type].attributes;
  return std::find(attrs.begin(), attrs.end(), attribute) != attrs.end();
}

bool Dtd::IsRecursive() const {
  // DFS from the root with colors: detect a cycle among reachable
  // element types.
  enum Color { kWhite, kGray, kBlack };
  std::vector<Color> color(types_.size(), kWhite);
  // Iterative DFS with an explicit stack of (type, child index).
  std::vector<std::pair<int, size_t>> stack;
  stack.emplace_back(root_, 0);
  color[root_] = kGray;
  while (!stack.empty()) {
    auto& [type, child_index] = stack.back();
    if (child_index < types_[type].child_types.size()) {
      int child = types_[type].child_types[child_index++];
      if (color[child] == kGray) return true;
      if (color[child] == kWhite) {
        color[child] = kGray;
        stack.emplace_back(child, 0);
      }
    } else {
      color[type] = kBlack;
      stack.pop_back();
    }
  }
  return false;
}

namespace {

// Can `regex` derive some word over productive element types (S and
// epsilon always qualify)?
bool Derivable(const Regex& regex, const std::vector<bool>& productive,
               int pcdata_symbol) {
  switch (regex.kind()) {
    case RegexKind::kEpsilon:
      return true;
    case RegexKind::kWildcard:
      return false;  // not allowed in content models anyway
    case RegexKind::kSymbol:
      return regex.symbol() == pcdata_symbol || productive[regex.symbol()];
    case RegexKind::kConcat:
      return Derivable(regex.left(), productive, pcdata_symbol) &&
             Derivable(regex.right(), productive, pcdata_symbol);
    case RegexKind::kUnion:
      return Derivable(regex.left(), productive, pcdata_symbol) ||
             Derivable(regex.right(), productive, pcdata_symbol);
    case RegexKind::kStar:
      return true;  // zero repetitions
  }
  return false;
}

}  // namespace

bool Dtd::IsSatisfiable() const {
  std::vector<bool> productive(types_.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t type = 0; type < types_.size(); ++type) {
      if (productive[type]) continue;
      if (Derivable(types_[type].content, productive, pcdata_symbol())) {
        productive[type] = true;
        changed = true;
      }
    }
  }
  return productive[root_];
}

bool Dtd::IsNoStar() const {
  for (const ElementType& type : types_) {
    if (!type.content.IsStarFree()) return false;
  }
  return true;
}

Result<int> Dtd::Depth() const {
  if (IsRecursive()) {
    return Status::InvalidArgument("Depth(D) is undefined: DTD is recursive");
  }
  // Longest path from root in the type DAG, by memoized DFS.
  std::vector<int> memo(types_.size(), -1);
  // Post-order via explicit stack.
  std::vector<std::pair<int, bool>> stack = {{root_, false}};
  while (!stack.empty()) {
    auto [type, expanded] = stack.back();
    stack.pop_back();
    if (memo[type] >= 0) continue;
    if (expanded) {
      int best = 0;
      for (int child : types_[type].child_types) {
        best = std::max(best, memo[child]);
      }
      memo[type] = best + 1;
    } else {
      stack.emplace_back(type, true);
      for (int child : types_[type].child_types) {
        if (memo[child] < 0) stack.emplace_back(child, false);
      }
    }
  }
  return memo[root_];
}

const Dfa& Dtd::ContentDfa(int type) const {
  if (content_dfas_.empty()) content_dfas_.resize(types_.size());
  if (!content_dfas_[type].has_value()) {
    // The per-DTD memo above avoids repeated lookups; the global cache
    // additionally shares the determinization across specifications
    // whose content models coincide (common in batch manifests).
    content_dfas_[type] =
        CachedDeterminize(types_[type].content, content_alphabet_size());
  }
  return *content_dfas_[type];
}

std::string Dtd::ToString() const {
  std::string out;
  auto name_of = [this](int symbol) { return SymbolName(symbol); };
  for (int type = 0; type < num_element_types(); ++type) {
    out += "<!ELEMENT " + types_[type].name + " (" +
           types_[type].content.ToString(name_of) + ")>\n";
    for (const std::string& attribute : types_[type].attributes) {
      out += "<!ATTLIST " + types_[type].name + " " + attribute +
             " CDATA #REQUIRED>\n";
    }
  }
  return out;
}

Dtd::Builder::Builder(const std::vector<std::string>& names,
                      const std::string& root_name) {
  for (const std::string& name : names) {
    if (!IsValidName(name)) {
      RecordError(Status::InvalidArgument("bad element type name: '" + name +
                                          "'"));
      continue;
    }
    if (dtd_.index_.count(name) > 0) {
      RecordError(
          Status::InvalidArgument("duplicate element type: '" + name + "'"));
      continue;
    }
    dtd_.index_[name] = static_cast<int>(dtd_.types_.size());
    Dtd::ElementType type;
    type.name = name;
    type.content = Regex::Epsilon();
    dtd_.types_.push_back(std::move(type));
  }
  auto it = dtd_.index_.find(root_name);
  if (it == dtd_.index_.end()) {
    RecordError(Status::InvalidArgument("root type '" + root_name +
                                        "' is not among the declared types"));
  } else {
    dtd_.root_ = it->second;
  }
  content_set_.assign(dtd_.types_.size(), false);
}

void Dtd::Builder::RecordError(Status status) {
  if (status_.ok()) status_ = std::move(status);
}

int Dtd::Builder::Symbol(const std::string& name) {
  auto it = dtd_.index_.find(name);
  if (it == dtd_.index_.end()) {
    RecordError(Status::NotFound("unknown element type: '" + name + "'"));
    return -1;
  }
  return it->second;
}

Dtd::Builder& Dtd::Builder::SetContent(const std::string& name,
                                       Regex content) {
  int type = Symbol(name);
  if (type < 0) return *this;
  if (content_set_[type]) {
    RecordError(Status::InvalidArgument("content of '" + name +
                                        "' set more than once"));
    return *this;
  }
  content_set_[type] = true;
  dtd_.types_[type].content = std::move(content);
  return *this;
}

Dtd::Builder& Dtd::Builder::SetContent(const std::string& name,
                                       const std::string& content_text) {
  auto resolve = [this](const std::string& symbol_name) -> int {
    if (symbol_name == "PCDATA" || symbol_name == "__pcdata__") {
      return pcdata_symbol();
    }
    auto it = dtd_.index_.find(symbol_name);
    return it == dtd_.index_.end() ? -1 : it->second;
  };
  // Accept DTD-style "#PCDATA".
  std::string text = content_text;
  size_t pos;
  while ((pos = text.find("#PCDATA")) != std::string::npos) {
    text.replace(pos, 7, "__pcdata__");
  }
  Result<Regex> content = ParseRegex(text, resolve);
  if (!content.ok()) {
    // Keep the original status code: a ResourceExhausted from the
    // regex depth ceiling must stay ResourceExhausted (callers key
    // retry/abort decisions on the code, not the message).
    RecordError(Status(content.status().code(),
                       "in content of '" + name +
                           "': " + content.status().message()));
    return *this;
  }
  return SetContent(name, std::move(content).value());
}

Dtd::Builder& Dtd::Builder::AddAttribute(const std::string& name,
                                         const std::string& attribute) {
  int type = Symbol(name);
  if (type < 0) return *this;
  if (!IsValidName(attribute)) {
    RecordError(
        Status::InvalidArgument("bad attribute name: '" + attribute + "'"));
    return *this;
  }
  std::vector<std::string>& attrs = dtd_.types_[type].attributes;
  if (std::find(attrs.begin(), attrs.end(), attribute) != attrs.end()) {
    RecordError(Status::InvalidArgument("duplicate attribute '" + attribute +
                                        "' on '" + name + "'"));
    return *this;
  }
  attrs.push_back(attribute);
  return *this;
}

Result<Dtd> Dtd::Builder::Build() {
  RETURN_IF_ERROR(status_);
  // Derive child-type edges from the content models.
  for (int type = 0; type < dtd_.num_element_types(); ++type) {
    std::vector<int> symbols = dtd_.types_[type].content.Symbols();
    std::vector<int>& children = dtd_.types_[type].child_types;
    for (int symbol : symbols) {
      if (symbol != dtd_.pcdata_symbol()) children.push_back(symbol);
    }
  }
  // Definition 2.1: the root type r does not appear in any P(tau).
  for (int type = 0; type < dtd_.num_element_types(); ++type) {
    const std::vector<int>& children = dtd_.types_[type].child_types;
    if (std::find(children.begin(), children.end(), dtd_.root_) !=
        children.end()) {
      return Status::InvalidArgument(
          "root type '" + dtd_.TypeName(dtd_.root_) +
          "' appears in the content model of '" + dtd_.TypeName(type) + "'");
    }
  }
  // Every type must be connected to the root.
  std::vector<bool> reachable(dtd_.num_element_types(), false);
  std::deque<int> frontier = {dtd_.root_};
  reachable[dtd_.root_] = true;
  while (!frontier.empty()) {
    int type = frontier.front();
    frontier.pop_front();
    for (int child : dtd_.types_[type].child_types) {
      if (!reachable[child]) {
        reachable[child] = true;
        frontier.push_back(child);
      }
    }
  }
  for (int type = 0; type < dtd_.num_element_types(); ++type) {
    if (!reachable[type]) {
      return Status::InvalidArgument("element type '" + dtd_.TypeName(type) +
                                     "' is not connected to the root");
    }
  }
  return std::move(dtd_);
}

}  // namespace xmlverify
