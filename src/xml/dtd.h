// Document Type Definitions, following Definition 2.1 of the paper:
// D = (E, A, P, R, r) with element types E, attributes A, element type
// definitions P(tau) (regular expressions over E and the string type
// S), attribute sets R(tau), and a root type r that appears in no
// P(tau).
//
// Element types are interned as dense integer ids 0..n-1; the string
// type S is the extra symbol id n, so content models are plain Regex
// values over the alphabet {0..n}.
#ifndef XMLVERIFY_XML_DTD_H_
#define XMLVERIFY_XML_DTD_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "regex/automaton.h"
#include "regex/regex.h"

namespace xmlverify {

class Dtd {
 public:
  class Builder;

  int num_element_types() const { return static_cast<int>(types_.size()); }
  /// Symbol id of the string type S in content models.
  int pcdata_symbol() const { return num_element_types(); }
  /// Content-model alphabet size: element types plus S.
  int content_alphabet_size() const { return num_element_types() + 1; }

  int root() const { return root_; }
  const std::string& TypeName(int type) const { return types_[type].name; }
  /// Display name for any content-model symbol (element type or S).
  std::string SymbolName(int symbol) const;

  /// Id of a type name, or error if unknown.
  Result<int> TypeId(const std::string& name) const;
  /// Id of a type name, or -1 if unknown.
  int FindType(const std::string& name) const;

  const Regex& Content(int type) const { return types_[type].content; }
  const std::vector<std::string>& Attributes(int type) const {
    return types_[type].attributes;
  }
  bool HasAttribute(int type, const std::string& attribute) const;

  /// Element types tau' appearing in the alphabet of P(tau): the
  /// parent-child edges of the DTD graph (paths of Section 2 follow
  /// these edges).
  const std::vector<int>& ChildTypes(int type) const {
    return types_[type].child_types;
  }

  /// True if Paths(D) is infinite, i.e., the DTD graph has a cycle
  /// reachable from the root.
  bool IsRecursive() const;

  /// True if at least one (finite) tree conforms to the DTD — i.e.,
  /// the root type is productive. Computed by the classical
  /// productive-symbol fixpoint over the content models; linear-ish
  /// time, no solver involved. A recursive type like
  /// <!ELEMENT a (a)> is unproductive: every candidate tree would be
  /// infinite.
  bool IsSatisfiable() const;

  /// True if no Kleene star occurs in any P(tau) ("no-star DTD").
  bool IsNoStar() const;

  /// Depth(D) = max length of a path from the root (Section 3.3).
  /// Only defined for non-recursive DTDs.
  Result<int> Depth() const;

  /// Per-type DFAs for the content models, for validation. Cached.
  const Dfa& ContentDfa(int type) const;

  /// Renders the DTD in <!ELEMENT ...> syntax (with ATTLIST lines).
  std::string ToString() const;

 private:
  struct ElementType {
    std::string name;
    Regex content;
    std::vector<std::string> attributes;
    std::vector<int> child_types;
  };

  std::vector<ElementType> types_;
  std::map<std::string, int> index_;
  int root_ = 0;
  // Lazily built per-type content DFAs.
  mutable std::vector<std::optional<Dfa>> content_dfas_;
};

/// Two-phase construction: declare every element type up front (ids
/// and the pcdata symbol are fixed from that point), then attach
/// content models and attributes.
class Dtd::Builder {
 public:
  /// `names` lists all element types (must include `root_name`).
  Builder(const std::vector<std::string>& names, const std::string& root_name);

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Symbol id of a declared element type; records an error if unknown.
  int Symbol(const std::string& name);
  /// Symbol id of the string type S.
  int pcdata_symbol() const { return static_cast<int>(dtd_.types_.size()); }

  /// Sets P(name) = content. Unset types default to epsilon.
  Builder& SetContent(const std::string& name, Regex content);
  /// Parses `content_text` in the regex syntax ('.' or ',' for
  /// concatenation, '|', '*', '+', '?', '%' for epsilon, '#PCDATA').
  Builder& SetContent(const std::string& name,
                      const std::string& content_text);
  /// Adds `attribute` to R(name).
  Builder& AddAttribute(const std::string& name, const std::string& attribute);

  /// Validates the specification (root not used in content models,
  /// every type connected to the root, names well-formed).
  Result<Dtd> Build();

 private:
  void RecordError(Status status);

  Dtd dtd_;
  Status status_;
  std::vector<bool> content_set_;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_XML_DTD_H_
