#include "xml/tree.h"

#include <utility>

namespace xmlverify {

XmlTree::XmlTree(int root_type) {
  Node root;
  root.type = root_type;
  root.parent = -1;
  nodes_.push_back(std::move(root));
}

NodeId XmlTree::AddElement(NodeId parent, int type) {
  Node node;
  node.type = type;
  node.parent = parent;
  nodes_.push_back(std::move(node));
  NodeId id = static_cast<NodeId>(nodes_.size()) - 1;
  nodes_[parent].children.push_back(id);
  return id;
}

NodeId XmlTree::AddText(NodeId parent, std::string text) {
  Node node;
  node.type = kTextNode;
  node.parent = parent;
  node.text = std::move(text);
  nodes_.push_back(std::move(node));
  NodeId id = static_cast<NodeId>(nodes_.size()) - 1;
  nodes_[parent].children.push_back(id);
  return id;
}

void XmlTree::SetAttribute(NodeId node, const std::string& name,
                           std::string value) {
  nodes_[node].attributes[name] = std::move(value);
}

bool XmlTree::HasAttribute(NodeId node, const std::string& name) const {
  return nodes_[node].attributes.count(name) > 0;
}

Result<std::string> XmlTree::Attribute(NodeId node,
                                       const std::string& name) const {
  auto it = nodes_[node].attributes.find(name);
  if (it == nodes_[node].attributes.end()) {
    return Status::NotFound("node has no attribute '" + name + "'");
  }
  return it->second;
}

std::vector<NodeId> XmlTree::ElementsOfType(int type) const {
  std::vector<NodeId> result;
  for (NodeId node = 0; node < num_nodes(); ++node) {
    if (nodes_[node].type == type) result.push_back(node);
  }
  return result;
}

bool XmlTree::IsDescendant(NodeId ancestor, NodeId descendant) const {
  NodeId node = nodes_[descendant].parent;
  while (node >= 0) {
    if (node == ancestor) return true;
    node = nodes_[node].parent;
  }
  return false;
}

std::vector<int> XmlTree::PathFromRoot(NodeId node) const {
  std::vector<int> path;
  for (NodeId cur = node; cur >= 0; cur = nodes_[cur].parent) {
    if (nodes_[cur].type != kTextNode) path.push_back(nodes_[cur].type);
  }
  return std::vector<int>(path.rbegin(), path.rend());
}

std::vector<NodeId> XmlTree::AllElements() const {
  std::vector<NodeId> result;
  std::vector<NodeId> stack = {root()};
  while (!stack.empty()) {
    NodeId node = stack.back();
    stack.pop_back();
    if (nodes_[node].type == kTextNode) continue;
    result.push_back(node);
    const std::vector<NodeId>& children = nodes_[node].children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return result;
}

namespace {

// Escapes the five predefined XML entities (the parser decodes them
// back, so serialization round-trips).
std::string EscapeXml(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

void AppendNode(const XmlTree& tree, const Dtd& dtd, NodeId node, int indent,
                std::string* out) {
  std::string pad(indent * 2, ' ');
  if (tree.IsText(node)) {
    *out += pad + EscapeXml(tree.TextOf(node)) + "\n";
    return;
  }
  const std::string& name = dtd.TypeName(tree.TypeOf(node));
  *out += pad + "<" + name;
  for (const auto& [attribute, value] : tree.AttributesOf(node)) {
    *out += " " + attribute + "=\"" + EscapeXml(value) + "\"";
  }
  if (tree.ChildrenOf(node).empty()) {
    *out += "/>\n";
    return;
  }
  *out += ">\n";
  for (NodeId child : tree.ChildrenOf(node)) {
    AppendNode(tree, dtd, child, indent + 1, out);
  }
  *out += pad + "</" + name + ">\n";
}

}  // namespace

std::string XmlTree::ToXml(const Dtd& dtd) const {
  std::string out;
  AppendNode(*this, dtd, root(), 0, &out);
  return out;
}

bool TreesEqual(const XmlTree& a, const XmlTree& b) {
  if (a.num_nodes() != b.num_nodes()) return false;
  // Iterative pairwise walk (documents can be deeper than the stack).
  std::vector<std::pair<NodeId, NodeId>> pending = {{a.root(), b.root()}};
  while (!pending.empty()) {
    auto [na, nb] = pending.back();
    pending.pop_back();
    if (a.IsText(na) != b.IsText(nb)) return false;
    if (a.IsText(na)) {
      if (a.TextOf(na) != b.TextOf(nb)) return false;
      continue;
    }
    if (a.TypeOf(na) != b.TypeOf(nb)) return false;
    if (a.AttributesOf(na) != b.AttributesOf(nb)) return false;
    const std::vector<NodeId>& ca = a.ChildrenOf(na);
    const std::vector<NodeId>& cb = b.ChildrenOf(nb);
    if (ca.size() != cb.size()) return false;
    for (size_t i = 0; i < ca.size(); ++i) {
      pending.push_back({ca[i], cb[i]});
    }
  }
  return true;
}

}  // namespace xmlverify
