#include "mapping/relational_mapping.h"

#include <algorithm>
#include <set>

#include "base/string_util.h"

namespace xmlverify {

namespace {

bool HasColumn(const RelationalTable& table, const std::string& column) {
  return std::find(table.columns.begin(), table.columns.end(), column) !=
         table.columns.end();
}

}  // namespace

Status RelationalSchema::Validate() const {
  std::set<std::string> table_names;
  for (const RelationalTable& table : tables) {
    if (!IsValidName(table.name)) {
      return Status::InvalidArgument("bad table name: '" + table.name + "'");
    }
    if (!table_names.insert(table.name).second) {
      return Status::InvalidArgument("duplicate table: '" + table.name + "'");
    }
    std::set<std::string> column_names;
    for (const std::string& column : table.columns) {
      if (!IsValidName(column)) {
        return Status::InvalidArgument("bad column name: '" + column + "'");
      }
      if (!column_names.insert(column).second) {
        return Status::InvalidArgument("duplicate column '" + column +
                                       "' in table '" + table.name + "'");
      }
    }
    for (const std::string& key_column : table.primary_key) {
      if (!HasColumn(table, key_column)) {
        return Status::InvalidArgument("primary key column '" + key_column +
                                       "' is not a column of '" + table.name +
                                       "'");
      }
    }
    if (table.min_rows < 0) {
      return Status::InvalidArgument("negative min_rows for '" + table.name +
                                     "'");
    }
    if (table.max_rows != 0 && table.max_rows < table.min_rows) {
      return Status::InvalidArgument("max_rows below min_rows for '" +
                                     table.name + "'");
    }
  }
  for (const RelationalTable& table : tables) {
    for (const RelationalForeignKey& fk : table.foreign_keys) {
      if (!HasColumn(table, fk.column)) {
        return Status::InvalidArgument("foreign key column '" + fk.column +
                                       "' is not a column of '" + table.name +
                                       "'");
      }
      auto target = std::find_if(
          tables.begin(), tables.end(),
          [&fk](const RelationalTable& t) { return t.name == fk.target_table; });
      if (target == tables.end()) {
        return Status::NotFound("foreign key target table '" +
                                fk.target_table + "' does not exist");
      }
      if (!HasColumn(*target, fk.target_column)) {
        return Status::InvalidArgument(
            "foreign key target column '" + fk.target_column +
            "' is not a column of '" + fk.target_table + "'");
      }
    }
  }
  return Status::OK();
}

Result<Specification> MapRelationalSchema(const RelationalSchema& schema,
                                          const std::string& root_name) {
  RETURN_IF_ERROR(schema.Validate());
  if (schema.tables.empty()) {
    return Status::InvalidArgument("schema has no tables");
  }
  std::vector<std::string> names = {root_name};
  for (const RelationalTable& table : schema.tables) {
    if (table.name == root_name) {
      return Status::InvalidArgument("table name collides with the root: '" +
                                     root_name + "'");
    }
    names.push_back(table.name);
  }

  Dtd::Builder builder(names, root_name);
  // db -> per table: name^{min} followed by name* (unbounded) or by
  // (name|%)^{max-min} (bounded).
  std::string root_content;
  auto append = [&root_content](const std::string& piece) {
    if (!root_content.empty()) root_content += ",";
    root_content += piece;
  };
  for (const RelationalTable& table : schema.tables) {
    for (int row = 0; row < table.min_rows; ++row) append(table.name);
    if (table.max_rows == 0) {
      append(table.name + "*");
    } else {
      int optional = table.max_rows - table.min_rows;
      if (optional > 0) {
        append(table.name + "{0," + std::to_string(optional) + "}");
      }
    }
  }
  builder.SetContent(root_name, root_content);
  for (const RelationalTable& table : schema.tables) {
    for (const std::string& column : table.columns) {
      builder.AddAttribute(table.name, column);
    }
  }

  Specification spec;
  ASSIGN_OR_RETURN(spec.dtd, builder.Build());
  // All primary keys first, so a foreign key referencing a declared
  // key column reuses it instead of adding a duplicate.
  for (const RelationalTable& table : schema.tables) {
    ASSIGN_OR_RETURN(int type, spec.dtd.TypeId(table.name));
    if (!table.primary_key.empty()) {
      spec.constraints.Add(AbsoluteKey{type, table.primary_key});
    }
  }
  for (const RelationalTable& table : schema.tables) {
    ASSIGN_OR_RETURN(int type, spec.dtd.TypeId(table.name));
    for (const RelationalForeignKey& fk : table.foreign_keys) {
      ASSIGN_OR_RETURN(int target, spec.dtd.TypeId(fk.target_table));
      spec.constraints.AddForeignKey(
          AbsoluteInclusion{type, {fk.column}, target, {fk.target_column}});
    }
  }
  RETURN_IF_ERROR(spec.constraints.Validate(spec.dtd));
  return spec;
}

}  // namespace xmlverify
