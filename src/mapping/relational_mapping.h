// Relational-to-XML publishing, the paper's opening motivation:
// "Constraints are naturally introduced when one considers
// transformations between XML and relational databases" (citing
// SilkRoute, XPERANTO and constraint-preserving DTD transformations).
//
// This module maps a relational schema — tables with typed-by-name
// columns, a primary key, and foreign keys — to an XML specification:
//   * DTD:   <!ELEMENT db (table1*, table2*, ...)> with one element
//            type per table carrying its columns as attributes;
//   * constraints: multi-attribute primary keys (AC^{*,1}_{PK,FK})
//            and unary foreign keys between row elements.
// The resulting specification lands exactly in the fragment Theorem
// 3.1 proves decidable, so publishing pipelines can be validated at
// compile time before any data is exported.
#ifndef XMLVERIFY_MAPPING_RELATIONAL_MAPPING_H_
#define XMLVERIFY_MAPPING_RELATIONAL_MAPPING_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "core/specification.h"

namespace xmlverify {

struct RelationalForeignKey {
  std::string column;        // referencing column in this table
  std::string target_table;  // referenced table
  std::string target_column; // referenced column (unary, as in Thm 3.1)
};

struct RelationalTable {
  std::string name;
  std::vector<std::string> columns;
  /// Subset of `columns`; empty means no key.
  std::vector<std::string> primary_key;
  std::vector<RelationalForeignKey> foreign_keys;
  /// Minimum number of rows the published document must contain
  /// (e.g., 1 for tables the application seeds). Encoded in the DTD
  /// content model.
  int min_rows = 0;
  /// Maximum number of rows (0 = unbounded). Lets singleton
  /// configuration tables be modeled exactly — cardinality caps are
  /// precisely what makes key/foreign-key interactions non-trivial.
  int max_rows = 0;
};

struct RelationalSchema {
  std::vector<RelationalTable> tables;

  /// Structural well-formedness: unique table/column names, keys and
  /// foreign keys referring to existing columns/tables.
  Status Validate() const;
};

/// Maps the schema to (DTD, constraints). The specification is
/// consistent iff some database instance satisfying the keys, foreign
/// keys and row minimums exists — which the consistency checker then
/// decides (Theorem 3.1 fragment).
Result<Specification> MapRelationalSchema(const RelationalSchema& schema,
                                          const std::string& root_name = "db");

}  // namespace xmlverify

#endif  // XMLVERIFY_MAPPING_RELATIONAL_MAPPING_H_
