#include "checker/document_checker.h"

#include <set>
#include <vector>

#include "regex/automaton.h"
#include "xml/validator.h"

namespace xmlverify {

namespace {

std::vector<int> NonRootTypes(const Dtd& dtd) {
  std::vector<int> symbols;
  for (int type = 0; type < dtd.num_element_types(); ++type) {
    if (type != dtd.root()) symbols.push_back(type);
  }
  return symbols;
}

// Attribute tuple of `node` for `attributes`; error if any is absent.
Result<std::vector<std::string>> Tuple(
    const XmlTree& tree, NodeId node,
    const std::vector<std::string>& attributes) {
  std::vector<std::string> tuple;
  tuple.reserve(attributes.size());
  for (const std::string& attribute : attributes) {
    ASSIGN_OR_RETURN(std::string value, tree.Attribute(node, attribute));
    tuple.push_back(std::move(value));
  }
  return tuple;
}

Status CheckKeyOver(const XmlTree& tree, const std::vector<NodeId>& nodes,
                    const std::vector<std::string>& attributes,
                    const std::string& what) {
  std::set<std::vector<std::string>> seen;
  for (NodeId node : nodes) {
    ASSIGN_OR_RETURN(std::vector<std::string> tuple,
                     Tuple(tree, node, attributes));
    if (!seen.insert(std::move(tuple)).second) {
      return Status::InvalidArgument("key violated: " + what);
    }
  }
  return Status::OK();
}

Status CheckInclusionOver(const XmlTree& tree,
                          const std::vector<NodeId>& child_nodes,
                          const std::vector<std::string>& child_attributes,
                          const std::vector<NodeId>& parent_nodes,
                          const std::vector<std::string>& parent_attributes,
                          const std::string& what) {
  std::set<std::vector<std::string>> parent_tuples;
  for (NodeId node : parent_nodes) {
    ASSIGN_OR_RETURN(std::vector<std::string> tuple,
                     Tuple(tree, node, parent_attributes));
    parent_tuples.insert(std::move(tuple));
  }
  for (NodeId node : child_nodes) {
    ASSIGN_OR_RETURN(std::vector<std::string> tuple,
                     Tuple(tree, node, child_attributes));
    if (parent_tuples.count(tuple) == 0) {
      return Status::InvalidArgument("inclusion violated: " + what);
    }
  }
  return Status::OK();
}

// Descendants of `ancestor` with the given type.
std::vector<NodeId> DescendantsOfType(const XmlTree& tree, NodeId ancestor,
                                      int type) {
  std::vector<NodeId> result;
  for (NodeId node : tree.AllElements()) {
    if (tree.TypeOf(node) == type && tree.IsDescendant(ancestor, node)) {
      result.push_back(node);
    }
  }
  return result;
}

}  // namespace

std::vector<NodeId> NodesOnPath(const XmlTree& tree, const Dtd& dtd,
                                const Regex& node_path) {
  Regex expanded = ExpandWildcard(node_path, NonRootTypes(dtd));
  Dfa dfa = CachedDeterminize(expanded, dtd.num_element_types());
  std::vector<NodeId> result;
  for (NodeId node : tree.AllElements()) {
    if (dfa.Accepts(tree.PathFromRoot(node))) result.push_back(node);
  }
  return result;
}

Status CheckConstraints(const XmlTree& tree, const Dtd& dtd,
                        const ConstraintSet& constraints) {
  for (const AbsoluteKey& key : constraints.absolute_keys()) {
    RETURN_IF_ERROR(CheckKeyOver(tree, tree.ElementsOfType(key.type),
                                 key.attributes, key.ToString(dtd)));
  }
  for (const AbsoluteInclusion& inclusion : constraints.absolute_inclusions()) {
    RETURN_IF_ERROR(CheckInclusionOver(
        tree, tree.ElementsOfType(inclusion.child_type),
        inclusion.child_attributes, tree.ElementsOfType(inclusion.parent_type),
        inclusion.parent_attributes, inclusion.ToString(dtd)));
  }
  for (const RegularKey& key : constraints.regular_keys()) {
    RETURN_IF_ERROR(CheckKeyOver(tree, NodesOnPath(tree, dtd, key.node_path),
                                 {key.attribute}, key.ToString(dtd)));
  }
  for (const RegularInclusion& inclusion : constraints.regular_inclusions()) {
    RETURN_IF_ERROR(CheckInclusionOver(
        tree, NodesOnPath(tree, dtd, inclusion.child_path),
        {inclusion.child_attribute},
        NodesOnPath(tree, dtd, inclusion.parent_path),
        {inclusion.parent_attribute}, inclusion.ToString(dtd)));
  }
  for (const RelativeKey& key : constraints.relative_keys()) {
    for (NodeId context : tree.ElementsOfType(key.context)) {
      RETURN_IF_ERROR(CheckKeyOver(tree,
                                   DescendantsOfType(tree, context, key.type),
                                   {key.attribute}, key.ToString(dtd)));
    }
  }
  for (const RelativeInclusion& inclusion :
       constraints.relative_inclusions()) {
    for (NodeId context : tree.ElementsOfType(inclusion.context)) {
      RETURN_IF_ERROR(CheckInclusionOver(
          tree, DescendantsOfType(tree, context, inclusion.child_type),
          {inclusion.child_attribute},
          DescendantsOfType(tree, context, inclusion.parent_type),
          {inclusion.parent_attribute}, inclusion.ToString(dtd)));
    }
  }
  return Status::OK();
}

Status CheckDocument(const XmlTree& tree, const Dtd& dtd,
                     const ConstraintSet& constraints) {
  RETURN_IF_ERROR(CheckConforms(tree, dtd));
  return CheckConstraints(tree, dtd, constraints);
}

}  // namespace xmlverify
