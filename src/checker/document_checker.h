// Dynamic constraint checking: T |= Sigma for every constraint class.
// This is the "dynamic approach" contrasted in the paper's
// introduction, and the oracle against which every witness produced
// by the static checkers is re-validated.
#ifndef XMLVERIFY_CHECKER_DOCUMENT_CHECKER_H_
#define XMLVERIFY_CHECKER_DOCUMENT_CHECKER_H_

#include "base/status.h"
#include "constraints/constraint.h"
#include "xml/dtd.h"
#include "xml/tree.h"

namespace xmlverify {

/// Checks every constraint in `constraints` against `tree` (which
/// should conform to `dtd`; see CheckConforms). Returns OK or a
/// description of the first violated constraint.
Status CheckConstraints(const XmlTree& tree, const Dtd& dtd,
                        const ConstraintSet& constraints);

/// Checks DTD conformance and all constraints together: the full
/// "T |= D and T |= Sigma" of the consistency problem.
Status CheckDocument(const XmlTree& tree, const Dtd& dtd,
                     const ConstraintSet& constraints);

/// nodes(beta.tau) of Section 3.2: elements whose root path matches
/// the (wildcard-expanded) path expression.
std::vector<NodeId> NodesOnPath(const XmlTree& tree, const Dtd& dtd,
                                const Regex& node_path);

}  // namespace xmlverify

#endif  // XMLVERIFY_CHECKER_DOCUMENT_CHECKER_H_
