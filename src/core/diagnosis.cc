#include "core/diagnosis.h"

#include <algorithm>
#include <variant>
#include <vector>

#include "core/implication.h"
#include "core/implication_engine.h"
#include "trace/trace.h"

namespace xmlverify {

namespace {

using AnyConstraint =
    std::variant<AbsoluteKey, AbsoluteInclusion, RegularKey, RegularInclusion,
                 RelativeKey, RelativeInclusion>;

std::vector<AnyConstraint> Flatten(const ConstraintSet& constraints) {
  std::vector<AnyConstraint> flat;
  for (const auto& c : constraints.absolute_keys()) flat.emplace_back(c);
  for (const auto& c : constraints.absolute_inclusions()) flat.emplace_back(c);
  for (const auto& c : constraints.regular_keys()) flat.emplace_back(c);
  for (const auto& c : constraints.regular_inclusions()) flat.emplace_back(c);
  for (const auto& c : constraints.relative_keys()) flat.emplace_back(c);
  for (const auto& c : constraints.relative_inclusions()) flat.emplace_back(c);
  return flat;
}

ConstraintSet Rebuild(const std::vector<AnyConstraint>& flat,
                      const std::vector<bool>& keep) {
  ConstraintSet set;
  for (size_t i = 0; i < flat.size(); ++i) {
    if (!keep[i]) continue;
    std::visit([&set](const auto& constraint) { set.Add(constraint); },
               flat[i]);
  }
  return set;
}

// The wall-clock allowance a single probe may spend: whatever the
// caller's options leave, measured once at entry so every probe gets
// the same allowance.
Deadline::Clock::duration ProbeWall(const ConsistencyChecker::Options& base) {
  return std::min(base.deadline.Remaining(),
                  base.budget.deadline().Remaining());
}

// Per-probe checker options: the caller's ceilings, but a fresh
// accounting block and a freshly stamped deadline. Sharing the
// caller's ResourceBudget across all |Sigma|+1 probes accumulates
// charges (and the one absolute deadline keeps ticking), so late
// probes would spuriously exhaust and their constraints be
// conservatively kept — degrading the "minimal" core toward the full
// set.
ConsistencyChecker::Options ProbeOptions(
    const ConsistencyChecker::Options& base, Deadline::Clock::duration wall) {
  ConsistencyChecker::Options probe = base;
  ResourceBudget fresh;
  fresh.set_memory_limit_bytes(base.budget.memory_limit_bytes());
  fresh.set_max_depth(base.budget.max_depth());
  if (wall == Deadline::Clock::duration::max()) {
    probe.deadline = Deadline::Infinite();
  } else {
    probe.deadline = Deadline::After(wall);
    fresh.set_deadline(probe.deadline);
  }
  probe.budget = fresh;
  return probe;
}

// Is `constraint` implied by `rest` (under the DTD)? Decidable
// flavours go through the layered engine (quick tier first, solver on
// misses); relative and multi-attribute constraints get the quick
// tier only. Errors and unsettled answers count as "not implied".
bool ImpliedByRest(const ImplicationChecker& engine, const Dtd& dtd,
                   const ConstraintSet& rest, const AnyConstraint& constraint) {
  if (const auto* key = std::get_if<AbsoluteKey>(&constraint)) {
    if (!key->IsUnary()) return engine.QuickImplies(dtd, rest, *key);
    Result<ImplicationAnswer> answer = engine.CheckKey(dtd, rest, *key);
    return answer.ok() && answer->implied;
  }
  if (const auto* inc = std::get_if<AbsoluteInclusion>(&constraint)) {
    if (!inc->IsUnary()) return engine.QuickImplies(dtd, rest, *inc);
    Result<ImplicationAnswer> answer = engine.CheckInclusion(dtd, rest, *inc);
    return answer.ok() && answer->implied;
  }
  if (const auto* key = std::get_if<RegularKey>(&constraint)) {
    Result<ImplicationAnswer> answer = engine.CheckKey(dtd, rest, *key);
    return answer.ok() && answer->implied;
  }
  if (const auto* inc = std::get_if<RegularInclusion>(&constraint)) {
    Result<ImplicationAnswer> answer = engine.CheckInclusion(dtd, rest, *inc);
    return answer.ok() && answer->implied;
  }
  if (const auto* key = std::get_if<RelativeKey>(&constraint)) {
    return engine.QuickImplies(dtd, rest, *key);
  }
  if (const auto* inc = std::get_if<RelativeInclusion>(&constraint)) {
    return engine.QuickImplies(dtd, rest, *inc);
  }
  return false;
}

}  // namespace

Result<ConstraintSet> MinimizeInconsistentCore(
    const Dtd& dtd, const ConstraintSet& constraints,
    const DiagnosisOptions& options) {
  const Deadline::Clock::duration wall = ProbeWall(options.checker);
  std::vector<AnyConstraint> flat = Flatten(constraints);
  std::vector<bool> keep(flat.size(), true);

  Specification spec;
  // The Dtd has no public copy-from-reference constructor need — it is
  // copyable; assemble a working specification per probe.
  spec.dtd = dtd;
  spec.constraints = Rebuild(flat, keep);
  {
    ConsistencyChecker checker(ProbeOptions(options.checker, wall));
    ASSIGN_OR_RETURN(ConsistencyVerdict verdict, checker.Check(spec));
    if (verdict.outcome != ConsistencyOutcome::kInconsistent) {
      return Status::InvalidArgument(
          "MinimizeInconsistentCore requires an (exactly) inconsistent "
          "specification; got " + OutcomeName(verdict.outcome));
    }
  }

  // Iterative deletion: drop each constraint if the rest stays
  // inconsistent. Each probe runs under its own derived budget (see
  // ProbeOptions above).
  for (size_t i = 0; i < flat.size(); ++i) {
    keep[i] = false;
    spec.constraints = Rebuild(flat, keep);
    ConsistencyChecker checker(ProbeOptions(options.checker, wall));
    Result<ConsistencyVerdict> probe = checker.Check(spec);
    bool still_inconsistent =
        probe.ok() && probe->outcome == ConsistencyOutcome::kInconsistent;
    if (!still_inconsistent) keep[i] = true;  // needed for the core
  }

  // Implication pruning: a kept constraint implied by the rest of the
  // core constrains no document the rest does not, so dropping it
  // leaves an equiconsistent (still inconsistent) set. Iterative
  // deletion already yields 1-minimality when every probe settles;
  // this pass additionally shrinks cores whose probes ended kUnknown
  // or exhausted (those constraints were kept conservatively).
  ImplicationEngineOptions engine_options;
  const ConsistencyChecker::Options prune_probe =
      ProbeOptions(options.checker, wall);
  engine_options.full.solver = prune_probe.solver;
  engine_options.full.solver.deadline = prune_probe.deadline;
  engine_options.full.solver.budget = prune_probe.budget;
  engine_options.full.max_expressions = options.checker.max_expressions;
  engine_options.full.build_counterexample = false;
  const ImplicationChecker engine(engine_options);
  for (size_t i = 0; i < flat.size(); ++i) {
    if (!keep[i]) continue;
    keep[i] = false;
    ConstraintSet rest = Rebuild(flat, keep);
    if (ImpliedByRest(engine, dtd, rest, flat[i])) {
      trace::Count("diagnosis/implication_pruned");
    } else {
      keep[i] = true;
    }
  }
  return Rebuild(flat, keep);
}

Result<ConstraintSet> RemoveRedundantConstraints(
    const Dtd& dtd, const ConstraintSet& constraints,
    const DiagnosisOptions& options) {
  (void)options;
  RETURN_IF_ERROR(constraints.Validate(dtd));
  std::vector<AnyConstraint> flat = Flatten(constraints);
  std::vector<bool> keep(flat.size(), true);
  for (size_t i = 0; i < flat.size(); ++i) {
    // Only absolute unary constraints have a decidable implication
    // problem we expose; skip everything else.
    const AbsoluteKey* key = std::get_if<AbsoluteKey>(&flat[i]);
    const AbsoluteInclusion* inclusion =
        std::get_if<AbsoluteInclusion>(&flat[i]);
    if (key == nullptr && inclusion == nullptr) continue;
    if (key != nullptr && !key->IsUnary()) continue;
    if (inclusion != nullptr && !inclusion->IsUnary()) continue;

    keep[i] = false;
    ConstraintSet rest = Rebuild(flat, keep);
    ImplicationOptions implication_options;
    implication_options.build_counterexample = false;
    Result<ImplicationVerdict> implied =
        key != nullptr
            ? CheckKeyImplication(dtd, rest, *key, implication_options)
            : CheckInclusionImplication(dtd, rest, *inclusion,
                                        implication_options);
    if (!implied.ok() || !implied->implied) keep[i] = true;  // load-bearing
  }
  return Rebuild(flat, keep);
}

std::string FormatDegradationReport(const std::vector<DegradationStep>& steps) {
  std::string report = "degradation ladder:";
  bool first = true;
  for (const DegradationStep& step : steps) {
    report += first ? " " : " -> ";
    first = false;
    report += step.stage + ": " + step.outcome;
    if (!step.reason.empty()) report += " (" + step.reason + ")";
  }
  return report;
}

}  // namespace xmlverify
