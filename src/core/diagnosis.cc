#include "core/diagnosis.h"

#include <variant>
#include <vector>

#include "core/implication.h"

namespace xmlverify {

namespace {

using AnyConstraint =
    std::variant<AbsoluteKey, AbsoluteInclusion, RegularKey, RegularInclusion,
                 RelativeKey, RelativeInclusion>;

std::vector<AnyConstraint> Flatten(const ConstraintSet& constraints) {
  std::vector<AnyConstraint> flat;
  for (const auto& c : constraints.absolute_keys()) flat.emplace_back(c);
  for (const auto& c : constraints.absolute_inclusions()) flat.emplace_back(c);
  for (const auto& c : constraints.regular_keys()) flat.emplace_back(c);
  for (const auto& c : constraints.regular_inclusions()) flat.emplace_back(c);
  for (const auto& c : constraints.relative_keys()) flat.emplace_back(c);
  for (const auto& c : constraints.relative_inclusions()) flat.emplace_back(c);
  return flat;
}

ConstraintSet Rebuild(const std::vector<AnyConstraint>& flat,
                      const std::vector<bool>& keep) {
  ConstraintSet set;
  for (size_t i = 0; i < flat.size(); ++i) {
    if (!keep[i]) continue;
    std::visit([&set](const auto& constraint) { set.Add(constraint); },
               flat[i]);
  }
  return set;
}

}  // namespace

Result<ConstraintSet> MinimizeInconsistentCore(
    const Dtd& dtd, const ConstraintSet& constraints,
    const DiagnosisOptions& options) {
  ConsistencyChecker checker(options.checker);
  std::vector<AnyConstraint> flat = Flatten(constraints);
  std::vector<bool> keep(flat.size(), true);

  Specification spec;
  // The Dtd has no public copy-from-reference constructor need — it is
  // copyable; assemble a working specification per probe.
  spec.dtd = dtd;
  spec.constraints = Rebuild(flat, keep);
  ASSIGN_OR_RETURN(ConsistencyVerdict verdict, checker.Check(spec));
  if (verdict.outcome != ConsistencyOutcome::kInconsistent) {
    return Status::InvalidArgument(
        "MinimizeInconsistentCore requires an (exactly) inconsistent "
        "specification; got " + OutcomeName(verdict.outcome));
  }

  // Iterative deletion: drop each constraint if the rest stays
  // inconsistent.
  for (size_t i = 0; i < flat.size(); ++i) {
    keep[i] = false;
    spec.constraints = Rebuild(flat, keep);
    Result<ConsistencyVerdict> probe = checker.Check(spec);
    bool still_inconsistent =
        probe.ok() && probe->outcome == ConsistencyOutcome::kInconsistent;
    if (!still_inconsistent) keep[i] = true;  // needed for the core
  }
  return Rebuild(flat, keep);
}

Result<ConstraintSet> RemoveRedundantConstraints(
    const Dtd& dtd, const ConstraintSet& constraints,
    const DiagnosisOptions& options) {
  (void)options;
  RETURN_IF_ERROR(constraints.Validate(dtd));
  std::vector<AnyConstraint> flat = Flatten(constraints);
  std::vector<bool> keep(flat.size(), true);
  for (size_t i = 0; i < flat.size(); ++i) {
    // Only absolute unary constraints have a decidable implication
    // problem we expose; skip everything else.
    const AbsoluteKey* key = std::get_if<AbsoluteKey>(&flat[i]);
    const AbsoluteInclusion* inclusion =
        std::get_if<AbsoluteInclusion>(&flat[i]);
    if (key == nullptr && inclusion == nullptr) continue;
    if (key != nullptr && !key->IsUnary()) continue;
    if (inclusion != nullptr && !inclusion->IsUnary()) continue;

    keep[i] = false;
    ConstraintSet rest = Rebuild(flat, keep);
    ImplicationOptions implication_options;
    implication_options.build_counterexample = false;
    Result<ImplicationVerdict> implied =
        key != nullptr
            ? CheckKeyImplication(dtd, rest, *key, implication_options)
            : CheckInclusionImplication(dtd, rest, *inclusion,
                                        implication_options);
    if (!implied.ok() || !implied->implied) keep[i] = true;  // load-bearing
  }
  return Rebuild(flat, keep);
}

std::string FormatDegradationReport(const std::vector<DegradationStep>& steps) {
  std::string report = "degradation ladder:";
  bool first = true;
  for (const DegradationStep& step : steps) {
    report += first ? " " : " -> ";
    first = false;
    report += step.stage + ": " + step.outcome;
    if (!step.reason.empty()) report += " (" + step.reason + ")";
  }
  return report;
}

}  // namespace xmlverify
