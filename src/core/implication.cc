#include "core/implication.h"

#include "checker/document_checker.h"
#include "core/witness.h"
#include "encoding/cardinality.h"
#include "encoding/flow_encoder.h"
#include "encoding/regular_encoder.h"
#include "ilp/linear.h"
#include "ilp/solver.h"

namespace xmlverify {

namespace {

// Polynomial decision procedure for purely-absolute unary Sigma and
// absolute phi — the coNP algorithm behind Impl(AC_{K,FK}) [14],
// avoiding the exponential z_theta machinery. The counterexample
// model extends the prefix-pool cardinality abstraction with one
// distinguished value v and indicator variables s_{tau.l} = "v lies
// in ext(tau.l)":
//   * every Sigma inclusion a <= b adds  s_a <= s_b  and
//     (n_a - s_a) <= (n_b - s_b)   (prefix parts nest);
//   * not-key phi on tau.l:  ext(tau) >= 2 and n_{tau.l} <= ext - 1;
//   * not-inclusion phi:     s_child = 1, s_parent = 0.
struct AbsoluteNegation {
  std::optional<AbsoluteKey> key;
  std::optional<AbsoluteInclusion> inclusion;
};

Result<ImplicationVerdict> DecideAbsoluteFast(
    const Dtd& dtd, const ConstraintSet& constraints,
    const AbsoluteNegation& negation, const ImplicationOptions& options) {
  IntegerProgram program;
  ASSIGN_OR_RETURN(DtdFlowSystem flow,
                   DtdFlowSystem::Build(dtd, nullptr, &program));
  ASSIGN_OR_RETURN(AbsoluteCardinality cardinality,
                   AbsoluteCardinality::Emit(dtd, constraints, {}, &flow,
                                             &program));

  std::map<std::pair<int, std::string>, VarId> special_vars;
  std::map<std::pair<int, std::string>, bool> special_flags;
  if (negation.inclusion.has_value()) {
    // s variables for every reachable attribute.
    for (int type = 0; type < dtd.num_element_types(); ++type) {
      for (const std::string& attribute : dtd.Attributes(type)) {
        VarId attr_var = cardinality.AttrVar(type, attribute);
        if (attr_var < 0) continue;
        VarId s = program.NewVariable("s(" + dtd.TypeName(type) + "." +
                                      attribute + ")");
        program.SetUpperBound(s, BigInt(1));
        // s <= n: the distinguished value is counted in the extent.
        LinearExpr bound;
        bound.Add(s, BigInt(1));
        bound.Add(attr_var, BigInt(-1));
        program.AddLinear(std::move(bound), Relation::kLe, BigInt(0),
                          "s<=n");
        special_vars[{type, attribute}] = s;
      }
    }
    auto s_of = [&special_vars](int type, const std::string& attribute) {
      auto it = special_vars.find({type, attribute});
      return it == special_vars.end() ? -1 : it->second;
    };
    for (const AbsoluteInclusion& inclusion :
         constraints.absolute_inclusions()) {
      VarId s_child =
          s_of(inclusion.child_type, inclusion.child_attributes[0]);
      VarId s_parent =
          s_of(inclusion.parent_type, inclusion.parent_attributes[0]);
      if (s_child < 0) continue;  // unreachable child: vacuous
      if (s_parent < 0) {
        // Parent unreachable: already handled by the base encoding
        // (child extent forced empty), so s_child is 0 via s <= n.
        continue;
      }
      // s_child <= s_parent.
      LinearExpr monotone;
      monotone.Add(s_child, BigInt(1));
      monotone.Add(s_parent, BigInt(-1));
      program.AddLinear(std::move(monotone), Relation::kLe, BigInt(0),
                        "s-monotone");
      // (n_child - s_child) <= (n_parent - s_parent).
      LinearExpr prefix;
      prefix.Add(cardinality.AttrVar(inclusion.child_type,
                                     inclusion.child_attributes[0]),
                 BigInt(1));
      prefix.Add(s_child, BigInt(-1));
      prefix.Add(cardinality.AttrVar(inclusion.parent_type,
                                     inclusion.parent_attributes[0]),
                 BigInt(-1));
      prefix.Add(s_parent, BigInt(1));
      program.AddLinear(std::move(prefix), Relation::kLe, BigInt(0),
                        "prefix-nests");
    }
    const AbsoluteInclusion& phi = *negation.inclusion;
    VarId s_child = s_of(phi.child_type, phi.child_attributes[0]);
    VarId s_parent = s_of(phi.parent_type, phi.parent_attributes[0]);
    if (s_child < 0) {
      // phi's child type is unreachable: phi holds vacuously.
      ImplicationVerdict verdict;
      verdict.implied = true;
      return verdict;
    }
    LinearExpr escape;
    escape.Add(s_child, BigInt(1));
    program.AddLinear(std::move(escape), Relation::kEq, BigInt(1),
                      "neg-incl-child");
    if (s_parent >= 0) {
      LinearExpr missing;
      missing.Add(s_parent, BigInt(1));
      program.AddLinear(std::move(missing), Relation::kEq, BigInt(0),
                        "neg-incl-parent");
    }
  }
  if (negation.key.has_value()) {
    const AbsoluteKey& phi = *negation.key;
    VarId ext = cardinality.ExtVar(phi.type);
    VarId attr_var = cardinality.AttrVar(phi.type, phi.attributes[0]);
    if (ext < 0) {
      ImplicationVerdict verdict;
      verdict.implied = true;  // unreachable type: key holds vacuously
      return verdict;
    }
    LinearExpr two;
    two.Add(ext, BigInt(1));
    program.AddLinear(std::move(two), Relation::kGe, BigInt(2), "neg-key>=2");
    LinearExpr collide;
    collide.Add(attr_var, BigInt(1));
    collide.Add(ext, BigInt(-1));
    program.AddLinear(std::move(collide), Relation::kLe, BigInt(-1),
                      "neg-key-collide");
  }

  IlpSolver solver(options.solver);
  SolveResult solved = solver.Solve(program);
  ImplicationVerdict verdict;
  verdict.stats.solver_nodes = solved.nodes_explored;
  verdict.stats.lp_pivots = solved.lp_pivots;
  verdict.stats.num_variables = program.num_variables();
  switch (solved.outcome) {
    case SolveOutcome::kUnsat:
      verdict.implied = true;
      return verdict;
    case SolveOutcome::kUnknown:
      return Status::ResourceExhausted("implication fast path hit limits: " +
                                       solved.note);
    case SolveOutcome::kResourceExhausted:
      return Status::ResourceExhausted(
          "implication fast path ran out of budget: " + solved.note);
    case SolveOutcome::kDeadlineExceeded:
      return Status::DeadlineExceeded("implication fast path deadline "
                                      "exceeded");
    case SolveOutcome::kSat:
      break;
  }
  verdict.implied = false;
  if (!options.build_counterexample) return verdict;

  ASSIGN_OR_RETURN(XmlTree tree, flow.BuildTree(solved.assignment));
  for (const auto& [key, var] : special_vars) {
    special_flags[key] = solved.assignment[var] >= BigInt(1);
  }
  RETURN_IF_ERROR(AssignAbsoluteValues(dtd, constraints, cardinality,
                                       solved.assignment, "v", &tree,
                                       &special_flags));
  Status satisfies_sigma = CheckDocument(tree, dtd, constraints);
  if (!satisfies_sigma.ok()) {
    return Status::Internal("counterexample fails Sigma: " +
                            satisfies_sigma.message());
  }
  ConstraintSet phi_only;
  if (negation.key.has_value()) phi_only.Add(*negation.key);
  if (negation.inclusion.has_value()) phi_only.Add(*negation.inclusion);
  if (CheckConstraints(tree, dtd, phi_only).ok()) {
    return Status::Internal(
        "counterexample construction failed: the document satisfies phi");
  }
  verdict.counterexample = std::move(tree);
  return verdict;
}

bool FastPathApplies(const ConstraintSet& constraints) {
  return !constraints.HasRegular() && !constraints.HasRelative() &&
         constraints.AllAbsoluteUnary();
}

Regex AbsolutePath(const Dtd& dtd, int type) {
  if (type == dtd.root()) return Regex::Symbol(type);
  return Regex::Concat(
      Regex::Concat(Regex::Symbol(dtd.root()), Regex::Star(Regex::Wildcard())),
      Regex::Symbol(type));
}

// Shared driver: solve Sigma + (negation of phi); implied iff UNSAT.
// `negated` holds the phi parts for counterexample validation.
Result<ImplicationVerdict> Decide(const Dtd& dtd,
                                  const ConstraintSet& constraints,
                                  const RegularNegation& negation,
                                  const ImplicationOptions& options) {
  RETURN_IF_ERROR(constraints.Validate(dtd));
  ASSIGN_OR_RETURN(ConstraintSet regular, AbsoluteAsRegular(constraints, dtd));

  IntegerProgram program;
  RegularEncoderOptions encoder_options;
  encoder_options.max_expressions = options.max_expressions;
  ASSIGN_OR_RETURN(
      std::unique_ptr<RegularEncoder> encoder,
      RegularEncoder::Build(dtd, regular, &program, encoder_options,
                            &negation));
  IlpSolver solver(options.solver);
  SolveResult solved = solver.Solve(program);

  ImplicationVerdict verdict;
  verdict.stats.solver_nodes = solved.nodes_explored;
  verdict.stats.lp_pivots = solved.lp_pivots;
  verdict.stats.num_variables = program.num_variables();

  switch (solved.outcome) {
    case SolveOutcome::kUnsat:
      verdict.implied = true;
      return verdict;
    case SolveOutcome::kUnknown:
      return Status::ResourceExhausted(
          "implication check hit solver limits: " + solved.note);
    case SolveOutcome::kResourceExhausted:
      return Status::ResourceExhausted(
          "implication check ran out of budget: " + solved.note);
    case SolveOutcome::kDeadlineExceeded:
      return Status::DeadlineExceeded("implication check deadline exceeded");
    case SolveOutcome::kSat:
      break;
  }
  verdict.implied = false;
  if (!options.build_counterexample) return verdict;

  ASSIGN_OR_RETURN(XmlTree tree, encoder->BuildWitness(solved.assignment));
  // The counterexample must satisfy (D, Sigma) and violate phi.
  Status satisfies_sigma = CheckDocument(tree, dtd, regular);
  if (!satisfies_sigma.ok()) {
    return Status::Internal("counterexample fails Sigma: " +
                            satisfies_sigma.message());
  }
  ConstraintSet phi_only;
  if (negation.key.has_value()) phi_only.Add(*negation.key);
  if (negation.inclusion.has_value()) phi_only.Add(*negation.inclusion);
  if (CheckConstraints(tree, dtd, phi_only).ok()) {
    return Status::Internal(
        "counterexample construction failed: the document satisfies phi");
  }
  verdict.counterexample = std::move(tree);
  return verdict;
}

}  // namespace

Result<ImplicationVerdict> CheckKeyImplication(
    const Dtd& dtd, const ConstraintSet& constraints, const RegularKey& phi,
    const ImplicationOptions& options) {
  RegularNegation negation;
  negation.key = phi;
  return Decide(dtd, constraints, negation, options);
}

Result<ImplicationVerdict> CheckInclusionImplication(
    const Dtd& dtd, const ConstraintSet& constraints,
    const RegularInclusion& phi, const ImplicationOptions& options) {
  RegularNegation negation;
  negation.inclusion = phi;
  return Decide(dtd, constraints, negation, options);
}

Result<ImplicationVerdict> CheckKeyImplication(
    const Dtd& dtd, const ConstraintSet& constraints, const AbsoluteKey& phi,
    const ImplicationOptions& options) {
  if (!phi.IsUnary()) {
    return Status::Unsupported(
        "implication of multi-attribute keys is undecidable in general "
        "(Impl(AC^{*,*}), [14]); only unary keys are supported");
  }
  RETURN_IF_ERROR(constraints.Validate(dtd));
  if (FastPathApplies(constraints)) {
    AbsoluteNegation negation;
    negation.key = phi;
    return DecideAbsoluteFast(dtd, constraints, negation, options);
  }
  RegularKey regular{AbsolutePath(dtd, phi.type), phi.type,
                     phi.attributes[0]};
  return CheckKeyImplication(dtd, constraints, regular, options);
}

Result<ImplicationVerdict> CheckInclusionImplication(
    const Dtd& dtd, const ConstraintSet& constraints,
    const AbsoluteInclusion& phi, const ImplicationOptions& options) {
  if (!phi.IsUnary()) {
    return Status::Unsupported(
        "implication of multi-attribute inclusions is not supported");
  }
  RETURN_IF_ERROR(constraints.Validate(dtd));
  if (FastPathApplies(constraints)) {
    AbsoluteNegation negation;
    negation.inclusion = phi;
    return DecideAbsoluteFast(dtd, constraints, negation, options);
  }
  RegularInclusion regular{AbsolutePath(dtd, phi.child_type),
                           phi.child_type,
                           phi.child_attributes[0],
                           AbsolutePath(dtd, phi.parent_type),
                           phi.parent_type,
                           phi.parent_attributes[0]};
  return CheckInclusionImplication(dtd, constraints, regular, options);
}

Result<BoundedRefutation> SearchImplicationCounterexample(
    const Dtd& dtd, const ConstraintSet& constraints, const ConstraintSet& phi,
    const BoundedSearchOptions& options) {
  RETURN_IF_ERROR(constraints.Validate(dtd));
  RETURN_IF_ERROR(phi.Validate(dtd));
  ASSIGN_OR_RETURN(
      ConsistencyVerdict search,
      BoundedSearchDocument(
          dtd,
          [&](const XmlTree& tree) {
            return CheckConstraints(tree, dtd, constraints).ok() &&
                   !CheckConstraints(tree, dtd, phi).ok();
          },
          options));
  BoundedRefutation refutation;
  refutation.candidates_examined = search.stats.subproblems;
  if (search.outcome == ConsistencyOutcome::kConsistent) {
    refutation.refuted = true;
    refutation.counterexample = std::move(search.witness);
  }
  return refutation;
}

Result<ImplicationVerdict> CheckForeignKeyImplication(
    const Dtd& dtd, const ConstraintSet& constraints,
    const AbsoluteInclusion& phi, const ImplicationOptions& options) {
  if (!phi.IsUnary()) {
    return Status::Unsupported("only unary foreign keys are supported");
  }
  ASSIGN_OR_RETURN(
      ImplicationVerdict key_part,
      CheckKeyImplication(dtd, constraints,
                          AbsoluteKey{phi.parent_type, phi.parent_attributes},
                          options));
  if (!key_part.implied) return key_part;
  ASSIGN_OR_RETURN(ImplicationVerdict inclusion_part,
                   CheckInclusionImplication(dtd, constraints, phi, options));
  return inclusion_part;
}

}  // namespace xmlverify
