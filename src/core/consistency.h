// Front door of the library: dispatches a specification to the right
// decision procedure per its constraint class (Figures 3 and 4), and
// falls back to bounded search on the undecidable fragments.
//
//   Specification spec = Specification::Parse(dtd_text, constraints)
//                            .ValueOrDie();
//   ConsistencyChecker checker;
//   ConsistencyVerdict verdict = checker.Check(spec).ValueOrDie();
//   if (verdict.consistent()) std::cout << verdict.witness->ToXml(...);
#ifndef XMLVERIFY_CORE_CONSISTENCY_H_
#define XMLVERIFY_CORE_CONSISTENCY_H_

#include "base/deadline.h"
#include "base/status.h"
#include "core/brute_force.h"
#include "core/sat_absolute.h"
#include "core/sat_hierarchical.h"
#include "core/sat_regular.h"
#include "core/specification.h"
#include "core/verdict.h"

namespace xmlverify {

class ConsistencyChecker {
 public:
  struct Options {
    SolverOptions solver;
    bool build_witness = true;
    bool verify_witness = true;
    /// Cap on distinct regular path expressions (2^k blow-up).
    int max_expressions = 16;
    /// Fallback bounds for the undecidable fragments.
    BoundedSearchOptions bounded;
    /// Wall-clock budget for the whole check. Stamped into the solver
    /// and bounded-search options at dispatch; expiry yields a
    /// kDeadlineExceeded verdict (never an error, never a wrong
    /// definitive answer). Default: never expires.
    Deadline deadline;
    /// Memory/recursion budget for the whole check, stamped into every
    /// stage alongside the deadline (when the budget carries no
    /// deadline of its own, `deadline` above is merged in). Exhaustion
    /// yields kResourceExhausted — or enters the degradation ladder
    /// below. Default: unlimited.
    ResourceBudget budget;
    /// Degradation ladder (see docs/robustness.md): when an *exact*
    /// stage exhausts its budget or gives up at a solver limit
    /// (kResourceExhausted / kUnknown), retry once with the bounded
    /// searcher under the explicitly smaller `degraded` caps instead
    /// of reporting failure outright. A witness found there is a sound
    /// kConsistent; otherwise the final verdict is kUnknown (or
    /// kResourceExhausted if even the degraded stage ran out) and
    /// `verdict.degradation` records every rung. Stages that are
    /// already bounded searches do not re-degrade.
    bool degrade_on_exhaustion = true;
    /// Caps for the degraded rung — deliberately much smaller than
    /// `bounded`: the ladder runs after the budget proved too tight,
    /// so the fallback must be cheap enough to finish inside it.
    BoundedSearchOptions degraded = [] {
      BoundedSearchOptions caps;
      caps.max_nodes = 6;
      caps.num_values = 2;
      caps.max_candidates = 200000;
      return caps;
    }();
  };

  ConsistencyChecker() = default;
  explicit ConsistencyChecker(Options options)
      : options_(std::move(options)) {}

  /// Decides consistency of `spec`, choosing the procedure by its
  /// class. For decidable classes the verdict is exact; for the
  /// undecidable ones (AC^{*,*}; non-hierarchical RC) the fallback
  /// bounded search may return kUnknown, with the class named in the
  /// verdict note.
  Result<ConsistencyVerdict> Check(const Specification& spec) const;

 private:
  Result<ConsistencyVerdict> CheckDispatch(const Specification& spec,
                                           const ResourceBudget& budget,
                                           bool* exact_ran) const;

  Options options_;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_CORE_CONSISTENCY_H_
