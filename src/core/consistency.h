// Front door of the library: dispatches a specification to the right
// decision procedure per its constraint class (Figures 3 and 4), and
// falls back to bounded search on the undecidable fragments.
//
//   Specification spec = Specification::Parse(dtd_text, constraints)
//                            .ValueOrDie();
//   ConsistencyChecker checker;
//   ConsistencyVerdict verdict = checker.Check(spec).ValueOrDie();
//   if (verdict.consistent()) std::cout << verdict.witness->ToXml(...);
#ifndef XMLVERIFY_CORE_CONSISTENCY_H_
#define XMLVERIFY_CORE_CONSISTENCY_H_

#include "base/deadline.h"
#include "base/status.h"
#include "core/brute_force.h"
#include "core/sat_absolute.h"
#include "core/sat_hierarchical.h"
#include "core/sat_regular.h"
#include "core/specification.h"
#include "core/verdict.h"

namespace xmlverify {

class ConsistencyChecker {
 public:
  struct Options {
    SolverOptions solver;
    bool build_witness = true;
    bool verify_witness = true;
    /// Cap on distinct regular path expressions (2^k blow-up).
    int max_expressions = 16;
    /// Fallback bounds for the undecidable fragments.
    BoundedSearchOptions bounded;
    /// Wall-clock budget for the whole check. Stamped into the solver
    /// and bounded-search options at dispatch; expiry yields a
    /// kDeadlineExceeded verdict (never an error, never a wrong
    /// definitive answer). Default: never expires.
    Deadline deadline;
  };

  ConsistencyChecker() = default;
  explicit ConsistencyChecker(Options options)
      : options_(std::move(options)) {}

  /// Decides consistency of `spec`, choosing the procedure by its
  /// class. For decidable classes the verdict is exact; for the
  /// undecidable ones (AC^{*,*}; non-hierarchical RC) the fallback
  /// bounded search may return kUnknown, with the class named in the
  /// verdict note.
  Result<ConsistencyVerdict> Check(const Specification& spec) const;

 private:
  Result<ConsistencyVerdict> CheckDispatch(const Specification& spec) const;

  Options options_;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_CORE_CONSISTENCY_H_
