// The tractable fragment of Theorem 3.5(b): for non-recursive no-star
// DTDs, SAT(AC_{K,FK}) restricted to k constraints and depth-d DTDs is
// decidable in NLOGSPACE. This is a deterministic realization of the
// paper's nondeterministic Count procedure: a dynamic program over
// the (finite, star-free) content models computes the exact set of
// achievable extent vectors for the constrained element types, and a
// small interval-propagation step decides whether attribute counts
// can be placed to satisfy C_Sigma.
//
// Exact for its fragment — and polynomial when k and d are fixed,
// which is what bench_thm35_tractability measures.
#ifndef XMLVERIFY_CORE_SAT_BOUNDED_H_
#define XMLVERIFY_CORE_SAT_BOUNDED_H_

#include "base/deadline.h"
#include "base/resource_guard.h"
#include "base/status.h"
#include "constraints/constraint.h"
#include "core/verdict.h"
#include "xml/dtd.h"

namespace xmlverify {

struct NoStarCheckOptions {
  /// Cap on the size of any achievable-vector set in the dynamic
  /// program. Exceeding it yields a kUnknown verdict (the instance is
  /// outside the "fixed k, fixed d" regime the fragment targets) —
  /// never a definitive kInconsistent, since a truncated vector set
  /// could be missing exactly the satisfying extent vector.
  size_t max_vectors = 200000;
  /// Wall-clock budget, polled in the DP recursion. Expiry yields a
  /// kDeadlineExceeded verdict.
  Deadline deadline;
  /// Memory budget: the achievable-vector sets are charged as they
  /// grow. Exhaustion yields a kResourceExhausted verdict — distinct
  /// from the max_vectors cap above, which is a statement about the
  /// instance (outside the tractable regime, kUnknown) rather than
  /// about this process's resources. Default: unlimited.
  ResourceBudget budget;
};

/// Requires: non-recursive no-star DTD, unary absolute constraints.
/// Verdicts are exact (kConsistent / kInconsistent) unless a cap or
/// deadline intervenes (kUnknown / kDeadlineExceeded, see above). No
/// witness is built; use CheckAbsoluteConsistency when one is needed.
Result<ConsistencyVerdict> CheckNoStarConsistency(
    const Dtd& dtd, const ConstraintSet& constraints,
    const NoStarCheckOptions& options = {});

}  // namespace xmlverify

#endif  // XMLVERIFY_CORE_SAT_BOUNDED_H_
