// The tractable fragment of Theorem 3.5(b): for non-recursive no-star
// DTDs, SAT(AC_{K,FK}) restricted to k constraints and depth-d DTDs is
// decidable in NLOGSPACE. This is a deterministic realization of the
// paper's nondeterministic Count procedure: a dynamic program over
// the (finite, star-free) content models computes the exact set of
// achievable extent vectors for the constrained element types, and a
// small interval-propagation step decides whether attribute counts
// can be placed to satisfy C_Sigma.
//
// Exact for its fragment — and polynomial when k and d are fixed,
// which is what bench_thm35_tractability measures.
#ifndef XMLVERIFY_CORE_SAT_BOUNDED_H_
#define XMLVERIFY_CORE_SAT_BOUNDED_H_

#include "base/status.h"
#include "constraints/constraint.h"
#include "core/verdict.h"
#include "xml/dtd.h"

namespace xmlverify {

struct NoStarCheckOptions {
  /// Cap on the size of any achievable-vector set in the dynamic
  /// program (exceeding it returns kResourceExhausted — the instance
  /// is outside the "fixed k, fixed d" regime the fragment targets).
  size_t max_vectors = 200000;
};

/// Requires: non-recursive no-star DTD, unary absolute constraints.
/// Verdicts are exact (kConsistent / kInconsistent). No witness is
/// built; use CheckAbsoluteConsistency when one is needed.
Result<ConsistencyVerdict> CheckNoStarConsistency(
    const Dtd& dtd, const ConstraintSet& constraints,
    const NoStarCheckOptions& options = {});

}  // namespace xmlverify

#endif  // XMLVERIFY_CORE_SAT_BOUNDED_H_
