// Shared verdict type for all consistency checkers.
#ifndef XMLVERIFY_CORE_VERDICT_H_
#define XMLVERIFY_CORE_VERDICT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "xml/tree.h"

namespace xmlverify {

enum class ConsistencyOutcome {
  kConsistent,    // a witness tree exists (and is attached if built)
  kInconsistent,  // proven: no tree satisfies the specification
  kUnknown,       // search capped (undecidable fragment or node limit)
  kDeadlineExceeded,  // wall-clock budget expired before a verdict
  kResourceExhausted,  // memory/depth budget exhausted before a verdict
};

std::string OutcomeName(ConsistencyOutcome outcome);

/// One rung of the checker's degradation ladder: which stage ran, how
/// it ended, and why it could not (or could) settle the question.
/// Collected in ConsistencyVerdict::degradation whenever the exact
/// procedure gave up and a fallback was attempted, so an UNKNOWN
/// verdict carries a structured partial diagnosis instead of silence.
struct DegradationStep {
  std::string stage;    // e.g. "exact (AC_{K,FK} (unary))"
  std::string outcome;  // OutcomeName(...) or a status code name
  std::string reason;   // verdict note or status message
};

struct CheckStats {
  int64_t solver_nodes = 0;
  int64_t lp_pivots = 0;
  int num_variables = 0;
  int num_constraints = 0;
  /// Scopes solved (hierarchical checker) or trees enumerated
  /// (bounded checker).
  int64_t subproblems = 0;
};

struct ConsistencyVerdict {
  ConsistencyOutcome outcome = ConsistencyOutcome::kUnknown;
  /// A satisfying document, when consistent and witness building is
  /// enabled. Always validated against the specification before
  /// being returned.
  std::optional<XmlTree> witness;
  std::string note;
  CheckStats stats;
  /// Degradation-ladder trail: empty unless the exact procedure
  /// exhausted its budget and the checker fell back (see
  /// ConsistencyChecker::Options::degrade_on_exhaustion and
  /// FormatDegradationReport in core/diagnosis.h).
  std::vector<DegradationStep> degradation;

  bool consistent() const {
    return outcome == ConsistencyOutcome::kConsistent;
  }
};

}  // namespace xmlverify

#endif  // XMLVERIFY_CORE_VERDICT_H_
