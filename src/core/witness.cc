#include "core/witness.h"

#include <algorithm>
#include <set>

namespace xmlverify {

namespace {

// One key's attribute group on a type, or a singleton non-key
// attribute.
struct AttributeGroup {
  std::vector<std::string> attributes;
  bool is_key = false;
};

}  // namespace

Status AssignAbsoluteValues(
    const Dtd& dtd, const ConstraintSet& constraints,
    const AbsoluteCardinality& cardinality,
    const std::vector<BigInt>& solution, const std::string& value_prefix,
    XmlTree* tree, const std::map<std::pair<int, std::string>, bool>* special,
    const std::string& special_value) {
  auto value_name = [&value_prefix](int64_t index) {
    return value_prefix + std::to_string(index + 1);
  };
  auto is_special = [special](int type, const std::string& attribute) {
    if (special == nullptr) return false;
    auto it = special->find({type, attribute});
    return it != special->end() && it->second;
  };

  for (int type = 0; type < dtd.num_element_types(); ++type) {
    std::vector<NodeId> elements = tree->ElementsOfType(type);
    if (elements.empty()) continue;
    const int64_t m = static_cast<int64_t>(elements.size());

    // Partition R(type) into key groups and leftover singletons.
    std::vector<AttributeGroup> groups;
    std::set<std::string> grouped;
    for (const AbsoluteKey& key : constraints.absolute_keys()) {
      if (key.type != type) continue;
      groups.push_back({key.attributes, /*is_key=*/true});
      grouped.insert(key.attributes.begin(), key.attributes.end());
    }
    for (const std::string& attribute : dtd.Attributes(type)) {
      if (grouped.count(attribute) == 0) {
        groups.push_back({{attribute}, /*is_key=*/false});
      }
    }

    for (const AttributeGroup& group : groups) {
      // Pool sizes n_i = |ext(type.l_i)| from the solution.
      std::vector<int64_t> sizes;
      for (const std::string& attribute : group.attributes) {
        BigInt count = cardinality.AttrCount(type, attribute, solution);
        Result<int64_t> count64 = count.TryToInt64();
        if (!count64.ok()) {
          return Status::ResourceExhausted("attribute pool too large");
        }
        int64_t n = *count64;
        if (n <= 0 || n > m) {
          return Status::Internal(
              "cardinality solution assigns |ext(" + dtd.TypeName(type) + "." +
              attribute + ")| = " + std::to_string(n) + " with " +
              std::to_string(m) + " elements");
        }
        sizes.push_back(n);
      }

      // Special (out-of-pool) values are only supported on unary
      // groups; the implication fast path guarantees this.
      bool group_special = false;
      for (const std::string& attribute : group.attributes) {
        if (is_special(type, attribute)) group_special = true;
      }
      if (group_special && group.attributes.size() > 1) {
        return Status::Internal(
            "special values are not supported on multi-attribute keys");
      }

      if (!group.is_key) {
        // Cycle through the prefix pool: full coverage, no
        // distinctness requirement. With a special marking, element 0
        // carries the distinguished value and the pool shrinks by one.
        int64_t pool = group_special ? sizes[0] - 1 : sizes[0];
        for (int64_t j = 0; j < m; ++j) {
          if (group_special && (j == 0 || pool == 0)) {
            tree->SetAttribute(elements[j], group.attributes[0],
                               special_value);
          } else {
            int64_t index = group_special ? j - 1 : j;
            tree->SetAttribute(elements[j], group.attributes[0],
                               value_name(index % pool));
          }
        }
        continue;
      }
      if (group_special) {
        // Unary key with a special value: element 0 is the outlier,
        // the rest take the remaining n-1 = m-1 distinct pool values.
        for (int64_t j = 0; j < m; ++j) {
          tree->SetAttribute(elements[j], group.attributes[0],
                             j == 0 ? special_value : value_name(j - 1));
        }
        continue;
      }

      // Key group: element j receives a distinct tuple covering every
      // pool. Phase 1 (j < max n_i): the diagonal (j mod n_i)_i, which
      // is distinct (coordinates at an argmax pool differ) and covers
      // every pool. Phase 2: unused tuples in mixed-radix order.
      int64_t max_size = *std::max_element(sizes.begin(), sizes.end());
      std::set<std::vector<int64_t>> used;
      std::vector<int64_t> radix_counter(sizes.size(), 0);
      auto next_unused = [&]() -> Result<std::vector<int64_t>> {
        while (true) {
          if (used.count(radix_counter) == 0) return radix_counter;
          // Increment the mixed-radix counter.
          size_t position = 0;
          while (position < sizes.size()) {
            if (++radix_counter[position] < sizes[position]) break;
            radix_counter[position] = 0;
            ++position;
          }
          if (position == sizes.size()) {
            return Status::Internal(
                "key tuple space exhausted: |ext(" + dtd.TypeName(type) +
                ")| exceeds the product of its key attribute pools");
          }
        }
      };
      for (int64_t j = 0; j < m; ++j) {
        std::vector<int64_t> tuple(sizes.size());
        if (j < max_size) {
          for (size_t i = 0; i < sizes.size(); ++i) tuple[i] = j % sizes[i];
        } else {
          ASSIGN_OR_RETURN(tuple, next_unused());
        }
        used.insert(tuple);
        for (size_t i = 0; i < sizes.size(); ++i) {
          tree->SetAttribute(elements[j], group.attributes[i],
                             value_name(tuple[i]));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace xmlverify
