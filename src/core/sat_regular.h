// SAT(AC^{reg}_{K,FK}): consistency of unary regular-path keys and
// foreign keys (Theorem 3.4a). Absolute unary constraints in the set
// are folded in as r._*.tau paths. Exact verdicts; NEXPTIME-flavoured
// blow-up shows up as the exponential z_theta block.
#ifndef XMLVERIFY_CORE_SAT_REGULAR_H_
#define XMLVERIFY_CORE_SAT_REGULAR_H_

#include "base/status.h"
#include "constraints/constraint.h"
#include "core/verdict.h"
#include "ilp/solver.h"
#include "xml/dtd.h"

namespace xmlverify {

struct RegularCheckOptions {
  SolverOptions solver;
  bool build_witness = true;
  bool verify_witness = true;
  /// Cap on distinct path expressions (the z_theta block is 2^k).
  int max_expressions = 16;
};

Result<ConsistencyVerdict> CheckRegularConsistency(
    const Dtd& dtd, const ConstraintSet& constraints,
    const RegularCheckOptions& options = {});

}  // namespace xmlverify

#endif  // XMLVERIFY_CORE_SAT_REGULAR_H_
