// Canonical serialization and fingerprinting of specifications.
//
// CanonicalSpecText renders a specification as `.xvc` text in a
// normal form that is a parse -> serialize fixed point: reparsing the
// output yields a specification whose canonical text is byte-identical
// (the DTD listing declares types in symbol-id order with the root
// first, so the reparsed specification assigns the same ids). Two
// syntactically different inputs that denote the same specification
// therefore canonicalize to the same bytes, which is what makes the
// text usable as an exact cache key: the serve-layer verdict cache
// (src/serve/verdict_cache.h) and the difftest generator both key on
// it.
//
// SpecFingerprint condenses the canonical text into a short stable
// hex digest for display, logging, and wire responses. The digest is
// NOT the cache key — caches key on the full canonical text, so a
// hash collision can never alias two specifications to one verdict.
#ifndef XMLVERIFY_CORE_CANONICAL_H_
#define XMLVERIFY_CORE_CANONICAL_H_

#include <string>

#include "core/specification.h"

namespace xmlverify {

/// Canonical `.xvc` rendering: `root <name>`, the DTD listing, a `%%`
/// separator, then the constraint listing. Specification::ParseCombined
/// accepts the output and reassigns identical symbol ids.
std::string CanonicalSpecText(const Specification& spec);

/// 128-bit FNV-1a digest of `text`, as 32 lower-case hex characters.
/// Deterministic across platforms and runs.
std::string FingerprintText(const std::string& text);

/// FingerprintText(CanonicalSpecText(spec)): the stable identity of a
/// specification modulo surface syntax.
std::string SpecFingerprint(const Specification& spec);

}  // namespace xmlverify

#endif  // XMLVERIFY_CORE_CANONICAL_H_
