#include "core/consistency.h"

#include "core/diagnosis.h"
#include "trace/trace.h"

namespace xmlverify {

namespace {

SolverOptions WithBudget(SolverOptions solver, const ResourceBudget& budget) {
  solver.budget = budget;
  if (!budget.deadline().is_infinite()) solver.deadline = budget.deadline();
  return solver;
}

BoundedSearchOptions WithBudget(BoundedSearchOptions bounded,
                                const ResourceBudget& budget) {
  bounded.budget = budget;
  if (!budget.deadline().is_infinite()) bounded.deadline = budget.deadline();
  return bounded;
}

}  // namespace

Result<ConsistencyVerdict> ConsistencyChecker::Check(
    const Specification& spec) const {
  // One budget object carries all three ceilings through the check;
  // the standalone `deadline` option is merged in when the budget has
  // none of its own.
  ResourceBudget budget = options_.budget;
  if (budget.deadline().is_infinite() && !options_.deadline.is_infinite()) {
    budget.set_deadline(options_.deadline);
  }
  bool exact_ran = false;
  Result<ConsistencyVerdict> result = CheckDispatch(spec, budget, &exact_ran);

  // Procedures that propagate limits through Result-returning
  // recursion (the hierarchical checker) surface them as a Status;
  // fold them back into a verdict so every caller sees one shape.
  ConsistencyVerdict verdict;
  if (result.ok()) {
    verdict = std::move(result).value();
  } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
    verdict.outcome = ConsistencyOutcome::kDeadlineExceeded;
    verdict.note = result.status().message();
  } else if (result.status().code() == StatusCode::kResourceExhausted) {
    verdict.outcome = ConsistencyOutcome::kResourceExhausted;
    verdict.note = result.status().message();
  } else {
    return result;
  }

  // Degradation ladder. Deadline expiry is deliberately not a rung:
  // the clock that killed the exact stage would kill the fallback too.
  bool ladder = exact_ran && options_.degrade_on_exhaustion &&
                (verdict.outcome == ConsistencyOutcome::kResourceExhausted ||
                 verdict.outcome == ConsistencyOutcome::kUnknown);
  if (!ladder) return verdict;

  trace::Count("resource/degradations");
  std::vector<DegradationStep> trail;
  trail.push_back({"exact", OutcomeName(verdict.outcome), verdict.note});

  BoundedSearchOptions degraded = WithBudget(options_.degraded, budget);
  Result<ConsistencyVerdict> fallback =
      BoundedSearchConsistency(spec.dtd, spec.constraints, degraded);
  if (!fallback.ok()) {
    trail.push_back({"degraded-bounded", "ERROR",
                     fallback.status().message()});
    verdict.outcome = ConsistencyOutcome::kUnknown;
    verdict.degradation = std::move(trail);
    verdict.note = FormatDegradationReport(verdict.degradation);
    return verdict;
  }
  ConsistencyVerdict degraded_verdict = std::move(fallback).value();
  trail.push_back({"degraded-bounded", OutcomeName(degraded_verdict.outcome),
                   degraded_verdict.note});
  if (degraded_verdict.outcome == ConsistencyOutcome::kConsistent) {
    // A witness found under smaller caps is still a witness: the
    // degraded verdict is sound, just not the one the exact stage
    // would have produced.
    trace::Count("resource/degraded_recoveries");
    degraded_verdict.degradation = std::move(trail);
    degraded_verdict.note = "degraded: " + degraded_verdict.note;
    return degraded_verdict;
  }
  // Bottom of the ladder: report UNKNOWN with the rung-by-rung trail
  // (kResourceExhausted when even the degraded stage ran out of the
  // same budget, so a retry with a bigger one may help).
  verdict.outcome =
      degraded_verdict.outcome == ConsistencyOutcome::kResourceExhausted
          ? ConsistencyOutcome::kResourceExhausted
          : ConsistencyOutcome::kUnknown;
  verdict.degradation = std::move(trail);
  verdict.note = FormatDegradationReport(verdict.degradation);
  return verdict;
}

Result<ConsistencyVerdict> ConsistencyChecker::CheckDispatch(
    const Specification& spec, const ResourceBudget& budget,
    bool* exact_ran) const {
  TraceSpan check_span("check");
  RETURN_IF_ERROR(spec.constraints.Validate(spec.dtd));
  ConstraintClass constraint_class;
  {
    TraceSpan classify_span("check/classify");
    constraint_class = spec.Classify();
  }
  std::string class_name = ConstraintClassName(constraint_class);
  trace::Count("check/constraints",
               static_cast<int64_t>(spec.constraints.size()));

  auto annotate = [&class_name](ConsistencyVerdict verdict) {
    if (verdict.note.empty()) {
      verdict.note = "class: " + class_name;
    } else {
      verdict.note = "class: " + class_name + "; " + verdict.note;
    }
    return verdict;
  };

  switch (constraint_class) {
    case ConstraintClass::kAcKeysOnly:
    case ConstraintClass::kAcUnary:
    case ConstraintClass::kAcMultiPrimary: {
      *exact_ran = true;
      AbsoluteCheckOptions absolute;
      absolute.solver = WithBudget(options_.solver, budget);
      absolute.build_witness = options_.build_witness;
      absolute.verify_witness = options_.verify_witness;
      ASSIGN_OR_RETURN(
          ConsistencyVerdict verdict,
          CheckAbsoluteConsistency(spec.dtd, spec.constraints, absolute));
      return annotate(std::move(verdict));
    }
    case ConstraintClass::kAcRegular: {
      *exact_ran = true;
      RegularCheckOptions regular;
      regular.solver = WithBudget(options_.solver, budget);
      regular.build_witness = options_.build_witness;
      regular.verify_witness = options_.verify_witness;
      regular.max_expressions = options_.max_expressions;
      ASSIGN_OR_RETURN(
          ConsistencyVerdict verdict,
          CheckRegularConsistency(spec.dtd, spec.constraints, regular));
      return annotate(std::move(verdict));
    }
    case ConstraintClass::kRelative:
    case ConstraintClass::kMixedRelative: {
      *exact_ran = true;
      HierarchicalCheckOptions hierarchical;
      hierarchical.solver = WithBudget(options_.solver, budget);
      hierarchical.build_witness = options_.build_witness;
      hierarchical.verify_witness = options_.verify_witness;
      Result<ConsistencyVerdict> verdict =
          CheckHierarchicalConsistency(spec.dtd, spec.constraints,
                                       hierarchical);
      if (verdict.ok()) return annotate(std::move(verdict).value());
      if (verdict.status().code() != StatusCode::kUnsupported) {
        return verdict.status();
      }
      // Non-hierarchical (or otherwise outside HRC): undecidable in
      // general — fall back to bounded search. This is already the
      // bounded rung, so the ladder must not re-degrade it.
      *exact_ran = false;
      ASSIGN_OR_RETURN(
          ConsistencyVerdict bounded,
          BoundedSearchConsistency(spec.dtd, spec.constraints,
                                   WithBudget(options_.bounded, budget)));
      bounded.note = verdict.status().message() +
                     (bounded.note.empty() ? "" : "; " + bounded.note);
      return annotate(std::move(bounded));
    }
    case ConstraintClass::kAcMultiGeneral: {
      // Undecidable ([14]); bounded search only.
      ASSIGN_OR_RETURN(
          ConsistencyVerdict bounded,
          BoundedSearchConsistency(spec.dtd, spec.constraints,
                                   WithBudget(options_.bounded, budget)));
      bounded.note =
          "SAT(AC^{*,*}) is undecidable; bounded search only" +
          (bounded.note.empty() ? std::string() : "; " + bounded.note);
      return annotate(std::move(bounded));
    }
  }
  return Status::Internal("unhandled constraint class");
}

}  // namespace xmlverify
