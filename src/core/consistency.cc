#include "core/consistency.h"

#include "trace/trace.h"

namespace xmlverify {

namespace {

SolverOptions WithDeadline(SolverOptions solver, const Deadline& deadline) {
  if (!deadline.is_infinite()) solver.deadline = deadline;
  return solver;
}

BoundedSearchOptions WithDeadline(BoundedSearchOptions bounded,
                                  const Deadline& deadline) {
  if (!deadline.is_infinite()) bounded.deadline = deadline;
  return bounded;
}

}  // namespace

Result<ConsistencyVerdict> ConsistencyChecker::Check(
    const Specification& spec) const {
  Result<ConsistencyVerdict> result = CheckDispatch(spec);
  // Procedures that propagate deadlines through Result-returning
  // recursion (the hierarchical checker) surface expiry as a Status;
  // fold it back into a verdict so every caller sees one shape.
  if (!result.ok() &&
      result.status().code() == StatusCode::kDeadlineExceeded) {
    ConsistencyVerdict verdict;
    verdict.outcome = ConsistencyOutcome::kDeadlineExceeded;
    verdict.note = result.status().message();
    return verdict;
  }
  return result;
}

Result<ConsistencyVerdict> ConsistencyChecker::CheckDispatch(
    const Specification& spec) const {
  TraceSpan check_span("check");
  RETURN_IF_ERROR(spec.constraints.Validate(spec.dtd));
  ConstraintClass constraint_class;
  {
    TraceSpan classify_span("check/classify");
    constraint_class = spec.Classify();
  }
  std::string class_name = ConstraintClassName(constraint_class);
  trace::Count("check/constraints",
               static_cast<int64_t>(spec.constraints.size()));

  auto annotate = [&class_name](ConsistencyVerdict verdict) {
    if (verdict.note.empty()) {
      verdict.note = "class: " + class_name;
    } else {
      verdict.note = "class: " + class_name + "; " + verdict.note;
    }
    return verdict;
  };

  switch (constraint_class) {
    case ConstraintClass::kAcKeysOnly:
    case ConstraintClass::kAcUnary:
    case ConstraintClass::kAcMultiPrimary: {
      AbsoluteCheckOptions absolute;
      absolute.solver = WithDeadline(options_.solver, options_.deadline);
      absolute.build_witness = options_.build_witness;
      absolute.verify_witness = options_.verify_witness;
      ASSIGN_OR_RETURN(
          ConsistencyVerdict verdict,
          CheckAbsoluteConsistency(spec.dtd, spec.constraints, absolute));
      return annotate(std::move(verdict));
    }
    case ConstraintClass::kAcRegular: {
      RegularCheckOptions regular;
      regular.solver = WithDeadline(options_.solver, options_.deadline);
      regular.build_witness = options_.build_witness;
      regular.verify_witness = options_.verify_witness;
      regular.max_expressions = options_.max_expressions;
      ASSIGN_OR_RETURN(
          ConsistencyVerdict verdict,
          CheckRegularConsistency(spec.dtd, spec.constraints, regular));
      return annotate(std::move(verdict));
    }
    case ConstraintClass::kRelative:
    case ConstraintClass::kMixedRelative: {
      HierarchicalCheckOptions hierarchical;
      hierarchical.solver = WithDeadline(options_.solver, options_.deadline);
      hierarchical.build_witness = options_.build_witness;
      hierarchical.verify_witness = options_.verify_witness;
      Result<ConsistencyVerdict> verdict =
          CheckHierarchicalConsistency(spec.dtd, spec.constraints,
                                       hierarchical);
      if (verdict.ok()) return annotate(std::move(verdict).value());
      if (verdict.status().code() != StatusCode::kUnsupported) {
        return verdict.status();
      }
      // Non-hierarchical (or otherwise outside HRC): undecidable in
      // general — fall back to bounded search.
      ASSIGN_OR_RETURN(
          ConsistencyVerdict bounded,
          BoundedSearchConsistency(
              spec.dtd, spec.constraints,
              WithDeadline(options_.bounded, options_.deadline)));
      bounded.note = verdict.status().message() +
                     (bounded.note.empty() ? "" : "; " + bounded.note);
      return annotate(std::move(bounded));
    }
    case ConstraintClass::kAcMultiGeneral: {
      // Undecidable ([14]); bounded search only.
      ASSIGN_OR_RETURN(
          ConsistencyVerdict bounded,
          BoundedSearchConsistency(
              spec.dtd, spec.constraints,
              WithDeadline(options_.bounded, options_.deadline)));
      bounded.note =
          "SAT(AC^{*,*}) is undecidable; bounded search only" +
          (bounded.note.empty() ? std::string() : "; " + bounded.note);
      return annotate(std::move(bounded));
    }
  }
  return Status::Internal("unhandled constraint class");
}

}  // namespace xmlverify
