// The implication problem Impl(C) in the presence of DTDs
// (Section 3.4): (D, Sigma) |- phi iff every tree satisfying D and
// Sigma satisfies phi — decided by testing consistency of Sigma plus
// the negation of phi (the contrapositive of Proposition 3.6's
// reduction). Covers unary absolute and regular constraints; a
// foreign key is implied iff both its key and its inclusion are.
#ifndef XMLVERIFY_CORE_IMPLICATION_H_
#define XMLVERIFY_CORE_IMPLICATION_H_

#include <optional>

#include "base/status.h"
#include "constraints/constraint.h"
#include "core/brute_force.h"
#include "core/verdict.h"
#include "ilp/solver.h"
#include "xml/dtd.h"

namespace xmlverify {

struct ImplicationOptions {
  SolverOptions solver;
  int max_expressions = 16;
  /// Build a counterexample document when phi is not implied.
  bool build_counterexample = true;
};

struct ImplicationVerdict {
  bool implied = false;
  /// A document satisfying (D, Sigma) but violating phi, when not
  /// implied and counterexample building is enabled.
  std::optional<XmlTree> counterexample;
  CheckStats stats;
};

/// Does (D, Sigma) imply the regular key phi?
Result<ImplicationVerdict> CheckKeyImplication(
    const Dtd& dtd, const ConstraintSet& constraints, const RegularKey& phi,
    const ImplicationOptions& options = {});

/// Does (D, Sigma) imply the regular inclusion phi?
Result<ImplicationVerdict> CheckInclusionImplication(
    const Dtd& dtd, const ConstraintSet& constraints,
    const RegularInclusion& phi, const ImplicationOptions& options = {});

/// Absolute wrappers: phi is rewritten over the path r._*.tau.
Result<ImplicationVerdict> CheckKeyImplication(
    const Dtd& dtd, const ConstraintSet& constraints, const AbsoluteKey& phi,
    const ImplicationOptions& options = {});
Result<ImplicationVerdict> CheckInclusionImplication(
    const Dtd& dtd, const ConstraintSet& constraints,
    const AbsoluteInclusion& phi, const ImplicationOptions& options = {});

/// A foreign key (inclusion + key on its right-hand side) is implied
/// iff both parts are; the counterexample, when present, violates at
/// least one part.
Result<ImplicationVerdict> CheckForeignKeyImplication(
    const Dtd& dtd, const ConstraintSet& constraints,
    const AbsoluteInclusion& phi, const ImplicationOptions& options = {});

/// Bounded counterexample search for implication questions outside
/// the decidable fragments (e.g., relative premises — Impl(RC) is
/// undecidable, Corollary 4.5): enumerates documents up to the given
/// bounds looking for one that satisfies Sigma and violates at least
/// one constraint of `phi`. refuted=true comes with a counterexample;
/// refuted=false is NOT a proof of implication.
struct BoundedRefutation {
  bool refuted = false;
  std::optional<XmlTree> counterexample;
  int64_t candidates_examined = 0;
};
Result<BoundedRefutation> SearchImplicationCounterexample(
    const Dtd& dtd, const ConstraintSet& constraints, const ConstraintSet& phi,
    const BoundedSearchOptions& options = {});

}  // namespace xmlverify

#endif  // XMLVERIFY_CORE_IMPLICATION_H_
