// SAT(HRC_{K,FK}): consistency of hierarchical relative keys and
// foreign keys (Theorem 4.3), by memoized decomposition into scope
// subproblems solved with the absolute checker. Absolute unary
// constraints are folded in as context-r relative constraints.
//
// Rejects non-hierarchical specifications (conflicting pair reported)
// — SAT(RC_{K,FK}) in full is undecidable (Theorem 4.1); use the
// bounded checker for those.
#ifndef XMLVERIFY_CORE_SAT_HIERARCHICAL_H_
#define XMLVERIFY_CORE_SAT_HIERARCHICAL_H_

#include "base/status.h"
#include "constraints/constraint.h"
#include "core/verdict.h"
#include "ilp/solver.h"
#include "xml/dtd.h"

namespace xmlverify {

struct HierarchicalCheckOptions {
  SolverOptions solver;
  bool build_witness = true;
  bool verify_witness = true;
};

Result<ConsistencyVerdict> CheckHierarchicalConsistency(
    const Dtd& dtd, const ConstraintSet& constraints,
    const HierarchicalCheckOptions& options = {});

/// Classification helpers for Figure 4's columns: whether the
/// specification is hierarchical, and its locality d (max scope
/// depth, Theorem 4.4's reformulation).
struct RelativeClassification {
  bool hierarchical = false;
  std::string conflict;  // description when not hierarchical
  int locality = 0;      // max Depth(D_tau); valid when hierarchical
};
Result<RelativeClassification> ClassifyRelative(
    const Dtd& dtd, const ConstraintSet& constraints);

}  // namespace xmlverify

#endif  // XMLVERIFY_CORE_SAT_HIERARCHICAL_H_
