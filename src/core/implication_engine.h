// Layered implication engine: a facade over the implication problem
// Impl(C) (Section 3.4) that answers as many queries as possible with
// a *quick tier* of sound syntactic subsumption rules before paying
// for the full SAT-based contrapositive encoding of
// core/implication.h.
//
// Quick-tier rules (all underapproximations: a quick "implied" is
// always truly implied; a quick miss means "don't know", never "not
// implied"):
//
//   * verbatim     — phi occurs in Sigma (all six constraint
//                    flavours, modulo attribute-tuple permutation);
//   * key-subsumes — Sigma contains tau[Y] with Y a subset of X, so
//                    the key tau[X] over more attributes follows;
//   * singleton-root — a key on the root type holds in every document
//                    (there is exactly one root element);
//   * path-containment — for regular keys, Sigma's key over a larger
//                    node set implies phi's over a smaller one
//                    (L(beta_phi) subset of L(beta_sigma)); for
//                    regular inclusions, shrink the left side and
//                    grow the right (decided on the DFAs of
//                    src/regex/, shared through the global DFA memo);
//                    absolute unary constraints participate through
//                    their r._*.tau normal form;
//   * reflexivity  — tau[X] <= tau[X] and its regular/relative forms;
//   * closure      — transitivity over the unary absolute inclusion
//                    graph (constraints/inclusion_closure.h), sound
//                    under every DTD;
//   * root-context — relative constraints at the root context are
//                    exactly their absolute counterparts.
//
// Misses fall back to the full checker, memoized process-wide through
// base/shared_cache.h keyed on the canonical (DTD, Sigma, phi) text.
// Counters: impl/quick_hits, impl/quick_misses, impl/memo_hits,
// impl/full_checks (docs/implication.md, docs/observability.md).
#ifndef XMLVERIFY_CORE_IMPLICATION_ENGINE_H_
#define XMLVERIFY_CORE_IMPLICATION_ENGINE_H_

#include <optional>
#include <string>

#include "base/shared_cache.h"
#include "base/status.h"
#include "constraints/constraint.h"
#include "core/implication.h"
#include "xml/dtd.h"

namespace xmlverify {

/// Which layer produced an answer.
enum class ImplicationTier { kQuick, kMemo, kFull };
std::string ImplicationTierName(ImplicationTier tier);

struct ImplicationEngineOptions {
  /// Options for the full contrapositive check on quick-tier misses.
  ImplicationOptions full;
  /// Try the syntactic quick tier first (disable to measure the full
  /// encoding in isolation; the bench ablation does).
  bool use_quick = true;
  /// Memoize full-tier answers process-wide.
  bool use_memo = true;
};

struct ImplicationAnswer {
  bool implied = false;
  ImplicationTier tier = ImplicationTier::kFull;
  /// The quick-tier rule that fired ("verbatim", "key-subsumes",
  /// "closure", ...), empty for memo/full answers.
  std::string rule;
  /// A document satisfying (D, Sigma) but violating phi, when not
  /// implied and the full options request counterexamples. Memo hits
  /// carry no counterexample (the memo stores verdicts only), so a
  /// negative answer that needs one always re-solves.
  std::optional<XmlTree> counterexample;
  CheckStats stats;
};

/// The cached payload of one full-tier implication verdict.
struct ImplicationMemoEntry {
  bool implied = false;
};

class ImplicationChecker {
 public:
  explicit ImplicationChecker(ImplicationEngineOptions options = {})
      : options_(std::move(options)) {}

  /// Layered checks: quick tier, then memo, then the full encoding.
  /// Same contracts as the core/implication.h entry points (unary
  /// absolute phi only; errors surface solver budget exhaustion).
  Result<ImplicationAnswer> CheckKey(const Dtd& dtd,
                                     const ConstraintSet& sigma,
                                     const AbsoluteKey& phi) const;
  Result<ImplicationAnswer> CheckKey(const Dtd& dtd,
                                     const ConstraintSet& sigma,
                                     const RegularKey& phi) const;
  Result<ImplicationAnswer> CheckInclusion(const Dtd& dtd,
                                           const ConstraintSet& sigma,
                                           const AbsoluteInclusion& phi) const;
  Result<ImplicationAnswer> CheckInclusion(const Dtd& dtd,
                                           const ConstraintSet& sigma,
                                           const RegularInclusion& phi) const;
  /// Foreign key: implied iff the key on the referenced side and the
  /// inclusion both are. Quick tier must settle both parts to answer.
  Result<ImplicationAnswer> CheckForeignKey(const Dtd& dtd,
                                            const ConstraintSet& sigma,
                                            const AbsoluteInclusion& phi) const;

  /// Quick tier alone: no solver, no budgets, no errors. Sound and
  /// incomplete — `false` means "not settled", not "not implied".
  /// Relative constraints are supported here (verbatim, reflexivity,
  /// root-context, absolute-key strengthening) even though the full
  /// tier cannot decide them (Corollary 4.5).
  bool QuickImplies(const Dtd& dtd, const ConstraintSet& sigma,
                    const AbsoluteKey& phi) const;
  bool QuickImplies(const Dtd& dtd, const ConstraintSet& sigma,
                    const AbsoluteInclusion& phi) const;
  bool QuickImplies(const Dtd& dtd, const ConstraintSet& sigma,
                    const RegularKey& phi) const;
  bool QuickImplies(const Dtd& dtd, const ConstraintSet& sigma,
                    const RegularInclusion& phi) const;
  bool QuickImplies(const Dtd& dtd, const ConstraintSet& sigma,
                    const RelativeKey& phi) const;
  bool QuickImplies(const Dtd& dtd, const ConstraintSet& sigma,
                    const RelativeInclusion& phi) const;

  /// Every constraint of `phis` quick-implied by `sigma`. This is the
  /// set-level primitive behind incremental re-verification
  /// (docs/serving.md): Sigma_new |= Sigma_old pointwise preserves an
  /// INCONSISTENT verdict of Sigma_old's spec, and Sigma_old |=
  /// Sigma_new pointwise preserves a CONSISTENT one.
  bool QuickImpliesAll(const Dtd& dtd, const ConstraintSet& sigma,
                       const ConstraintSet& phis) const;

  /// The process-wide memo behind the full tier, exposed for tests
  /// and statistics (hits()/misses()/Clear()).
  static SharedCache<ImplicationMemoEntry>& GlobalMemo();

 private:
  ImplicationEngineOptions options_;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_CORE_IMPLICATION_ENGINE_H_
