// SAT(AC): consistency of absolute keys and foreign keys with a DTD.
//
// Covers, with exact verdicts:
//   * AC_K           keys only                    (PTIME in the paper)
//   * AC_{K,FK}      unary keys and foreign keys  (NP-complete [14])
//   * AC^{*,1}_{PK,FK} and disjoint AC^{*,1}_{K,FK}
//                    multi-attribute primary keys (PDE, Theorem 3.1)
// via the cardinality encoding Psi(D, Sigma) and the integer solver.
// Multi-attribute inclusions (undecidable, [14]) are rejected.
#ifndef XMLVERIFY_CORE_SAT_ABSOLUTE_H_
#define XMLVERIFY_CORE_SAT_ABSOLUTE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "constraints/constraint.h"
#include "core/verdict.h"
#include "ilp/solver.h"
#include "xml/dtd.h"

namespace xmlverify {

struct AbsoluteCheckOptions {
  SolverOptions solver;
  /// Build a witness tree for consistent specifications.
  bool build_witness = true;
  /// Re-validate the witness with the dynamic checker (cheap, and a
  /// strong internal soundness check).
  bool verify_witness = true;
  /// Distinct pools for the hierarchical checker's sibling scopes.
  std::string value_prefix = "v";
  /// Element types whose extent is forced to zero (hierarchical
  /// checker pruning).
  std::vector<int> forced_empty_types;
  /// Iterative-deepening caps, used only when prequadratic
  /// constraints are present (multi-attribute keys).
  BigInt deepening_initial_cap = BigInt(16);
  BigInt deepening_max_cap = BigInt::Pow2(24);
};

Result<ConsistencyVerdict> CheckAbsoluteConsistency(
    const Dtd& dtd, const ConstraintSet& constraints,
    const AbsoluteCheckOptions& options = {});

}  // namespace xmlverify

#endif  // XMLVERIFY_CORE_SAT_ABSOLUTE_H_
