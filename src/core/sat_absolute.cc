#include "core/sat_absolute.h"

#include "checker/document_checker.h"
#include "core/witness.h"
#include "encoding/cardinality.h"
#include "encoding/flow_encoder.h"
#include "ilp/linear.h"
#include "trace/trace.h"

namespace xmlverify {

Result<ConsistencyVerdict> CheckAbsoluteConsistency(
    const Dtd& dtd, const ConstraintSet& constraints,
    const AbsoluteCheckOptions& options) {
  RETURN_IF_ERROR(constraints.Validate(dtd));

  IntegerProgram program;
  std::optional<TraceSpan> encode_span;
  encode_span.emplace("check/encode");
  ASSIGN_OR_RETURN(DtdFlowSystem flow,
                   DtdFlowSystem::Build(dtd, /*product=*/nullptr, &program));
  ASSIGN_OR_RETURN(
      AbsoluteCardinality cardinality,
      AbsoluteCardinality::Emit(dtd, constraints, options.forced_empty_types,
                                &flow, &program));
  encode_span.reset();

  IlpSolver solver(options.solver);
  std::optional<TraceSpan> solve_span;
  solve_span.emplace("check/solve");
  SolveResult solved =
      program.prequadratics().empty()
          ? solver.Solve(program)
          : solver.SolveWithDeepening(program, options.deepening_initial_cap,
                                      options.deepening_max_cap);
  solve_span.reset();

  ConsistencyVerdict verdict;
  verdict.stats.solver_nodes = solved.nodes_explored;
  verdict.stats.lp_pivots = solved.lp_pivots;
  verdict.stats.num_variables = program.num_variables();
  verdict.stats.num_constraints =
      static_cast<int>(program.linear().size() + program.conditionals().size() +
                       program.prequadratics().size());
  verdict.note = solved.note;

  switch (solved.outcome) {
    case SolveOutcome::kUnsat:
      verdict.outcome = ConsistencyOutcome::kInconsistent;
      return verdict;
    case SolveOutcome::kUnknown:
      verdict.outcome = ConsistencyOutcome::kUnknown;
      return verdict;
    case SolveOutcome::kDeadlineExceeded:
      verdict.outcome = ConsistencyOutcome::kDeadlineExceeded;
      return verdict;
    case SolveOutcome::kResourceExhausted:
      verdict.outcome = ConsistencyOutcome::kResourceExhausted;
      return verdict;
    case SolveOutcome::kSat:
      break;
  }
  verdict.outcome = ConsistencyOutcome::kConsistent;
  if (!options.build_witness) return verdict;

  TraceSpan witness_span("check/witness");
  ASSIGN_OR_RETURN(XmlTree tree, flow.BuildTree(solved.assignment));
  RETURN_IF_ERROR(AssignAbsoluteValues(dtd, constraints, cardinality,
                                       solved.assignment,
                                       options.value_prefix, &tree));
  if (options.verify_witness) {
    Status valid = CheckDocument(tree, dtd, constraints);
    if (!valid.ok()) {
      return Status::Internal(
          "constructed witness fails dynamic validation: " + valid.message());
    }
  }
  verdict.witness = std::move(tree);
  return verdict;
}

}  // namespace xmlverify
