// Bounded model search: enumerate documents conforming to the DTD up
// to a node budget, with attribute values drawn from a small pool,
// and dynamically check the constraints.
//
// This is (a) the honest fallback for the undecidable fragments
// (SAT(RC_{K,FK}), Theorem 4.1; SAT(AC^{*,*}), [14]) — it can return
// kConsistent with a witness but never kInconsistent — and (b) the
// exhaustive oracle used by the test suite to cross-check the
// polynomial encodings on small instances.
#ifndef XMLVERIFY_CORE_BRUTE_FORCE_H_
#define XMLVERIFY_CORE_BRUTE_FORCE_H_

#include <functional>

#include "base/deadline.h"
#include "base/resource_guard.h"
#include "base/status.h"
#include "constraints/constraint.h"
#include "core/verdict.h"
#include "xml/dtd.h"

namespace xmlverify {

struct BoundedSearchOptions {
  /// Maximum element nodes per candidate tree.
  int max_nodes = 8;
  /// Attribute values are drawn from {p1..pV}.
  int num_values = 2;
  /// Upper bound on candidate documents examined.
  int64_t max_candidates = 2000000;
  /// Wall-clock budget, polled in the expansion recursion and the
  /// attribute-value odometer. Expiry yields kDeadlineExceeded.
  Deadline deadline;
  /// Memory budget: candidate-tree copies and the child-word cache are
  /// charged against it. Exhaustion yields kResourceExhausted (never a
  /// definitive verdict). Default: unlimited.
  ResourceBudget budget;
};

/// Searches for a document satisfying the specification within the
/// bounds. kConsistent (with witness) or kUnknown — inconsistency is
/// only reported when the enumeration provably exhausted all trees,
/// which it never claims for star/recursive DTDs or larger value
/// spaces; the verdict note says which.
Result<ConsistencyVerdict> BoundedSearchConsistency(
    const Dtd& dtd, const ConstraintSet& constraints,
    const BoundedSearchOptions& options = {});

/// General form: searches for a DTD-conforming document accepted by
/// `accept` (any predicate over candidate documents). Used, e.g., to
/// hunt for implication counterexamples in the undecidable relative
/// fragment: accept = "satisfies Sigma and violates phi".
Result<ConsistencyVerdict> BoundedSearchDocument(
    const Dtd& dtd, const std::function<bool(const XmlTree&)>& accept,
    const BoundedSearchOptions& options = {});

}  // namespace xmlverify

#endif  // XMLVERIFY_CORE_BRUTE_FORCE_H_
