// An XML specification: a DTD paired with integrity constraints.
// This is the object whose consistency the library decides.
#ifndef XMLVERIFY_CORE_SPECIFICATION_H_
#define XMLVERIFY_CORE_SPECIFICATION_H_

#include <string>

#include "base/status.h"
#include "constraints/constraint.h"
#include "xml/dtd.h"

namespace xmlverify {

/// The constraint classes of Figures 3 and 4, used for dispatch and
/// reporting.
enum class ConstraintClass {
  kAcKeysOnly,        // AC_K: absolute keys, no inclusions (PTIME)
  kAcUnary,           // AC_{K,FK}: unary keys + foreign keys (NP-complete)
  kAcMultiPrimary,    // AC^{*,1}_{PK,FK} / disjoint (PDE-equivalent)
  kAcMultiGeneral,    // AC^{*,*}: undecidable
  kAcRegular,         // AC^{reg}_{K,FK}
  kRelative,          // RC_{K,FK} (undecidable in general)
  kMixedRelative,     // relative + absolute folded together
};

std::string ConstraintClassName(ConstraintClass constraint_class);

struct Specification {
  Dtd dtd;
  ConstraintSet constraints;

  /// Parses a DTD listing and a constraint listing together.
  static Result<Specification> Parse(const std::string& dtd_text,
                                     const std::string& constraints_text);

  /// Parses a combined specification file: the DTD part, a line
  /// containing only `%%`, then the constraint part.
  static Result<Specification> ParseCombined(const std::string& text);

  /// The most specific class of Figures 3/4 covering this
  /// specification.
  ConstraintClass Classify() const;

  std::string ToString() const;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_CORE_SPECIFICATION_H_
