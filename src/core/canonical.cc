#include "core/canonical.h"

#include <cstdint>

namespace xmlverify {

std::string CanonicalSpecText(const Specification& spec) {
  return "root " + spec.dtd.TypeName(spec.dtd.root()) + "\n" +
         spec.dtd.ToString() + "%%\n" + spec.constraints.ToString(spec.dtd);
}

std::string FingerprintText(const std::string& text) {
  // 128-bit FNV-1a split into two 64-bit lanes: the standard 64-bit
  // FNV-1a stream, and a second lane seeded differently and fed the
  // bytes in the same order, so the two halves decorrelate. Chosen
  // for portability (no __int128 needed in the header) rather than
  // cryptographic strength — collisions are cosmetic because callers
  // key caches on the full canonical text.
  uint64_t lo = 0xcbf29ce484222325ULL;
  uint64_t hi = 0x84222325cbf29ce4ULL;
  for (unsigned char byte : text) {
    lo = (lo ^ byte) * 0x100000001b3ULL;
    hi = (hi ^ (byte + 0x9e)) * 0x100000001b3ULL;
  }
  static const char kHex[] = "0123456789abcdef";
  std::string digest(32, '0');
  for (int nibble = 0; nibble < 16; ++nibble) {
    digest[15 - nibble] = kHex[(hi >> (4 * nibble)) & 0xf];
    digest[31 - nibble] = kHex[(lo >> (4 * nibble)) & 0xf];
  }
  return digest;
}

std::string SpecFingerprint(const Specification& spec) {
  return FingerprintText(CanonicalSpecText(spec));
}

}  // namespace xmlverify
