#include "core/sat_hierarchical.h"

#include <map>
#include <set>

#include "checker/document_checker.h"
#include "constraints/relative_geometry.h"
#include "core/sat_absolute.h"
#include "trace/trace.h"
#include "xml/validator.h"

namespace xmlverify {

namespace {

// A scope subproblem is identified by its root context type and the
// set of context types on the path from the document root.
using ScopeKey = std::pair<int, std::set<int>>;

class HierarchicalChecker {
 public:
  HierarchicalChecker(const Dtd& dtd, const ConstraintSet& relative,
                      const RelativeGeometry& geometry,
                      const HierarchicalCheckOptions& options)
      : dtd_(dtd),
        relative_(relative),
        geometry_(geometry),
        options_(options) {}

  // Decides consistency of the scope rooted at a `tau` node reached
  // along a path whose context types are `contexts` (tau included).
  Result<bool> ScopeConsistent(int tau, const std::set<int>& contexts) {
    ScopeKey key{tau, contexts};
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      trace::Count("hierarchical/memo_hits");
      return it->second;
    }
    ASSIGN_OR_RETURN(ConsistencyVerdict verdict,
                     SolveScope(tau, contexts, /*build_witness=*/false,
                                /*value_prefix=*/"v"));
    bool consistent = verdict.consistent();
    memo_[key] = consistent;
    return consistent;
  }

  // Builds the witness for a consistent scope, recursively stitching
  // the witnesses of its context leaves. `instance` makes value pools
  // of distinct scope instances disjoint.
  Result<XmlTree> BuildScopeWitness(int tau, const std::set<int>& contexts) {
    std::string prefix = "s" + std::to_string(instance_counter_++) + "_";
    ASSIGN_OR_RETURN(ConsistencyVerdict verdict,
                     SolveScope(tau, contexts, /*build_witness=*/true, prefix));
    if (!verdict.consistent() || !verdict.witness.has_value()) {
      return Status::Internal(
          "scope declared consistent but witness construction failed");
    }
    return *std::move(verdict.witness);
  }

  // Copies the scope-local witness into the global tree under
  // `target`, recursing into deeper scopes at restricted leaves.
  Status Graft(const XmlTree& scope_tree, NodeId scope_node,
               const std::vector<int>& scope_to_global, XmlTree* global,
               NodeId target, const std::set<int>& contexts) {
    // Attributes of the scope node were assigned by this scope.
    for (const auto& [attribute, value] : scope_tree.AttributesOf(scope_node)) {
      global->SetAttribute(target, attribute, value);
    }
    int global_type = scope_to_global[scope_tree.TypeOf(scope_node)];
    bool is_scope_leaf = geometry_.IsRestricted(global_type) &&
                         scope_node != scope_tree.root();
    if (is_scope_leaf) {
      // Expand the deeper scope in place of this leaf.
      std::set<int> deeper = contexts;
      deeper.insert(global_type);
      ASSIGN_OR_RETURN(XmlTree sub_witness,
                       BuildScopeWitness(global_type, deeper));
      std::vector<int> identity(dtd_.num_element_types());
      // The deeper scope has its own type numbering.
      ASSIGN_OR_RETURN(Dtd scope_dtd, geometry_.ScopeDtd(global_type));
      std::vector<int> deeper_to_global(scope_dtd.num_element_types());
      std::vector<int> scope_types = geometry_.ScopeTypes(global_type);
      for (size_t i = 0; i < scope_types.size(); ++i) {
        deeper_to_global[i] = scope_types[i];
      }
      for (NodeId child : sub_witness.ChildrenOf(sub_witness.root())) {
        RETURN_IF_ERROR(GraftSubtree(sub_witness, child, deeper_to_global,
                                     global, target, deeper));
      }
      return Status::OK();
    }
    for (NodeId child : scope_tree.ChildrenOf(scope_node)) {
      RETURN_IF_ERROR(GraftSubtree(scope_tree, child, scope_to_global, global,
                                   target, contexts));
    }
    return Status::OK();
  }

  // Creates the global node for `scope_node` under `parent`, then
  // recurses via Graft.
  Status GraftSubtree(const XmlTree& scope_tree, NodeId scope_node,
                      const std::vector<int>& scope_to_global, XmlTree* global,
                      NodeId parent, const std::set<int>& contexts) {
    if (scope_tree.IsText(scope_node)) {
      global->AddText(parent, scope_tree.TextOf(scope_node));
      return Status::OK();
    }
    int global_type = scope_to_global[scope_tree.TypeOf(scope_node)];
    NodeId target = global->AddElement(parent, global_type);
    return Graft(scope_tree, scope_node, scope_to_global, global, target,
                 contexts);
  }

  CheckStats& stats() { return stats_; }

 private:
  Result<ConsistencyVerdict> SolveScope(int tau, const std::set<int>& contexts,
                                        bool build_witness,
                                        const std::string& value_prefix) {
    TraceSpan scope_span("hierarchical/scope");
    // One check per scope bounds the recursion; the ILP below polls
    // the same deadline at finer grain.
    if (options_.solver.deadline.Expired()) {
      trace::Count("hierarchical/deadline_exceeded");
      return Status::DeadlineExceeded("hierarchical scope deadline exceeded");
    }
    // The scope recursion is bounded by the context-path length; guard
    // it against the budget's depth ceiling like any parser recursion.
    RETURN_IF_ERROR(options_.solver.budget.CheckDepth(
        static_cast<int>(contexts.size()), "hierarchical/scope"));
    trace::Max("hierarchical/max_context_depth",
               static_cast<int64_t>(contexts.size()));
    ASSIGN_OR_RETURN(Dtd scope_dtd, geometry_.ScopeDtd(tau));
    std::vector<int> map = geometry_.ScopeTypeMap(tau);
    std::vector<int> forced_empty;
    // Recursively prune context leaves whose deeper scope is
    // inconsistent.
    int fanout = 0;
    for (int type : geometry_.ScopeTypes(tau)) {
      if (type == tau || !geometry_.IsRestricted(type)) continue;
      ++fanout;
      std::set<int> deeper = contexts;
      deeper.insert(type);
      ASSIGN_OR_RETURN(bool consistent, ScopeConsistent(type, deeper));
      if (!consistent) forced_empty.push_back(map[type]);
    }
    trace::Count("hierarchical/scope_fanout", fanout);
    std::vector<int> path_types(contexts.begin(), contexts.end());
    ConstraintSet projected = geometry_.ProjectScopeConstraints(
        tau, path_types, map, &forced_empty);

    AbsoluteCheckOptions scope_options;
    scope_options.solver = options_.solver;
    scope_options.build_witness = build_witness;
    scope_options.verify_witness = build_witness && options_.verify_witness;
    scope_options.value_prefix = value_prefix;
    scope_options.forced_empty_types = std::move(forced_empty);
    ASSIGN_OR_RETURN(
        ConsistencyVerdict verdict,
        CheckAbsoluteConsistency(scope_dtd, projected, scope_options));
    stats_.solver_nodes += verdict.stats.solver_nodes;
    stats_.lp_pivots += verdict.stats.lp_pivots;
    stats_.num_variables += verdict.stats.num_variables;
    stats_.num_constraints += verdict.stats.num_constraints;
    ++stats_.subproblems;
    trace::Count("hierarchical/scopes_solved");
    if (verdict.outcome == ConsistencyOutcome::kUnknown) {
      return Status::ResourceExhausted("scope subproblem hit solver limits: " +
                                       verdict.note);
    }
    if (verdict.outcome == ConsistencyOutcome::kResourceExhausted) {
      trace::Count("hierarchical/resource_exhausted");
      return Status::ResourceExhausted("scope subproblem ran out of budget: " +
                                       verdict.note);
    }
    if (verdict.outcome == ConsistencyOutcome::kDeadlineExceeded) {
      trace::Count("hierarchical/deadline_exceeded");
      return Status::DeadlineExceeded("scope subproblem deadline exceeded");
    }
    return verdict;
  }

  const Dtd& dtd_;
  const ConstraintSet& relative_;
  const RelativeGeometry& geometry_;
  const HierarchicalCheckOptions& options_;
  std::map<ScopeKey, bool> memo_;
  CheckStats stats_;
  int64_t instance_counter_ = 0;
};

}  // namespace

Result<RelativeClassification> ClassifyRelative(
    const Dtd& dtd, const ConstraintSet& constraints) {
  ASSIGN_OR_RETURN(ConstraintSet relative,
                   WithAbsoluteAsRelative(constraints, dtd.root()));
  ASSIGN_OR_RETURN(RelativeGeometry geometry,
                   RelativeGeometry::Analyze(dtd, relative));
  RelativeClassification classification;
  classification.hierarchical = geometry.IsHierarchical();
  if (!classification.hierarchical) {
    classification.conflict = geometry.conflicting_pair()->description;
    return classification;
  }
  ASSIGN_OR_RETURN(classification.locality, geometry.MaxScopeDepth());
  return classification;
}

Result<ConsistencyVerdict> CheckHierarchicalConsistency(
    const Dtd& dtd, const ConstraintSet& constraints,
    const HierarchicalCheckOptions& options) {
  RETURN_IF_ERROR(constraints.Validate(dtd));
  // Folding an absolute constraint into a relative one with context
  // root drops the root node from every extent (scopes are strict
  // subtrees), which is harmless for keys on the root (a singleton
  // extent is always a key) but changes the meaning of inclusions
  // that mention the root's attributes. Those lie outside the scope
  // decomposition; refuse them rather than silently answering for a
  // different specification.
  for (const AbsoluteInclusion& inclusion : constraints.absolute_inclusions()) {
    if (inclusion.child_type == dtd.root() ||
        inclusion.parent_type == dtd.root()) {
      return Status::Unsupported(
          "absolute inclusion references the root type's attributes; the "
          "scope decomposition cannot express the root's extent — use the "
          "absolute or bounded checker");
    }
  }
  ASSIGN_OR_RETURN(ConstraintSet relative,
                   WithAbsoluteAsRelative(constraints, dtd.root()));
  ASSIGN_OR_RETURN(RelativeGeometry geometry,
                   RelativeGeometry::Analyze(dtd, relative));
  if (!geometry.IsHierarchical()) {
    return Status::Unsupported(
        "specification is not hierarchical (conflicting pair: " +
        geometry.conflicting_pair()->description +
        "); SAT(RC_{K,FK}) is undecidable in general — use the bounded "
        "checker");
  }

  HierarchicalChecker checker(dtd, relative, geometry, options);
  std::set<int> root_contexts = {dtd.root()};
  ASSIGN_OR_RETURN(bool consistent,
                   checker.ScopeConsistent(dtd.root(), root_contexts));

  ConsistencyVerdict verdict;
  verdict.stats = checker.stats();
  if (!consistent) {
    verdict.outcome = ConsistencyOutcome::kInconsistent;
    return verdict;
  }
  verdict.outcome = ConsistencyOutcome::kConsistent;
  if (!options.build_witness) return verdict;

  TraceSpan witness_span("check/witness");
  ASSIGN_OR_RETURN(XmlTree root_scope,
                   checker.BuildScopeWitness(dtd.root(), root_contexts));
  XmlTree global(dtd.root());
  std::vector<int> scope_types = geometry.ScopeTypes(dtd.root());
  ASSIGN_OR_RETURN(Dtd root_scope_dtd, geometry.ScopeDtd(dtd.root()));
  std::vector<int> scope_to_global(root_scope_dtd.num_element_types());
  for (size_t i = 0; i < scope_types.size(); ++i) {
    scope_to_global[i] = scope_types[i];
  }
  RETURN_IF_ERROR(checker.Graft(root_scope, root_scope.root(), scope_to_global,
                                &global, global.root(), root_contexts));
  verdict.stats = checker.stats();
  if (options.verify_witness) {
    Status valid = CheckDocument(global, dtd, relative);
    if (!valid.ok()) {
      return Status::Internal(
          "stitched hierarchical witness fails dynamic validation: " +
          valid.message());
    }
  }
  verdict.witness = std::move(global);
  return verdict;
}

}  // namespace xmlverify
