#include "core/sat_regular.h"

#include "checker/document_checker.h"
#include "encoding/regular_encoder.h"
#include "ilp/linear.h"
#include "trace/trace.h"

namespace xmlverify {

Result<ConsistencyVerdict> CheckRegularConsistency(
    const Dtd& dtd, const ConstraintSet& constraints,
    const RegularCheckOptions& options) {
  RETURN_IF_ERROR(constraints.Validate(dtd));
  ASSIGN_OR_RETURN(ConstraintSet regular,
                   AbsoluteAsRegular(constraints, dtd));

  IntegerProgram program;
  RegularEncoderOptions encoder_options;
  encoder_options.max_expressions = options.max_expressions;
  std::optional<TraceSpan> encode_span;
  encode_span.emplace("check/encode");
  ASSIGN_OR_RETURN(std::unique_ptr<RegularEncoder> encoder,
                   RegularEncoder::Build(dtd, regular, &program,
                                         encoder_options));
  encode_span.reset();

  IlpSolver solver(options.solver);
  std::optional<TraceSpan> solve_span;
  solve_span.emplace("check/solve");
  SolveResult solved = solver.Solve(program);
  solve_span.reset();

  ConsistencyVerdict verdict;
  verdict.stats.solver_nodes = solved.nodes_explored;
  verdict.stats.lp_pivots = solved.lp_pivots;
  verdict.stats.num_variables = program.num_variables();
  verdict.stats.num_constraints = static_cast<int>(
      program.linear().size() + program.conditionals().size());
  verdict.note = solved.note;

  switch (solved.outcome) {
    case SolveOutcome::kUnsat:
      verdict.outcome = ConsistencyOutcome::kInconsistent;
      return verdict;
    case SolveOutcome::kUnknown:
      verdict.outcome = ConsistencyOutcome::kUnknown;
      return verdict;
    case SolveOutcome::kDeadlineExceeded:
      verdict.outcome = ConsistencyOutcome::kDeadlineExceeded;
      return verdict;
    case SolveOutcome::kResourceExhausted:
      verdict.outcome = ConsistencyOutcome::kResourceExhausted;
      return verdict;
    case SolveOutcome::kSat:
      break;
  }
  verdict.outcome = ConsistencyOutcome::kConsistent;
  if (!options.build_witness) return verdict;

  TraceSpan witness_span("check/witness");
  ASSIGN_OR_RETURN(XmlTree tree, encoder->BuildWitness(solved.assignment));
  if (options.verify_witness) {
    Status valid = CheckDocument(tree, dtd, regular);
    if (!valid.ok()) {
      return Status::Internal(
          "constructed regular witness fails dynamic validation: " +
          valid.message());
    }
  }
  verdict.witness = std::move(tree);
  return verdict;
}

}  // namespace xmlverify
