// Inconsistency diagnosis: shrink an inconsistent specification to a
// minimal core — a subset of the constraints that is still
// inconsistent with the DTD, but becomes consistent when any single
// constraint is dropped. This turns a bare INCONSISTENT verdict into
// an actionable explanation ("these four constraints cannot coexist
// with the DTD"), in the spirit of the paper's worked examples where
// one added foreign key breaks the whole specification.
#ifndef XMLVERIFY_CORE_DIAGNOSIS_H_
#define XMLVERIFY_CORE_DIAGNOSIS_H_

#include "base/status.h"
#include "core/consistency.h"
#include "core/specification.h"

namespace xmlverify {

struct DiagnosisOptions {
  ConsistencyChecker::Options checker;
};

/// Requires that (dtd, constraints) is inconsistent with an exact
/// verdict; returns a minimal inconsistent core by iterative deletion
/// (|Sigma| consistency checks). Constraints whose removal makes the
/// verdict kUnknown are conservatively kept.
Result<ConstraintSet> MinimizeInconsistentCore(
    const Dtd& dtd, const ConstraintSet& constraints,
    const DiagnosisOptions& options = {});

/// Specification hygiene: drops absolute unary constraints that are
/// implied (in the presence of the DTD) by the remaining ones, via
/// the implication checker — e.g. transitively redundant inclusions,
/// or keys forced by DTD cardinalities. Greedy, order-dependent but
/// sound: the returned set constrains exactly the same documents.
/// Regular/relative constraints and multi-attribute keys are kept
/// as-is (their implication problems are harder or undecidable).
Result<ConstraintSet> RemoveRedundantConstraints(
    const Dtd& dtd, const ConstraintSet& constraints,
    const DiagnosisOptions& options = {});

/// Renders the rung-by-rung trail of a degraded check (see
/// ConsistencyChecker::Options::degrade_on_exhaustion) as a single
/// line for verdict notes and CLI output, e.g.
///   degradation ladder: exact: RESOURCE_EXHAUSTED (memory budget
///   exhausted at solver/node ...) -> degraded-bounded: UNKNOWN
///   (candidate budget exhausted)
/// This is the "structured partial diagnosis" a bottomed-out ladder
/// reports instead of a bare UNKNOWN.
std::string FormatDegradationReport(const std::vector<DegradationStep>& steps);

}  // namespace xmlverify

#endif  // XMLVERIFY_CORE_DIAGNOSIS_H_
