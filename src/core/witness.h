// Attribute-value assignment for witness trees of absolute
// specifications (Lemma 1): all value sets are prefixes of one global
// value sequence, so inclusion constraints follow from cardinality
// comparisons, and key tuples are drawn from the product of the key
// attributes' prefix pools.
#ifndef XMLVERIFY_CORE_WITNESS_H_
#define XMLVERIFY_CORE_WITNESS_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/bigint.h"
#include "base/status.h"
#include "constraints/constraint.h"
#include "encoding/cardinality.h"
#include "xml/dtd.h"
#include "xml/tree.h"

namespace xmlverify {

/// Fills in every attribute of `tree` so that the absolute keys and
/// inclusions of `constraints` hold, given the cardinality solution
/// that `tree` realizes. Values are `value_prefix` + index, so
/// distinct prefixes yield disjoint pools (used by the hierarchical
/// checker to keep sibling scopes value-disjoint).
///
/// `special` (optional) marks attribute sets that must additionally
/// contain the distinguished out-of-pool value `special_value` — the
/// mechanism behind inclusion counterexamples in the implication
/// checker: the special value escapes every unmarked set. Marked
/// attributes count the special value inside their |ext(tau.l)|
/// budget, so the pool shrinks by one.
Status AssignAbsoluteValues(
    const Dtd& dtd, const ConstraintSet& constraints,
    const AbsoluteCardinality& cardinality,
    const std::vector<BigInt>& solution, const std::string& value_prefix,
    XmlTree* tree,
    const std::map<std::pair<int, std::string>, bool>* special = nullptr,
    const std::string& special_value = "OUTLIER");

}  // namespace xmlverify

#endif  // XMLVERIFY_CORE_WITNESS_H_
