#include "core/brute_force.h"

#include <deque>
#include <map>

#include "checker/document_checker.h"
#include "trace/trace.h"
#include "xml/validator.h"

namespace xmlverify {

namespace {

class BoundedSearcher {
 public:
  BoundedSearcher(const Dtd& dtd,
                  std::function<bool(const XmlTree&)> accept,
                  const BoundedSearchOptions& options)
      : dtd_(dtd),
        accept_(std::move(accept)),
        options_(options),
        deadline_check_(options.deadline) {}

  ~BoundedSearcher() { options_.budget.ReleaseMemory(charged_bytes_); }

  Result<ConsistencyVerdict> Run() {
    TraceSpan search_span("bounded/search");
    trace::Max("bounded/max_nodes", options_.max_nodes);
    XmlTree seed(dtd_.root());
    std::deque<NodeId> pending = {seed.root()};
    Status status = Expand(seed, pending, options_.max_nodes - 1);
    if (!status.ok()) return status;
    trace::Count("bounded/candidates", candidates_);
    ConsistencyVerdict verdict;
    verdict.stats.subproblems = candidates_;
    if (found_.has_value()) {
      verdict.outcome = ConsistencyOutcome::kConsistent;
      verdict.witness = std::move(found_);
      return verdict;
    }
    if (deadline_hit_) {
      trace::Count("bounded/deadline_exceeded");
      verdict.outcome = ConsistencyOutcome::kDeadlineExceeded;
      verdict.note = "deadline exceeded";
      return verdict;
    }
    if (resource_hit_) {
      trace::Count("bounded/resource_exhausted");
      verdict.outcome = ConsistencyOutcome::kResourceExhausted;
      verdict.note = resource_note_;
      return verdict;
    }
    verdict.outcome = ConsistencyOutcome::kUnknown;
    verdict.note = budget_hit_
                       ? "candidate budget exhausted"
                       : "no satisfying document with at most " +
                             std::to_string(options_.max_nodes) +
                             " elements and " +
                             std::to_string(options_.num_values) +
                             " attribute values";
    return verdict;
  }

 private:
  // Child-label words of length <= max_length accepted by the content
  // DFA of `type` (cached).
  const std::vector<std::vector<int>>& Words(int type, int max_length) {
    auto key = std::make_pair(type, max_length);
    auto it = words_cache_.find(key);
    if (it != words_cache_.end()) return it->second;
    const Dfa& dfa = dtd_.ContentDfa(type);
    std::vector<std::vector<int>> words;
    std::vector<int> word;
    // Depth-first enumeration over DFA states.
    EnumerateWords(dfa, dfa.start(), max_length, &word, &words);
    // The cache persists for the searcher's lifetime; charge it
    // against the memory budget (released in the destructor).
    int64_t bytes = 0;
    for (const std::vector<int>& w : words) {
      bytes += 48 + static_cast<int64_t>(w.size()) * 4;
    }
    Status status = options_.budget.ChargeMemory(bytes, "bounded/words");
    if (!status.ok()) {
      resource_hit_ = true;
      resource_note_ = status.message();
    } else {
      charged_bytes_ += bytes;
    }
    return words_cache_.emplace(key, std::move(words)).first->second;
  }

  void EnumerateWords(const Dfa& dfa, int state, int remaining,
                      std::vector<int>* word,
                      std::vector<std::vector<int>>* words) {
    if (dfa.IsAccepting(state)) words->push_back(*word);
    if (remaining == 0) return;
    for (int symbol = 0; symbol < dfa.alphabet_size(); ++symbol) {
      int next = dfa.Next(state, symbol);
      word->push_back(symbol);
      EnumerateWords(dfa, next, remaining - 1, word, words);
      word->pop_back();
    }
  }

  // Expands the first pending element with every admissible child
  // word, then recurses; complete structures go to TryValues.
  Status Expand(const XmlTree& tree, std::deque<NodeId> pending, int budget) {
    if (found_.has_value() || budget_hit_ || resource_hit_) {
      return Status::OK();
    }
    if (deadline_check_.Expired()) {
      deadline_hit_ = true;
      return Status::OK();
    }
    if (pending.empty()) return TryValues(tree);
    NodeId node = pending.front();
    pending.pop_front();
    int type = tree.TypeOf(node);
    const std::vector<std::vector<int>>& words = Words(type, budget);
    if (resource_hit_) return Status::OK();
    for (const std::vector<int>& word : words) {
      int elements = 0;
      for (int symbol : word) {
        if (symbol != dtd_.pcdata_symbol()) ++elements;
      }
      if (elements > budget) continue;
      // Charge the copied tree for the duration of the recursive call.
      ScopedMemoryCharge tree_charge(
          options_.budget,
          static_cast<int64_t>(tree.AllElements().size() + word.size()) * 128,
          "bounded/tree");
      if (!tree_charge.status().ok()) {
        resource_hit_ = true;
        resource_note_ = tree_charge.status().message();
        return Status::OK();
      }
      XmlTree next = tree;
      std::deque<NodeId> next_pending = pending;
      for (int symbol : word) {
        if (symbol == dtd_.pcdata_symbol()) {
          next.AddText(node, "text");
        } else {
          next_pending.push_back(next.AddElement(node, symbol));
        }
      }
      RETURN_IF_ERROR(Expand(next, std::move(next_pending),
                             budget - elements));
      if (found_.has_value() || budget_hit_ || deadline_hit_ ||
          resource_hit_) {
        return Status::OK();
      }
    }
    return Status::OK();
  }

  // Odometer over all attribute-value assignments.
  Status TryValues(const XmlTree& structure) {
    if (trace::Enabled()) {
      trace::Max("bounded/max_tree_nodes",
                 static_cast<int64_t>(structure.AllElements().size()));
    }
    std::vector<std::pair<NodeId, std::string>> slots;
    for (NodeId node : structure.AllElements()) {
      for (const std::string& attribute :
           dtd_.Attributes(structure.TypeOf(node))) {
        slots.emplace_back(node, attribute);
      }
    }
    std::vector<int> odometer(slots.size(), 0);
    while (true) {
      if (++candidates_ > options_.max_candidates) {
        budget_hit_ = true;
        return Status::OK();
      }
      if (deadline_check_.Expired()) {
        deadline_hit_ = true;
        return Status::OK();
      }
      XmlTree candidate = structure;
      for (size_t i = 0; i < slots.size(); ++i) {
        candidate.SetAttribute(slots[i].first, slots[i].second,
                               "p" + std::to_string(odometer[i] + 1));
      }
      if (Conforms(candidate, dtd_) && accept_(candidate)) {
        found_ = std::move(candidate);
        return Status::OK();
      }
      // Advance the odometer.
      size_t position = 0;
      while (position < slots.size()) {
        if (++odometer[position] < options_.num_values) break;
        odometer[position] = 0;
        ++position;
      }
      if (position == slots.size()) return Status::OK();
    }
  }

  const Dtd& dtd_;
  std::function<bool(const XmlTree&)> accept_;
  const BoundedSearchOptions& options_;
  std::map<std::pair<int, int>, std::vector<std::vector<int>>> words_cache_;
  std::optional<XmlTree> found_;
  int64_t candidates_ = 0;
  bool budget_hit_ = false;
  PeriodicDeadlineCheck deadline_check_;
  bool deadline_hit_ = false;
  bool resource_hit_ = false;
  std::string resource_note_;
  int64_t charged_bytes_ = 0;
};

}  // namespace

Result<ConsistencyVerdict> BoundedSearchConsistency(
    const Dtd& dtd, const ConstraintSet& constraints,
    const BoundedSearchOptions& options) {
  RETURN_IF_ERROR(constraints.Validate(dtd));
  BoundedSearcher searcher(
      dtd,
      [&dtd, &constraints](const XmlTree& tree) {
        return CheckConstraints(tree, dtd, constraints).ok();
      },
      options);
  return searcher.Run();
}

Result<ConsistencyVerdict> BoundedSearchDocument(
    const Dtd& dtd, const std::function<bool(const XmlTree&)>& accept,
    const BoundedSearchOptions& options) {
  BoundedSearcher searcher(dtd, accept, options);
  return searcher.Run();
}

}  // namespace xmlverify
