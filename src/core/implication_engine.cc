#include "core/implication_engine.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "constraints/inclusion_closure.h"
#include "regex/automaton.h"
#include "trace/trace.h"

namespace xmlverify {
namespace {

// r._*.tau — the path reaching every tau node (Definition 2.1 places
// root-typed elements only at the root, hence the bare-symbol case).
Regex AbsolutePath(const Dtd& dtd, int type) {
  if (type == dtd.root()) return Regex::Symbol(type);
  return Regex::Concat(
      Regex::Concat(Regex::Symbol(dtd.root()), Regex::Star(Regex::Wildcard())),
      Regex::Symbol(type));
}

bool MentionsWildcard(const Regex& regex) {
  switch (regex.kind()) {
    case RegexKind::kWildcard:
      return true;
    case RegexKind::kConcat:
    case RegexKind::kUnion:
      return MentionsWildcard(regex.left()) || MentionsWildcard(regex.right());
    case RegexKind::kStar:
      return MentionsWildcard(regex.left());
    default:
      return false;
  }
}

// Lazily-built shared state for one (dtd, sigma) quick-tier session,
// so set-level queries (QuickImpliesAll) pay for the inclusion
// closure and the wildcard alphabet at most once.
struct QuickContext {
  QuickContext(const Dtd& dtd_in, const ConstraintSet& sigma_in)
      : dtd(dtd_in), sigma(sigma_in) {}

  const Dtd& dtd;
  const ConstraintSet& sigma;

  const InclusionClosure& Closure() const {
    if (!closure) closure.emplace(sigma);
    return *closure;
  }

  const std::vector<int>& NonRootTypes() const {
    if (!non_root) {
      non_root.emplace();
      for (int type = 0; type < dtd.num_element_types(); ++type) {
        if (type != dtd.root()) non_root->push_back(type);
      }
    }
    return *non_root;
  }

 private:
  mutable std::optional<InclusionClosure> closure;
  mutable std::optional<std::vector<int>> non_root;
};

// L(a) subset of L(b) over the element-type alphabet, with `_` read
// as E \ {r} exactly as the path checkers do (document_checker.cc,
// regular_encoder.cc). Conservatively false when a wildcard cannot be
// expanded (single-type DTD). Determinization goes through the
// process-wide DFA memo, so repeated quick queries are hash lookups.
bool PathContained(const QuickContext& ctx, const Regex& a, const Regex& b) {
  Regex ea = a;
  Regex eb = b;
  if (MentionsWildcard(a) || MentionsWildcard(b)) {
    const std::vector<int>& symbols = ctx.NonRootTypes();
    if (symbols.empty()) return false;
    if (MentionsWildcard(a)) ea = ExpandWildcard(a, symbols);
    if (MentionsWildcard(b)) eb = ExpandWildcard(b, symbols);
  }
  if (ea.CanonicalText() == eb.CanonicalText()) return true;
  const int alphabet = ctx.dtd.num_element_types();
  return CachedDeterminize(ea, alphabet)
      .ContainedIn(CachedDeterminize(eb, alphabet));
}

std::vector<std::string> Sorted(std::vector<std::string> attrs) {
  std::sort(attrs.begin(), attrs.end());
  return attrs;
}

// Attribute tuples in keys are sets: tau[X] only asks that the
// X-projection be identifying, so order is irrelevant.
bool SameAttrSet(const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
  return a.size() == b.size() && Sorted(a) == Sorted(b);
}

bool AttrSubset(const std::vector<std::string>& sub,
                const std::vector<std::string>& super) {
  std::vector<std::string> s = Sorted(sub);
  std::vector<std::string> t = Sorted(super);
  return std::includes(t.begin(), t.end(), s.begin(), s.end());
}

// An inclusion tau1[X] <= tau2[Y] is the set of positional pairs
// (x_i, y_i); reordering the positions does not change the constraint
// (the same parent element witnesses every pair).
std::vector<std::pair<std::string, std::string>> AttrPairs(
    const AbsoluteInclusion& inc) {
  std::vector<std::pair<std::string, std::string>> pairs;
  const size_t arity =
      std::min(inc.child_attributes.size(), inc.parent_attributes.size());
  pairs.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    pairs.emplace_back(inc.child_attributes[i], inc.parent_attributes[i]);
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

// --- Quick-tier rules. Each returns the name of the rule that fired,
// or nullptr for "not settled" (never "not implied"). Every rule is a
// sound underapproximation of (D, Sigma) |- phi; soundness arguments
// are inline and cross-checked by the difftest --impl sweep.

const char* QuickRule(const QuickContext& ctx, const AbsoluteKey& phi) {
  // Any document has exactly one root element, so a key on the root
  // type holds vacuously.
  if (phi.type == ctx.dtd.root()) return "singleton-root";
  for (const AbsoluteKey& key : ctx.sigma.absolute_keys()) {
    if (key.type != phi.type) continue;
    if (SameAttrSet(key.attributes, phi.attributes)) return "verbatim";
    // tau[Y] -> tau with Y subset of X: if two elements agree on all
    // of X they agree on Y, so the Y-key already separates them.
    if (AttrSubset(key.attributes, phi.attributes)) return "key-subsumes";
  }
  if (phi.IsUnary()) {
    const Regex all_paths = AbsolutePath(ctx.dtd, phi.type);
    // A regular key over a superset of the tau node set: two
    // colliding tau nodes would both lie in nodes(beta.tau) and
    // violate it.
    for (const RegularKey& key : ctx.sigma.regular_keys()) {
      if (key.type != phi.type || key.attribute != phi.attributes[0]) continue;
      if (PathContained(ctx, all_paths, key.node_path)) {
        return "path-containment";
      }
    }
    // A relative key at the root context ranges over the whole
    // document: it IS the absolute key.
    for (const RelativeKey& key : ctx.sigma.relative_keys()) {
      if (key.context == ctx.dtd.root() && key.type == phi.type &&
          key.attribute == phi.attributes[0]) {
        return "root-context";
      }
    }
  }
  return nullptr;
}

const char* QuickRule(const QuickContext& ctx, const RegularKey& phi) {
  // Root-typed elements occur only at the root, so nodes(beta.r) has
  // at most one element and the key is vacuous.
  if (phi.type == ctx.dtd.root()) return "singleton-root";
  for (const RegularKey& key : ctx.sigma.regular_keys()) {
    if (key.type != phi.type || key.attribute != phi.attribute) continue;
    if (key.node_path.CanonicalText() == phi.node_path.CanonicalText()) {
      return "verbatim";
    }
    // Sigma's key ranges over a superset node set.
    if (PathContained(ctx, phi.node_path, key.node_path)) {
      return "path-containment";
    }
  }
  const Regex all_paths = AbsolutePath(ctx.dtd, phi.type);
  // An absolute unary key covers every tau node, in particular
  // nodes(phi) when L(phi) only reaches tau nodes.
  for (const AbsoluteKey& key : ctx.sigma.absolute_keys()) {
    if (key.type != phi.type || !key.IsUnary() ||
        key.attributes[0] != phi.attribute) {
      continue;
    }
    if (PathContained(ctx, phi.node_path, all_paths)) {
      return "path-containment";
    }
  }
  for (const RelativeKey& key : ctx.sigma.relative_keys()) {
    if (key.context == ctx.dtd.root() && key.type == phi.type &&
        key.attribute == phi.attribute &&
        PathContained(ctx, phi.node_path, all_paths)) {
      return "root-context";
    }
  }
  return nullptr;
}

const char* QuickRule(const QuickContext& ctx, const AbsoluteInclusion& phi) {
  // tau[X] <= tau[X]: every element witnesses itself.
  if (phi.child_type == phi.parent_type &&
      phi.child_attributes == phi.parent_attributes) {
    return "reflexivity";
  }
  const auto pairs = AttrPairs(phi);
  for (const AbsoluteInclusion& inc : ctx.sigma.absolute_inclusions()) {
    if (inc.child_type == phi.child_type &&
        inc.parent_type == phi.parent_type &&
        inc.child_attributes.size() == phi.child_attributes.size() &&
        AttrPairs(inc) == pairs) {
      return "verbatim";
    }
  }
  if (phi.IsUnary()) {
    const std::string& ca = phi.child_attributes[0];
    const std::string& pa = phi.parent_attributes[0];
    // Reflexivity + transitivity over the unary inclusion graph,
    // sound under every DTD (Cosmadakis–Kanellakis–Vardi).
    if (ctx.Closure().Implies(phi.child_type, ca, phi.parent_type, pa)) {
      return "closure";
    }
    for (const RelativeInclusion& inc : ctx.sigma.relative_inclusions()) {
      if (inc.context == ctx.dtd.root() && inc.child_type == phi.child_type &&
          inc.child_attribute == ca && inc.parent_type == phi.parent_type &&
          inc.parent_attribute == pa) {
        return "root-context";
      }
    }
    // A regular inclusion whose left side covers all tau1 nodes and
    // whose right side stays within the tau2 nodes.
    for (const RegularInclusion& inc : ctx.sigma.regular_inclusions()) {
      if (inc.child_type != phi.child_type || inc.child_attribute != ca ||
          inc.parent_type != phi.parent_type || inc.parent_attribute != pa) {
        continue;
      }
      if (PathContained(ctx, AbsolutePath(ctx.dtd, phi.child_type),
                        inc.child_path) &&
          PathContained(ctx, inc.parent_path,
                        AbsolutePath(ctx.dtd, phi.parent_type))) {
        return "path-containment";
      }
    }
  }
  return nullptr;
}

const char* QuickRule(const QuickContext& ctx, const RegularInclusion& phi) {
  // nodes(child) within nodes(parent) on the same attribute: every
  // node witnesses itself.
  if (phi.child_type == phi.parent_type &&
      phi.child_attribute == phi.parent_attribute &&
      PathContained(ctx, phi.child_path, phi.parent_path)) {
    return "reflexivity";
  }
  for (const RegularInclusion& inc : ctx.sigma.regular_inclusions()) {
    if (inc.child_type != phi.child_type ||
        inc.child_attribute != phi.child_attribute ||
        inc.parent_type != phi.parent_type ||
        inc.parent_attribute != phi.parent_attribute) {
      continue;
    }
    if (inc.child_path.CanonicalText() == phi.child_path.CanonicalText() &&
        inc.parent_path.CanonicalText() == phi.parent_path.CanonicalText()) {
      return "verbatim";
    }
    // Shrink the left side, grow the right: Sigma's inclusion gives
    // each node of the smaller child set a witness in the smaller
    // parent set, which lies inside phi's larger one.
    if (PathContained(ctx, phi.child_path, inc.child_path) &&
        PathContained(ctx, inc.parent_path, phi.parent_path)) {
      return "path-containment";
    }
  }
  // An absolute unary inclusion covers all tau1 nodes; it settles phi
  // when phi's child set only reaches tau1 nodes and phi's parent set
  // contains every tau2 node.
  for (const AbsoluteInclusion& inc : ctx.sigma.absolute_inclusions()) {
    if (!inc.IsUnary()) continue;
    if (inc.child_type != phi.child_type ||
        inc.child_attributes[0] != phi.child_attribute ||
        inc.parent_type != phi.parent_type ||
        inc.parent_attributes[0] != phi.parent_attribute) {
      continue;
    }
    if (PathContained(ctx, phi.child_path,
                      AbsolutePath(ctx.dtd, phi.child_type)) &&
        PathContained(ctx, AbsolutePath(ctx.dtd, phi.parent_type),
                      phi.parent_path)) {
      return "path-containment";
    }
  }
  return nullptr;
}

const char* QuickRule(const QuickContext& ctx, const RelativeKey& phi) {
  // Root-typed elements occur only at the root: below any context
  // element there is at most one, so the key is vacuous.
  if (phi.type == ctx.dtd.root()) return "singleton-root";
  for (const RelativeKey& key : ctx.sigma.relative_keys()) {
    if (key.context == phi.context && key.type == phi.type &&
        key.attribute == phi.attribute) {
      return "verbatim";
    }
  }
  // A document-wide key separates tau nodes everywhere, in particular
  // within each context subtree.
  for (const AbsoluteKey& key : ctx.sigma.absolute_keys()) {
    if (key.type == phi.type && key.IsUnary() &&
        key.attributes[0] == phi.attribute) {
      return "global-to-local";
    }
  }
  const Regex all_paths = AbsolutePath(ctx.dtd, phi.type);
  for (const RegularKey& key : ctx.sigma.regular_keys()) {
    if (key.type == phi.type && key.attribute == phi.attribute &&
        PathContained(ctx, all_paths, key.node_path)) {
      return "global-to-local";
    }
  }
  return nullptr;
}

const char* QuickRule(const QuickContext& ctx, const RelativeInclusion& phi) {
  // ctx(tau.l <= tau.l): each descendant witnesses itself.
  if (phi.child_type == phi.parent_type &&
      phi.child_attribute == phi.parent_attribute) {
    return "reflexivity";
  }
  for (const RelativeInclusion& inc : ctx.sigma.relative_inclusions()) {
    if (inc.context == phi.context && inc.child_type == phi.child_type &&
        inc.child_attribute == phi.child_attribute &&
        inc.parent_type == phi.parent_type &&
        inc.parent_attribute == phi.parent_attribute) {
      return "verbatim";
    }
  }
  // NOTE: an absolute inclusion does NOT localize — the global parent
  // witness may live under a different context element.
  return nullptr;
}

template <typename Phi>
bool QuickSettled(const QuickContext& ctx, const Phi& phi) {
  const char* rule = QuickRule(ctx, phi);
  trace::Count(rule != nullptr ? "impl/quick_hits" : "impl/quick_misses");
  return rule != nullptr;
}

std::string MemoKey(const Dtd& dtd, const ConstraintSet& sigma,
                    const char* flavor, const std::string& phi_text) {
  // Keyed on the canonical renderings: the DTD text pins the symbol
  // ids, Sigma's text is a parse->serialize fixed point, and phi is
  // rendered with the same names. Equal keys denote equal questions
  // across processes and unrelated Specification objects.
  std::string key = dtd.ToString();
  key += "\n%%\n";
  key += sigma.ToString(dtd);
  key += "\n|=\n";
  key += flavor;
  key += ' ';
  key += phi_text;
  return key;
}

template <typename QuickFn, typename FullFn>
Result<ImplicationAnswer> LayeredCheck(const ImplicationEngineOptions& options,
                                       const Dtd& dtd,
                                       const ConstraintSet& sigma,
                                       const char* flavor,
                                       const std::string& phi_text,
                                       QuickFn&& quick, FullFn&& full) {
  if (options.use_quick) {
    QuickContext ctx{dtd, sigma};
    if (const char* rule = quick(ctx)) {
      trace::Count("impl/quick_hits");
      ImplicationAnswer answer;
      answer.implied = true;
      answer.tier = ImplicationTier::kQuick;
      answer.rule = rule;
      return answer;
    }
    trace::Count("impl/quick_misses");
  }
  std::string key;
  if (options.use_memo) {
    key = MemoKey(dtd, sigma, flavor, phi_text);
    if (auto hit = ImplicationChecker::GlobalMemo().Lookup(key)) {
      // The memo stores verdicts only. A memoized "not implied" has
      // no counterexample to offer, so it cannot serve a caller that
      // asked for one — fall through and re-solve.
      if (hit->implied || !options.full.build_counterexample) {
        trace::Count("impl/memo_hits");
        ImplicationAnswer answer;
        answer.implied = hit->implied;
        answer.tier = ImplicationTier::kMemo;
        return answer;
      }
    }
  }
  trace::Count("impl/full_checks");
  Result<ImplicationVerdict> verdict = full();
  if (!verdict.ok()) return verdict.status();
  if (options.use_memo) {
    ImplicationChecker::GlobalMemo().Insert(key,
                                            ImplicationMemoEntry{
                                                verdict->implied,
                                            });
  }
  ImplicationAnswer answer;
  answer.implied = verdict->implied;
  answer.tier = ImplicationTier::kFull;
  answer.counterexample = std::move(verdict->counterexample);
  answer.stats = verdict->stats;
  return answer;
}

}  // namespace

std::string ImplicationTierName(ImplicationTier tier) {
  switch (tier) {
    case ImplicationTier::kQuick:
      return "quick";
    case ImplicationTier::kMemo:
      return "memo";
    case ImplicationTier::kFull:
      return "full";
  }
  return "unknown";
}

SharedCache<ImplicationMemoEntry>& ImplicationChecker::GlobalMemo() {
  static SharedCache<ImplicationMemoEntry>* memo =
      new SharedCache<ImplicationMemoEntry>(1 << 14);
  return *memo;
}

Result<ImplicationAnswer> ImplicationChecker::CheckKey(
    const Dtd& dtd, const ConstraintSet& sigma, const AbsoluteKey& phi) const {
  return LayeredCheck(
      options_, dtd, sigma, "ak", phi.ToString(dtd),
      [&](const QuickContext& ctx) { return QuickRule(ctx, phi); },
      [&] { return CheckKeyImplication(dtd, sigma, phi, options_.full); });
}

Result<ImplicationAnswer> ImplicationChecker::CheckKey(
    const Dtd& dtd, const ConstraintSet& sigma, const RegularKey& phi) const {
  return LayeredCheck(
      options_, dtd, sigma, "rk", phi.ToString(dtd),
      [&](const QuickContext& ctx) { return QuickRule(ctx, phi); },
      [&] { return CheckKeyImplication(dtd, sigma, phi, options_.full); });
}

Result<ImplicationAnswer> ImplicationChecker::CheckInclusion(
    const Dtd& dtd, const ConstraintSet& sigma,
    const AbsoluteInclusion& phi) const {
  return LayeredCheck(
      options_, dtd, sigma, "ai", phi.ToString(dtd),
      [&](const QuickContext& ctx) { return QuickRule(ctx, phi); },
      [&] {
        return CheckInclusionImplication(dtd, sigma, phi, options_.full);
      });
}

Result<ImplicationAnswer> ImplicationChecker::CheckInclusion(
    const Dtd& dtd, const ConstraintSet& sigma,
    const RegularInclusion& phi) const {
  return LayeredCheck(
      options_, dtd, sigma, "ri", phi.ToString(dtd),
      [&](const QuickContext& ctx) { return QuickRule(ctx, phi); },
      [&] {
        return CheckInclusionImplication(dtd, sigma, phi, options_.full);
      });
}

Result<ImplicationAnswer> ImplicationChecker::CheckForeignKey(
    const Dtd& dtd, const ConstraintSet& sigma,
    const AbsoluteInclusion& phi) const {
  // Quick tier must settle BOTH parts; otherwise delegate to the full
  // foreign-key check, which reports whichever part fails first.
  return LayeredCheck(
      options_, dtd, sigma, "fk", phi.ToString(dtd),
      [&](const QuickContext& ctx) -> const char* {
        const AbsoluteKey key_part{phi.parent_type, phi.parent_attributes};
        if (QuickRule(ctx, key_part) == nullptr) return nullptr;
        return QuickRule(ctx, phi);
      },
      [&] {
        return CheckForeignKeyImplication(dtd, sigma, phi, options_.full);
      });
}

bool ImplicationChecker::QuickImplies(const Dtd& dtd,
                                      const ConstraintSet& sigma,
                                      const AbsoluteKey& phi) const {
  return QuickSettled(QuickContext{dtd, sigma}, phi);
}

bool ImplicationChecker::QuickImplies(const Dtd& dtd,
                                      const ConstraintSet& sigma,
                                      const AbsoluteInclusion& phi) const {
  return QuickSettled(QuickContext{dtd, sigma}, phi);
}

bool ImplicationChecker::QuickImplies(const Dtd& dtd,
                                      const ConstraintSet& sigma,
                                      const RegularKey& phi) const {
  return QuickSettled(QuickContext{dtd, sigma}, phi);
}

bool ImplicationChecker::QuickImplies(const Dtd& dtd,
                                      const ConstraintSet& sigma,
                                      const RegularInclusion& phi) const {
  return QuickSettled(QuickContext{dtd, sigma}, phi);
}

bool ImplicationChecker::QuickImplies(const Dtd& dtd,
                                      const ConstraintSet& sigma,
                                      const RelativeKey& phi) const {
  return QuickSettled(QuickContext{dtd, sigma}, phi);
}

bool ImplicationChecker::QuickImplies(const Dtd& dtd,
                                      const ConstraintSet& sigma,
                                      const RelativeInclusion& phi) const {
  return QuickSettled(QuickContext{dtd, sigma}, phi);
}

bool ImplicationChecker::QuickImpliesAll(const Dtd& dtd,
                                         const ConstraintSet& sigma,
                                         const ConstraintSet& phis) const {
  const QuickContext ctx{dtd, sigma};
  for (const AbsoluteKey& phi : phis.absolute_keys()) {
    if (!QuickSettled(ctx, phi)) return false;
  }
  for (const AbsoluteInclusion& phi : phis.absolute_inclusions()) {
    if (!QuickSettled(ctx, phi)) return false;
  }
  for (const RegularKey& phi : phis.regular_keys()) {
    if (!QuickSettled(ctx, phi)) return false;
  }
  for (const RegularInclusion& phi : phis.regular_inclusions()) {
    if (!QuickSettled(ctx, phi)) return false;
  }
  for (const RelativeKey& phi : phis.relative_keys()) {
    if (!QuickSettled(ctx, phi)) return false;
  }
  for (const RelativeInclusion& phi : phis.relative_inclusions()) {
    if (!QuickSettled(ctx, phi)) return false;
  }
  return true;
}

}  // namespace xmlverify
