#include "core/sat_bounded.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "trace/trace.h"

namespace xmlverify {

namespace {

using Vector = std::vector<int64_t>;
using VectorSet = std::set<Vector>;

// Pairwise sums of two achievable-vector sets.
Result<VectorSet> SumSet(const VectorSet& a, const VectorSet& b,
                         size_t max_vectors) {
  VectorSet result;
  for (const Vector& u : a) {
    for (const Vector& v : b) {
      Vector sum(u.size());
      for (size_t i = 0; i < u.size(); ++i) sum[i] = u[i] + v[i];
      result.insert(std::move(sum));
      if (result.size() > max_vectors) {
        return Status::ResourceExhausted(
            "achievable-vector set exceeds the configured cap; instance "
            "is outside the fixed-(k,d) tractable regime");
      }
    }
  }
  return result;
}

class NoStarChecker {
 public:
  NoStarChecker(const Dtd& dtd, const ConstraintSet& constraints,
                const NoStarCheckOptions& options)
      : dtd_(dtd),
        constraints_(constraints),
        options_(options),
        deadline_check_(options.deadline) {}

  ~NoStarChecker() { options_.budget.ReleaseMemory(charged_bytes_); }

  Result<ConsistencyVerdict> Run() {
    // Dimensions: element types mentioned by the constraints.
    std::set<int> mentioned;
    for (const AbsoluteKey& key : constraints_.absolute_keys()) {
      mentioned.insert(key.type);
    }
    for (const AbsoluteInclusion& inclusion :
         constraints_.absolute_inclusions()) {
      mentioned.insert(inclusion.child_type);
      mentioned.insert(inclusion.parent_type);
    }
    dims_.assign(mentioned.begin(), mentioned.end());
    for (size_t i = 0; i < dims_.size(); ++i) dim_of_[dims_[i]] = i;
    trace::Count("nostar/dims", static_cast<int64_t>(dims_.size()));
    ASSIGN_OR_RETURN(int depth, dtd_.Depth());
    trace::Max("nostar/dtd_depth", depth);

    memo_.assign(dtd_.num_element_types(), std::nullopt);
    TraceSpan solve_span("check/solve");
    Result<VectorSet> root_result = TypeSet(dtd_.root());
    if (!root_result.ok()) {
      // A capped or timed-out DP has not examined every extent vector,
      // so no definitive verdict is possible — report the limit as a
      // verdict instead of a hard error.
      const Status& status = root_result.status();
      if (status.code() == StatusCode::kResourceExhausted) {
        ConsistencyVerdict verdict;
        if (budget_hit_) {
          // The process ran out of budget — says nothing about the
          // instance, and a retry with a bigger budget may succeed.
          trace::Count("nostar/resource_exhausted");
          verdict.outcome = ConsistencyOutcome::kResourceExhausted;
        } else {
          // The max_vectors cap is a statement about the instance: it
          // is outside the fixed-(k,d) tractable regime.
          trace::Count("nostar/vector_cap_hits");
          verdict.outcome = ConsistencyOutcome::kUnknown;
        }
        verdict.note = status.message();
        return verdict;
      }
      if (status.code() == StatusCode::kDeadlineExceeded) {
        trace::Count("nostar/deadline_exceeded");
        ConsistencyVerdict verdict;
        verdict.outcome = ConsistencyOutcome::kDeadlineExceeded;
        verdict.note = "deadline exceeded";
        return verdict;
      }
      return status;
    }
    VectorSet root_set = std::move(root_result).value();
    trace::Count("nostar/root_vectors", static_cast<int64_t>(root_set.size()));

    ConsistencyVerdict verdict;
    verdict.stats.subproblems = static_cast<int64_t>(root_set.size());
    for (const Vector& extents : root_set) {
      if (AttrFeasible(extents)) {
        verdict.outcome = ConsistencyOutcome::kConsistent;
        return verdict;
      }
    }
    verdict.outcome = ConsistencyOutcome::kInconsistent;
    return verdict;
  }

 private:
  // Charges `num_vectors` freshly materialized vectors against the
  // memory budget; everything charged is released when the checker is
  // destroyed (transient sets are counted until then — a conservative
  // over-approximation of the DP's true high-water mark).
  Status Charge(size_t num_vectors) {
    int64_t bytes = static_cast<int64_t>(num_vectors) *
                    (64 + static_cast<int64_t>(dims_.size()) * 8);
    Status status = options_.budget.ChargeMemory(bytes, "nostar/vectors");
    if (!status.ok()) {
      budget_hit_ = true;
      return status;
    }
    charged_bytes_ += bytes;
    return Status::OK();
  }

  // Achievable extent vectors of a single tau-subtree.
  Result<VectorSet> TypeSet(int type) {
    if (memo_[type].has_value()) return *memo_[type];
    ASSIGN_OR_RETURN(VectorSet content_set, RegexSet(dtd_.Content(type)));
    RETURN_IF_ERROR(Charge(content_set.size()));
    auto it = dim_of_.find(type);
    if (it != dim_of_.end()) {
      VectorSet shifted;
      for (Vector v : content_set) {
        v[it->second] += 1;
        shifted.insert(std::move(v));
      }
      content_set = std::move(shifted);
    }
    memo_[type] = content_set;
    return content_set;
  }

  Result<VectorSet> RegexSet(const Regex& regex) {
    if (deadline_check_.Expired()) {
      return Status::DeadlineExceeded("no-star DP deadline exceeded");
    }
    switch (regex.kind()) {
      case RegexKind::kEpsilon:
        return VectorSet{Vector(dims_.size(), 0)};
      case RegexKind::kWildcard:
        return Status::Unsupported("wildcard in content model");
      case RegexKind::kSymbol:
        if (regex.symbol() == dtd_.pcdata_symbol()) {
          return VectorSet{Vector(dims_.size(), 0)};
        }
        return TypeSet(regex.symbol());
      case RegexKind::kConcat: {
        ASSIGN_OR_RETURN(VectorSet left, RegexSet(regex.left()));
        ASSIGN_OR_RETURN(VectorSet right, RegexSet(regex.right()));
        ASSIGN_OR_RETURN(VectorSet sum,
                         SumSet(left, right, options_.max_vectors));
        RETURN_IF_ERROR(Charge(sum.size()));
        return sum;
      }
      case RegexKind::kUnion: {
        ASSIGN_OR_RETURN(VectorSet left, RegexSet(regex.left()));
        ASSIGN_OR_RETURN(VectorSet right, RegexSet(regex.right()));
        left.insert(right.begin(), right.end());
        if (left.size() > options_.max_vectors) {
          return Status::ResourceExhausted("achievable-vector set too large");
        }
        RETURN_IF_ERROR(Charge(left.size()));
        return left;
      }
      case RegexKind::kStar:
        return Status::InvalidArgument(
            "CheckNoStarConsistency requires a no-star DTD");
    }
    return Status::Internal("unhandled regex kind");
  }

  // Given the extent of every mentioned type, decide whether attribute
  // counts |ext(tau.l)| can be chosen to satisfy C_Sigma: each count
  // ranges over [1, ext] (or {0} when ext = 0), keys pin it to ext,
  // and inclusions x <= y propagate upper bounds to a fixpoint.
  bool AttrFeasible(const Vector& extents) {
    std::map<std::pair<int, std::string>, std::pair<int64_t, int64_t>> domain;
    auto domain_of = [&](int type, const std::string& attribute)
        -> std::pair<int64_t, int64_t>& {
      auto key = std::make_pair(type, attribute);
      auto it = domain.find(key);
      if (it == domain.end()) {
        int64_t ext = extents[dim_of_.at(type)];
        it = domain.emplace(key, std::make_pair(ext > 0 ? 1 : 0, ext)).first;
      }
      return it->second;
    };
    for (const AbsoluteKey& key : constraints_.absolute_keys()) {
      int64_t ext = extents[dim_of_.at(key.type)];
      auto& dom = domain_of(key.type, key.attributes[0]);
      dom.first = std::max(dom.first, ext);
      dom.second = std::min(dom.second, ext);
    }
    // Fixpoint over inclusion upper bounds and lower bounds.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const AbsoluteInclusion& inclusion :
           constraints_.absolute_inclusions()) {
        auto& child = domain_of(inclusion.child_type,
                                inclusion.child_attributes[0]);
        auto& parent = domain_of(inclusion.parent_type,
                                 inclusion.parent_attributes[0]);
        if (child.second > parent.second) {
          child.second = parent.second;
          changed = true;
        }
        if (parent.first < child.first) {
          parent.first = child.first;
          changed = true;
        }
      }
    }
    for (const auto& [key, dom] : domain) {
      (void)key;
      if (dom.first > dom.second) return false;
    }
    return true;
  }

  const Dtd& dtd_;
  const ConstraintSet& constraints_;
  const NoStarCheckOptions& options_;
  std::vector<int> dims_;
  std::map<int, size_t> dim_of_;
  std::vector<std::optional<VectorSet>> memo_;
  PeriodicDeadlineCheck deadline_check_;
  int64_t charged_bytes_ = 0;
  bool budget_hit_ = false;
};

}  // namespace

Result<ConsistencyVerdict> CheckNoStarConsistency(
    const Dtd& dtd, const ConstraintSet& constraints,
    const NoStarCheckOptions& options) {
  RETURN_IF_ERROR(constraints.Validate(dtd));
  if (constraints.HasRegular() || constraints.HasRelative() ||
      !constraints.AllAbsoluteUnary()) {
    return Status::InvalidArgument(
        "CheckNoStarConsistency handles unary absolute constraints only");
  }
  if (dtd.IsRecursive() || !dtd.IsNoStar()) {
    return Status::InvalidArgument(
        "CheckNoStarConsistency requires a non-recursive no-star DTD "
        "(Theorem 3.5)");
  }
  NoStarChecker checker(dtd, constraints, options);
  return checker.Run();
}

}  // namespace xmlverify
