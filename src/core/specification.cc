#include "core/specification.h"

#include "base/string_util.h"
#include "constraints/constraint_parser.h"
#include "core/verdict.h"
#include "xml/dtd_parser.h"

namespace xmlverify {

std::string OutcomeName(ConsistencyOutcome outcome) {
  switch (outcome) {
    case ConsistencyOutcome::kConsistent: return "CONSISTENT";
    case ConsistencyOutcome::kInconsistent: return "INCONSISTENT";
    case ConsistencyOutcome::kUnknown: return "UNKNOWN";
    case ConsistencyOutcome::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ConsistencyOutcome::kResourceExhausted: return "RESOURCE_EXHAUSTED";
  }
  return "?";
}

std::string ConstraintClassName(ConstraintClass constraint_class) {
  switch (constraint_class) {
    case ConstraintClass::kAcKeysOnly: return "AC_K (keys only)";
    case ConstraintClass::kAcUnary: return "AC_{K,FK} (unary)";
    case ConstraintClass::kAcMultiPrimary:
      return "AC^{*,1}_{PK,FK} (multi-attribute primary keys)";
    case ConstraintClass::kAcMultiGeneral:
      return "AC^{*,*}_{K,FK} (multi-attribute, undecidable)";
    case ConstraintClass::kAcRegular: return "AC^{reg}_{K,FK} (regular paths)";
    case ConstraintClass::kRelative: return "RC_{K,FK} (relative)";
    case ConstraintClass::kMixedRelative:
      return "RC_{K,FK} with absolute constraints";
  }
  return "unknown";
}

Result<Specification> Specification::Parse(
    const std::string& dtd_text, const std::string& constraints_text) {
  Specification spec;
  ASSIGN_OR_RETURN(spec.dtd, ParseDtd(dtd_text));
  ASSIGN_OR_RETURN(spec.constraints,
                   ParseConstraints(constraints_text, spec.dtd));
  return spec;
}

Result<Specification> Specification::ParseCombined(const std::string& text) {
  // Find the `%%` separator on a line of its own.
  size_t position = 0;
  while (position <= text.size()) {
    size_t end = text.find('\n', position);
    if (end == std::string::npos) end = text.size();
    std::string_view line =
        StripWhitespace(std::string_view(text).substr(position, end - position));
    if (line == "%%") {
      return Parse(text.substr(0, position),
                   end >= text.size() ? std::string() : text.substr(end + 1));
    }
    if (end >= text.size()) break;
    position = end + 1;
  }
  return Status::InvalidArgument(
      "combined specification is missing the '%%' separator line between "
      "the DTD and the constraints");
}

ConstraintClass Specification::Classify() const {
  if (constraints.HasRelative()) {
    return constraints.HasAbsolute() || constraints.HasRegular()
               ? ConstraintClass::kMixedRelative
               : ConstraintClass::kRelative;
  }
  if (constraints.HasRegular()) return ConstraintClass::kAcRegular;
  if (constraints.AllAbsoluteUnary()) {
    return constraints.absolute_inclusions().empty()
               ? ConstraintClass::kAcKeysOnly
               : ConstraintClass::kAcUnary;
  }
  if (constraints.AbsoluteInclusionsUnary() &&
      constraints.AbsoluteKeysDisjoint()) {
    return ConstraintClass::kAcMultiPrimary;
  }
  return ConstraintClass::kAcMultiGeneral;
}

std::string Specification::ToString() const {
  return dtd.ToString() + "\n" + constraints.ToString(dtd);
}

}  // namespace xmlverify
