#include "difftest/shrinker.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "difftest/spec_generator.h"
#include "regex/regex.h"
#include "trace/trace.h"

namespace xmlverify {
namespace {

// A specification taken apart into freely editable pieces. Type ids
// index `names`; the pcdata symbol is names.size().
struct Parts {
  std::vector<std::string> names;
  std::vector<std::vector<std::string>> attrs;
  std::vector<Regex> contents;
  int root = 0;
  ConstraintSet constraints;
};

Parts Decompose(const Specification& spec) {
  Parts parts;
  int n = spec.dtd.num_element_types();
  for (int type = 0; type < n; ++type) {
    parts.names.push_back(spec.dtd.TypeName(type));
    parts.attrs.push_back(spec.dtd.Attributes(type));
    parts.contents.push_back(spec.dtd.Content(type));
  }
  parts.root = spec.dtd.root();
  parts.constraints = spec.constraints;
  return parts;
}

Result<Specification> Recompose(const Parts& parts) {
  Dtd::Builder builder(parts.names, parts.names[parts.root]);
  for (size_t type = 0; type < parts.names.size(); ++type) {
    for (const std::string& attr : parts.attrs[type]) {
      builder.AddAttribute(parts.names[type], attr);
    }
    builder.SetContent(parts.names[type], parts.contents[type]);
  }
  Specification spec;
  ASSIGN_OR_RETURN(spec.dtd, builder.Build());
  spec.constraints = parts.constraints;
  RETURN_IF_ERROR(spec.constraints.Validate(spec.dtd));
  return spec;
}

// Replaces every occurrence of a symbol in `drop` with epsilon.
Regex EraseSymbols(const Regex& regex, const std::set<int>& drop) {
  switch (regex.kind()) {
    case RegexKind::kEpsilon:
    case RegexKind::kWildcard:
      return regex;
    case RegexKind::kSymbol:
      return drop.count(regex.symbol()) > 0 ? Regex::Epsilon() : regex;
    case RegexKind::kConcat:
      return Regex::Concat(EraseSymbols(regex.left(), drop),
                           EraseSymbols(regex.right(), drop));
    case RegexKind::kUnion:
      return Regex::Union(EraseSymbols(regex.left(), drop),
                          EraseSymbols(regex.right(), drop));
    case RegexKind::kStar:
      return Regex::Star(EraseSymbols(regex.left(), drop));
  }
  return regex;
}

bool MentionsAny(const Regex& regex, const std::set<int>& drop) {
  for (int symbol : regex.Symbols()) {
    if (drop.count(symbol) > 0) return true;
  }
  return false;
}

// Removes the given (non-root) types: erases them from every content
// model, renumbers the survivors (the pcdata symbol shifts down with
// them), and drops every constraint that mentions a removed type.
Parts RemoveTypes(const Parts& parts, const std::set<int>& drop) {
  int old_n = static_cast<int>(parts.names.size());
  std::vector<int> remap(old_n + 1, -1);
  Parts out;
  for (int type = 0; type < old_n; ++type) {
    if (drop.count(type) > 0) continue;
    remap[type] = static_cast<int>(out.names.size());
    out.names.push_back(parts.names[type]);
    out.attrs.push_back(parts.attrs[type]);
  }
  remap[old_n] = static_cast<int>(out.names.size());  // pcdata symbol
  out.root = remap[parts.root];
  auto remap_fn = [&remap](int symbol) { return remap[symbol]; };
  for (int type = 0; type < old_n; ++type) {
    if (drop.count(type) > 0) continue;
    out.contents.push_back(
        RemapSymbols(EraseSymbols(parts.contents[type], drop), remap_fn));
  }

  const ConstraintSet& c = parts.constraints;
  for (const AbsoluteKey& key : c.absolute_keys()) {
    if (drop.count(key.type) > 0) continue;
    out.constraints.Add(AbsoluteKey{remap[key.type], key.attributes});
  }
  for (const AbsoluteInclusion& inc : c.absolute_inclusions()) {
    if (drop.count(inc.child_type) > 0 || drop.count(inc.parent_type) > 0) {
      continue;
    }
    out.constraints.Add(AbsoluteInclusion{remap[inc.child_type],
                                          inc.child_attributes,
                                          remap[inc.parent_type],
                                          inc.parent_attributes});
  }
  for (const RegularKey& key : c.regular_keys()) {
    if (drop.count(key.type) > 0 || MentionsAny(key.node_path, drop)) continue;
    out.constraints.Add(RegularKey{RemapSymbols(key.node_path, remap_fn),
                                   remap[key.type], key.attribute});
  }
  for (const RegularInclusion& inc : c.regular_inclusions()) {
    if (drop.count(inc.child_type) > 0 || drop.count(inc.parent_type) > 0 ||
        MentionsAny(inc.child_path, drop) ||
        MentionsAny(inc.parent_path, drop)) {
      continue;
    }
    out.constraints.Add(RegularInclusion{
        RemapSymbols(inc.child_path, remap_fn), remap[inc.child_type],
        inc.child_attribute, RemapSymbols(inc.parent_path, remap_fn),
        remap[inc.parent_type], inc.parent_attribute});
  }
  for (const RelativeKey& key : c.relative_keys()) {
    if (drop.count(key.context) > 0 || drop.count(key.type) > 0) continue;
    out.constraints.Add(
        RelativeKey{remap[key.context], remap[key.type], key.attribute});
  }
  for (const RelativeInclusion& inc : c.relative_inclusions()) {
    if (drop.count(inc.context) > 0 || drop.count(inc.child_type) > 0 ||
        drop.count(inc.parent_type) > 0) {
      continue;
    }
    out.constraints.Add(RelativeInclusion{
        remap[inc.context], remap[inc.child_type], inc.child_attribute,
        remap[inc.parent_type], inc.parent_attribute});
  }
  return out;
}

// Deletes any type no longer referenced from the root: the Builder
// rejects disconnected DTDs, so content simplifications cascade into
// type removals.
Parts PruneUnreachable(Parts parts) {
  while (true) {
    int n = static_cast<int>(parts.names.size());
    std::vector<bool> reachable(n, false);
    std::vector<int> stack = {parts.root};
    reachable[parts.root] = true;
    while (!stack.empty()) {
      int type = stack.back();
      stack.pop_back();
      for (int symbol : parts.contents[type].Symbols()) {
        if (symbol < n && !reachable[symbol]) {
          reachable[symbol] = true;
          stack.push_back(symbol);
        }
      }
    }
    std::set<int> drop;
    for (int type = 0; type < n; ++type) {
      if (!reachable[type]) drop.insert(type);
    }
    if (drop.empty()) return parts;
    parts = RemoveTypes(parts, drop);
  }
}

// Single-step regex reductions anywhere in the tree: a node is
// replaced by epsilon, by its own operand, or by one side of a binary
// operator. `limit` caps the enumeration.
void Reductions(const Regex& regex, size_t limit, std::vector<Regex>* out) {
  if (out->size() >= limit) return;
  switch (regex.kind()) {
    case RegexKind::kEpsilon:
      return;
    case RegexKind::kSymbol:
    case RegexKind::kWildcard:
      out->push_back(Regex::Epsilon());
      return;
    case RegexKind::kStar:
      out->push_back(Regex::Epsilon());
      out->push_back(regex.left());  // a* -> a
      for (Regex inner : [&] {
             std::vector<Regex> inners;
             Reductions(regex.left(), limit, &inners);
             return inners;
           }()) {
        if (out->size() >= limit) return;
        out->push_back(Regex::Star(std::move(inner)));
      }
      return;
    case RegexKind::kConcat:
    case RegexKind::kUnion: {
      bool concat = regex.kind() == RegexKind::kConcat;
      out->push_back(regex.left());
      out->push_back(regex.right());
      std::vector<Regex> lefts;
      Reductions(regex.left(), limit, &lefts);
      for (Regex& left : lefts) {
        if (out->size() >= limit) return;
        out->push_back(concat ? Regex::Concat(std::move(left), regex.right())
                              : Regex::Union(std::move(left), regex.right()));
      }
      std::vector<Regex> rights;
      Reductions(regex.right(), limit, &rights);
      for (Regex& right : rights) {
        if (out->size() >= limit) return;
        out->push_back(concat ? Regex::Concat(regex.left(), std::move(right))
                              : Regex::Union(regex.left(), std::move(right)));
      }
      return;
    }
  }
}

// Rebuilds the constraint set with one flat-indexed constraint
// removed (ordering: absolute keys, absolute inclusions, regular
// keys, regular inclusions, relative keys, relative inclusions).
ConstraintSet WithoutConstraint(const ConstraintSet& c, int index) {
  ConstraintSet out;
  int i = 0;
  for (const AbsoluteKey& x : c.absolute_keys()) {
    if (i++ != index) out.Add(x);
  }
  for (const AbsoluteInclusion& x : c.absolute_inclusions()) {
    if (i++ != index) out.Add(x);
  }
  for (const RegularKey& x : c.regular_keys()) {
    if (i++ != index) out.Add(x);
  }
  for (const RegularInclusion& x : c.regular_inclusions()) {
    if (i++ != index) out.Add(x);
  }
  for (const RelativeKey& x : c.relative_keys()) {
    if (i++ != index) out.Add(x);
  }
  for (const RelativeInclusion& x : c.relative_inclusions()) {
    if (i++ != index) out.Add(x);
  }
  return out;
}

bool AttributeUsed(const ConstraintSet& c, int type, const std::string& attr) {
  for (const AbsoluteKey& x : c.absolute_keys()) {
    if (x.type == type) {
      for (const std::string& a : x.attributes) {
        if (a == attr) return true;
      }
    }
  }
  for (const AbsoluteInclusion& x : c.absolute_inclusions()) {
    if (x.child_type == type) {
      for (const std::string& a : x.child_attributes) {
        if (a == attr) return true;
      }
    }
    if (x.parent_type == type) {
      for (const std::string& a : x.parent_attributes) {
        if (a == attr) return true;
      }
    }
  }
  for (const RegularKey& x : c.regular_keys()) {
    if (x.type == type && x.attribute == attr) return true;
  }
  for (const RegularInclusion& x : c.regular_inclusions()) {
    if ((x.child_type == type && x.child_attribute == attr) ||
        (x.parent_type == type && x.parent_attribute == attr)) {
      return true;
    }
  }
  for (const RelativeKey& x : c.relative_keys()) {
    if (x.type == type && x.attribute == attr) return true;
  }
  for (const RelativeInclusion& x : c.relative_inclusions()) {
    if ((x.child_type == type && x.child_attribute == attr) ||
        (x.parent_type == type && x.parent_attribute == attr)) {
      return true;
    }
  }
  return false;
}

// All shrink candidates for `parts`, cheapest-and-biggest-win first:
// drop a constraint, drop a type, simplify a content model, drop an
// unused attribute.
std::vector<Parts> Candidates(const Parts& parts) {
  std::vector<Parts> out;
  int num_constraints = parts.constraints.size();
  for (int i = 0; i < num_constraints; ++i) {
    Parts candidate = parts;
    candidate.constraints = WithoutConstraint(parts.constraints, i);
    out.push_back(PruneUnreachable(std::move(candidate)));
  }
  int n = static_cast<int>(parts.names.size());
  for (int type = 0; type < n; ++type) {
    if (type == parts.root) continue;
    out.push_back(PruneUnreachable(RemoveTypes(parts, {type})));
  }
  for (int type = 0; type < n; ++type) {
    std::vector<Regex> reduced;
    Reductions(parts.contents[type], 24, &reduced);
    for (Regex& content : reduced) {
      Parts candidate = parts;
      candidate.contents[type] = std::move(content);
      out.push_back(PruneUnreachable(std::move(candidate)));
    }
  }
  for (int type = 0; type < n; ++type) {
    for (const std::string& attr : parts.attrs[type]) {
      if (AttributeUsed(parts.constraints, type, attr)) continue;
      Parts candidate = parts;
      std::vector<std::string>& attrs = candidate.attrs[type];
      attrs.erase(std::find(attrs.begin(), attrs.end(), attr));
      out.push_back(std::move(candidate));
    }
  }
  return out;
}

}  // namespace

ShrinkOutcome ShrinkSpecification(const Specification& start,
                                  const SpecPredicate& keep,
                                  const ShrinkOptions& options) {
  Parts current = Decompose(start);
  ShrinkOutcome outcome;
  for (int round = 0; round < options.max_rounds; ++round) {
    bool adopted = false;
    for (Parts& candidate : Candidates(current)) {
      if (outcome.candidates >= options.max_candidates) break;
      Result<Specification> spec = Recompose(candidate);
      if (!spec.ok()) continue;  // invalid shrink step; try the next
      ++outcome.candidates;
      trace::Count("difftest/shrink_candidates");
      if (keep(*spec)) {
        current = std::move(candidate);
        adopted = true;
        break;
      }
    }
    if (!adopted) break;
    ++outcome.rounds;
    trace::Count("difftest/shrink_steps");
  }
  // Recompose cannot fail here: `current` either is the decomposed
  // original or has already been recomposed successfully above.
  outcome.spec = Recompose(current).ValueOrDie();
  outcome.text = SpecToText(outcome.spec);
  return outcome;
}

}  // namespace xmlverify
