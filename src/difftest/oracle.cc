#include "difftest/oracle.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <utility>

#include "base/string_util.h"
#include "checker/document_checker.h"
#include "core/sat_absolute.h"
#include "core/sat_bounded.h"
#include "core/sat_hierarchical.h"
#include "core/sat_regular.h"
#include "trace/trace.h"
#include "xml/xml_parser.h"

namespace xmlverify {

bool RoundTripSafe(const XmlTree& tree) {
  for (NodeId node = 0; node < tree.num_nodes(); ++node) {
    if (!tree.IsText(node)) {
      // Adjacent text siblings merge into one node on reparse.
      const std::vector<NodeId>& children = tree.ChildrenOf(node);
      for (size_t i = 1; i < children.size(); ++i) {
        if (tree.IsText(children[i - 1]) && tree.IsText(children[i])) {
          return false;
        }
      }
      continue;
    }
    const std::string& text = tree.TextOf(node);
    if (text.empty()) return false;
    if (std::isspace(static_cast<unsigned char>(text.front())) ||
        std::isspace(static_cast<unsigned char>(text.back()))) {
      return false;  // the parser strips surrounding whitespace
    }
  }
  return true;
}

namespace {

int SaturatingAdd(int a, int b, int cap) {
  return a >= cap - b ? cap : a + b;
}

// Maximal total weight over the words of a star-free content model,
// where an element position weighs type_weight[type] and a text
// position weighs pcdata_weight. Saturates at cap.
int MaxWordWeight(const Regex& regex, const std::vector<int>& type_weight,
                  int pcdata_weight, int cap) {
  switch (regex.kind()) {
    case RegexKind::kEpsilon:
      return 0;
    case RegexKind::kSymbol: {
      int symbol = regex.symbol();
      if (symbol >= static_cast<int>(type_weight.size())) {
        return pcdata_weight;  // the pcdata symbol
      }
      return type_weight[symbol];
    }
    case RegexKind::kWildcard:
    case RegexKind::kStar:
      return cap;  // unbounded (callers pre-filter with IsNoStar)
    case RegexKind::kConcat:
      return SaturatingAdd(
          MaxWordWeight(regex.left(), type_weight, pcdata_weight, cap),
          MaxWordWeight(regex.right(), type_weight, pcdata_weight, cap), cap);
    case RegexKind::kUnion:
      return std::max(
          MaxWordWeight(regex.left(), type_weight, pcdata_weight, cap),
          MaxWordWeight(regex.right(), type_weight, pcdata_weight, cap));
  }
  return cap;
}

// Bottom-up DP over the (non-recursive) type graph: weight of the
// maximal subtree rooted at each type, where `self` gives the node's
// own contribution. Saturates at cap.
std::vector<int> TypeWeights(const Dtd& dtd,
                             const std::function<int(int)>& self,
                             int pcdata_weight, int cap) {
  int n = dtd.num_element_types();
  std::vector<int> weight(n, -1);
  // Self-recursive lambda via explicit fixpoint: the DTD is acyclic,
  // so plain recursion with a memo terminates.
  std::function<int(int)> compute = [&](int type) -> int {
    if (weight[type] >= 0) return weight[type];
    weight[type] = cap;  // cycle guard; overwritten below
    std::vector<int> child_weight(n, 0);
    for (int child : dtd.ChildTypes(type)) child_weight[child] = compute(child);
    int value = SaturatingAdd(
        self(type),
        MaxWordWeight(dtd.Content(type), child_weight, pcdata_weight, cap),
        cap);
    weight[type] = value;
    return value;
  };
  // The MaxWordWeight call above needs weights for every type id, so
  // materialize the full vector (computing only reachable types as a
  // side effect of the root call would leave holes).
  std::vector<int> result(n, 0);
  // Compute root last so its dependencies are memoized first — order
  // does not matter for correctness, only the memo does.
  for (int type = 0; type < n; ++type) result[type] = compute(type);
  return result;
}

}  // namespace

int MaxDocumentNodes(const Dtd& dtd, int cap) {
  if (dtd.IsRecursive() || !dtd.IsNoStar()) return cap;
  std::vector<int> weights =
      TypeWeights(dtd, [](int) { return 1; }, /*pcdata_weight=*/1, cap);
  return weights[dtd.root()];
}

int MaxAttributeSlots(const Dtd& dtd, int cap) {
  if (dtd.IsRecursive() || !dtd.IsNoStar()) return cap;
  std::vector<int> weights = TypeWeights(
      dtd,
      [&dtd](int type) {
        return static_cast<int>(dtd.Attributes(type).size());
      },
      /*pcdata_weight=*/0, cap);
  return weights[dtd.root()];
}

namespace {

// Folds a Result<verdict> into a ProcedureRun, routing budget limits
// into their outcome codes, Unsupported into a skip, and anything
// else (Internal, InvalidArgument on a spec the predicate admitted)
// into a disagreement — a differential tester treats "a procedure
// rejected its own fragment" as a finding, not as noise.
void Fold(Result<ConsistencyVerdict> result, ProcedureRun* run,
          std::vector<std::string>* disagreements) {
  if (result.ok()) {
    run->ran = true;
    run->verdict = std::move(result).value();
    return;
  }
  const Status& status = result.status();
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      run->ran = true;
      run->verdict.outcome = ConsistencyOutcome::kDeadlineExceeded;
      run->verdict.note = status.message();
      return;
    case StatusCode::kResourceExhausted:
      run->ran = true;
      run->verdict.outcome = ConsistencyOutcome::kResourceExhausted;
      run->verdict.note = status.message();
      return;
    case StatusCode::kUnsupported:
      run->skip_reason = status.message();
      return;
    default:
      run->skip_reason = status.ToString();
      disagreements->push_back("procedure '" + run->name +
                               "' failed on a spec in its fragment: " +
                               status.ToString());
      return;
  }
}

bool Definitive(const ProcedureRun& run) {
  return run.ran && (run.verdict.outcome == ConsistencyOutcome::kConsistent ||
                     run.verdict.outcome == ConsistencyOutcome::kInconsistent);
}

void CheckWitness(const Specification& spec, const ProcedureRun& run,
                  std::vector<std::string>* disagreements) {
  if (!run.ran || !run.verdict.witness.has_value()) return;
  const XmlTree& witness = *run.verdict.witness;
  trace::Count("difftest/witness_checks");
  Status valid = CheckDocument(witness, spec.dtd, spec.constraints);
  if (!valid.ok()) {
    disagreements->push_back("witness from '" + run.name +
                             "' fails dynamic validation: " + valid.message());
    return;
  }
  if (!RoundTripSafe(witness)) {
    // Whitespace-only or adjacent text nodes cannot survive reparse
    // verbatim; the in-memory witness was still validated above.
    trace::Count("difftest/roundtrip_skipped");
    return;
  }
  trace::Count("difftest/roundtrips");
  std::string xml = witness.ToXml(spec.dtd);
  Result<XmlTree> reparsed = ParseXmlDocument(xml, spec.dtd);
  if (!reparsed.ok()) {
    disagreements->push_back("witness from '" + run.name +
                             "' does not reparse: " +
                             reparsed.status().ToString());
    return;
  }
  if (!TreesEqual(witness, *reparsed)) {
    disagreements->push_back("witness from '" + run.name +
                             "' changed across Serialize -> Parse");
    return;
  }
  Status still_valid = CheckDocument(*reparsed, spec.dtd, spec.constraints);
  if (!still_valid.ok()) {
    disagreements->push_back("reparsed witness from '" + run.name +
                             "' fails dynamic validation: " +
                             still_valid.message());
  }
}

}  // namespace

CrossCheckReport CrossCheckSpecification(const Specification& spec,
                                         const OracleOptions& options) {
  trace::Count("difftest/crosschecks");
  CrossCheckReport report;
  Status valid = spec.constraints.Validate(spec.dtd);
  if (!valid.ok()) {
    report.disagreements.push_back("specification fails validation: " +
                                   valid.message());
    return report;
  }

  ConstraintClass cls = spec.Classify();
  bool recursive = spec.dtd.IsRecursive();
  bool no_star = spec.dtd.IsNoStar();
  bool absolute_only =
      !spec.constraints.HasRegular() && !spec.constraints.HasRelative();
  bool all_unary = spec.constraints.AllAbsoluteUnary();

  auto fresh_deadline = [&options]() {
    return options.timeout_millis > 0
               ? Deadline::AfterMillis(options.timeout_millis)
               : Deadline::Infinite();
  };
  auto begin = [&report](const std::string& name) {
    report.runs.push_back(ProcedureRun{name});
    trace::Count("difftest/procedure_runs");
    return &report.runs.back();
  };

  // Facade: always applicable; exercises dispatch, budget plumbing,
  // and the degradation ladder exactly as CLI users see them.
  {
    ProcedureRun* run = begin("facade");
    ConsistencyChecker::Options facade;
    facade.solver = options.solver;
    facade.bounded = options.bounded;
    facade.max_expressions = options.max_expressions;
    facade.deadline = fresh_deadline();
    Fold(ConsistencyChecker(facade).Check(spec), run, &report.disagreements);
  }

  // Exact absolute checker (Sections 3.1/3.3 encodings).
  if (absolute_only && cls != ConstraintClass::kAcMultiGeneral) {
    ProcedureRun* run = begin("absolute");
    AbsoluteCheckOptions absolute;
    absolute.solver = options.solver;
    absolute.solver.deadline = fresh_deadline();
    Fold(CheckAbsoluteConsistency(spec.dtd, spec.constraints, absolute), run,
         &report.disagreements);
  }

  // No-star dynamic program (Theorem 3.5): an independent exact
  // procedure on its fragment.
  if (absolute_only && all_unary && !recursive && no_star) {
    ProcedureRun* run = begin("nostar");
    NoStarCheckOptions nostar;
    nostar.deadline = fresh_deadline();
    Fold(CheckNoStarConsistency(spec.dtd, spec.constraints, nostar), run,
         &report.disagreements);
  }

  // Regular-path checker: unary absolute constraints fold in as
  // r._*.tau, so pure absolute specs get a third exact opinion.
  if (!spec.constraints.HasRelative() && all_unary) {
    ProcedureRun* run = begin("regular");
    RegularCheckOptions regular;
    regular.solver = options.solver;
    regular.solver.deadline = fresh_deadline();
    regular.max_expressions = options.max_expressions;
    Fold(CheckRegularConsistency(spec.dtd, spec.constraints, regular), run,
         &report.disagreements);
  }

  // Hierarchical checker: absolute unary constraints fold in as
  // context-root relative ones; skips (Unsupported) when the geometry
  // is not hierarchical or the DTD is recursive.
  if (!spec.constraints.HasRegular() && all_unary && !recursive) {
    ProcedureRun* run = begin("hierarchical");
    HierarchicalCheckOptions hierarchical;
    hierarchical.solver = options.solver;
    hierarchical.solver.deadline = fresh_deadline();
    Fold(CheckHierarchicalConsistency(spec.dtd, spec.constraints, hierarchical),
         run, &report.disagreements);
  }

  // One-sided bounded search: a found witness must agree with every
  // exact INCONSISTENT; an exhausted search stays UNKNOWN here.
  {
    ProcedureRun* run = begin("bounded");
    BoundedSearchOptions bounded = options.bounded;
    bounded.deadline = fresh_deadline();
    Fold(BoundedSearchConsistency(spec.dtd, spec.constraints, bounded), run,
         &report.disagreements);
  }

  // Exhaustive refutation: when the DTD is non-recursive and star-free
  // its document space is finite; if the maximal document fits the
  // enumeration caps and the value pool covers every attribute slot
  // (any satisfying assignment relabels injectively into the pool,
  // since constraint semantics only see equality), an exhausted search
  // is a complete proof of inconsistency.
  if (options.exhaustive && !recursive && no_star) {
    int nodes = MaxDocumentNodes(spec.dtd, options.exhaustive_max_nodes + 1);
    int slots = MaxAttributeSlots(spec.dtd, options.exhaustive_max_slots + 1);
    if (nodes <= options.exhaustive_max_nodes &&
        slots <= options.exhaustive_max_slots) {
      ProcedureRun* run = begin("exhaustive");
      BoundedSearchOptions exhaustive;
      exhaustive.max_nodes = nodes;
      exhaustive.num_values = std::max(1, slots);
      exhaustive.max_candidates =
          std::max<int64_t>(options.bounded.max_candidates, 500000);
      exhaustive.deadline = fresh_deadline();
      Result<ConsistencyVerdict> result =
          BoundedSearchConsistency(spec.dtd, spec.constraints, exhaustive);
      if (result.ok() &&
          result->outcome == ConsistencyOutcome::kUnknown &&
          StartsWith(result->note, "no satisfying document")) {
        result->outcome = ConsistencyOutcome::kInconsistent;
        result->note = "exhaustive enumeration: " + result->note;
        trace::Count("difftest/exhaustive_refutations");
      }
      Fold(std::move(result), run, &report.disagreements);
    }
  }

  // Verdict agreement: definitive outcomes must all match.
  std::vector<std::string> consistent_names;
  std::vector<std::string> inconsistent_names;
  for (const ProcedureRun& run : report.runs) {
    if (!Definitive(run)) continue;
    (run.verdict.outcome == ConsistencyOutcome::kConsistent
         ? consistent_names
         : inconsistent_names)
        .push_back(run.name);
  }
  if (!consistent_names.empty() && !inconsistent_names.empty()) {
    std::string conflict = "verdict conflict: CONSISTENT from {";
    for (const std::string& name : consistent_names) conflict += name + " ";
    conflict.back() = '}';
    conflict += " vs INCONSISTENT from {";
    for (const std::string& name : inconsistent_names) conflict += name + " ";
    conflict.back() = '}';
    report.disagreements.push_back(std::move(conflict));
  } else if (!consistent_names.empty()) {
    report.consensus = ConsistencyOutcome::kConsistent;
  } else if (!inconsistent_names.empty()) {
    report.consensus = ConsistencyOutcome::kInconsistent;
  }

  if (options.check_witnesses) {
    for (const ProcedureRun& run : report.runs) {
      CheckWitness(spec, run, &report.disagreements);
    }
  }
  if (!report.disagreements.empty()) {
    trace::Count("difftest/disagreements",
                 static_cast<int64_t>(report.disagreements.size()));
  }
  return report;
}

}  // namespace xmlverify
