// Cross-procedure consistency oracle: runs one specification through
// every decision procedure applicable to its class — the dispatching
// facade, the absolute/no-star/regular/hierarchical exact checkers,
// the bounded searcher, and (for tiny no-star non-recursive DTDs) an
// exhaustive brute-force enumeration that is complete and therefore
// yields a definitive INCONSISTENT — then compares the verdicts.
//
// Agreement rules:
//   - any two definitive verdicts (CONSISTENT / INCONSISTENT) must
//     match; UNKNOWN / DEADLINE_EXCEEDED / RESOURCE_EXHAUSTED agree
//     with everything (undecidable fragments degrade, never lie);
//   - every witness must satisfy T |= D and T |= Sigma under the
//     independent dynamic document checker;
//   - round-trip-safe witnesses must survive Serialize -> Parse ->
//     TreesEqual -> recheck (the Parse(Serialize(T)) == T property).
#ifndef XMLVERIFY_DIFFTEST_ORACLE_H_
#define XMLVERIFY_DIFFTEST_ORACLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/consistency.h"
#include "core/specification.h"
#include "core/verdict.h"
#include "ilp/solver.h"

namespace xmlverify {

struct OracleOptions {
  /// Per-procedure wall-clock budget in milliseconds (0 = none). Each
  /// procedure gets a fresh deadline so one slow encoder cannot starve
  /// the others into spurious DEADLINE_EXCEEDED verdicts.
  int64_t timeout_millis = 0;
  /// Caps for the one-sided bounded-search cross-check.
  BoundedSearchOptions bounded;
  /// Solver caps shared by the exact procedures.
  SolverOptions solver;
  /// Cap on distinct regular path expressions (2^k blow-up guard).
  int max_expressions = 16;
  /// Re-validate every witness with the dynamic document checker and
  /// round-trip it through the serializer/parser.
  bool check_witnesses = true;
  /// Attempt the complete brute-force refutation on specs whose DTD
  /// admits only finitely many documents small enough to enumerate.
  bool exhaustive = true;
  /// Size ceilings for the exhaustive refutation: the DTD's maximal
  /// document must fit within this many nodes / attribute slots.
  int exhaustive_max_nodes = 7;
  int exhaustive_max_slots = 4;
};

struct ProcedureRun {
  std::string name;           // "facade", "absolute", "nostar", ...
  bool ran = false;           // produced a verdict
  std::string skip_reason;    // set when applicable but skipped
  ConsistencyVerdict verdict; // meaningful only when `ran`
};

struct CrossCheckReport {
  std::vector<ProcedureRun> runs;
  /// Human-readable disagreement descriptions; empty means all
  /// procedures (and all witness checks) agree.
  std::vector<std::string> disagreements;
  /// The definitive outcome, when at least one procedure reached one
  /// and no conflict was observed.
  std::optional<ConsistencyOutcome> consensus;

  bool agreed() const { return disagreements.empty(); }
};

/// Runs every applicable procedure on `spec` and cross-checks the
/// verdicts and witnesses. Never fails: internal errors surface as
/// disagreement entries, which is exactly what a differential tester
/// wants to catch.
CrossCheckReport CrossCheckSpecification(const Specification& spec,
                                         const OracleOptions& options = {});

/// True when Serialize -> Parse provably preserves `tree`: every text
/// node is non-empty, free of surrounding whitespace, and not adjacent
/// to a sibling text node (the parser strips indentation and merges
/// adjacent runs of text, so such trees cannot round-trip verbatim).
bool RoundTripSafe(const XmlTree& tree);

/// Upper bound on the node count (elements + text nodes) of any
/// document conforming to `dtd`, capped at `cap`; `cap` itself means
/// "unbounded or at least cap". Returns cap for recursive or starred
/// DTDs. Used to decide when bounded search is actually exhaustive.
int MaxDocumentNodes(const Dtd& dtd, int cap);

/// Upper bound on the total number of attribute slots of any
/// conforming document, capped at `cap` (same convention).
int MaxAttributeSlots(const Dtd& dtd, int cap);

}  // namespace xmlverify

#endif  // XMLVERIFY_DIFFTEST_ORACLE_H_
