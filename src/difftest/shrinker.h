// Delta-debugging shrinker for disagreeing specifications: greedily
// applies structure-removing transformations (drop a constraint, drop
// an element type, simplify a content model, drop an unused
// attribute) while a caller-supplied predicate — typically "the
// cross-check still disagrees" — keeps holding, until no
// transformation applies. The result is a local minimum: removing any
// single piece makes the disagreement vanish.
#ifndef XMLVERIFY_DIFFTEST_SHRINKER_H_
#define XMLVERIFY_DIFFTEST_SHRINKER_H_

#include <functional>
#include <string>

#include "core/specification.h"

namespace xmlverify {

/// Returns true when the candidate still exhibits the behavior being
/// minimized. Candidates always satisfy ConstraintSet::Validate.
using SpecPredicate = std::function<bool(const Specification&)>;

struct ShrinkOptions {
  /// Fixpoint rounds (each adopts at most one transformation).
  int max_rounds = 64;
  /// Total candidate evaluations across all rounds.
  int max_candidates = 2000;
};

struct ShrinkOutcome {
  Specification spec;   // the minimized specification
  std::string text;     // its canonical .xvc rendering
  int rounds = 0;       // transformations adopted
  int candidates = 0;   // predicate evaluations spent
};

/// Greedily minimizes `start` under `keep`. `keep(start)` is assumed
/// true; the returned spec always satisfies `keep`.
ShrinkOutcome ShrinkSpecification(const Specification& start,
                                  const SpecPredicate& keep,
                                  const ShrinkOptions& options = {});

}  // namespace xmlverify

#endif  // XMLVERIFY_DIFFTEST_SHRINKER_H_
