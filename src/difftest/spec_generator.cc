#include "difftest/spec_generator.h"

#include <utility>

#include "core/canonical.h"
#include "regex/regex.h"
#include "trace/trace.h"

namespace xmlverify {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string DifftestClassName(DifftestClass cls) {
  switch (cls) {
    case DifftestClass::kAcK: return "ack";
    case DifftestClass::kAcUnary: return "acfk";
    case DifftestClass::kAcMultiPrimary: return "pkfk";
    case DifftestClass::kAcRegular: return "reg";
    case DifftestClass::kHrc: return "hrc";
  }
  return "?";
}

Result<DifftestClass> ParseDifftestClass(const std::string& name) {
  for (DifftestClass cls : AllDifftestClasses()) {
    if (DifftestClassName(cls) == name) return cls;
  }
  return Status::InvalidArgument(
      "unknown difftest class '" + name +
      "' (expected one of: ack, acfk, pkfk, reg, hrc)");
}

std::vector<DifftestClass> AllDifftestClasses() {
  return {DifftestClass::kAcK, DifftestClass::kAcUnary,
          DifftestClass::kAcMultiPrimary, DifftestClass::kAcRegular,
          DifftestClass::kHrc};
}

std::string SpecToText(const Specification& spec) {
  return CanonicalSpecText(spec);
}

namespace {

// Deterministic helper view over the splitmix64 stream.
struct Rng {
  uint64_t state;
  uint64_t Next() { return SplitMix64(&state); }
  int Below(int n) { return n <= 1 ? 0 : static_cast<int>(Next() % n); }
  bool Chance(int percent) { return Below(100) < percent; }
};

// One randomly shaped DTD, fully planned before any Builder runs so
// the constraint planner may still adjust attribute lists (the
// multi-primary class upgrades its keyed type to two attributes).
struct DtdPlan {
  std::vector<std::string> names;               // [0] is the root "r"
  std::vector<std::vector<std::string>> attrs;  // per type
  std::vector<int> parent;   // parent[i]: ti's tree parent (root: -1)
  std::vector<Regex> contents;  // per type; pcdata symbol = names.size()
};

// Chain of type ids from the root down to `type` along tree parents
// (back-edges are extra content references, not part of the chain).
std::vector<int> ChainFromRoot(const DtdPlan& plan, int type) {
  std::vector<int> chain;
  for (int cur = type; cur != -1; cur = plan.parent[cur]) chain.push_back(cur);
  return std::vector<int>(chain.rbegin(), chain.rend());
}

// Wraps one content-model occurrence of `child` in a random
// multiplicity: plain, optional, star, or plus.
Regex Occurrence(Rng* rng, int child, bool allow_star) {
  Regex sym = Regex::Symbol(child);
  int mod = rng->Below(allow_star ? 4 : 2);
  switch (mod) {
    case 1: return Regex::Union(sym, Regex::Epsilon());
    case 2: return Regex::Star(sym);
    case 3: return Regex::Concat(sym, Regex::Star(sym));
    default: return sym;
  }
}

DtdPlan PlanDtd(Rng* rng, const SpecGeneratorOptions& options) {
  DtdPlan plan;
  int num_extra = 1 + rng->Below(options.max_extra_types);
  int num_types = 1 + num_extra;
  plan.names.push_back("r");
  for (int i = 0; i < num_extra; ++i) {
    plan.names.push_back("t" + std::to_string(i));
  }
  // Every type gets attribute "a", half also get "b": enough raw
  // material for unary and multi-attribute constraints alike.
  for (int type = 0; type < num_types; ++type) {
    std::vector<std::string> attrs = {"a"};
    if (rng->Chance(50)) attrs.push_back("b");
    plan.attrs.push_back(std::move(attrs));
  }
  // Attach each extra type under the root or an earlier extra type:
  // the parent forest keeps the DTD connected by construction.
  plan.parent.assign(num_types, -1);
  std::vector<std::vector<int>> children(num_types);
  for (int i = 1; i < num_types; ++i) {
    int parent = rng->Below(i);  // any type declared before ti
    plan.parent[i] = parent;
    children[parent].push_back(i);
  }
  int pcdata = num_types;
  for (int type = 0; type < num_types; ++type) {
    std::vector<Regex> groups;
    for (int child : children[type]) {
      groups.push_back(Occurrence(rng, child, options.allow_star));
    }
    // Occasionally fold the first two children into a choice, so
    // content models exercise union, not just concatenation.
    if (groups.size() >= 2 && rng->Chance(20)) {
      Regex merged = Regex::Union(groups[0], groups[1]);
      groups.erase(groups.begin());
      groups[0] = std::move(merged);
    }
    // Optional text content, always nullable so witness builders that
    // skip text keep a conforming choice available.
    if (rng->Chance(20)) {
      Regex text = Regex::Symbol(pcdata);
      groups.push_back(options.allow_star && rng->Chance(50)
                           ? Regex::Star(text)
                           : Regex::Union(text, Regex::Epsilon()));
    }
    // Recursion: a back-edge from a non-root type to a non-root type
    // declared no later than it (self-loops included; the root is
    // never a target, per Definition 2.1). A rare mandatory back-edge
    // deliberately produces an unsatisfiable DTD — every procedure
    // must then agree on INCONSISTENT.
    if (type != 0 && options.allow_recursion && rng->Chance(25)) {
      int target = 1 + rng->Below(type);  // extra types t0..t{type-1}
      Regex back = Regex::Symbol(target);
      if (rng->Chance(10)) {
        groups.push_back(std::move(back));  // mandatory: unproductive
      } else if (options.allow_star && rng->Chance(50)) {
        groups.push_back(Regex::Star(back));
      } else {
        groups.push_back(Regex::Union(back, Regex::Epsilon()));
      }
    }
    plan.contents.push_back(groups.empty() ? Regex::Epsilon()
                                           : Regex::ConcatAll(groups));
  }
  return plan;
}

Result<Dtd> BuildFromPlan(const DtdPlan& plan) {
  Dtd::Builder builder(plan.names, plan.names[0]);
  for (size_t type = 0; type < plan.names.size(); ++type) {
    for (const std::string& attr : plan.attrs[type]) {
      builder.AddAttribute(plan.names[type], attr);
    }
    builder.SetContent(plan.names[type], plan.contents[type]);
  }
  return builder.Build();
}

// A (type, attribute) pick among the planned types.
struct AttrPick {
  int type;
  std::string attribute;
};

AttrPick PickAttr(Rng* rng, const DtdPlan& plan) {
  int type = rng->Below(static_cast<int>(plan.names.size()));
  const std::vector<std::string>& attrs = plan.attrs[type];
  return {type, attrs[rng->Below(static_cast<int>(attrs.size()))]};
}

AttrPick PickNonRootAttr(Rng* rng, const DtdPlan& plan) {
  int type = 1 + rng->Below(static_cast<int>(plan.names.size()) - 1);
  const std::vector<std::string>& attrs = plan.attrs[type];
  return {type, attrs[rng->Below(static_cast<int>(attrs.size()))]};
}

// Path expression r....tau for a regular constraint: either the
// concrete tree chain or the abbreviated r._*.tau form.
Regex PathTo(Rng* rng, const DtdPlan& plan, int type) {
  if (type != 0 && rng->Chance(50)) {
    return Regex::Concat(
        Regex::Concat(Regex::Symbol(0), Regex::Star(Regex::Wildcard())),
        Regex::Symbol(type));
  }
  std::vector<int> chain = ChainFromRoot(plan, type);
  std::vector<Regex> parts;
  parts.reserve(chain.size());
  for (int link : chain) parts.push_back(Regex::Symbol(link));
  return Regex::ConcatAll(parts);
}

void GenerateAbsolute(Rng* rng, const DtdPlan& plan, DifftestClass cls,
                      int count, ConstraintSet* constraints) {
  for (int i = 0; i < count; ++i) {
    bool inclusion =
        cls == DifftestClass::kAcUnary && (i == 0 || rng->Chance(50));
    if (!inclusion) {
      AttrPick key = PickAttr(rng, plan);
      constraints->Add(AbsoluteKey{key.type, {key.attribute}});
      continue;
    }
    AttrPick child = PickAttr(rng, plan);
    AttrPick parent = PickAttr(rng, plan);
    AbsoluteInclusion inc{
        child.type, {child.attribute}, parent.type, {parent.attribute}};
    if (rng->Chance(50)) {
      constraints->AddForeignKey(std::move(inc));
    } else {
      constraints->Add(std::move(inc));
    }
  }
}

void GenerateMultiPrimary(Rng* rng, DtdPlan* plan, int count,
                          ConstraintSet* constraints) {
  int num_types = static_cast<int>(plan->names.size());
  // Force one genuinely multi-attribute key so the spec classifies as
  // AC^{*,1} rather than collapsing into the unary classes; the keyed
  // type is upgraded to two attributes if the plan gave it one.
  int keyed = rng->Below(num_types);
  if (plan->attrs[keyed].size() < 2) plan->attrs[keyed].push_back("b");
  std::vector<bool> has_key(num_types, false);
  has_key[keyed] = true;
  constraints->Add(AbsoluteKey{keyed, {"a", "b"}});
  for (int i = 1; i < count; ++i) {
    if (rng->Chance(40)) {
      // Another primary key, on a type that has none yet: at most one
      // key per type keeps the key set trivially disjoint.
      int type = rng->Below(num_types);
      if (has_key[type]) continue;
      has_key[type] = true;
      if (plan->attrs[type].size() >= 2 && rng->Chance(50)) {
        constraints->Add(AbsoluteKey{type, {"a", "b"}});
      } else {
        constraints->Add(AbsoluteKey{type, {plan->attrs[type][0]}});
      }
      continue;
    }
    AttrPick child = PickAttr(rng, *plan);
    AttrPick parent = PickAttr(rng, *plan);
    AbsoluteInclusion inc{
        child.type, {child.attribute}, parent.type, {parent.attribute}};
    // A foreign key would add a unary key on the parent type; keep the
    // key set disjoint by only doing that to a type without one.
    if (!has_key[parent.type] && rng->Chance(50)) {
      has_key[parent.type] = true;
      constraints->AddForeignKey(std::move(inc));
    } else {
      constraints->Add(std::move(inc));
    }
  }
}

void GenerateRegular(Rng* rng, const DtdPlan& plan, int count,
                     ConstraintSet* constraints) {
  for (int i = 0; i < count; ++i) {
    // After the forced first regular constraint, sometimes mix in an
    // absolute unary key: the regular checker folds it as r._*.tau.
    if (i > 0 && rng->Chance(30)) {
      AttrPick key = PickAttr(rng, plan);
      constraints->Add(AbsoluteKey{key.type, {key.attribute}});
      continue;
    }
    if (rng->Chance(60)) {
      AttrPick key = PickAttr(rng, plan);
      // The path to the root is the bare root symbol, so a root
      // regular key prints exactly like an absolute key and the parser
      // canonicalizes it to one; store the canonical form directly so
      // the emitted text is a SpecToText fixed point. The forced first
      // constraint must stay genuinely regular: retarget it at a
      // non-root type (the plan always has at least one).
      if (key.type == 0 && i == 0) {
        key = PickNonRootAttr(rng, plan);
      }
      if (key.type == 0) {
        constraints->Add(AbsoluteKey{key.type, {key.attribute}});
      } else {
        constraints->Add(
            RegularKey{PathTo(rng, plan, key.type), key.type, key.attribute});
      }
      continue;
    }
    AttrPick child = PickAttr(rng, plan);
    AttrPick parent = PickAttr(rng, plan);
    if (child.type == 0 && parent.type == 0) {
      if (i == 0) {
        child = PickNonRootAttr(rng, plan);  // keep the class regular
      } else {
        // Both paths would be the bare root symbol: same canonical-form
        // story as above, the parser reads this back as absolute.
        constraints->Add(AbsoluteInclusion{
            child.type, {child.attribute}, parent.type, {parent.attribute}});
        continue;
      }
    }
    RegularInclusion inc{PathTo(rng, plan, child.type),
                         child.type,
                         child.attribute,
                         PathTo(rng, plan, parent.type),
                         parent.type,
                         parent.attribute};
    if (rng->Chance(40)) {
      if (parent.type == 0) {
        // The implied parent key's path would be the bare root symbol
        // (canonically an absolute key — see above); add the pieces
        // separately in canonical form.
        constraints->Add(AbsoluteKey{parent.type, {parent.attribute}});
        constraints->Add(std::move(inc));
      } else {
        constraints->AddForeignKey(std::move(inc));
      }
    } else {
      constraints->Add(std::move(inc));
    }
  }
}

void GenerateRelative(Rng* rng, const DtdPlan& plan, int count,
                      ConstraintSet* constraints) {
  int num_types = static_cast<int>(plan.names.size());
  // descendants[c]: strict descendants of c in the parent forest.
  std::vector<std::vector<int>> descendants(num_types);
  for (int type = 1; type < num_types; ++type) {
    for (int cur = plan.parent[type]; cur != -1; cur = plan.parent[cur]) {
      descendants[cur].push_back(type);
    }
  }
  auto pick_scoped = [&](int context) {
    const std::vector<int>& pool = descendants[context];
    int type = pool[rng->Below(static_cast<int>(pool.size()))];
    const std::vector<std::string>& attrs = plan.attrs[type];
    return AttrPick{type, attrs[rng->Below(static_cast<int>(attrs.size()))]};
  };
  for (int i = 0; i < count; ++i) {
    // Mixing in an absolute key yields the kMixedRelative class, which
    // the hierarchical checker folds as a context-root constraint.
    if (i > 0 && rng->Chance(30)) {
      AttrPick key = PickAttr(rng, plan);
      constraints->Add(AbsoluteKey{key.type, {key.attribute}});
      continue;
    }
    // Contexts with no strict descendants can't scope anything; the
    // root always qualifies (there are always >= 2 types).
    int context = rng->Below(num_types);
    if (descendants[context].empty()) context = 0;
    if (rng->Chance(60)) {
      AttrPick key = pick_scoped(context);
      constraints->Add(RelativeKey{context, key.type, key.attribute});
      continue;
    }
    AttrPick child = pick_scoped(context);
    AttrPick parent = pick_scoped(context);
    RelativeInclusion inc{context, child.type, child.attribute, parent.type,
                          parent.attribute};
    if (rng->Chance(40)) {
      constraints->AddForeignKey(std::move(inc));
    } else {
      constraints->Add(std::move(inc));
    }
  }
}

}  // namespace

Result<GeneratedSpec> GenerateSpec(uint64_t seed, DifftestClass cls,
                                   const SpecGeneratorOptions& options) {
  trace::Count("difftest/generated");
  // Decorrelate (seed, class) pairs: the same seed under different
  // classes must not replay the same structural choices.
  Rng rng{seed * 0x9e3779b97f4a7c15ULL +
          static_cast<uint64_t>(cls) * 0xda942042e4dd58b5ULL + 1};

  SpecGeneratorOptions effective = options;
  if (cls == DifftestClass::kHrc) {
    // The relative-geometry analysis (and with it the hierarchical
    // checker) requires a non-recursive DTD.
    effective.allow_recursion = false;
  }

  int count = 1 + rng.Below(effective.max_constraints);
  DtdPlan plan = PlanDtd(&rng, effective);

  ConstraintSet constraints;
  switch (cls) {
    case DifftestClass::kAcK:
    case DifftestClass::kAcUnary:
      GenerateAbsolute(&rng, plan, cls, count, &constraints);
      break;
    case DifftestClass::kAcMultiPrimary:
      GenerateMultiPrimary(&rng, &plan, count, &constraints);
      break;
    case DifftestClass::kAcRegular:
      GenerateRegular(&rng, plan, count, &constraints);
      break;
    case DifftestClass::kHrc:
      GenerateRelative(&rng, plan, count, &constraints);
      break;
  }

  GeneratedSpec result;
  ASSIGN_OR_RETURN(result.spec.dtd, BuildFromPlan(plan));
  result.spec.constraints = std::move(constraints);

  Status valid = result.spec.constraints.Validate(result.spec.dtd);
  if (!valid.ok()) {
    return Status::Internal("generator produced an invalid constraint set (" +
                            valid.message() + ")");
  }
  result.text = SpecToText(result.spec);
  return result;
}

}  // namespace xmlverify
