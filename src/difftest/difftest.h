// Differential self-test driver: sweeps a seed range, generates one
// specification per (seed, class) grid cell, cross-checks every
// applicable decision procedure against the others (see oracle.h),
// and delta-debugs any disagreeing specification down to a minimal
// reproducer (see shrinker.h).
//
// The run is deterministic: generation is a pure function of
// (seed, class), workers write into preassigned grid slots, and the
// summary carries no timing or concurrency information — the same
// seed range yields a byte-identical report at any --jobs level.
#ifndef XMLVERIFY_DIFFTEST_DIFFTEST_H_
#define XMLVERIFY_DIFFTEST_DIFFTEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "difftest/impl_check.h"
#include "difftest/oracle.h"
#include "difftest/shrinker.h"
#include "difftest/spec_generator.h"
#include "trace/trace.h"

namespace xmlverify {

/// Which solver pipeline the oracle's exact procedures run on.
enum class SolverPath {
  kFast,    // presolve + sparse two-tier simplex (production default)
  kLegacy,  // presolve off, dense BigInt simplex (reference engine)
  kBoth,    // run both pipelines and cross-compare their verdicts
};

struct DifftestOptions {
  /// First seed of the sweep; each seed is run through every class.
  uint64_t start_seed = 1;
  int num_seeds = 100;
  /// Solver pipeline under test. kBoth doubles the work per cell but
  /// turns every cell into a fast-vs-legacy differential: any
  /// definitive verdict that differs between the pipelines (overall
  /// consensus or per-procedure) is reported as a disagreement.
  SolverPath solver_path = SolverPath::kFast;
  /// When > 1, each cell additionally runs the exact procedures with
  /// the parallel branch-and-bound solver (SolverOptions::jobs set to
  /// this value) and cross-compares its definitive verdicts against
  /// the serial fast pipeline — the parallel-vs-serial determinism
  /// check, stackable with kBoth's fast-vs-legacy differential.
  int solver_jobs = 1;
  /// Constraint classes to exercise; empty means all of them.
  std::vector<DifftestClass> classes;
  /// Worker threads (<= 0: one per hardware thread).
  int jobs = 1;
  /// Minimize disagreeing specs before reporting them.
  bool shrink = true;
  /// Also run the implication cross-check on every generated spec
  /// (difftest/impl_check.h): quick tier vs full encoding vs bounded /
  /// exhaustive counterexample search, per constraint.
  bool impl_mode = false;
  ImplCheckOptions impl;
  SpecGeneratorOptions generator;
  OracleOptions oracle;
  ShrinkOptions shrinker;
  /// When set, every worker thread opens a TraceSession on this
  /// (thread-safe) registry so difftest/* counters aggregate across
  /// workers.
  StatsRegistry* stats = nullptr;
};

/// One cross-check failure, pinned to its reproducing coordinates.
struct Disagreement {
  uint64_t seed = 0;
  DifftestClass cls = DifftestClass::kAcK;
  std::vector<std::string> reasons;
  std::string spec_text;    // the generated spec, canonical .xvc
  std::string shrunk_text;  // minimized reproducer (empty: not shrunk)
  int shrink_rounds = 0;
};

struct ClassTally {
  DifftestClass cls = DifftestClass::kAcK;
  int specs = 0;
  int consistent = 0;
  int inconsistent = 0;
  int unknown = 0;  // no definitive consensus (caps, undecidability)
  int disagreements = 0;
};

struct DifftestReport {
  std::vector<ClassTally> tallies;          // one per class, run order
  std::vector<Disagreement> disagreements;  // grid order (seed-major)
  int specs = 0;

  bool agreed() const { return disagreements.empty(); }
  /// Deterministic human-readable report: per-class tallies followed
  /// by one block per disagreement (seed, class, reasons, minimized
  /// spec) and a final RESULT line.
  std::string Summary() const;
};

/// Runs the sweep.
DifftestReport RunDifftest(const DifftestOptions& options);

}  // namespace xmlverify

#endif  // XMLVERIFY_DIFFTEST_DIFFTEST_H_
