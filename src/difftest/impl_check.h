// Differential cross-check of the layered implication engine
// (core/implication_engine.h): for every constraint c of a generated
// specification, asks whether Sigma \ {c} implies c through three
// independent routes —
//
//   quick  the syntactic quick tier (sound underapproximation);
//   full   the SAT-based contrapositive encoding, on the decidable
//          fragments (unary absolute, regular);
//   brute  bounded counterexample search, upgraded to a complete
//          enumeration when the DTD's document space is finite and
//          small (the oracle's exhaustive gate, difftest/oracle.h).
//
// Soundness assertions (any violation is a reported disagreement):
//   quick implied      => full implied, and no brute counterexample;
//   full implied       => no brute counterexample;
//   exhaustive implied => full must agree implied;
//   every full-tier counterexample replays through the dynamic
//   document checker: it satisfies (D, Sigma \ {c}) and violates c —
//   in particular CheckForeignKeyImplication counterexamples must
//   violate at least one of the foreign key's two parts.
#ifndef XMLVERIFY_DIFFTEST_IMPL_CHECK_H_
#define XMLVERIFY_DIFFTEST_IMPL_CHECK_H_

#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/implication_engine.h"
#include "core/specification.h"

namespace xmlverify {

struct ImplCheckOptions {
  ImplCheckOptions() {
    // The cross-check runs one bounded search per constraint, so its
    // caps are an order of magnitude below the oracle's per-cell ones.
    bounded.max_nodes = 6;
    bounded.max_candidates = 20000;
  }

  /// Engine options for the quick/full tiers. Counterexamples are
  /// forced on for the full tier (the replay needs them).
  ImplicationEngineOptions engine;
  /// Caps for the always-on bounded refutation search.
  BoundedSearchOptions bounded;
  /// Per-route wall-clock budget in milliseconds (0 = none), stamped
  /// freshly for each search/solve so one slow question cannot starve
  /// the rest into spurious findings.
  int64_t timeout_millis = 2000;
  /// Exhaustive-gate ceilings, as in OracleOptions: the DTD's maximal
  /// document must fit for the enumeration to count as complete.
  int exhaustive_max_nodes = 7;
  int exhaustive_max_slots = 4;
};

/// Runs the three-way implication cross-check on every constraint of
/// `spec`. Returns human-readable disagreement reasons; empty means
/// all routes agreed (and every counterexample replayed cleanly).
std::vector<std::string> CrossCheckImplication(
    const Specification& spec, const ImplCheckOptions& options = {});

}  // namespace xmlverify

#endif  // XMLVERIFY_DIFFTEST_IMPL_CHECK_H_
