#include "difftest/impl_check.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/string_util.h"
#include "checker/document_checker.h"
#include "constraints/constraint.h"
#include "core/implication.h"
#include "difftest/oracle.h"
#include "trace/trace.h"

namespace xmlverify {
namespace {

enum class Flavor { kAbsKey, kAbsInc, kRegKey, kRegInc, kRelKey, kRelInc };

// Sigma \ {the `skip`-th constraint of flavour `f`}: rebuilt by
// re-adding everything else (ConstraintSet has no erase).
ConstraintSet Without(const ConstraintSet& s, Flavor f, size_t skip) {
  ConstraintSet out;
  for (size_t i = 0; i < s.absolute_keys().size(); ++i) {
    if (f == Flavor::kAbsKey && i == skip) continue;
    out.Add(s.absolute_keys()[i]);
  }
  for (size_t i = 0; i < s.absolute_inclusions().size(); ++i) {
    if (f == Flavor::kAbsInc && i == skip) continue;
    out.Add(s.absolute_inclusions()[i]);
  }
  for (size_t i = 0; i < s.regular_keys().size(); ++i) {
    if (f == Flavor::kRegKey && i == skip) continue;
    out.Add(s.regular_keys()[i]);
  }
  for (size_t i = 0; i < s.regular_inclusions().size(); ++i) {
    if (f == Flavor::kRegInc && i == skip) continue;
    out.Add(s.regular_inclusions()[i]);
  }
  for (size_t i = 0; i < s.relative_keys().size(); ++i) {
    if (f == Flavor::kRelKey && i == skip) continue;
    out.Add(s.relative_keys()[i]);
  }
  for (size_t i = 0; i < s.relative_inclusions().size(); ++i) {
    if (f == Flavor::kRelInc && i == skip) continue;
    out.Add(s.relative_inclusions()[i]);
  }
  return out;
}

// The exhaustive gate of difftest/oracle.cc: when the DTD's document
// space is finite and its maximal document fits the caps, a value
// pool covering every attribute slot makes the enumeration complete
// (constraint semantics only see value equality, so any document
// relabels injectively into the pool).
struct ExhaustiveGate {
  bool complete = false;
  BoundedSearchOptions search;
};

ExhaustiveGate GateExhaustive(const Dtd& dtd, const ImplCheckOptions& options) {
  ExhaustiveGate gate;
  if (dtd.IsRecursive() || !dtd.IsNoStar()) return gate;
  int nodes = MaxDocumentNodes(dtd, options.exhaustive_max_nodes + 1);
  int slots = MaxAttributeSlots(dtd, options.exhaustive_max_slots + 1);
  if (nodes > options.exhaustive_max_nodes ||
      slots > options.exhaustive_max_slots) {
    return gate;
  }
  gate.complete = true;
  gate.search.max_nodes = nodes;
  gate.search.num_values = slots < 1 ? 1 : slots;
  gate.search.max_candidates =
      options.bounded.max_candidates < 500000 ? 500000
                                              : options.bounded.max_candidates;
  return gate;
}

// One implication question: does (D, Sigma \ {c}) imply c? Holds the
// verdicts of every route that ran.
struct Question {
  std::string name;                   // c rendered, for reasons
  bool quick = false;                 // quick tier settled "implied"
  std::optional<bool> full;           // full tier (decidable flavours)
  std::optional<XmlTree> full_counterexample;
  std::optional<bool> brute_refuted;  // bounded search found a witness
  std::optional<XmlTree> brute_counterexample;
  std::optional<bool> exhaustive;     // complete enumeration verdict
};

// Replays `ce` against the question: a genuine counterexample is a
// DTD-valid document satisfying Sigma' and violating phi. `phi` holds
// the constraint under test (two entries for a foreign key).
void ReplayCounterexample(const Dtd& dtd, const ConstraintSet& sigma_prime,
                          const ConstraintSet& phi, const XmlTree& ce,
                          const std::string& route, const std::string& name,
                          std::vector<std::string>* reasons) {
  Status premises = CheckDocument(ce, dtd, sigma_prime);
  if (!premises.ok()) {
    reasons->push_back("impl: " + route + " counterexample for " + name +
                       " does not satisfy the premises: " +
                       premises.message());
    return;
  }
  if (CheckConstraints(ce, dtd, phi).ok()) {
    // The documented CheckForeignKeyImplication failure mode: a
    // "counterexample" that in fact satisfies the constraint (both
    // foreign-key parts) refutes nothing.
    reasons->push_back("impl: " + route + " counterexample for " + name +
                       " satisfies the constraint it should violate");
  }
}

void JudgeQuestion(const Question& q, std::vector<std::string>* reasons) {
  if (q.quick && q.full.has_value() && !*q.full) {
    reasons->push_back("impl: quick tier claims " + q.name +
                       " implied, full check says not implied");
  }
  if (q.quick && q.brute_refuted.value_or(false)) {
    reasons->push_back("impl: quick tier claims " + q.name +
                       " implied, bounded search found a counterexample");
  }
  if (q.full.value_or(false) && q.brute_refuted.value_or(false)) {
    reasons->push_back("impl: full check claims " + q.name +
                       " implied, bounded search found a counterexample");
  }
  if (q.exhaustive.has_value() && q.full.has_value() &&
      *q.exhaustive != *q.full) {
    reasons->push_back(
        "impl: exhaustive enumeration says " + q.name +
        (*q.exhaustive ? " implied" : " not implied") +
        ", full check disagrees");
  }
  if (q.exhaustive.has_value() && !*q.exhaustive && q.quick) {
    reasons->push_back("impl: quick tier claims " + q.name +
                       " implied, exhaustive enumeration refutes it");
  }
}

// Runs every route for one constraint. `run_full` invokes the
// engine's layered check (nullopt when the flavour is undecidable or
// the check errored on budget).
void RunQuestion(
    const Dtd& dtd, const ConstraintSet& sigma_prime, const ConstraintSet& phi,
    const std::string& name, bool quick,
    const std::optional<Result<ImplicationAnswer>>& full,
    const ImplCheckOptions& options, const ExhaustiveGate& gate,
    std::vector<std::string>* reasons) {
  Question q;
  q.name = name;
  q.quick = quick;
  if (full.has_value() && full->ok()) {
    q.full = (*full)->implied;
    if (!(*full)->implied && (*full)->counterexample.has_value()) {
      ReplayCounterexample(dtd, sigma_prime, phi, *(*full)->counterexample,
                           "full-tier", name, reasons);
    }
  }

  BoundedSearchOptions bounded = options.bounded;
  if (options.timeout_millis > 0) {
    bounded.deadline = Deadline::AfterMillis(options.timeout_millis);
  }
  Result<BoundedRefutation> brute =
      SearchImplicationCounterexample(dtd, sigma_prime, phi, bounded);
  if (brute.ok()) {
    q.brute_refuted = brute->refuted;
    if (brute->refuted && brute->counterexample.has_value()) {
      ReplayCounterexample(dtd, sigma_prime, phi, *brute->counterexample,
                           "bounded-search", name, reasons);
    }
  }

  if (gate.complete) {
    BoundedSearchOptions exhaustive = gate.search;
    if (options.timeout_millis > 0) {
      exhaustive.deadline = Deadline::AfterMillis(options.timeout_millis);
    }
    Result<ConsistencyVerdict> search = BoundedSearchDocument(
        dtd,
        [&](const XmlTree& tree) {
          return CheckConstraints(tree, dtd, sigma_prime).ok() &&
                 !CheckConstraints(tree, dtd, phi).ok();
        },
        exhaustive);
    if (search.ok()) {
      if (search->outcome == ConsistencyOutcome::kConsistent) {
        q.exhaustive = false;  // counterexample exists: not implied
        if (search->witness.has_value()) {
          ReplayCounterexample(dtd, sigma_prime, phi, *search->witness,
                               "exhaustive", name, reasons);
        }
      } else if (search->outcome == ConsistencyOutcome::kUnknown &&
                 StartsWith(search->note, "no satisfying document")) {
        q.exhaustive = true;  // full space enumerated, no counterexample
        trace::Count("difftest/impl_exhaustive_proofs");
      }
    }
  }

  JudgeQuestion(q, reasons);
}

ConstraintSet Only(AbsoluteKey c) { ConstraintSet s; s.Add(std::move(c)); return s; }
ConstraintSet Only(AbsoluteInclusion c) { ConstraintSet s; s.Add(std::move(c)); return s; }
ConstraintSet Only(RegularKey c) { ConstraintSet s; s.Add(std::move(c)); return s; }
ConstraintSet Only(RegularInclusion c) { ConstraintSet s; s.Add(std::move(c)); return s; }
ConstraintSet Only(RelativeKey c) { ConstraintSet s; s.Add(std::move(c)); return s; }
ConstraintSet Only(RelativeInclusion c) { ConstraintSet s; s.Add(std::move(c)); return s; }

}  // namespace

std::vector<std::string> CrossCheckImplication(const Specification& spec,
                                               const ImplCheckOptions& options) {
  std::vector<std::string> reasons;
  const Dtd& dtd = spec.dtd;
  const ConstraintSet& sigma = spec.constraints;
  if (!sigma.Validate(dtd).ok()) return reasons;

  ImplicationEngineOptions engine_options = options.engine;
  engine_options.full.build_counterexample = true;  // replay needs them
  // Quick-tier queries take no budgets; full-tier solves get a fresh
  // per-question deadline through `full_engine` (Deadline is an
  // absolute time point, so it cannot be stamped once up front).
  const ImplicationChecker engine(engine_options);
  auto full_engine = [&]() {
    ImplicationEngineOptions stamped = engine_options;
    if (options.timeout_millis > 0) {
      stamped.full.solver.deadline =
          Deadline::AfterMillis(options.timeout_millis);
    }
    return ImplicationChecker(stamped);
  };
  const ExhaustiveGate gate = GateExhaustive(dtd, options);

  for (size_t i = 0; i < sigma.absolute_keys().size(); ++i) {
    const AbsoluteKey& c = sigma.absolute_keys()[i];
    ConstraintSet rest = Without(sigma, Flavor::kAbsKey, i);
    std::optional<Result<ImplicationAnswer>> full;
    if (c.IsUnary()) full = full_engine().CheckKey(dtd, rest, c);
    RunQuestion(dtd, rest, Only(c), c.ToString(dtd),
                engine.QuickImplies(dtd, rest, c), full, options, gate,
                &reasons);
  }
  for (size_t i = 0; i < sigma.absolute_inclusions().size(); ++i) {
    const AbsoluteInclusion& c = sigma.absolute_inclusions()[i];
    ConstraintSet rest = Without(sigma, Flavor::kAbsInc, i);
    std::optional<Result<ImplicationAnswer>> full;
    if (c.IsUnary()) full = full_engine().CheckInclusion(dtd, rest, c);
    RunQuestion(dtd, rest, Only(c), c.ToString(dtd),
                engine.QuickImplies(dtd, rest, c), full, options, gate,
                &reasons);

    // Foreign-key audit: when Sigma also keys the referenced side,
    // cross-check CheckForeignKeyImplication's two-part verdict and
    // replay its counterexample against BOTH parts (the historical
    // failure mode is a counterexample satisfying each part).
    if (c.IsUnary()) {
      AbsoluteKey parent_key{c.parent_type, c.parent_attributes};
      bool has_parent_key = false;
      for (const AbsoluteKey& k : sigma.absolute_keys()) {
        if (k.type == parent_key.type &&
            k.attributes == parent_key.attributes) {
          has_parent_key = true;
          break;
        }
      }
      if (has_parent_key) {
        Result<ImplicationAnswer> fk = full_engine().CheckForeignKey(dtd, rest, c);
        if (fk.ok() && !(*fk).implied && (*fk).counterexample.has_value()) {
          ConstraintSet fk_parts = Only(c);
          fk_parts.Add(parent_key);
          ReplayCounterexample(dtd, rest, fk_parts, *(*fk).counterexample,
                               "foreign-key", c.ToString(dtd) + " (as FK)",
                               &reasons);
        }
      }
    }
  }
  for (size_t i = 0; i < sigma.regular_keys().size(); ++i) {
    const RegularKey& c = sigma.regular_keys()[i];
    ConstraintSet rest = Without(sigma, Flavor::kRegKey, i);
    RunQuestion(dtd, rest, Only(c), c.ToString(dtd),
                engine.QuickImplies(dtd, rest, c),
                full_engine().CheckKey(dtd, rest, c), options, gate, &reasons);
  }
  for (size_t i = 0; i < sigma.regular_inclusions().size(); ++i) {
    const RegularInclusion& c = sigma.regular_inclusions()[i];
    ConstraintSet rest = Without(sigma, Flavor::kRegInc, i);
    RunQuestion(dtd, rest, Only(c), c.ToString(dtd),
                engine.QuickImplies(dtd, rest, c),
                full_engine().CheckInclusion(dtd, rest, c), options, gate, &reasons);
  }
  // Relative premises make Impl undecidable (Corollary 4.5): only the
  // quick tier and the (one-sided or exhaustive) search apply.
  for (size_t i = 0; i < sigma.relative_keys().size(); ++i) {
    const RelativeKey& c = sigma.relative_keys()[i];
    ConstraintSet rest = Without(sigma, Flavor::kRelKey, i);
    RunQuestion(dtd, rest, Only(c), c.ToString(dtd),
                engine.QuickImplies(dtd, rest, c), std::nullopt, options,
                gate, &reasons);
  }
  for (size_t i = 0; i < sigma.relative_inclusions().size(); ++i) {
    const RelativeInclusion& c = sigma.relative_inclusions()[i];
    ConstraintSet rest = Without(sigma, Flavor::kRelInc, i);
    RunQuestion(dtd, rest, Only(c), c.ToString(dtd),
                engine.QuickImplies(dtd, rest, c), std::nullopt, options,
                gate, &reasons);
  }
  return reasons;
}

}  // namespace xmlverify
