#include "difftest/difftest.h"

#include <atomic>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

namespace xmlverify {
namespace {

// Result of one (seed, class) grid cell, written into its own slot
// by whichever worker claims it.
struct Cell {
  bool disagreed = false;
  std::optional<ConsistencyOutcome> consensus;
  Disagreement disagreement;  // filled only when `disagreed`
};

OracleOptions WithSolverPipeline(OracleOptions oracle, bool fast, int jobs) {
  oracle.solver.use_presolve = fast;
  oracle.solver.use_sparse_simplex = fast;
  oracle.solver.warm_start = fast;
  oracle.solver.jobs = jobs;
  return oracle;
}

bool Definitive(ConsistencyOutcome outcome) {
  return outcome == ConsistencyOutcome::kConsistent ||
         outcome == ConsistencyOutcome::kInconsistent;
}

// Cross-checks `spec` under the configured solver pipeline(s). Beyond
// the primary (fast, serial) report, each additional pipeline — the
// legacy engine for kBoth, the parallel solver for solver_jobs > 1 —
// is merged in, and any definitive verdict that differs between the
// pipelines (overall consensus or any individual procedure) becomes a
// disagreement. Only definitive verdicts are compared: which
// non-verdict limit fires first legitimately varies across engines
// and schedules.
CrossCheckReport CheckUnderSolverPath(const Specification& spec,
                                      const DifftestOptions& options) {
  if (options.solver_path == SolverPath::kLegacy) {
    return CrossCheckSpecification(
        spec, WithSolverPipeline(options.oracle, /*fast=*/false, /*jobs=*/1));
  }
  CrossCheckReport fast = CrossCheckSpecification(
      spec, WithSolverPipeline(options.oracle, /*fast=*/true, /*jobs=*/1));
  const bool parallel = options.solver_jobs > 1;
  if (options.solver_path == SolverPath::kFast && !parallel) return fast;

  CrossCheckReport merged = fast;
  auto merge_pipeline = [&](const std::string& name,
                            const CrossCheckReport& other) {
    for (const std::string& reason : other.disagreements) {
      merged.disagreements.push_back(name + ": " + reason);
    }
    if (fast.consensus.has_value() && other.consensus.has_value() &&
        *fast.consensus != *other.consensus) {
      merged.disagreements.push_back(
          "solver-path divergence: consensus fast=" +
          OutcomeName(*fast.consensus) + " " + name + "=" +
          OutcomeName(*other.consensus));
    }
    for (const ProcedureRun& fast_run : fast.runs) {
      if (!fast_run.ran || !Definitive(fast_run.verdict.outcome)) continue;
      for (const ProcedureRun& other_run : other.runs) {
        if (other_run.name != fast_run.name || !other_run.ran) continue;
        if (Definitive(other_run.verdict.outcome) &&
            other_run.verdict.outcome != fast_run.verdict.outcome) {
          merged.disagreements.push_back(
              "solver-path divergence: " + fast_run.name +
              " fast=" + OutcomeName(fast_run.verdict.outcome) + " " + name +
              "=" + OutcomeName(other_run.verdict.outcome));
        }
        break;
      }
    }
    if (!merged.consensus.has_value()) merged.consensus = other.consensus;
  };
  if (options.solver_path == SolverPath::kBoth) {
    merge_pipeline("legacy",
                   CrossCheckSpecification(spec, WithSolverPipeline(
                                                     options.oracle,
                                                     /*fast=*/false,
                                                     /*jobs=*/1)));
  }
  if (parallel) {
    merge_pipeline("jobs=" + std::to_string(options.solver_jobs),
                   CrossCheckSpecification(
                       spec, WithSolverPipeline(options.oracle, /*fast=*/true,
                                                options.solver_jobs)));
  }
  return merged;
}

Cell RunCell(uint64_t seed, DifftestClass cls, const DifftestOptions& options) {
  Cell cell;
  Result<GeneratedSpec> generated = GenerateSpec(seed, cls, options.generator);
  if (!generated.ok()) {
    cell.disagreed = true;
    cell.disagreement.seed = seed;
    cell.disagreement.cls = cls;
    cell.disagreement.reasons.push_back("generator error: " +
                                       generated.status().message());
    return cell;
  }

  CrossCheckReport report = CheckUnderSolverPath(generated->spec, options);
  cell.consensus = report.consensus;
  if (options.impl_mode) {
    std::vector<std::string> impl_reasons =
        CrossCheckImplication(generated->spec, options.impl);
    report.disagreements.insert(report.disagreements.end(),
                                impl_reasons.begin(), impl_reasons.end());
  }
  if (report.agreed()) return cell;

  cell.disagreed = true;
  cell.disagreement.seed = seed;
  cell.disagreement.cls = cls;
  cell.disagreement.reasons = report.disagreements;
  cell.disagreement.spec_text = generated->text;
  if (options.shrink) {
    SpecPredicate still_disagrees = [&options](const Specification& spec) {
      if (!CheckUnderSolverPath(spec, options).agreed()) return true;
      return options.impl_mode &&
             !CrossCheckImplication(spec, options.impl).empty();
    };
    ShrinkOutcome shrunk = ShrinkSpecification(generated->spec,
                                               still_disagrees,
                                               options.shrinker);
    cell.disagreement.shrunk_text = shrunk.text;
    cell.disagreement.shrink_rounds = shrunk.rounds;
  }
  return cell;
}

void Indent(const std::string& text, std::ostringstream* out) {
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) *out << "    " << line << "\n";
}

}  // namespace

std::string DifftestReport::Summary() const {
  std::ostringstream out;
  out << "class  specs  consistent  inconsistent  unknown  disagree\n";
  ClassTally total;
  for (const ClassTally& t : tallies) {
    std::string name = DifftestClassName(t.cls);
    name.resize(5, ' ');
    out << name << "  " << t.specs << "  " << t.consistent << "  "
        << t.inconsistent << "  " << t.unknown << "  " << t.disagreements
        << "\n";
    total.specs += t.specs;
    total.consistent += t.consistent;
    total.inconsistent += t.inconsistent;
    total.unknown += t.unknown;
    total.disagreements += t.disagreements;
  }
  out << "total  " << total.specs << "  " << total.consistent << "  "
      << total.inconsistent << "  " << total.unknown << "  "
      << total.disagreements << "\n";

  for (const Disagreement& d : disagreements) {
    out << "\ndisagreement seed=" << d.seed
        << " class=" << DifftestClassName(d.cls) << "\n";
    for (const std::string& reason : d.reasons) {
      out << "  reason: " << reason << "\n";
    }
    if (!d.spec_text.empty()) {
      out << "  spec:\n";
      Indent(d.spec_text, &out);
    }
    if (!d.shrunk_text.empty()) {
      out << "  shrunk (" << d.shrink_rounds << " rounds):\n";
      Indent(d.shrunk_text, &out);
    }
  }

  out << "\nRESULT: " << (disagreements.empty() ? "AGREE" : "DISAGREE") << " ("
      << total.specs << " specs, " << total.disagreements
      << " disagreements)\n";
  return out.str();
}

DifftestReport RunDifftest(const DifftestOptions& options) {
  std::vector<DifftestClass> classes = options.classes;
  if (classes.empty()) classes = AllDifftestClasses();

  const size_t num_seeds =
      options.num_seeds > 0 ? static_cast<size_t>(options.num_seeds) : 0;
  const size_t grid = num_seeds * classes.size();
  std::vector<Cell> cells(grid);

  int jobs = options.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  if (static_cast<size_t>(jobs) > grid) jobs = static_cast<int>(grid);

  // Seed-major grid, atomic cursor, one slot per cell: any worker can
  // claim any cell without affecting the (deterministic) report.
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    std::unique_ptr<TraceSession> session;
    if (options.stats != nullptr) {
      session = std::make_unique<TraceSession>(options.stats);
    }
    while (true) {
      const size_t index = next.fetch_add(1);
      if (index >= grid) break;
      const uint64_t seed = options.start_seed + index / classes.size();
      const DifftestClass cls = classes[index % classes.size()];
      cells[index] = RunCell(seed, cls, options);
    }
  };
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (int job = 0; job < jobs; ++job) threads.emplace_back(worker);
    for (std::thread& thread : threads) thread.join();
  }

  DifftestReport report;
  report.tallies.resize(classes.size());
  for (size_t c = 0; c < classes.size(); ++c) report.tallies[c].cls = classes[c];
  for (size_t index = 0; index < grid; ++index) {
    Cell& cell = cells[index];
    ClassTally& tally = report.tallies[index % classes.size()];
    ++tally.specs;
    ++report.specs;
    if (cell.consensus.has_value() &&
        *cell.consensus == ConsistencyOutcome::kConsistent) {
      ++tally.consistent;
    } else if (cell.consensus.has_value() &&
               *cell.consensus == ConsistencyOutcome::kInconsistent) {
      ++tally.inconsistent;
    } else {
      ++tally.unknown;
    }
    if (cell.disagreed) {
      ++tally.disagreements;
      report.disagreements.push_back(std::move(cell.disagreement));
    }
  }
  return report;
}

}  // namespace xmlverify
