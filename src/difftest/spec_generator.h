// Seeded random generator of XML specifications for differential
// testing: random DTDs (recursive and not, with and without stars)
// paired with constraint sets drawn from one of the decidable classes
// of Figures 3/4. Generation is a pure function of (seed, class,
// options) — the same inputs always produce byte-identical output —
// so every run is reproducible from its seed alone.
#ifndef XMLVERIFY_DIFFTEST_SPEC_GENERATOR_H_
#define XMLVERIFY_DIFFTEST_SPEC_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/specification.h"

namespace xmlverify {

/// Target classes the generator can aim for (the decidable rows of
/// Figures 3/4 plus the hierarchical relative fragment). The class a
/// generated spec actually lands in is re-derived by Classify(); the
/// generator only steers the constraint shapes.
enum class DifftestClass {
  kAcK,           // absolute unary keys only
  kAcUnary,       // unary keys + foreign keys / inclusions
  kAcMultiPrimary,  // multi-attribute disjoint keys, unary inclusions
  kAcRegular,     // regular-path keys/inclusions (plus folded absolute)
  kHrc,           // relative (hierarchical when the geometry allows)
};

/// Short stable name used in CLI flags and summaries: "ack", "acfk",
/// "pkfk", "reg", "hrc".
std::string DifftestClassName(DifftestClass cls);
Result<DifftestClass> ParseDifftestClass(const std::string& name);
std::vector<DifftestClass> AllDifftestClasses();

struct SpecGeneratorOptions {
  /// Element types besides the root: 1 .. max_extra_types.
  int max_extra_types = 4;
  /// Constraints per spec: 1 .. max_constraints.
  int max_constraints = 3;
  /// Allow back-edges among non-root types (never into the root,
  /// which Definition 2.1 forbids). Forced off for kHrc, whose
  /// geometry analysis requires a non-recursive DTD.
  bool allow_recursion = true;
  /// Allow Kleene stars / plus in content models.
  bool allow_star = true;
};

struct GeneratedSpec {
  Specification spec;
  /// Canonical `.xvc` text (root directive, DTD, `%%`, constraints).
  /// Reparsing it yields a specification with identical symbol ids.
  std::string text;
};

/// splitmix64: the tiny, seedable, platform-independent PRNG used
/// throughout the difftest subsystem.
uint64_t SplitMix64(uint64_t* state);

/// Deterministically generates one specification. Errors indicate a
/// generator bug (the result always passes ConstraintSet::Validate).
Result<GeneratedSpec> GenerateSpec(uint64_t seed, DifftestClass cls,
                                   const SpecGeneratorOptions& options = {});

/// Canonical `.xvc` rendering; thin wrapper over the public
/// CanonicalSpecText utility in core/canonical.h (kept here so
/// existing difftest call sites read naturally).
std::string SpecToText(const Specification& spec);

}  // namespace xmlverify

#endif  // XMLVERIFY_DIFFTEST_SPEC_GENERATOR_H_
