// The long-lived verification service: a multi-threaded TCP front
// end over the consistency checker that keeps process-wide state warm
// across requests — the regex->DFA and cardinality-plan memo caches
// (base/shared_cache.h) and the serve layer's own verdict cache
// (serve/verdict_cache.h).
//
// Thread shape (docs/serving.md has the operator's view):
//
//   acceptor ──> one reader thread per connection
//                   │ parse line, admission control
//                   ▼
//              bounded job queue ──> N worker threads
//                                       │ verdict cache / checker
//                                       ▼
//                                    response line (per-connection
//                                    write mutex; out of order by id)
//
// Admission control: the queue is bounded; when it is full the reader
// answers immediately with the distinct RETRYABLE error instead of
// queueing (load shedding — the client owns the retry policy, the
// server never builds unbounded backlog). Per-request budgets ride on
// the existing Deadline/ResourceBudget machinery: the server ceiling
// is stamped when a worker picks the job up (queueing time is not
// charged, as in the batch runner), while a request that carries its
// own `timeout_ms` is additionally stamped at enqueue, so a job that
// already outwaited its client is shed cheaply at pickup instead of
// being solved for nobody. The degradation ladder of
// docs/robustness.md applies unchanged.
//
// Hostile-client hardening (docs/serving.md, "Connection hardening"):
// per-connection idle and write deadlines bound how long a silent or
// stalled peer can hold a reader thread or the response path, a
// connection cap sheds accepts beyond `max_connections` with a
// RETRYABLE line, and every connection carries a CancelToken
// (base/cancel.h) that the reader trips when the peer is gone —
// workers observe it through the ordinary cooperative deadline polls
// and abandon the check. Cancellation, like RESOURCE_EXHAUSTED, is
// never a definitive verdict and never enters the caches.
#ifndef XMLVERIFY_SERVE_SERVER_H_
#define XMLVERIFY_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/cancel.h"
#include "base/deadline.h"
#include "base/status.h"
#include "core/consistency.h"
#include "serve/protocol.h"
#include "serve/verdict_cache.h"
#include "trace/trace.h"

namespace xmlverify {

struct ServeOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back
  /// from ServeServer::port()).
  int port = 0;
  /// Worker threads; <= 0 means std::thread::hardware_concurrency().
  int jobs = 0;
  /// Bounded admission queue; a request arriving while `queue_limit`
  /// jobs are already waiting is shed with a RETRYABLE response.
  size_t queue_limit = 256;
  /// Server-side per-request wall-clock ceiling in milliseconds;
  /// <= 0 means none. A request's own `timeout_ms` may only tighten
  /// it, never exceed it.
  int64_t timeout_millis = 0;
  /// Per-request tracked-memory ceiling in bytes; <= 0 means none.
  int64_t memory_limit_bytes = 0;
  /// Per-request recursion-depth ceiling; <= 0 means none.
  int max_depth = 0;
  /// Verdict-cache capacity per tier (see serve/verdict_cache.h).
  size_t cache_entries = 1 << 16;
  /// Longest accepted request line; longer lines are discarded up to
  /// the next newline and answered with a LINE_TOO_LONG error.
  size_t max_line_bytes = 4u << 20;
  /// Stop serving after this many responses have been written
  /// (0: serve forever). Lets tests and benches run a bounded session
  /// without signal choreography.
  int64_t max_requests = 0;
  /// Per-connection idle deadline in milliseconds; <= 0 disables. A
  /// connection that sends no bytes for this long is cancelled and
  /// closed (its reader thread is reclaimed), so slowloris peers
  /// cannot pin readers forever.
  int64_t idle_timeout_millis = 0;
  /// Per-response write deadline in milliseconds; <= 0 disables. A
  /// peer that stops draining its socket for this long has its
  /// connection cancelled and the response dropped, so a stalled
  /// client cannot wedge the shared response path.
  int64_t write_timeout_millis = 0;
  /// Open-connection cap; <= 0 means unlimited. An accept beyond the
  /// cap is answered with a single RETRYABLE error line and closed
  /// immediately — a distinct shed from queue-full, visible as
  /// serve/connections_rejected.
  int max_connections = 0;
  /// Durable warm cache (serve/snapshot.h): when non-empty, the
  /// canonical verdict-cache tier is loaded from this path at Start
  /// and written back on drain (and periodically, below), so a
  /// restart begins warm. Corrupt or stale records are skipped
  /// individually at load.
  std::string cache_snapshot_path;
  /// Periodic snapshot interval in milliseconds; <= 0 writes only on
  /// drain. Ignored when cache_snapshot_path is empty.
  int64_t snapshot_interval_millis = 0;
  /// Base checker options; budgets/deadline stamped per request.
  ConsistencyChecker::Options check;
  /// Incremental re-verification (docs/implication.md): on a verdict
  /// cache miss, try to confirm a previously solved verdict for the
  /// same DTD through quick-tier implication — Sigma_new implying the
  /// old (in)consistency core preserves INCONSISTENT; the old Sigma
  /// implying Sigma_new preserves CONSISTENT (with the old witness
  /// revalidated against the new constraints) — instead of re-solving
  /// from scratch. Sound: quick-tier answers are underapproximations
  /// and witnesses are replayed through the dynamic checker.
  bool incremental = true;
  /// Test-only: each worker sleeps this long before handling a job,
  /// making queue buildup (and thus shedding) deterministic in tests.
  int64_t debug_handle_delay_millis = 0;
  /// Optional registry shared by every server thread (each installs
  /// its own TraceSession), aggregating the serve/* counters.
  StatsRegistry* stats = nullptr;
};

class ServeServer {
 public:
  explicit ServeServer(ServeOptions options);
  ~ServeServer();
  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds, listens, and spawns the acceptor and worker threads.
  Status Start();

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

  /// Blocks until the server decides to stop (max_requests reached or
  /// Shutdown called from another thread), then completes the
  /// shutdown. Returns once every thread is joined.
  void Wait();

  /// Idempotent, thread-safe: stops accepting, unblocks every reader,
  /// drains the queue, joins all threads. Concurrent callers block
  /// until the teardown is complete (never returns with threads still
  /// running).
  void Shutdown();

  /// True once the server has decided to stop (signal from Shutdown
  /// or the max_requests threshold); threads may still be draining.
  bool stopped() const { return stop_.load(); }

  /// Responses written so far (verdicts, errors, and sheds alike).
  int64_t responses_sent() const {
    return responses_sent_.load(std::memory_order_relaxed);
  }

 private:
  /// One client connection. The fd is owned here and closed on
  /// destruction; workers and the reader share the connection via
  /// shared_ptr, so the fd stays valid until the last in-flight
  /// response for it has been written.
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    int fd;
    std::mutex write_mutex;
    /// Tripped by the reader when the peer is gone (recv error, idle
    /// timeout) or by the writer on a write error/timeout. In-flight
    /// checks for this connection observe it through their deadline
    /// polls and abandon the work; queued jobs are skipped at pickup.
    /// A clean half-close (EOF after the last request) does NOT trip
    /// it: pipelined clients legitimately shut down their write side
    /// and then read the remaining responses.
    CancelToken cancel;
  };

  struct Job {
    ServeRequest request;
    std::shared_ptr<Connection> conn;
    /// Stamped at enqueue when the request carries its own
    /// timeout_ms, so queue wait counts against the client's budget
    /// and an already-expired job is shed cheaply at pickup. The
    /// server ceiling is still stamped at pickup (unchanged).
    bool has_client_deadline = false;
    Deadline client_deadline;
  };

  /// One solved specification remembered for the incremental path:
  /// the constraints it carried, its definitive outcome, and (when a
  /// client has paid for them) its minimized core and witness.
  struct HistoryEntry {
    ConstraintSet constraints;
    ConstraintSet core;  // meaningful only when has_core
    bool has_core = false;
    ConsistencyOutcome outcome = ConsistencyOutcome::kUnknown;
    std::string note;
    std::string witness_xml;
  };

  void AcceptLoop();
  void ReadLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();
  void SnapshotLoop();
  void HandleLine(const std::shared_ptr<Connection>& conn,
                  const std::string& line);
  void HandleRequest(const Job& job);
  bool TryEnqueue(Job job);
  void WriteResponse(const std::shared_ptr<Connection>& conn,
                     const std::string& line);
  void RequestStop();

  /// Per-request checker options with freshly stamped budgets; the
  /// connection's cancel token rides on the deadline so the check
  /// aborts cooperatively when the client goes away.
  ConsistencyChecker::Options StampedCheckOptions(
      int64_t timeout_millis, const CancelToken* cancel) const;
  /// Effective per-request timeout at pickup: the server ceiling
  /// (stamped now) tightened by what remains of the client deadline
  /// (stamped at enqueue).
  int64_t EffectiveTimeout(const Job& job) const;
  /// Minimizes an unsat core for an INCONSISTENT spec under a fresh
  /// request-sized budget; returns the rendered constraint text ("" on
  /// failure) and the core set itself via `core_out` (when non-null).
  std::string ComputeCoreText(const Specification& spec,
                              int64_t timeout_millis,
                              const CancelToken* cancel,
                              ConstraintSet* core_out);
  /// Remembers a definitive verdict for the incremental path
  /// (bounded per DTD and globally; replaces an entry with the same
  /// constraint text).
  void RecordHistory(const std::string& dtd_text, HistoryEntry entry);
  /// Tries to confirm a cached verdict for `spec` from the history of
  /// its DTD via quick-tier implication. On success fills `confirmed`.
  bool TryIncremental(const Specification& spec, HistoryEntry* confirmed);

  ServeOptions options_;
  VerdictCache cache_;

  // Recently solved specifications grouped by their canonical DTD
  // text (same text => same symbol ids, so constraint sets transfer).
  std::mutex history_mutex_;
  std::unordered_map<std::string, std::vector<HistoryEntry>> history_;
  std::mutex listen_mutex_;  // guards listen_fd_/listen_shut_ teardown
  int listen_fd_ = -1;
  bool listen_shut_ = false;
  int port_ = 0;

  std::thread acceptor_;
  std::thread snapshotter_;
  std::vector<std::thread> workers_;
  // Reader threads, reaped opportunistically by the acceptor (a slot
  // whose `done` flag is set joins instantly) and finally in
  // Shutdown.
  struct ReaderSlot {
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::mutex readers_mutex_;
  std::list<ReaderSlot> readers_;

  // Open connections, tracked so Shutdown can unblock readers that
  // are parked in recv().
  std::mutex connections_mutex_;
  std::set<std::shared_ptr<Connection>> connections_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  bool joined_ = false;           // guarded by shutdown_mutex_
  std::mutex shutdown_mutex_;     // serializes the join sequence
  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;

  std::atomic<int64_t> responses_sent_{0};
};

}  // namespace xmlverify

#endif  // XMLVERIFY_SERVE_SERVER_H_
