#include "serve/snapshot.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "base/fault_injection.h"
#include "core/canonical.h"
#include "trace/trace.h"

namespace xmlverify {

namespace {

constexpr char kMagic[] = "XVCSNAP1\n";

/// 64-bit FNV-1a over the record's identifying fields and payloads.
/// Not cryptographic — it catches torn writes and bit rot, and the
/// loader's fingerprint re-verification independently catches stale
/// canonical text, so collisions here cost at most one bogus entry
/// that the fingerprint check then rejects.
uint64_t RecordChecksum(int outcome, const std::string& fingerprint,
                        const std::string& canonical, const std::string& note,
                        const std::string& witness, const std::string& core) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](const char* data, size_t size) {
    for (size_t i = 0; i < size; ++i) {
      hash = (hash ^ static_cast<unsigned char>(data[i])) * 0x100000001b3ULL;
    }
  };
  char outcome_byte = static_cast<char>('0' + outcome);
  mix(&outcome_byte, 1);
  mix(fingerprint.data(), fingerprint.size());
  mix(canonical.data(), canonical.size());
  mix(note.data(), note.size());
  mix(witness.data(), witness.size());
  mix(core.data(), core.size());
  return hash;
}

std::string ToHex(uint64_t value) {
  static const char kHexDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int nibble = 0; nibble < 16; ++nibble) {
    out[15 - nibble] = kHexDigits[(value >> (4 * nibble)) & 0xf];
  }
  return out;
}

int OutcomeTag(ConsistencyOutcome outcome) {
  switch (outcome) {
    case ConsistencyOutcome::kConsistent:
      return 1;
    case ConsistencyOutcome::kInconsistent:
      return 2;
    default:
      return 0;
  }
}

/// Parses one "R ..." header line starting at `pos` (which points at
/// the 'R'). On success fills the fields and sets `payload_start` to
/// the byte after the header's newline. Returns false on any
/// malformation without consuming anything.
struct RecordHeader {
  int outcome = 0;
  std::string fingerprint;
  size_t len_canonical = 0;
  size_t len_note = 0;
  size_t len_witness = 0;
  size_t len_core = 0;
  uint64_t checksum = 0;
  size_t payload_start = 0;
};

bool ParseHeader(const std::string& data, size_t pos, RecordHeader* header) {
  size_t line_end = data.find('\n', pos);
  if (line_end == std::string::npos) return false;
  std::istringstream line(data.substr(pos, line_end - pos));
  std::string tag, checksum_hex;
  unsigned long long lens[4] = {0, 0, 0, 0};
  if (!(line >> tag >> header->outcome >> header->fingerprint >> lens[0] >>
        lens[1] >> lens[2] >> lens[3] >> checksum_hex) ||
      tag != "R") {
    return false;
  }
  std::string trailing;
  if (line >> trailing) return false;  // junk after the checksum
  if (header->outcome != 1 && header->outcome != 2) return false;
  if (checksum_hex.size() != 16) return false;
  char* end = nullptr;
  header->checksum = std::strtoull(checksum_hex.c_str(), &end, 16);
  if (end == nullptr || *end != '\0') return false;
  header->len_canonical = static_cast<size_t>(lens[0]);
  header->len_note = static_cast<size_t>(lens[1]);
  header->len_witness = static_cast<size_t>(lens[2]);
  header->len_core = static_cast<size_t>(lens[3]);
  header->payload_start = line_end + 1;
  return true;
}

/// Next plausible record boundary at or after `pos`: the byte after a
/// "\nR " sequence. Used to resynchronize after a corrupt record so
/// one bad record does not take the rest of the snapshot with it.
size_t Resync(const std::string& data, size_t pos) {
  if (pos >= data.size()) return data.size();
  size_t found = data.find("\nR ", pos);
  if (found == std::string::npos) return data.size();
  return found + 1;
}

}  // namespace

Status WriteVerdictSnapshot(const VerdictCache& cache, const std::string& path,
                            SnapshotWriteStats* stats) {
  if (path.empty()) {
    return Status::InvalidArgument("snapshot path is empty");
  }
  // Fault point `cache_snapshot_write`: the write fails before the
  // temp file is created, so an existing snapshot is never damaged —
  // exactly the guarantee a real ENOSPC/EIO at open time gives.
  if (FaultInjector::ShouldFail("cache_snapshot_write")) {
    trace::Count("serve/cache_snapshot_write_failures");
    return Status::Internal("injected fault at cache_snapshot_write");
  }

  std::vector<std::pair<std::string, CachedVerdict>> entries =
      cache.ExportCanonical();

  std::string body(kMagic);
  size_t records = 0;
  for (const auto& [canonical, entry] : entries) {
    int outcome = OutcomeTag(entry.outcome);
    if (outcome == 0) continue;  // cache invariant; belt and braces
    uint64_t checksum =
        RecordChecksum(outcome, entry.fingerprint, canonical, entry.note,
                       entry.witness_xml, entry.core_text);
    body += "R ";
    body += std::to_string(outcome);
    body += ' ';
    body += entry.fingerprint;
    body += ' ';
    body += std::to_string(canonical.size());
    body += ' ';
    body += std::to_string(entry.note.size());
    body += ' ';
    body += std::to_string(entry.witness_xml.size());
    body += ' ';
    body += std::to_string(entry.core_text.size());
    body += ' ';
    body += ToHex(checksum);
    body += '\n';
    body += canonical;
    body += entry.note;
    body += entry.witness_xml;
    body += entry.core_text;
    body += '\n';
    ++records;
  }

  // Temp file in the same directory so rename() stays within one
  // filesystem and is atomic; a crash between write and rename leaves
  // the previous snapshot untouched and only a stray .tmp behind.
  std::string temp_path = path + ".tmp";
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      trace::Count("serve/cache_snapshot_write_failures");
      return Status::Internal("cannot open snapshot temp file " + temp_path);
    }
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(temp_path.c_str());
      trace::Count("serve/cache_snapshot_write_failures");
      return Status::Internal("short write to snapshot temp file " + temp_path);
    }
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    trace::Count("serve/cache_snapshot_write_failures");
    return Status::Internal("cannot rename snapshot into place at " + path);
  }

  trace::Count("serve/cache_snapshot_writes");
  if (stats != nullptr) {
    stats->records_written = records;
    stats->bytes_written = body.size();
  }
  return Status::OK();
}

Result<SnapshotLoadStats> LoadVerdictSnapshot(VerdictCache* cache,
                                              const std::string& path) {
  if (cache == nullptr) {
    return Status::InvalidArgument("snapshot load requires a cache");
  }
  if (path.empty()) {
    return Status::InvalidArgument("snapshot path is empty");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Missing snapshot = clean cold start (first boot, or the
    // operator pointed at a fresh path). Not an error.
    return SnapshotLoadStats{};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::Internal("read error on snapshot " + path);
  }
  std::string data = buffer.str();

  if (data.size() < sizeof(kMagic) - 1 ||
      data.compare(0, sizeof(kMagic) - 1, kMagic) != 0) {
    // A foreign or pre-format file: refuse wholesale rather than
    // guessing at record boundaries inside arbitrary bytes.
    return Status::InvalidArgument("snapshot " + path +
                                   " has no XVCSNAP1 header");
  }

  SnapshotLoadStats stats;
  size_t pos = sizeof(kMagic) - 1;
  while (pos < data.size()) {
    RecordHeader header;
    if (data[pos] != 'R' || !ParseHeader(data, pos, &header)) {
      ++stats.records_skipped;
      trace::Count("serve/cache_snapshot_skipped");
      pos = Resync(data, pos + 1);
      continue;
    }
    size_t payload_len = header.len_canonical + header.len_note +
                         header.len_witness + header.len_core;
    size_t record_end = header.payload_start + payload_len + 1;
    if (record_end > data.size() ||
        data[record_end - 1] != '\n') {  // truncated payload
      ++stats.records_skipped;
      trace::Count("serve/cache_snapshot_skipped");
      pos = Resync(data, pos + 1);
      continue;
    }
    size_t offset = header.payload_start;
    std::string canonical = data.substr(offset, header.len_canonical);
    offset += header.len_canonical;
    std::string note = data.substr(offset, header.len_note);
    offset += header.len_note;
    std::string witness = data.substr(offset, header.len_witness);
    offset += header.len_witness;
    std::string core = data.substr(offset, header.len_core);

    // From here on the framing is sound, so a bad record advances
    // past its own payload — no resync scan needed.
    pos = record_end;

    if (RecordChecksum(header.outcome, header.fingerprint, canonical, note,
                       witness, core) != header.checksum) {
      ++stats.records_skipped;
      trace::Count("serve/cache_snapshot_skipped");
      continue;
    }
    // Stale-snapshot defense: if the canonicalizer (or fingerprint
    // function) changed since this snapshot was written, the recorded
    // fingerprint no longer matches and the entry must not be trusted
    // to key the current canonical form.
    if (FingerprintText(canonical) != header.fingerprint) {
      ++stats.records_skipped;
      trace::Count("serve/cache_snapshot_skipped");
      continue;
    }
    // Fault point `cache_snapshot_read`: drop this record as if its
    // checksum had failed. Exercises the skip path under load.
    if (FaultInjector::ShouldFail("cache_snapshot_read")) {
      ++stats.records_skipped;
      trace::Count("serve/cache_snapshot_skipped");
      continue;
    }

    CachedVerdict entry;
    entry.outcome = header.outcome == 1 ? ConsistencyOutcome::kConsistent
                                        : ConsistencyOutcome::kInconsistent;
    entry.note = std::move(note);
    entry.witness_xml = std::move(witness);
    entry.core_text = std::move(core);
    entry.fingerprint = header.fingerprint;
    if (!cache->InsertLoaded(canonical, std::move(entry))) {
      ++stats.records_skipped;
      trace::Count("serve/cache_snapshot_skipped");
      continue;
    }
    ++stats.records_loaded;
    trace::Count("serve/cache_snapshot_loaded");
  }
  return stats;
}

}  // namespace xmlverify
