// The serve layer's verdict cache: finished verdicts keyed on the
// canonical form of the specification (core/canonical.h), so two
// requests whose `.xvc` texts differ only in surface syntax —
// whitespace, comments, constraint order as normalized by the parser —
// share one entry.
//
// Two lookup tiers, both mapping to the same immutable entry objects:
//
//   raw tier        key = the request's spec bytes exactly as sent.
//                   A repeat of an identical request skips parsing and
//                   canonicalization entirely — this is the hot path
//                   that makes a hit orders of magnitude cheaper than
//                   a cold check.
//   canonical tier  key = the full canonical `.xvc` text (not its
//                   hash: a collision must never alias two specs to
//                   one verdict). Filled on every insert; hit when a
//                   syntactically different spelling of a known spec
//                   arrives, and the raw tier is then back-filled.
//
// Cacheability policy (docs/serving.md): only definitive verdicts —
// CONSISTENT (with its validated witness) and INCONSISTENT — are ever
// stored. UNKNOWN, DEADLINE_EXCEEDED, and RESOURCE_EXHAUSTED describe
// the budget of the run that produced them, not the specification,
// so caching them would wrongly starve future requests that carry
// bigger budgets. Insert() enforces this; callers need not check.
#ifndef XMLVERIFY_SERVE_VERDICT_CACHE_H_
#define XMLVERIFY_SERVE_VERDICT_CACHE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/shared_cache.h"
#include "core/verdict.h"

namespace xmlverify {

/// One cached definitive verdict. The witness is stored serialized:
/// entries are immutable and shared across threads, and replaying a
/// pre-rendered document is exactly what a cache hit should cost.
struct CachedVerdict {
  ConsistencyOutcome outcome = ConsistencyOutcome::kUnknown;
  std::string note;
  std::string witness_xml;    // empty unless outcome is kConsistent
  std::string fingerprint;    // SpecFingerprint of the canonical text
  /// Minimized inconsistent core in constraint syntax; empty unless
  /// outcome is kInconsistent AND a core-requesting client has paid
  /// for the minimization (AttachCore). Computed once, served from
  /// the cache thereafter.
  std::string core_text;
};

class VerdictCache {
 public:
  /// `max_entries` bounds each tier (SharedCache epoch-clear
  /// semantics; see base/shared_cache.h).
  explicit VerdictCache(size_t max_entries = 1 << 16)
      : raw_(max_entries), canonical_(max_entries) {}

  /// True for outcomes the cache will store.
  static bool Cacheable(ConsistencyOutcome outcome) {
    return outcome == ConsistencyOutcome::kConsistent ||
           outcome == ConsistencyOutcome::kInconsistent;
  }

  /// Raw-tier probe, keyed on the request text exactly as received.
  std::shared_ptr<const CachedVerdict> LookupRaw(const std::string& raw_text);

  /// Canonical-tier probe; on a hit, back-fills the raw tier under
  /// `raw_text` so the next identical request short-circuits.
  std::shared_ptr<const CachedVerdict> LookupCanonical(
      const std::string& canonical_text, const std::string& raw_text);

  /// Stores a definitive verdict under both tiers; silently refuses
  /// non-definitive outcomes and returns nullptr. `witness_xml` must
  /// already be rendered (empty when no witness was built).
  std::shared_ptr<const CachedVerdict> Insert(
      const std::string& canonical_text, const std::string& raw_text,
      const std::string& fingerprint, ConsistencyOutcome outcome,
      const std::string& note, const std::string& witness_xml);

  /// Attaches a minimized core to an already-cached INCONSISTENT
  /// entry (both tiers), so later core-requesting hits are served
  /// without re-minimizing. No-op (returning nullptr) when the
  /// canonical entry is missing or not INCONSISTENT — the invariant
  /// that only INCONSISTENT entries carry cores is enforced here, not
  /// trusted to callers.
  std::shared_ptr<const CachedVerdict> AttachCore(
      const std::string& canonical_text, const std::string& raw_text,
      const std::string& core_text);

  size_t size() const { return canonical_.size(); }

  /// A copy of the canonical tier, for the durable snapshot writer
  /// (serve/snapshot.h). The raw tier is deliberately not exported:
  /// it refills from canonical-tier hits, and its keys are arbitrary
  /// client bytes that may never recur across a restart.
  std::vector<std::pair<std::string, CachedVerdict>> ExportCanonical() const;

  /// Re-inserts a snapshot record into the canonical tier. Enforces
  /// the same invariants as Insert/AttachCore (definitive outcomes
  /// only, witness only on CONSISTENT, core only on INCONSISTENT);
  /// returns false when the record violates them and was refused.
  bool InsertLoaded(const std::string& canonical_text, CachedVerdict entry);

 private:
  SharedCache<CachedVerdict> raw_;
  SharedCache<CachedVerdict> canonical_;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_SERVE_VERDICT_CACHE_H_
