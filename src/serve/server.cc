#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "checker/document_checker.h"
#include "core/canonical.h"
#include "core/diagnosis.h"
#include "core/implication_engine.h"
#include "core/specification.h"
#include "xml/xml_parser.h"

namespace xmlverify {

namespace {

// Composite raw-tier cache key covering both request forms; the
// separator bytes cannot appear adjacently in either text, so the two
// forms (and distinct pairs) never collide.
std::string RawCacheKey(const ServeRequest& request) {
  if (request.has_spec) return "s\n" + request.spec_text;
  return "p\n" + request.dtd_text + "\n\x1f\n" + request.constraints_text;
}

// Bounds for the incremental-reverification history: a small FIFO of
// recently solved constraint sets per DTD, and an epoch clear on the
// DTD map itself, mirroring SharedCache's crude-but-contention-free
// policy.
constexpr size_t kHistoryPerDtd = 4;
constexpr size_t kHistoryDtds = 1024;

}  // namespace

ServeServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

ServeServer::ServeServer(ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_entries == 0 ? 1 : options_.cache_entries) {}

ServeServer::~ServeServer() { Shutdown(); }

Status ServeServer::Start() {
  if (started_.exchange(true)) return Status::Internal("already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  // Loopback only: the service speaks an unauthenticated protocol, so
  // exposure beyond the host is an operator decision (front it with a
  // real proxy), not a default.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind 127.0.0.1:" + std::to_string(options_.port) +
                            ": " + std::strerror(saved));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(saved));
  }
  port_ = ntohs(bound.sin_port);
  if (::listen(listen_fd_, 128) != 0) {
    int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("listen: ") + std::strerror(saved));
  }

  int jobs = options_.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  workers_.reserve(jobs);
  for (int job = 0; job < jobs; ++job) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status();
}

void ServeServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(wait_mutex_);
    wait_cv_.wait(lock, [this] { return stop_.load(); });
  }
  Shutdown();
}

void ServeServer::RequestStop() {
  stop_.store(true);
  wait_cv_.notify_all();
  queue_cv_.notify_all();
  // Unblock the acceptor without closing the fd out from under it
  // (Shutdown joins before closing). The mutex keeps a late stop
  // request from touching an fd number the OS has already recycled.
  std::lock_guard<std::mutex> lock(listen_mutex_);
  if (listen_fd_ >= 0 && !listen_shut_) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    listen_shut_ = true;
  }
}

void ServeServer::Shutdown() {
  if (!started_.load()) return;
  RequestStop();
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (joined_) return;
  joined_ = true;

  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(listen_mutex_);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  // Kick every parked reader out of recv(); their connections close
  // as the last shared_ptr (reader or in-flight job) is released.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) {
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  {
    std::lock_guard<std::mutex> lock(readers_mutex_);
    for (ReaderSlot& slot : readers_) {
      if (slot.thread.joinable()) slot.thread.join();
    }
    readers_.clear();
  }

  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  std::lock_guard<std::mutex> lock(connections_mutex_);
  connections_.clear();
}

void ServeServer::AcceptLoop() {
  std::unique_ptr<TraceSession> session;
  if (options_.stats != nullptr) {
    session = std::make_unique<TraceSession>(options_.stats);
  }
  while (!stop_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listen socket shut down (or a fatal accept error)
    }
    if (stop_.load()) {
      ::close(fd);
      break;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd);
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.insert(conn);
    }
    trace::Count("serve/connections");
    std::lock_guard<std::mutex> lock(readers_mutex_);
    // Reap readers that already finished (join returns immediately),
    // so a long-lived server does not accumulate thread handles.
    for (auto it = readers_.begin(); it != readers_.end();) {
      if (it->done.load()) {
        if (it->thread.joinable()) it->thread.join();
        it = readers_.erase(it);
      } else {
        ++it;
      }
    }
    readers_.emplace_back();
    ReaderSlot& slot = readers_.back();
    slot.thread = std::thread([this, conn, &slot] {
      ReadLoop(conn);
      slot.done.store(true);
    });
  }
}

void ServeServer::ReadLoop(std::shared_ptr<Connection> conn) {
  std::unique_ptr<TraceSession> session;
  if (options_.stats != nullptr) {
    session = std::make_unique<TraceSession>(options_.stats);
  }
  std::string buffer;
  bool discarding = false;
  char chunk[16384];
  while (!stop_.load()) {
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client finished writing
    size_t begin = 0;
    for (ssize_t i = 0; i < n; ++i) {
      if (chunk[i] != '\n') continue;
      if (discarding) {
        // The tail of an oversized line: drop it and resume framing.
        discarding = false;
        buffer.clear();
      } else {
        buffer.append(chunk + begin, static_cast<size_t>(i) - begin);
        // A line can exceed the cap within a single recv chunk, so the
        // limit is enforced at completion too, not just while buffering.
        if (buffer.size() > options_.max_line_bytes) {
          trace::Count("serve/oversized_lines");
          WriteResponse(conn,
                        FormatErrorResponse(
                            "", "LINE_TOO_LONG",
                            "request line exceeds " +
                                std::to_string(options_.max_line_bytes) +
                                " bytes",
                            false));
        } else {
          HandleLine(conn, buffer);
        }
        buffer.clear();
      }
      begin = static_cast<size_t>(i) + 1;
    }
    if (!discarding) {
      buffer.append(chunk + begin, static_cast<size_t>(n) - begin);
      if (buffer.size() > options_.max_line_bytes) {
        trace::Count("serve/oversized_lines");
        WriteResponse(conn, FormatErrorResponse(
                                "", "LINE_TOO_LONG",
                                "request line exceeds " +
                                    std::to_string(options_.max_line_bytes) +
                                    " bytes",
                                false));
        buffer.clear();
        discarding = true;
      }
    }
  }
  // A final unterminated line is still a request (netcat piping a
  // file without a trailing newline).
  if (!discarding && !buffer.empty() && !stop_.load()) {
    HandleLine(conn, buffer);
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  connections_.erase(conn);
}

void ServeServer::HandleLine(const std::shared_ptr<Connection>& conn,
                             const std::string& line) {
  // Blank lines are tolerated silently: they carry no id to answer
  // under and commonly appear when driving the port by hand.
  bool blank = line.find_first_not_of(" \t\r") == std::string::npos;
  if (blank) return;

  Result<ServeRequest> request = ParseServeRequest(line);
  if (!request.ok()) {
    trace::Count("serve/invalid_requests");
    WriteResponse(conn,
                  FormatErrorResponse(RecoverRequestId(line), "INVALID_REQUEST",
                                      request.status().message(), false));
    return;
  }
  trace::Count("serve/requests");
  Job job;
  job.request = *std::move(request);
  job.conn = conn;
  std::string id = job.request.id;
  if (!TryEnqueue(std::move(job))) {
    trace::Count("serve/shed");
    WriteResponse(conn, FormatErrorResponse(
                            id, "RETRYABLE",
                            "queue full (" + std::to_string(options_.queue_limit) +
                                " requests waiting); retry with backoff",
                            true));
  }
}

bool ServeServer::TryEnqueue(Job job) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.size() >= options_.queue_limit) return false;
    queue_.push_back(std::move(job));
    trace::Max("serve/queue_depth_max",
               static_cast<int64_t>(queue_.size()));
  }
  queue_cv_.notify_one();
  return true;
}

void ServeServer::WorkerLoop() {
  std::unique_ptr<TraceSession> session;
  if (options_.stats != nullptr) {
    session = std::make_unique<TraceSession>(options_.stats);
  }
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return stop_.load() || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_.load()) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (options_.debug_handle_delay_millis > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.debug_handle_delay_millis));
    }
    HandleRequest(job);
  }
}

int64_t ServeServer::EffectiveTimeout(const ServeRequest& request) const {
  int64_t timeout = options_.timeout_millis;
  if (request.timeout_millis > 0 &&
      (timeout <= 0 || request.timeout_millis < timeout)) {
    timeout = request.timeout_millis;
  }
  return timeout;
}

ConsistencyChecker::Options ServeServer::StampedCheckOptions(
    int64_t timeout_millis) const {
  ConsistencyChecker::Options check = options_.check;
  check.build_witness = true;  // cached entries carry the witness
  ResourceBudget budget;
  if (timeout_millis > 0) {
    check.deadline = Deadline::AfterMillis(timeout_millis);
    budget.set_deadline(check.deadline);
  }
  if (options_.memory_limit_bytes > 0) {
    budget.set_memory_limit_bytes(options_.memory_limit_bytes);
  }
  if (options_.max_depth > 0) budget.set_max_depth(options_.max_depth);
  check.budget = budget;
  return check;
}

std::string ServeServer::ComputeCoreText(const Specification& spec,
                                         int64_t timeout_millis,
                                         ConstraintSet* core_out) {
  // The minimization runs |Sigma|+1 probe checks; it gets one fresh
  // request-sized budget here, and MinimizeInconsistentCore derives a
  // fresh per-probe budget from it (core/diagnosis.cc).
  DiagnosisOptions diagnosis;
  diagnosis.checker = StampedCheckOptions(timeout_millis);
  diagnosis.checker.build_witness = false;  // probes only need verdicts
  Result<ConstraintSet> core =
      MinimizeInconsistentCore(spec.dtd, spec.constraints, diagnosis);
  if (!core.ok()) {
    trace::Count("serve/core_failed");
    return std::string();
  }
  trace::Count("serve/core_computed");
  if (core_out != nullptr) *core_out = *core;
  return core->ToString(spec.dtd);
}

void ServeServer::RecordHistory(const std::string& dtd_text,
                                HistoryEntry entry) {
  std::lock_guard<std::mutex> lock(history_mutex_);
  if (history_.size() >= kHistoryDtds &&
      history_.find(dtd_text) == history_.end()) {
    history_.clear();  // epoch clear, SharedCache-style
  }
  std::vector<HistoryEntry>& entries = history_[dtd_text];
  entries.push_back(std::move(entry));
  if (entries.size() > kHistoryPerDtd) entries.erase(entries.begin());
}

bool ServeServer::TryIncremental(const Specification& spec,
                                 HistoryEntry* confirmed) {
  std::vector<HistoryEntry> candidates;
  {
    std::lock_guard<std::mutex> lock(history_mutex_);
    auto it = history_.find(spec.dtd.ToString());
    if (it == history_.end()) return false;
    candidates = it->second;  // small copy; confirm outside the lock
  }
  const ImplicationChecker engine;
  // Most recent first: incremental editing sessions hit the last
  // verdict almost always.
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    const HistoryEntry& old = *it;
    if (old.outcome == ConsistencyOutcome::kInconsistent) {
      // Sigma_new |= core (or the full old Sigma): any document
      // satisfying the new spec would satisfy an inconsistent set.
      const ConstraintSet& base = old.has_core ? old.core : old.constraints;
      if (engine.QuickImpliesAll(spec.dtd, spec.constraints, base)) {
        *confirmed = old;
        // The old core need not be a subset of the new constraints;
        // core-requesting clients get a fresh minimization instead.
        confirmed->has_core = false;
        confirmed->core = ConstraintSet();
        confirmed->witness_xml.clear();
        return true;
      }
    } else if (old.outcome == ConsistencyOutcome::kConsistent) {
      // Sigma_old |= Sigma_new pointwise: the old witness satisfies
      // the new spec. Defense in depth: replay it through the dynamic
      // checker before trusting the implication algebra.
      if (!engine.QuickImpliesAll(spec.dtd, old.constraints,
                                  spec.constraints)) {
        continue;
      }
      if (old.witness_xml.empty()) continue;
      Result<XmlTree> witness = ParseXmlDocument(old.witness_xml, spec.dtd);
      if (!witness.ok() ||
          !CheckDocument(*witness, spec.dtd, spec.constraints).ok()) {
        trace::Count("serve/incremental_witness_rejected");
        continue;
      }
      *confirmed = old;
      confirmed->has_core = false;
      confirmed->core = ConstraintSet();
      return true;
    }
  }
  return false;
}

void ServeServer::HandleRequest(const Job& job) {
  const ServeRequest& request = job.request;
  const std::string raw_key = RawCacheKey(request);

  // Raw tier first: a byte-identical repeat skips even the parse —
  // unless the entry owes the client a core it does not have yet, in
  // which case the parse path below computes and attaches it once.
  if (auto hit = cache_.LookupRaw(raw_key)) {
    const bool core_pending =
        request.want_core &&
        hit->outcome == ConsistencyOutcome::kInconsistent &&
        hit->core_text.empty();
    if (!core_pending) {
      trace::Count("serve/cache_hits");
      WriteResponse(job.conn,
                    FormatVerdictResponse(request.id, hit->outcome, hit->note,
                                          hit->fingerprint, /*cached=*/true,
                                          hit->witness_xml,
                                          request.want_witness, hit->core_text,
                                          request.want_core));
      return;
    }
  }

  Result<Specification> spec =
      request.has_spec
          ? Specification::ParseCombined(request.spec_text)
          : Specification::Parse(request.dtd_text, request.constraints_text);
  if (!spec.ok()) {
    trace::Count("serve/invalid_specs");
    WriteResponse(job.conn,
                  FormatErrorResponse(request.id, "INVALID_SPEC",
                                      spec.status().message(), false));
    return;
  }

  const std::string canonical = CanonicalSpecText(*spec);
  const std::string fingerprint = FingerprintText(canonical);
  if (auto hit = cache_.LookupCanonical(canonical, raw_key)) {
    trace::Count("serve/cache_hits");
    std::string core_text = hit->core_text;
    if (request.want_core &&
        hit->outcome == ConsistencyOutcome::kInconsistent &&
        core_text.empty()) {
      ConstraintSet core;
      core_text = ComputeCoreText(*spec, EffectiveTimeout(request), &core);
      if (!core_text.empty()) {
        cache_.AttachCore(canonical, raw_key, core_text);
        HistoryEntry entry;
        entry.constraints = spec->constraints;
        entry.core = core;
        entry.has_core = true;
        entry.outcome = hit->outcome;
        entry.note = hit->note;
        RecordHistory(spec->dtd.ToString(), std::move(entry));
      }
    }
    WriteResponse(job.conn,
                  FormatVerdictResponse(request.id, hit->outcome, hit->note,
                                        hit->fingerprint, /*cached=*/true,
                                        hit->witness_xml, request.want_witness,
                                        core_text, request.want_core));
    return;
  }
  trace::Count("serve/cache_misses");

  // Incremental re-verification: before paying for a cold solve, try
  // to confirm a verdict previously computed for the same DTD whose
  // constraints differ only in ways the quick implication tier can
  // discharge (docs/implication.md).
  if (options_.incremental) {
    HistoryEntry confirmed;
    if (TryIncremental(*spec, &confirmed)) {
      trace::Count("serve/incremental_hits");
      cache_.Insert(canonical, raw_key, fingerprint, confirmed.outcome,
                    confirmed.note, confirmed.witness_xml);
      std::string core_text;
      if (request.want_core &&
          confirmed.outcome == ConsistencyOutcome::kInconsistent) {
        ConstraintSet core;
        core_text = ComputeCoreText(*spec, EffectiveTimeout(request), &core);
        if (!core_text.empty()) {
          cache_.AttachCore(canonical, raw_key, core_text);
          confirmed.core = core;
          confirmed.has_core = true;
        }
      }
      HistoryEntry record = confirmed;
      record.constraints = spec->constraints;
      RecordHistory(spec->dtd.ToString(), std::move(record));
      WriteResponse(job.conn,
                    FormatVerdictResponse(request.id, confirmed.outcome,
                                          confirmed.note, fingerprint,
                                          /*cached=*/true,
                                          confirmed.witness_xml,
                                          request.want_witness, core_text,
                                          request.want_core));
      return;
    }
  }

  // Budgets are stamped when the worker picks the job up, so queueing
  // time is not charged against the request (batch-runner contract).
  ConsistencyChecker checker(StampedCheckOptions(EffectiveTimeout(request)));
  Result<ConsistencyVerdict> verdict = checker.Check(*spec);
  if (!verdict.ok()) {
    trace::Count("serve/check_errors");
    bool retryable =
        verdict.status().code() == StatusCode::kDeadlineExceeded ||
        verdict.status().code() == StatusCode::kResourceExhausted;
    WriteResponse(job.conn,
                  FormatErrorResponse(request.id, "CHECK_FAILED",
                                      verdict.status().message(), retryable));
    return;
  }

  std::string witness_xml;
  if (verdict->witness.has_value()) {
    witness_xml = verdict->witness->ToXml(spec->dtd);
  }
  // Only definitive verdicts enter the cache; Insert enforces the
  // policy (UNKNOWN/DEADLINE_EXCEEDED/RESOURCE_EXHAUSTED describe
  // this run's budget, not the specification).
  cache_.Insert(canonical, raw_key, fingerprint, verdict->outcome,
                verdict->note, witness_xml);
  std::string core_text;
  ConstraintSet core;
  bool has_core = false;
  if (request.want_core &&
      verdict->outcome == ConsistencyOutcome::kInconsistent) {
    core_text = ComputeCoreText(*spec, EffectiveTimeout(request), &core);
    if (!core_text.empty()) {
      cache_.AttachCore(canonical, raw_key, core_text);
      has_core = true;
    }
  }
  if (VerdictCache::Cacheable(verdict->outcome)) {
    HistoryEntry entry;
    entry.constraints = spec->constraints;
    entry.core = core;
    entry.has_core = has_core;
    entry.outcome = verdict->outcome;
    entry.note = verdict->note;
    entry.witness_xml = witness_xml;
    RecordHistory(spec->dtd.ToString(), std::move(entry));
  }
  WriteResponse(job.conn,
                FormatVerdictResponse(request.id, verdict->outcome,
                                      verdict->note, fingerprint,
                                      /*cached=*/false, witness_xml,
                                      request.want_witness, core_text,
                                      request.want_core));
}

void ServeServer::WriteResponse(const std::shared_ptr<Connection>& conn,
                                const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    size_t sent = 0;
    while (sent < line.size()) {
      ssize_t n = ::send(conn->fd, line.data() + sent, line.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        trace::Count("serve/write_errors");
        break;  // client went away; drop the response
      }
      sent += static_cast<size_t>(n);
    }
  }
  trace::Count("serve/responses");
  int64_t sent_total = responses_sent_.fetch_add(1) + 1;
  if (options_.max_requests > 0 && sent_total >= options_.max_requests) {
    RequestStop();
  }
}

}  // namespace xmlverify
