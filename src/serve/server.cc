#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "base/fault_injection.h"
#include "checker/document_checker.h"
#include "core/canonical.h"
#include "serve/snapshot.h"
#include "core/diagnosis.h"
#include "core/implication_engine.h"
#include "core/specification.h"
#include "xml/xml_parser.h"

namespace xmlverify {

namespace {

// Composite raw-tier cache key covering both request forms; the
// separator bytes cannot appear adjacently in either text, so the two
// forms (and distinct pairs) never collide.
std::string RawCacheKey(const ServeRequest& request) {
  if (request.has_spec) return "s\n" + request.spec_text;
  return "p\n" + request.dtd_text + "\n\x1f\n" + request.constraints_text;
}

// Bounds for the incremental-reverification history: a small FIFO of
// recently solved constraint sets per DTD, and an epoch clear on the
// DTD map itself, mirroring SharedCache's crude-but-contention-free
// policy.
constexpr size_t kHistoryPerDtd = 4;
constexpr size_t kHistoryDtds = 1024;

// Poll slice for the reader/writer loops: long enough that an idle
// server burns no measurable CPU, short enough that stop_ and the
// idle/write deadlines are observed promptly.
constexpr int kPollSliceMillis = 100;

// Milliseconds left on `deadline`, clamped into [0, slice] for use as
// a poll() timeout. An infinite deadline polls a full slice.
int PollTimeout(const Deadline& deadline) {
  if (deadline.is_infinite()) return kPollSliceMillis;
  auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                       deadline.Remaining())
                       .count();
  if (remaining <= 0) return 0;
  return static_cast<int>(
      std::min<int64_t>(remaining, kPollSliceMillis));
}

}  // namespace

ServeServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

ServeServer::ServeServer(ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_entries == 0 ? 1 : options_.cache_entries) {}

ServeServer::~ServeServer() { Shutdown(); }

Status ServeServer::Start() {
  if (started_.exchange(true)) return Status::Internal("already started");

  // Warm-start before the port opens, so the first request already
  // sees the restored cache. A bad snapshot is a degraded start, not
  // a fatal one: the loader skips bad records individually, and even
  // a wholesale-unreadable file only costs the warm start.
  if (!options_.cache_snapshot_path.empty()) {
    std::unique_ptr<TraceSession> session;
    if (options_.stats != nullptr) {
      session = std::make_unique<TraceSession>(options_.stats);
    }
    Result<SnapshotLoadStats> loaded =
        LoadVerdictSnapshot(&cache_, options_.cache_snapshot_path);
    if (!loaded.ok()) trace::Count("serve/cache_snapshot_load_failures");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  // Loopback only: the service speaks an unauthenticated protocol, so
  // exposure beyond the host is an operator decision (front it with a
  // real proxy), not a default.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind 127.0.0.1:" + std::to_string(options_.port) +
                            ": " + std::strerror(saved));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(saved));
  }
  port_ = ntohs(bound.sin_port);
  if (::listen(listen_fd_, 128) != 0) {
    int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("listen: ") + std::strerror(saved));
  }

  int jobs = options_.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  workers_.reserve(jobs);
  for (int job = 0; job < jobs; ++job) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  if (!options_.cache_snapshot_path.empty() &&
      options_.snapshot_interval_millis > 0) {
    snapshotter_ = std::thread([this] { SnapshotLoop(); });
  }
  return Status();
}

void ServeServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(wait_mutex_);
    wait_cv_.wait(lock, [this] { return stop_.load(); });
  }
  Shutdown();
}

void ServeServer::RequestStop() {
  stop_.store(true);
  wait_cv_.notify_all();
  queue_cv_.notify_all();
  // Unblock the acceptor without closing the fd out from under it
  // (Shutdown joins before closing). The mutex keeps a late stop
  // request from touching an fd number the OS has already recycled.
  std::lock_guard<std::mutex> lock(listen_mutex_);
  if (listen_fd_ >= 0 && !listen_shut_) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    listen_shut_ = true;
  }
}

void ServeServer::Shutdown() {
  if (!started_.load()) return;
  RequestStop();
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (joined_) return;
  joined_ = true;

  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(listen_mutex_);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  // Kick every parked reader out of recv(); their connections close
  // as the last shared_ptr (reader or in-flight job) is released.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) {
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  {
    std::lock_guard<std::mutex> lock(readers_mutex_);
    for (ReaderSlot& slot : readers_) {
      if (slot.thread.joinable()) slot.thread.join();
    }
    readers_.clear();
  }

  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (snapshotter_.joinable()) snapshotter_.join();

  // Drain snapshot, after the workers have stopped mutating the
  // cache. Retried a few times so a transiently failing disk (or an
  // armed `cache_snapshot_write` probability fault) does not silently
  // discard the warm state accumulated over the whole run.
  if (!options_.cache_snapshot_path.empty()) {
    std::unique_ptr<TraceSession> session;
    if (options_.stats != nullptr) {
      session = std::make_unique<TraceSession>(options_.stats);
    }
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (WriteVerdictSnapshot(cache_, options_.cache_snapshot_path, nullptr)
              .ok()) {
        break;
      }
    }
  }

  std::lock_guard<std::mutex> lock(connections_mutex_);
  connections_.clear();
}

void ServeServer::SnapshotLoop() {
  std::unique_ptr<TraceSession> session;
  if (options_.stats != nullptr) {
    session = std::make_unique<TraceSession>(options_.stats);
  }
  const auto interval =
      std::chrono::milliseconds(options_.snapshot_interval_millis);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(wait_mutex_);
      if (wait_cv_.wait_for(lock, interval, [this] { return stop_.load(); })) {
        return;  // the drain write in Shutdown captures the final state
      }
    }
    WriteVerdictSnapshot(cache_, options_.cache_snapshot_path, nullptr);
  }
}

void ServeServer::AcceptLoop() {
  std::unique_ptr<TraceSession> session;
  if (options_.stats != nullptr) {
    session = std::make_unique<TraceSession>(options_.stats);
  }
  while (!stop_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listen socket shut down (or a fatal accept error)
    }
    if (stop_.load()) {
      ::close(fd);
      break;
    }
    // Fault point `socket_accept`: the handshake "fails" after the
    // kernel accepted — the fd is dropped on the floor exactly as an
    // accept-time RST would leave it. The client sees a reset; the
    // server carries on.
    if (FaultInjector::ShouldFail("socket_accept")) {
      trace::Count("serve/accept_faults");
      ::close(fd);
      continue;
    }
    if (options_.max_connections > 0) {
      size_t open;
      {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        open = connections_.size();
      }
      if (open >= static_cast<size_t>(options_.max_connections)) {
        // Shed at the door with the same RETRYABLE contract as a full
        // queue — the client owns the retry policy. Best-effort write
        // on the still-blocking fd; the connection never enters the
        // tracked set and is not counted in responses_sent().
        trace::Count("serve/connections_rejected");
        std::string line = FormatErrorResponse(
            "", "RETRYABLE",
            "connection limit (" + std::to_string(options_.max_connections) +
                " open); retry with backoff",
            true);
        (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Non-blocking from here on: the reader paces itself with poll()
    // (idle deadline), and the writer can bound how long a stalled
    // peer may hold the response path (write deadline).
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    auto conn = std::make_shared<Connection>(fd);
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.insert(conn);
    }
    trace::Count("serve/connections");
    std::lock_guard<std::mutex> lock(readers_mutex_);
    // Reap readers that already finished (join returns immediately),
    // so a long-lived server does not accumulate thread handles.
    for (auto it = readers_.begin(); it != readers_.end();) {
      if (it->done.load()) {
        if (it->thread.joinable()) it->thread.join();
        it = readers_.erase(it);
      } else {
        ++it;
      }
    }
    readers_.emplace_back();
    ReaderSlot& slot = readers_.back();
    slot.thread = std::thread([this, conn, &slot] {
      ReadLoop(conn);
      slot.done.store(true);
    });
  }
}

void ServeServer::ReadLoop(std::shared_ptr<Connection> conn) {
  std::unique_ptr<TraceSession> session;
  if (options_.stats != nullptr) {
    session = std::make_unique<TraceSession>(options_.stats);
  }
  std::string buffer;
  bool discarding = false;
  bool peer_failed = false;
  char chunk[16384];
  Deadline idle = options_.idle_timeout_millis > 0
                      ? Deadline::AfterMillis(options_.idle_timeout_millis)
                      : Deadline::Infinite();
  while (!stop_.load()) {
    pollfd pfd{};
    pfd.fd = conn->fd;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, PollTimeout(idle));
    if (ready < 0) {
      if (errno == EINTR) continue;
      peer_failed = true;
      break;
    }
    if (ready == 0) {
      if (idle.Expired()) {
        // Slowloris defense: a connection that goes silent for the
        // idle budget is cancelled and reclaimed; its in-flight
        // checks abandon through the cooperative deadline polls.
        trace::Count("serve/idle_timeouts");
        peer_failed = true;
        break;
      }
      continue;
    }
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      peer_failed = true;  // reset or worse: nobody is reading answers
      break;
    }
    // n == 0 is a clean half-close: the peer finished writing but may
    // still be reading. Responses for queued requests keep flowing —
    // this must NOT cancel (pipelined clients depend on it).
    if (n == 0) break;
    if (options_.idle_timeout_millis > 0) {
      idle = Deadline::AfterMillis(options_.idle_timeout_millis);
    }
    size_t begin = 0;
    for (ssize_t i = 0; i < n; ++i) {
      if (chunk[i] != '\n') continue;
      if (discarding) {
        // The tail of an oversized line: drop it and resume framing.
        discarding = false;
        buffer.clear();
      } else {
        buffer.append(chunk + begin, static_cast<size_t>(i) - begin);
        // A line can exceed the cap within a single recv chunk, so the
        // limit is enforced at completion too, not just while buffering.
        if (buffer.size() > options_.max_line_bytes) {
          trace::Count("serve/oversized_lines");
          WriteResponse(conn,
                        FormatErrorResponse(
                            "", "LINE_TOO_LONG",
                            "request line exceeds " +
                                std::to_string(options_.max_line_bytes) +
                                " bytes",
                            false));
        } else {
          HandleLine(conn, buffer);
        }
        buffer.clear();
      }
      begin = static_cast<size_t>(i) + 1;
    }
    if (!discarding) {
      buffer.append(chunk + begin, static_cast<size_t>(n) - begin);
      if (buffer.size() > options_.max_line_bytes) {
        trace::Count("serve/oversized_lines");
        WriteResponse(conn, FormatErrorResponse(
                                "", "LINE_TOO_LONG",
                                "request line exceeds " +
                                    std::to_string(options_.max_line_bytes) +
                                    " bytes",
                                false));
        buffer.clear();
        discarding = true;
      }
    }
  }
  if (peer_failed) {
    trace::Count("serve/connections_cancelled");
    conn->cancel.Cancel();
  }
  // A final unterminated line is still a request (netcat piping a
  // file without a trailing newline).
  if (!peer_failed && !discarding && !buffer.empty() && !stop_.load()) {
    HandleLine(conn, buffer);
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  connections_.erase(conn);
}

void ServeServer::HandleLine(const std::shared_ptr<Connection>& conn,
                             const std::string& line) {
  // Blank lines are tolerated silently: they carry no id to answer
  // under and commonly appear when driving the port by hand.
  bool blank = line.find_first_not_of(" \t\r") == std::string::npos;
  if (blank) return;

  Result<ServeRequest> request = ParseServeRequest(line);
  if (!request.ok()) {
    trace::Count("serve/invalid_requests");
    WriteResponse(conn,
                  FormatErrorResponse(RecoverRequestId(line), "INVALID_REQUEST",
                                      request.status().message(), false));
    return;
  }
  trace::Count("serve/requests");
  Job job;
  job.request = *std::move(request);
  job.conn = conn;
  // The client's own timeout starts here, at admission: time spent
  // queued counts against it, so a job that outwaits its client is
  // shed at pickup instead of being solved for nobody. The server
  // ceiling is still stamped at pickup (see HandleRequest).
  if (job.request.timeout_millis > 0) {
    job.has_client_deadline = true;
    job.client_deadline = Deadline::AfterMillis(job.request.timeout_millis);
  }
  std::string id = job.request.id;
  if (!TryEnqueue(std::move(job))) {
    trace::Count("serve/shed");
    WriteResponse(conn, FormatErrorResponse(
                            id, "RETRYABLE",
                            "queue full (" + std::to_string(options_.queue_limit) +
                                " requests waiting); retry with backoff",
                            true));
  }
}

bool ServeServer::TryEnqueue(Job job) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.size() >= options_.queue_limit) return false;
    queue_.push_back(std::move(job));
    trace::Max("serve/queue_depth_max",
               static_cast<int64_t>(queue_.size()));
  }
  queue_cv_.notify_one();
  return true;
}

void ServeServer::WorkerLoop() {
  std::unique_ptr<TraceSession> session;
  if (options_.stats != nullptr) {
    session = std::make_unique<TraceSession>(options_.stats);
  }
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return stop_.load() || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_.load()) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (options_.debug_handle_delay_millis > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.debug_handle_delay_millis));
    }
    HandleRequest(job);
  }
}

int64_t ServeServer::EffectiveTimeout(const Job& job) const {
  int64_t timeout = options_.timeout_millis;  // server ceiling, stamped now
  if (job.has_client_deadline) {
    // What remains of the enqueue-stamped client budget; the expired
    // case is shed before this is called, so clamp to 1ms as a race
    // guard rather than re-deciding here.
    int64_t remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                            job.client_deadline.Remaining())
                            .count();
    if (remaining < 1) remaining = 1;
    if (timeout <= 0 || remaining < timeout) timeout = remaining;
  }
  return timeout;
}

ConsistencyChecker::Options ServeServer::StampedCheckOptions(
    int64_t timeout_millis, const CancelToken* cancel) const {
  ConsistencyChecker::Options check = options_.check;
  check.build_witness = true;  // cached entries carry the witness
  ResourceBudget budget;
  check.deadline = timeout_millis > 0 ? Deadline::AfterMillis(timeout_millis)
                                      : Deadline::Infinite();
  if (cancel != nullptr) {
    check.deadline = check.deadline.WithCancelToken(*cancel);
  }
  if (!check.deadline.is_infinite()) budget.set_deadline(check.deadline);
  if (options_.memory_limit_bytes > 0) {
    budget.set_memory_limit_bytes(options_.memory_limit_bytes);
  }
  if (options_.max_depth > 0) budget.set_max_depth(options_.max_depth);
  check.budget = budget;
  return check;
}

std::string ServeServer::ComputeCoreText(const Specification& spec,
                                         int64_t timeout_millis,
                                         const CancelToken* cancel,
                                         ConstraintSet* core_out) {
  // The minimization runs |Sigma|+1 probe checks; it gets one fresh
  // request-sized budget here, and MinimizeInconsistentCore derives a
  // fresh per-probe budget from it (core/diagnosis.cc).
  DiagnosisOptions diagnosis;
  diagnosis.checker = StampedCheckOptions(timeout_millis, cancel);
  diagnosis.checker.build_witness = false;  // probes only need verdicts
  Result<ConstraintSet> core =
      MinimizeInconsistentCore(spec.dtd, spec.constraints, diagnosis);
  if (!core.ok()) {
    trace::Count("serve/core_failed");
    return std::string();
  }
  trace::Count("serve/core_computed");
  if (core_out != nullptr) *core_out = *core;
  return core->ToString(spec.dtd);
}

void ServeServer::RecordHistory(const std::string& dtd_text,
                                HistoryEntry entry) {
  std::lock_guard<std::mutex> lock(history_mutex_);
  if (history_.size() >= kHistoryDtds &&
      history_.find(dtd_text) == history_.end()) {
    history_.clear();  // epoch clear, SharedCache-style
  }
  std::vector<HistoryEntry>& entries = history_[dtd_text];
  entries.push_back(std::move(entry));
  if (entries.size() > kHistoryPerDtd) entries.erase(entries.begin());
}

bool ServeServer::TryIncremental(const Specification& spec,
                                 HistoryEntry* confirmed) {
  std::vector<HistoryEntry> candidates;
  {
    std::lock_guard<std::mutex> lock(history_mutex_);
    auto it = history_.find(spec.dtd.ToString());
    if (it == history_.end()) return false;
    candidates = it->second;  // small copy; confirm outside the lock
  }
  const ImplicationChecker engine;
  // Most recent first: incremental editing sessions hit the last
  // verdict almost always.
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    const HistoryEntry& old = *it;
    if (old.outcome == ConsistencyOutcome::kInconsistent) {
      // Sigma_new |= core (or the full old Sigma): any document
      // satisfying the new spec would satisfy an inconsistent set.
      const ConstraintSet& base = old.has_core ? old.core : old.constraints;
      if (engine.QuickImpliesAll(spec.dtd, spec.constraints, base)) {
        *confirmed = old;
        // The old core need not be a subset of the new constraints;
        // core-requesting clients get a fresh minimization instead.
        confirmed->has_core = false;
        confirmed->core = ConstraintSet();
        confirmed->witness_xml.clear();
        return true;
      }
    } else if (old.outcome == ConsistencyOutcome::kConsistent) {
      // Sigma_old |= Sigma_new pointwise: the old witness satisfies
      // the new spec. Defense in depth: replay it through the dynamic
      // checker before trusting the implication algebra.
      if (!engine.QuickImpliesAll(spec.dtd, old.constraints,
                                  spec.constraints)) {
        continue;
      }
      if (old.witness_xml.empty()) continue;
      Result<XmlTree> witness = ParseXmlDocument(old.witness_xml, spec.dtd);
      if (!witness.ok() ||
          !CheckDocument(*witness, spec.dtd, spec.constraints).ok()) {
        trace::Count("serve/incremental_witness_rejected");
        continue;
      }
      *confirmed = old;
      confirmed->has_core = false;
      confirmed->core = ConstraintSet();
      return true;
    }
  }
  return false;
}

void ServeServer::HandleRequest(const Job& job) {
  const ServeRequest& request = job.request;

  // Pickup admission: a job whose connection died while it queued is
  // dropped outright (nobody is listening), and one that outwaited
  // its own client timeout is answered with a cheap DEADLINE_EXCEEDED
  // instead of a full solve whose answer would arrive too late.
  if (job.conn->cancel.cancelled()) {
    trace::Count("serve/cancelled");
    return;
  }
  if (job.has_client_deadline && job.client_deadline.Expired()) {
    trace::Count("serve/queue_expired");
    WriteResponse(job.conn,
                  FormatVerdictResponse(
                      request.id, ConsistencyOutcome::kDeadlineExceeded,
                      "request timeout_ms of " +
                          std::to_string(request.timeout_millis) +
                          " expired while queued",
                      /*fingerprint=*/"", /*cached=*/false,
                      /*witness_xml=*/"", /*include_witness=*/false));
    return;
  }

  const std::string raw_key = RawCacheKey(request);

  // Raw tier first: a byte-identical repeat skips even the parse —
  // unless the entry owes the client a core it does not have yet, in
  // which case the parse path below computes and attaches it once.
  if (auto hit = cache_.LookupRaw(raw_key)) {
    const bool core_pending =
        request.want_core &&
        hit->outcome == ConsistencyOutcome::kInconsistent &&
        hit->core_text.empty();
    if (!core_pending) {
      trace::Count("serve/cache_hits");
      WriteResponse(job.conn,
                    FormatVerdictResponse(request.id, hit->outcome, hit->note,
                                          hit->fingerprint, /*cached=*/true,
                                          hit->witness_xml,
                                          request.want_witness, hit->core_text,
                                          request.want_core));
      return;
    }
  }

  Result<Specification> spec =
      request.has_spec
          ? Specification::ParseCombined(request.spec_text)
          : Specification::Parse(request.dtd_text, request.constraints_text);
  if (!spec.ok()) {
    trace::Count("serve/invalid_specs");
    WriteResponse(job.conn,
                  FormatErrorResponse(request.id, "INVALID_SPEC",
                                      spec.status().message(), false));
    return;
  }

  const std::string canonical = CanonicalSpecText(*spec);
  const std::string fingerprint = FingerprintText(canonical);
  if (auto hit = cache_.LookupCanonical(canonical, raw_key)) {
    trace::Count("serve/cache_hits");
    std::string core_text = hit->core_text;
    if (request.want_core &&
        hit->outcome == ConsistencyOutcome::kInconsistent &&
        core_text.empty()) {
      ConstraintSet core;
      core_text = ComputeCoreText(*spec, EffectiveTimeout(job),
                                  &job.conn->cancel, &core);
      if (!core_text.empty()) {
        cache_.AttachCore(canonical, raw_key, core_text);
        HistoryEntry entry;
        entry.constraints = spec->constraints;
        entry.core = core;
        entry.has_core = true;
        entry.outcome = hit->outcome;
        entry.note = hit->note;
        RecordHistory(spec->dtd.ToString(), std::move(entry));
      }
    }
    WriteResponse(job.conn,
                  FormatVerdictResponse(request.id, hit->outcome, hit->note,
                                        hit->fingerprint, /*cached=*/true,
                                        hit->witness_xml, request.want_witness,
                                        core_text, request.want_core));
    return;
  }
  trace::Count("serve/cache_misses");

  // Incremental re-verification: before paying for a cold solve, try
  // to confirm a verdict previously computed for the same DTD whose
  // constraints differ only in ways the quick implication tier can
  // discharge (docs/implication.md).
  if (options_.incremental) {
    HistoryEntry confirmed;
    if (TryIncremental(*spec, &confirmed)) {
      trace::Count("serve/incremental_hits");
      cache_.Insert(canonical, raw_key, fingerprint, confirmed.outcome,
                    confirmed.note, confirmed.witness_xml);
      std::string core_text;
      if (request.want_core &&
          confirmed.outcome == ConsistencyOutcome::kInconsistent) {
        ConstraintSet core;
        core_text = ComputeCoreText(*spec, EffectiveTimeout(job),
                                    &job.conn->cancel, &core);
        if (!core_text.empty()) {
          cache_.AttachCore(canonical, raw_key, core_text);
          confirmed.core = core;
          confirmed.has_core = true;
        }
      }
      HistoryEntry record = confirmed;
      record.constraints = spec->constraints;
      RecordHistory(spec->dtd.ToString(), std::move(record));
      WriteResponse(job.conn,
                    FormatVerdictResponse(request.id, confirmed.outcome,
                                          confirmed.note, fingerprint,
                                          /*cached=*/true,
                                          confirmed.witness_xml,
                                          request.want_witness, core_text,
                                          request.want_core));
      return;
    }
  }

  // The server ceiling is stamped when the worker picks the job up
  // (queueing time is not charged against it; batch-runner contract),
  // tightened by what remains of the enqueue-stamped client deadline.
  // The connection's cancel token rides on the deadline, so the check
  // aborts cooperatively the moment the reader declares the peer dead.
  ConsistencyChecker checker(
      StampedCheckOptions(EffectiveTimeout(job), &job.conn->cancel));
  Result<ConsistencyVerdict> verdict = checker.Check(*spec);
  if (!verdict.ok()) {
    if (job.conn->cancel.cancelled()) {
      // The client is gone; its budget-shaped failure is nobody's
      // business and the socket is dead anyway.
      trace::Count("serve/cancelled");
      trace::Count("serve/cancelled_inflight");
      return;
    }
    trace::Count("serve/check_errors");
    bool retryable =
        verdict.status().code() == StatusCode::kDeadlineExceeded ||
        verdict.status().code() == StatusCode::kResourceExhausted;
    WriteResponse(job.conn,
                  FormatErrorResponse(request.id, "CHECK_FAILED",
                                      verdict.status().message(), retryable));
    return;
  }

  std::string witness_xml;
  if (verdict->witness.has_value()) {
    witness_xml = verdict->witness->ToXml(spec->dtd);
  }
  // Only definitive verdicts enter the cache; Insert enforces the
  // policy (UNKNOWN/DEADLINE_EXCEEDED/RESOURCE_EXHAUSTED describe
  // this run's budget, not the specification).
  cache_.Insert(canonical, raw_key, fingerprint, verdict->outcome,
                verdict->note, witness_xml);
  std::string core_text;
  ConstraintSet core;
  bool has_core = false;
  if (request.want_core &&
      verdict->outcome == ConsistencyOutcome::kInconsistent) {
    core_text = ComputeCoreText(*spec, EffectiveTimeout(job),
                                &job.conn->cancel, &core);
    if (!core_text.empty()) {
      cache_.AttachCore(canonical, raw_key, core_text);
      has_core = true;
    }
  }
  if (VerdictCache::Cacheable(verdict->outcome)) {
    HistoryEntry entry;
    entry.constraints = spec->constraints;
    entry.core = core;
    entry.has_core = has_core;
    entry.outcome = verdict->outcome;
    entry.note = verdict->note;
    entry.witness_xml = witness_xml;
    RecordHistory(spec->dtd.ToString(), std::move(entry));
  }
  if (job.conn->cancel.cancelled()) {
    // The client died after the solve finished. The definitive result
    // was banked in the cache and history above — the work is not
    // wasted — but there is nobody to write to.
    trace::Count("serve/cancelled");
    trace::Count("serve/cancelled_inflight");
    return;
  }
  WriteResponse(job.conn,
                FormatVerdictResponse(request.id, verdict->outcome,
                                      verdict->note, fingerprint,
                                      /*cached=*/false, witness_xml,
                                      request.want_witness, core_text,
                                      request.want_core));
}

void ServeServer::WriteResponse(const std::shared_ptr<Connection>& conn,
                                const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    // The fd is non-blocking; a peer that stops draining its socket
    // surfaces as EAGAIN, and the write deadline bounds how long it
    // may hold this connection's response path. On expiry the
    // connection is cancelled: a client too stalled to read one
    // response will not absorb further work either.
    Deadline write_deadline =
        options_.write_timeout_millis > 0
            ? Deadline::AfterMillis(options_.write_timeout_millis)
            : Deadline::Infinite();
    size_t sent = 0;
    while (sent < line.size()) {
      ssize_t n = ::send(conn->fd, line.data() + sent, line.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (stop_.load() || write_deadline.Expired()) {
            trace::Count("serve/write_timeouts");
            conn->cancel.Cancel();
            break;
          }
          pollfd pfd{};
          pfd.fd = conn->fd;
          pfd.events = POLLOUT;
          int ready = ::poll(&pfd, 1, PollTimeout(write_deadline));
          if (ready < 0 && errno != EINTR) {
            trace::Count("serve/write_errors");
            conn->cancel.Cancel();
            break;
          }
          continue;
        }
        trace::Count("serve/write_errors");
        conn->cancel.Cancel();  // client went away; drop the response
        break;
      }
      sent += static_cast<size_t>(n);
    }
  }
  trace::Count("serve/responses");
  int64_t sent_total = responses_sent_.fetch_add(1) + 1;
  if (options_.max_requests > 0 && sent_total >= options_.max_requests) {
    RequestStop();
  }
}

}  // namespace xmlverify
