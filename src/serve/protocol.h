// Wire protocol of the verification service: JSON lines over a byte
// stream, one request per line, one response per line. Requests carry
// a client-chosen `id` that is echoed back, so responses may complete
// out of order (a cache hit overtakes a slow cold check on another
// worker) and clients match them up by id.
//
// Request object (unknown fields are a structured error, never
// ignored — silent acceptance would mask client typos like
// "timeout_millis" for "timeout_ms"):
//
//   {"id": "r1",                        // required, non-empty string
//    "spec": "<combined .xvc text>",    // this, or dtd+constraints
//    "dtd": "...", "constraints": "...",
//    "timeout_ms": 5000,                // optional per-request budget
//    "witness": true,                   // optional, default false
//    "core": true}                      // optional, default false:
//                                       // on INCONSISTENT, return a
//                                       // minimized unsat core
//
// Response object, exactly one of three shapes:
//
//   {"id":"r1","verdict":"CONSISTENT","note":"...","cached":false,
//    "fingerprint":"<32 hex>","witness":"<xml>"}      // witness opt-in
//   (INCONSISTENT responses additionally carry
//    "core":"<constraint lines>" when requested — docs/implication.md)
//   {"id":"r1","error":"INVALID_REQUEST","message":"...",
//    "retryable":false}                               // per-request error
//   {"id":"r7","error":"RETRYABLE","message":"queue full",
//    "retryable":true}                                // load shed
//
// Parsing is strict and total: malformed JSON, non-object lines,
// wrong field types, oversized lines, and unknown fields all map to
// Status values (surfaced to the client as INVALID_REQUEST), never to
// a crash or a dropped connection. See docs/serving.md.
#ifndef XMLVERIFY_SERVE_PROTOCOL_H_
#define XMLVERIFY_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "base/status.h"
#include "core/verdict.h"

namespace xmlverify {

/// One parsed request line.
struct ServeRequest {
  std::string id;
  /// Combined `.xvc` text ("spec"), or the pair below.
  std::string spec_text;
  std::string dtd_text;
  std::string constraints_text;
  bool has_spec = false;       // "spec" was present
  bool has_pair = false;       // "dtd"/"constraints" were present
  int64_t timeout_millis = 0;  // 0: no per-request budget
  bool want_witness = false;
  /// "core": on an INCONSISTENT verdict, minimize and return an unsat
  /// core (ignored for other outcomes).
  bool want_core = false;
};

/// Parses one request line. Rejects (kInvalidArgument): non-JSON,
/// non-object roots, missing/empty/non-string "id", unknown fields,
/// wrong field types, neither or both spec forms, and negative
/// timeouts. The returned request is ready to hand to the server.
Result<ServeRequest> ParseServeRequest(const std::string& line);

/// Best-effort id recovery from a line that failed ParseServeRequest,
/// so the error response can still be routed by the client. Returns
/// "" when no "id" string field can be extracted.
std::string RecoverRequestId(const std::string& line);

/// Serializers: each returns one newline-terminated JSON line.
std::string FormatVerdictResponse(const std::string& id,
                                  ConsistencyOutcome outcome,
                                  const std::string& note,
                                  const std::string& fingerprint, bool cached,
                                  const std::string& witness_xml,
                                  bool include_witness,
                                  const std::string& core_text = std::string(),
                                  bool include_core = false);
std::string FormatErrorResponse(const std::string& id, const std::string& code,
                                const std::string& message, bool retryable);

}  // namespace xmlverify

#endif  // XMLVERIFY_SERVE_PROTOCOL_H_
