#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "trace/trace.h"

namespace xmlverify {

namespace {

/// splitmix64 step: a full-period 64-bit mixer, good enough to
/// decorrelate backoff jitter across clients and deterministic given
/// the seed (no global RNG state, no clock).
uint64_t NextJitter(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// True when `response` is a serve-protocol error marked retryable.
/// Substring probing is deliberate: the values involved are fixed
/// protocol tokens the server emits, never client-controlled text.
bool IsRetryableResponse(const std::string& response) {
  return response.find("\"error\"") != std::string::npos &&
         response.find("\"retryable\":true") != std::string::npos;
}

}  // namespace

ServeClient::~ServeClient() { Close(); }

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(other.fd_),
      buffer_(std::move(other.buffer_)),
      host_(std::move(other.host_)),
      port_(other.port_),
      options_(other.options_),
      jitter_state_(other.jitter_state_),
      recv_timeout_millis_(other.recv_timeout_millis_) {
  other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    host_ = std::move(other.host_);
    port_ = other.port_;
    options_ = other.options_;
    jitter_state_ = other.jitter_state_;
    recv_timeout_millis_ = other.recv_timeout_millis_;
    other.fd_ = -1;
  }
  return *this;
}

Result<ServeClient> ServeClient::Connect(const std::string& host, int port,
                                         ClientOptions options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::Internal("connect " + host + ":" + std::to_string(port) +
                            ": " + std::strerror(saved));
  }
  // Request/response lines are small; waiting for Nagle coalescing
  // only adds latency to the percentiles the bench measures.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ServeClient client;
  client.fd_ = fd;
  client.host_ = host;
  client.port_ = port;
  client.options_ = options;
  client.jitter_state_ = options.jitter_seed ^ 0x6a09e667f3bcc908ULL;
  return client;
}

Status ServeClient::Reconnect() {
  if (host_.empty()) return Status::Internal("never connected");
  Result<ServeClient> fresh = Connect(host_, port_, options_);
  if (!fresh.ok()) return fresh.status();
  // Keep the jitter stream running across reconnects so retry timing
  // stays deterministic from the seed, not from the failure pattern.
  uint64_t jitter = jitter_state_;
  int64_t recv_timeout = recv_timeout_millis_;
  *this = std::move(fresh).value();
  jitter_state_ = jitter;
  if (recv_timeout > 0) {
    RETURN_IF_ERROR(set_recv_timeout_millis(recv_timeout));
  }
  return Status();
}

Status ServeClient::set_recv_timeout_millis(int64_t millis) {
  if (fd_ < 0) return Status::Internal("not connected");
  timeval tv{};
  if (millis > 0) {
    tv.tv_sec = static_cast<time_t>(millis / 1000);
    tv.tv_usec = static_cast<suseconds_t>((millis % 1000) * 1000);
  }
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::Internal(std::string("setsockopt(SO_RCVTIMEO): ") +
                            std::strerror(errno));
  }
  recv_timeout_millis_ = millis > 0 ? millis : 0;
  return Status();
}

Result<std::string> ServeClient::CallWithRetry(
    const std::string& request_line) {
  Result<std::string> last = Status::Internal("no attempt made");
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      trace::Count("serve_client/retries");
      // Capped exponential backoff with full deterministic jitter:
      // sleep a uniform slice of the doubled window so a herd of
      // shed clients does not return in lockstep.
      int64_t window = options_.base_backoff_millis;
      for (int i = 1; i < attempt && window < options_.max_backoff_millis; ++i) {
        window *= 2;
      }
      if (window > options_.max_backoff_millis) {
        window = options_.max_backoff_millis;
      }
      if (window > 0) {
        int64_t sleep_millis = static_cast<int64_t>(
            NextJitter(&jitter_state_) % static_cast<uint64_t>(window) + 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_millis));
      }
    }
    if (fd_ < 0) {
      Status reconnected = Reconnect();
      if (!reconnected.ok()) {
        last = reconnected;
        continue;
      }
    }
    Status sent = SendLine(request_line);
    if (!sent.ok()) {
      last = sent;
      Close();  // transport is suspect; next attempt redials
      continue;
    }
    Result<std::string> response = ReadLine();
    if (!response.ok()) {
      last = std::move(response);
      Close();
      continue;
    }
    if (IsRetryableResponse(*response)) {
      last = std::move(response);  // server shed us; same conn is fine
      continue;
    }
    if (attempt > 0) trace::Count("serve_client/retry_recovered");
    return response;
  }
  trace::Count("serve_client/retry_exhausted");
  return last;
}

void ServeClient::Abort() {
  if (fd_ < 0) return;
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  Close();
}

Status ServeClient::SendLine(const std::string& line) {
  std::string framed = line;
  if (framed.empty() || framed.back() != '\n') framed.push_back('\n');
  return SendRaw(framed);
}

Status ServeClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::Internal("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status();
}

Result<std::string> ServeClient::ReadLine() {
  if (fd_ < 0) return Status::Internal("not connected");
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
          recv_timeout_millis_ > 0) {
        return Status::DeadlineExceeded(
            "no response within " + std::to_string(recv_timeout_millis_) +
            "ms");
      }
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (buffer_.empty()) return Status::NotFound("connection closed");
      std::string line = std::move(buffer_);
      buffer_.clear();
      return line;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

void ServeClient::FinishWriting() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace xmlverify
