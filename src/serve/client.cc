#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace xmlverify {

ServeClient::~ServeClient() { Close(); }

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Result<ServeClient> ServeClient::Connect(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::Internal("connect " + host + ":" + std::to_string(port) +
                            ": " + std::strerror(saved));
  }
  // Request/response lines are small; waiting for Nagle coalescing
  // only adds latency to the percentiles the bench measures.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ServeClient client;
  client.fd_ = fd;
  return client;
}

Status ServeClient::SendLine(const std::string& line) {
  if (fd_ < 0) return Status::Internal("not connected");
  std::string framed = line;
  if (framed.empty() || framed.back() != '\n') framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status();
}

Result<std::string> ServeClient::ReadLine() {
  if (fd_ < 0) return Status::Internal("not connected");
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (buffer_.empty()) return Status::NotFound("connection closed");
      std::string line = std::move(buffer_);
      buffer_.clear();
      return line;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

void ServeClient::FinishWriting() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace xmlverify
