// Durable snapshots of the VerdictCache's canonical tier, so a server
// restart starts warm instead of re-deriving every verdict from
// scratch (docs/serving.md, "Crash recovery").
//
// Only the canonical tier is persisted: its keys are parse→serialize
// fixed points that identify specifications exactly, while raw-tier
// keys are arbitrary client bytes that refill from canonical hits.
// Only definitive verdicts live in the cache, so a snapshot can never
// resurrect a budget-dependent UNKNOWN/DEADLINE/RESOURCE outcome.
//
// The on-disk format is line-framed and self-checking:
//
//   XVCSNAP1\n
//   R <outcome> <fingerprint> <len_canonical> <len_note> \
//     <len_witness> <len_core> <checksum>\n
//   <canonical bytes><note bytes><witness bytes><core bytes>\n
//   ... more R records ...
//
// `outcome` is 1 (CONSISTENT) or 2 (INCONSISTENT); `checksum` is a
// 64-bit FNV-1a over the header fields and payload bytes, hex-encoded.
// The loader is paranoid by design: a record whose header is
// malformed, whose checksum disagrees, whose payload is truncated, or
// whose fingerprint no longer matches FingerprintText(canonical)
// (a stale snapshot from an older canonicalizer) is skipped
// individually — the loader resyncs at the next "\nR " boundary and
// keeps going, so one flipped bit costs one entry, not the warm start.
//
// Writes go through a temp file in the same directory followed by an
// atomic rename(), so a crash mid-write leaves the previous snapshot
// intact. Fault points `cache_snapshot_write` (fails the write before
// the temp file exists) and `cache_snapshot_read` (drops individual
// records on load) make both paths drillable (docs/robustness.md).
#ifndef XMLVERIFY_SERVE_SNAPSHOT_H_
#define XMLVERIFY_SERVE_SNAPSHOT_H_

#include <cstddef>
#include <string>

#include "base/status.h"
#include "serve/verdict_cache.h"

namespace xmlverify {

struct SnapshotWriteStats {
  size_t records_written = 0;
  size_t bytes_written = 0;
};

struct SnapshotLoadStats {
  /// Records accepted into the cache.
  size_t records_loaded = 0;
  /// Records rejected individually: corrupt header, bad checksum,
  /// truncated payload, stale fingerprint, invariant violation, or an
  /// injected `cache_snapshot_read` fault.
  size_t records_skipped = 0;
};

/// Serializes the canonical tier of `cache` to `path` via a temp file
/// and atomic rename. Returns an error (leaving any previous snapshot
/// untouched) on IO failure or an armed `cache_snapshot_write` fault.
Status WriteVerdictSnapshot(const VerdictCache& cache, const std::string& path,
                            SnapshotWriteStats* stats = nullptr);

/// Loads `path` into `cache` (first-writer-wins against concurrent
/// inserts). A missing file is a clean cold start: OK with zero
/// counts. A present-but-unreadable file or a foreign header is an
/// error; anything wrong below the header granularity skips records
/// individually and still returns OK.
Result<SnapshotLoadStats> LoadVerdictSnapshot(VerdictCache* cache,
                                              const std::string& path);

}  // namespace xmlverify

#endif  // XMLVERIFY_SERVE_SNAPSHOT_H_
