// A small blocking line client for the serve protocol, shared by the
// load-generator bench, the serve tests, and ad-hoc drivers. One
// client wraps one TCP connection; SendLine/ReadLine frame on '\n'.
// Not thread-safe: give each concurrent client its own instance (the
// server handles any number of connections).
//
// The server sheds load with RETRYABLE error responses (queue full,
// connection cap) and may drop a connection outright (restart, fault
// injection). CallWithRetry owns the client half of that contract:
// capped exponential backoff with deterministic jitter, reconnecting
// when the transport itself failed. Retries are bounded and off by
// default (ClientOptions::max_retries = 0 preserves the old
// single-shot behavior).
#ifndef XMLVERIFY_SERVE_CLIENT_H_
#define XMLVERIFY_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "base/status.h"

namespace xmlverify {

struct ClientOptions {
  /// Additional attempts after the first (0: single-shot).
  int max_retries = 0;
  /// First backoff; each retry doubles it up to max_backoff_millis.
  int64_t base_backoff_millis = 10;
  int64_t max_backoff_millis = 1000;
  /// Seed for the deterministic jitter stream (so a fleet of bench
  /// clients seeded differently desynchronizes, while a test seeded
  /// identically reproduces byte-for-byte).
  uint64_t jitter_seed = 0;
};

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects to `host`:`port` (IPv4 dotted quad, e.g. "127.0.0.1").
  static Result<ServeClient> Connect(const std::string& host, int port,
                                     ClientOptions options = ClientOptions());

  /// Writes `line`, appending the terminating '\n' if missing.
  Status SendLine(const std::string& line);

  /// Writes `bytes` exactly as given — no newline framing. For tests
  /// and the chaos harness, which need to leave a request half-sent.
  Status SendRaw(const std::string& bytes);

  /// Blocks until one full line arrives; the '\n' is stripped.
  /// kNotFound on clean EOF before any byte of a new line,
  /// kDeadlineExceeded when a recv timeout (set_recv_timeout_millis)
  /// elapsed first.
  Result<std::string> ReadLine();

  /// One request/response exchange with the retry policy applied:
  /// a transport failure (send/recv error, clean close before the
  /// response) reconnects and retries; a RETRYABLE error response
  /// backs off and retries on the same connection. Returns the final
  /// response line (which may still be a RETRYABLE error once the
  /// budget is exhausted) or the final transport error. Counters:
  /// serve_client/retries, serve_client/retry_recovered,
  /// serve_client/retry_exhausted.
  Result<std::string> CallWithRetry(const std::string& request_line);

  /// Drops the current connection (if any) and dials the remembered
  /// host:port again.
  Status Reconnect();

  /// Half-closes the write side (the server sees EOF and finishes
  /// pending responses before closing).
  void FinishWriting();

  /// Hard abort: arranges an immediate RST (SO_LINGER 0) and closes.
  /// The server-visible effect is a recv error, not a clean EOF —
  /// this is how tests and the chaos harness simulate a client that
  /// died mid-request.
  void Abort();

  /// Bounds every subsequent ReadLine recv; <= 0 restores blocking.
  Status set_recv_timeout_millis(int64_t millis);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
  std::string host_;
  int port_ = 0;
  ClientOptions options_;
  uint64_t jitter_state_ = 0;
  int64_t recv_timeout_millis_ = 0;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_SERVE_CLIENT_H_
