// A small blocking line client for the serve protocol, shared by the
// load-generator bench, the serve tests, and ad-hoc drivers. One
// client wraps one TCP connection; SendLine/ReadLine frame on '\n'.
// Not thread-safe: give each concurrent client its own instance (the
// server handles any number of connections).
#ifndef XMLVERIFY_SERVE_CLIENT_H_
#define XMLVERIFY_SERVE_CLIENT_H_

#include <string>

#include "base/status.h"

namespace xmlverify {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects to `host`:`port` (IPv4 dotted quad, e.g. "127.0.0.1").
  static Result<ServeClient> Connect(const std::string& host, int port);

  /// Writes `line`, appending the terminating '\n' if missing.
  Status SendLine(const std::string& line);

  /// Blocks until one full line arrives; the '\n' is stripped.
  /// kNotFound on clean EOF before any byte of a new line.
  Result<std::string> ReadLine();

  /// Half-closes the write side (the server sees EOF and finishes
  /// pending responses before closing).
  void FinishWriting();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
};

}  // namespace xmlverify

#endif  // XMLVERIFY_SERVE_CLIENT_H_
