#include "serve/protocol.h"

#include <cctype>
#include <cstdlib>
#include <utility>
#include <vector>

#include "trace/trace.h"

namespace xmlverify {

namespace {

// A minimal strict JSON reader, sufficient for the flat request
// objects of the wire protocol. Values nest (the grammar is full
// JSON) but requests only ever use strings, numbers, and booleans at
// the top level; depth is capped so adversarial nesting cannot
// overflow the stack.
constexpr int kMaxJsonDepth = 32;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON, byte " + std::to_string(pos_) +
                                   ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxJsonDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char head = text_[pos_];
    if (head == '{') return ParseObject(depth);
    if (head == '[') return ParseArray(depth);
    if (head == '"') return ParseString();
    if (head == 't' || head == 'f') return ParseBool();
    if (head == 'n') return ParseNull();
    if (head == '-' || (head >= '0' && head <= '9')) return ParseNumber();
    return Error(std::string("unexpected character '") + head + "'");
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return value;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a quoted object key");
      }
      ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      ASSIGN_OR_RETURN(JsonValue member, ParseValue(depth + 1));
      for (const auto& [existing, unused] : value.object) {
        if (existing == key.string) {
          return Error("duplicate key \"" + key.string + "\"");
        }
      }
      value.object.emplace_back(std::move(key.string), std::move(member));
      SkipWhitespace();
      if (Consume('}')) return value;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return value;
    while (true) {
      ASSIGN_OR_RETURN(JsonValue element, ParseValue(depth + 1));
      value.array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return value;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    ++pos_;  // '"'
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char ch = text_[pos_++];
      if (ch == '"') return value;
      if (static_cast<unsigned char>(ch) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (ch != '\\') {
        value.string.push_back(ch);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char escape = text_[pos_++];
      switch (escape) {
        case '"': value.string.push_back('"'); break;
        case '\\': value.string.push_back('\\'); break;
        case '/': value.string.push_back('/'); break;
        case 'b': value.string.push_back('\b'); break;
        case 'f': value.string.push_back('\f'); break;
        case 'n': value.string.push_back('\n'); break;
        case 'r': value.string.push_back('\r'); break;
        case 't': value.string.push_back('\t'); break;
        case 'u': {
          ASSIGN_OR_RETURN(uint32_t code, ParseHex4());
          // Surrogate pair: a high surrogate must be followed by an
          // escaped low surrogate; anything else is malformed.
          if (code >= 0xd800 && code <= 0xdbff) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired UTF-16 high surrogate");
            }
            pos_ += 2;
            ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low < 0xdc00 || low > 0xdfff) {
              return Error("invalid UTF-16 low surrogate");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            return Error("unpaired UTF-16 low surrogate");
          }
          AppendUtf8(code, &value.string);
          break;
        }
        default:
          return Error(std::string("invalid escape '\\") + escape + "'");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      char ch = text_[pos_++];
      code <<= 4;
      if (ch >= '0' && ch <= '9') code |= ch - '0';
      else if (ch >= 'a' && ch <= 'f') code |= ch - 'a' + 10;
      else if (ch >= 'A' && ch <= 'F') code |= ch - 'A' + 10;
      else return Error("non-hex digit in \\u escape");
    }
    return code;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
      return value;
    }
    return Error("expected 'true' or 'false'");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") != 0) return Error("expected 'null'");
    pos_ += 4;
    JsonValue value;
    value.kind = JsonValue::Kind::kNull;
    return value;
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {}
    if (!std::isdigit(static_cast<unsigned char>(
            pos_ < text_.size() ? text_[pos_] : '\0'))) {
      return Error("malformed number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("malformed number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("malformed number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::strtod(text_.c_str() + start, nullptr);
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Status FieldTypeError(const std::string& field, const char* expected) {
  return Status::InvalidArgument("field \"" + field + "\" must be " +
                                 expected);
}

}  // namespace

Result<ServeRequest> ParseServeRequest(const std::string& line) {
  JsonParser parser(line);
  Result<JsonValue> parsed = parser.Parse();
  if (!parsed.ok()) return parsed.status();
  if (parsed->kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  ServeRequest request;
  bool saw_id = false;
  bool saw_dtd = false;
  bool saw_constraints = false;
  for (const auto& [key, value] : parsed->object) {
    if (key == "id") {
      if (value.kind != JsonValue::Kind::kString) {
        return FieldTypeError(key, "a string");
      }
      request.id = value.string;
      saw_id = true;
    } else if (key == "spec") {
      if (value.kind != JsonValue::Kind::kString) {
        return FieldTypeError(key, "a string");
      }
      request.spec_text = value.string;
      request.has_spec = true;
    } else if (key == "dtd") {
      if (value.kind != JsonValue::Kind::kString) {
        return FieldTypeError(key, "a string");
      }
      request.dtd_text = value.string;
      request.has_pair = true;
      saw_dtd = true;
    } else if (key == "constraints") {
      if (value.kind != JsonValue::Kind::kString) {
        return FieldTypeError(key, "a string");
      }
      request.constraints_text = value.string;
      request.has_pair = true;
      saw_constraints = true;
    } else if (key == "timeout_ms") {
      if (value.kind != JsonValue::Kind::kNumber ||
          value.number != static_cast<int64_t>(value.number)) {
        return FieldTypeError(key, "an integer millisecond count");
      }
      request.timeout_millis = static_cast<int64_t>(value.number);
      if (request.timeout_millis < 0) {
        return Status::InvalidArgument("field \"timeout_ms\" must be >= 0");
      }
    } else if (key == "witness") {
      if (value.kind != JsonValue::Kind::kBool) {
        return FieldTypeError(key, "a boolean");
      }
      request.want_witness = value.boolean;
    } else if (key == "core") {
      if (value.kind != JsonValue::Kind::kBool) {
        return FieldTypeError(key, "a boolean");
      }
      request.want_core = value.boolean;
    } else {
      return Status::InvalidArgument("unknown field \"" + key + "\"");
    }
  }

  if (!saw_id || request.id.empty()) {
    return Status::InvalidArgument(
        "field \"id\" is required and must be a non-empty string");
  }
  if (request.has_spec && request.has_pair) {
    return Status::InvalidArgument(
        "give either \"spec\" or \"dtd\"+\"constraints\", not both");
  }
  if (!request.has_spec && !request.has_pair) {
    return Status::InvalidArgument(
        "one of \"spec\" or \"dtd\"+\"constraints\" is required");
  }
  if (request.has_pair && (!saw_dtd || !saw_constraints)) {
    return Status::InvalidArgument(
        "\"dtd\" and \"constraints\" must be given together");
  }
  return request;
}

std::string RecoverRequestId(const std::string& line) {
  // Even a line that failed strict parsing often carries a legible
  // `"id": "..."` member; a lenient scan for that one field lets the
  // error response keep the client's correlation id.
  JsonParser parser(line);
  Result<JsonValue> parsed = parser.Parse();
  if (parsed.ok() && parsed->kind == JsonValue::Kind::kObject) {
    for (const auto& [key, value] : parsed->object) {
      if (key == "id" && value.kind == JsonValue::Kind::kString) {
        return value.string;
      }
    }
    return "";
  }
  size_t key_at = line.find("\"id\"");
  if (key_at == std::string::npos) return "";
  size_t colon = line.find(':', key_at + 4);
  if (colon == std::string::npos) return "";
  size_t open = line.find('"', colon + 1);
  if (open == std::string::npos) return "";
  std::string id;
  for (size_t i = open + 1; i < line.size(); ++i) {
    if (line[i] == '\\') {
      ++i;  // lenient: take the escaped char literally
      if (i < line.size()) id.push_back(line[i]);
      continue;
    }
    if (line[i] == '"') return id;
    id.push_back(line[i]);
  }
  return "";
}

std::string FormatVerdictResponse(const std::string& id,
                                  ConsistencyOutcome outcome,
                                  const std::string& note,
                                  const std::string& fingerprint, bool cached,
                                  const std::string& witness_xml,
                                  bool include_witness,
                                  const std::string& core_text,
                                  bool include_core) {
  std::string line = "{\"id\":" + trace::JsonQuote(id) +
                     ",\"verdict\":" + trace::JsonQuote(OutcomeName(outcome)) +
                     ",\"cached\":" + (cached ? "true" : "false") +
                     ",\"fingerprint\":" + trace::JsonQuote(fingerprint);
  if (!note.empty()) line += ",\"note\":" + trace::JsonQuote(note);
  if (include_witness && !witness_xml.empty()) {
    line += ",\"witness\":" + trace::JsonQuote(witness_xml);
  }
  // Cores accompany INCONSISTENT verdicts only (the cache enforces
  // the same invariant on its side).
  if (include_core && !core_text.empty() &&
      outcome == ConsistencyOutcome::kInconsistent) {
    line += ",\"core\":" + trace::JsonQuote(core_text);
  }
  line += "}\n";
  return line;
}

std::string FormatErrorResponse(const std::string& id, const std::string& code,
                                const std::string& message, bool retryable) {
  return "{\"id\":" + trace::JsonQuote(id) +
         ",\"error\":" + trace::JsonQuote(code) +
         ",\"message\":" + trace::JsonQuote(message) +
         ",\"retryable\":" + (retryable ? "true" : "false") + "}\n";
}

}  // namespace xmlverify
