#include "serve/verdict_cache.h"

#include "trace/trace.h"

namespace xmlverify {

std::shared_ptr<const CachedVerdict> VerdictCache::LookupRaw(
    const std::string& raw_text) {
  auto found = raw_.Lookup(raw_text);
  if (found != nullptr) trace::Count("serve/cache_hits_raw");
  return found;
}

std::shared_ptr<const CachedVerdict> VerdictCache::LookupCanonical(
    const std::string& canonical_text, const std::string& raw_text) {
  auto found = canonical_.Lookup(canonical_text);
  if (found == nullptr) return nullptr;
  trace::Count("serve/cache_hits_canonical");
  // Back-fill the raw tier so the next byte-identical request skips
  // parse + canonicalize. SharedCache::Insert copies the entry; both
  // tiers stay independently evictable.
  if (!raw_text.empty() && raw_text != canonical_text) {
    raw_.Insert(raw_text, *found);
  }
  return found;
}

std::shared_ptr<const CachedVerdict> VerdictCache::Insert(
    const std::string& canonical_text, const std::string& raw_text,
    const std::string& fingerprint, ConsistencyOutcome outcome,
    const std::string& note, const std::string& witness_xml) {
  if (!Cacheable(outcome)) {
    trace::Count("serve/cache_uncacheable");
    return nullptr;
  }
  CachedVerdict entry;
  entry.outcome = outcome;
  entry.note = note;
  entry.witness_xml = outcome == ConsistencyOutcome::kConsistent
                          ? witness_xml
                          : std::string();
  entry.fingerprint = fingerprint;
  auto shared = canonical_.Insert(canonical_text, entry);
  if (!raw_text.empty() && raw_text != canonical_text) {
    raw_.Insert(raw_text, std::move(entry));
  }
  trace::Count("serve/cache_inserts");
  return shared;
}

std::shared_ptr<const CachedVerdict> VerdictCache::AttachCore(
    const std::string& canonical_text, const std::string& raw_text,
    const std::string& core_text) {
  auto existing = canonical_.Lookup(canonical_text);
  // Cores only make sense on (and are only ever attached to)
  // INCONSISTENT entries; anything else is refused here so a buggy
  // caller cannot break the CachedVerdict invariants.
  if (existing == nullptr ||
      existing->outcome != ConsistencyOutcome::kInconsistent) {
    return nullptr;
  }
  CachedVerdict enriched = *existing;
  enriched.core_text = core_text;
  auto shared = canonical_.Replace(canonical_text, enriched);
  if (!raw_text.empty() && raw_text != canonical_text) {
    raw_.Replace(raw_text, std::move(enriched));
  }
  trace::Count("serve/cache_core_attached");
  return shared;
}

std::vector<std::pair<std::string, CachedVerdict>>
VerdictCache::ExportCanonical() const {
  std::vector<std::pair<std::string, CachedVerdict>> entries;
  canonical_.ForEach([&entries](const std::string& key,
                                const CachedVerdict& value) {
    entries.emplace_back(key, value);
  });
  return entries;
}

bool VerdictCache::InsertLoaded(const std::string& canonical_text,
                                CachedVerdict entry) {
  if (canonical_text.empty() || !Cacheable(entry.outcome)) return false;
  if (entry.outcome != ConsistencyOutcome::kConsistent &&
      !entry.witness_xml.empty()) {
    return false;
  }
  if (entry.outcome != ConsistencyOutcome::kInconsistent &&
      !entry.core_text.empty()) {
    return false;
  }
  canonical_.Insert(canonical_text, std::move(entry));
  return true;
}

}  // namespace xmlverify
