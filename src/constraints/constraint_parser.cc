#include "constraints/constraint_parser.h"

#include <cctype>

#include "base/string_util.h"
#include "regex/automaton.h"

namespace xmlverify {

namespace {

// Finds the first occurrence of `token` at parenthesis/bracket depth
// zero, or npos.
size_t FindTopLevel(std::string_view text, std::string_view token) {
  int depth = 0;
  for (size_t i = 0; i + token.size() <= text.size(); ++i) {
    char c = text[i];
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (depth == 0 && text.substr(i, token.size()) == token) return i;
  }
  return std::string_view::npos;
}

// Finds the last '.' at depth zero, or npos.
size_t FindLastTopLevelDot(std::string_view text) {
  int depth = 0;
  size_t found = std::string_view::npos;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (depth == 0 && c == '.') found = i;
  }
  return found;
}

bool IsIdentifier(std::string_view text) {
  return IsValidName(text) && text.find('.') == std::string_view::npos;
}

// A "simple attribute term" is `type.attr` or `type[a,b,...]`.
struct AttributeTerm {
  std::string type;
  std::vector<std::string> attributes;
};

// Tries to read `text` as type.attr / type[attrs]; nullopt otherwise.
std::optional<AttributeTerm> ParseAttributeTerm(std::string_view text) {
  text = StripWhitespace(text);
  size_t bracket = text.find('[');
  if (bracket != std::string_view::npos) {
    if (text.back() != ']') return std::nullopt;
    std::string_view type = StripWhitespace(text.substr(0, bracket));
    if (!IsIdentifier(type)) return std::nullopt;
    std::vector<std::string> attributes = SplitAndTrim(
        text.substr(bracket + 1, text.size() - bracket - 2), ',');
    if (attributes.empty()) return std::nullopt;
    for (const std::string& attribute : attributes) {
      if (!IsIdentifier(attribute)) return std::nullopt;
    }
    return AttributeTerm{std::string(type), std::move(attributes)};
  }
  size_t dot = text.find('.');
  if (dot == std::string_view::npos) return std::nullopt;
  std::string_view type = StripWhitespace(text.substr(0, dot));
  std::string_view attribute = StripWhitespace(text.substr(dot + 1));
  if (!IsIdentifier(type) || !IsIdentifier(attribute)) return std::nullopt;
  return AttributeTerm{std::string(type), {std::string(attribute)}};
}

// True if `term` resolves to a declared type carrying all attributes.
bool ResolvesAbsolutely(const AttributeTerm& term, const Dtd& dtd) {
  int type = dtd.FindType(term.type);
  if (type < 0) return false;
  for (const std::string& attribute : term.attributes) {
    if (!dtd.HasAttribute(type, attribute)) return false;
  }
  return true;
}

struct RegularTerm {
  Regex node_path;  // beta.tau
  int final_type;
  std::string attribute;
};

// Parses `beta.tau.l`: strips the attribute, parses the node path,
// and extracts the final element type.
Result<RegularTerm> ParseRegularTerm(std::string_view text, const Dtd& dtd) {
  text = StripWhitespace(text);
  size_t last_dot = FindLastTopLevelDot(text);
  if (last_dot == std::string_view::npos) {
    return Status::InvalidArgument("regular term '" + std::string(text) +
                                   "' has no attribute component");
  }
  std::string_view attribute = StripWhitespace(text.substr(last_dot + 1));
  if (!IsIdentifier(attribute)) {
    return Status::InvalidArgument("regular term '" + std::string(text) +
                                   "' must end in '.attribute'");
  }
  std::string_view path_text = text.substr(0, last_dot);
  size_t type_dot = FindLastTopLevelDot(path_text);
  std::string_view type_name = StripWhitespace(
      type_dot == std::string_view::npos ? path_text
                                         : path_text.substr(type_dot + 1));
  if (!IsIdentifier(type_name)) {
    return Status::InvalidArgument(
        "regular path '" + std::string(path_text) +
        "' must end in a single element type (beta.tau form)");
  }
  ASSIGN_OR_RETURN(int final_type, dtd.TypeId(std::string(type_name)));
  auto resolve = [&dtd](const std::string& name) { return dtd.FindType(name); };
  ASSIGN_OR_RETURN(Regex node_path,
                   ParseRegex(std::string(path_text), resolve));
  return RegularTerm{std::move(node_path), final_type, std::string(attribute)};
}

// Non-root element types, for wildcard expansion (`_` = E \ {r}).
std::vector<int> NonRootTypes(const Dtd& dtd) {
  std::vector<int> symbols;
  for (int type = 0; type < dtd.num_element_types(); ++type) {
    if (type != dtd.root()) symbols.push_back(type);
  }
  return symbols;
}

Dfa PathDfa(const Regex& path, const Dtd& dtd) {
  Regex expanded = ExpandWildcard(path, NonRootTypes(dtd));
  return CachedDeterminize(expanded, dtd.num_element_types());
}

Status ParseRelative(std::string_view context_name, std::string_view body,
                     bool foreign_key, const Dtd& dtd, ConstraintSet* set) {
  ASSIGN_OR_RETURN(int context, dtd.TypeId(std::string(context_name)));
  size_t arrow = FindTopLevel(body, "->");
  size_t subset = FindTopLevel(body, "<=");
  if (arrow != std::string_view::npos) {
    std::optional<AttributeTerm> lhs =
        ParseAttributeTerm(body.substr(0, arrow));
    std::string_view rhs = StripWhitespace(body.substr(arrow + 2));
    if (!lhs.has_value() || lhs->attributes.size() != 1) {
      return Status::InvalidArgument(
          "relative key must have the form ctx(tau.l -> tau)");
    }
    if (rhs != lhs->type) {
      return Status::InvalidArgument("relative key sides disagree: '" +
                                     lhs->type + "' vs '" + std::string(rhs) +
                                     "'");
    }
    ASSIGN_OR_RETURN(int type, dtd.TypeId(lhs->type));
    set->Add(RelativeKey{context, type, lhs->attributes[0]});
    return Status::OK();
  }
  if (subset != std::string_view::npos) {
    std::optional<AttributeTerm> lhs =
        ParseAttributeTerm(body.substr(0, subset));
    std::optional<AttributeTerm> rhs =
        ParseAttributeTerm(body.substr(subset + 2));
    if (!lhs.has_value() || !rhs.has_value() || lhs->attributes.size() != 1 ||
        rhs->attributes.size() != 1) {
      return Status::InvalidArgument(
          "relative inclusion must have the form ctx(t1.l1 <= t2.l2)");
    }
    ASSIGN_OR_RETURN(int child, dtd.TypeId(lhs->type));
    ASSIGN_OR_RETURN(int parent, dtd.TypeId(rhs->type));
    RelativeInclusion inclusion{context, child, lhs->attributes[0], parent,
                                rhs->attributes[0]};
    if (foreign_key) {
      set->AddForeignKey(std::move(inclusion));
    } else {
      set->Add(std::move(inclusion));
    }
    return Status::OK();
  }
  return Status::InvalidArgument("relative constraint body '" +
                                 std::string(body) +
                                 "' contains neither '->' nor '<='");
}

Status ParseKey(std::string_view lhs, std::string_view rhs, const Dtd& dtd,
                ConstraintSet* set) {
  rhs = StripWhitespace(rhs);
  std::optional<AttributeTerm> term = ParseAttributeTerm(lhs);
  if (term.has_value() && IsIdentifier(rhs) && term->type == rhs) {
    // Absolute key tau[X] -> tau.
    ASSIGN_OR_RETURN(int type, dtd.TypeId(term->type));
    set->Add(AbsoluteKey{type, std::move(term->attributes)});
    return Status::OK();
  }
  // Regular key beta.tau.l -> beta.tau.
  ASSIGN_OR_RETURN(RegularTerm regular, ParseRegularTerm(lhs, dtd));
  auto resolve = [&dtd](const std::string& name) { return dtd.FindType(name); };
  ASSIGN_OR_RETURN(Regex rhs_path, ParseRegex(std::string(rhs), resolve));
  Dfa lhs_dfa = PathDfa(regular.node_path, dtd);
  Dfa rhs_dfa = PathDfa(rhs_path, dtd);
  if (!lhs_dfa.ContainedIn(rhs_dfa) || !rhs_dfa.ContainedIn(lhs_dfa)) {
    return Status::InvalidArgument(
        "regular key sides denote different node sets: '" + std::string(lhs) +
        " -> " + std::string(rhs) + "'");
  }
  set->Add(RegularKey{std::move(regular.node_path), regular.final_type,
                      std::move(regular.attribute)});
  return Status::OK();
}

Status ParseInclusion(std::string_view lhs, std::string_view rhs,
                      bool foreign_key, const Dtd& dtd, ConstraintSet* set) {
  std::optional<AttributeTerm> lhs_term = ParseAttributeTerm(lhs);
  std::optional<AttributeTerm> rhs_term = ParseAttributeTerm(rhs);
  if (lhs_term.has_value() && rhs_term.has_value() &&
      ResolvesAbsolutely(*lhs_term, dtd) && ResolvesAbsolutely(*rhs_term, dtd)) {
    if (lhs_term->attributes.size() != rhs_term->attributes.size()) {
      return Status::InvalidArgument("inclusion arity mismatch: '" +
                                     std::string(lhs) + " <= " +
                                     std::string(rhs) + "'");
    }
    ASSIGN_OR_RETURN(int child, dtd.TypeId(lhs_term->type));
    ASSIGN_OR_RETURN(int parent, dtd.TypeId(rhs_term->type));
    AbsoluteInclusion inclusion{child, std::move(lhs_term->attributes), parent,
                                std::move(rhs_term->attributes)};
    if (foreign_key) {
      set->AddForeignKey(std::move(inclusion));
    } else {
      set->Add(std::move(inclusion));
    }
    return Status::OK();
  }
  // Regular inclusion.
  ASSIGN_OR_RETURN(RegularTerm lhs_reg, ParseRegularTerm(lhs, dtd));
  ASSIGN_OR_RETURN(RegularTerm rhs_reg, ParseRegularTerm(rhs, dtd));
  RegularInclusion inclusion{std::move(lhs_reg.node_path), lhs_reg.final_type,
                             std::move(lhs_reg.attribute),
                             std::move(rhs_reg.node_path), rhs_reg.final_type,
                             std::move(rhs_reg.attribute)};
  if (foreign_key) {
    set->AddForeignKey(std::move(inclusion));
  } else {
    set->Add(std::move(inclusion));
  }
  return Status::OK();
}

}  // namespace

Status ParseConstraintLine(const std::string& raw_line, const Dtd& dtd,
                           ConstraintSet* set) {
  std::string_view line = StripWhitespace(raw_line);
  bool foreign_key = false;
  if (StartsWith(line, "fk ")) {
    foreign_key = true;
    line = StripWhitespace(line.substr(3));
  }

  // Relative form: ident( ... ) spanning the whole line.
  if (!line.empty() && line.back() == ')') {
    size_t open = line.find('(');
    if (open != std::string_view::npos) {
      std::string_view head = StripWhitespace(line.substr(0, open));
      if (IsIdentifier(head)) {
        return ParseRelative(head, line.substr(open + 1, line.size() - open - 2),
                             foreign_key, dtd, set);
      }
    }
  }

  size_t arrow = FindTopLevel(line, "->");
  size_t subset = FindTopLevel(line, "<=");
  if (arrow != std::string_view::npos &&
      (subset == std::string_view::npos || arrow < subset)) {
    if (foreign_key) {
      return Status::InvalidArgument(
          "'fk' applies to inclusions; keys are written without it: '" +
          std::string(line) + "'");
    }
    return ParseKey(StripWhitespace(line.substr(0, arrow)),
                    StripWhitespace(line.substr(arrow + 2)), dtd, set);
  }
  if (subset != std::string_view::npos) {
    return ParseInclusion(StripWhitespace(line.substr(0, subset)),
                          StripWhitespace(line.substr(subset + 2)),
                          foreign_key, dtd, set);
  }
  return Status::InvalidArgument("constraint line '" + std::string(line) +
                                 "' contains neither '->' nor '<='");
}

Result<ConstraintSet> ParseConstraints(const std::string& text,
                                       const Dtd& dtd) {
  ConstraintSet set;
  size_t start = 0;
  int line_number = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    size_t comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    if (StripWhitespace(line).empty()) continue;
    Status status = ParseConstraintLine(line, dtd, &set);
    if (!status.ok()) {
      return Status(status.code(), "line " + std::to_string(line_number) +
                                       ": " + status.message());
    }
    if (start > text.size()) break;
  }
  RETURN_IF_ERROR(set.Validate(dtd));
  return set;
}

}  // namespace xmlverify
