// Textual constraint syntax, one constraint per line:
//
//   country.name -> country                      absolute unary key
//   person[first,last] -> person                 absolute multi-attr key
//   takenBy.sid <= record.id                     absolute inclusion
//   fk takenBy.sid <= record.id                  foreign key (adds the
//                                                RHS key as well)
//   country(province.name -> province)           relative key
//   country(capital.inProvince <= province.name) relative inclusion
//   fk country(capital.inProvince <= province.name)
//   r._*.record.id -> r._*.record                regular key
//   r._*.cs434.takenBy.sid <= r._*.student.record.id
//
// '#' starts a comment. For keys, the right-hand side must denote the
// same node set as the left-hand side minus its attribute; for regular
// keys this is verified by automata language equivalence.
#ifndef XMLVERIFY_CONSTRAINTS_CONSTRAINT_PARSER_H_
#define XMLVERIFY_CONSTRAINTS_CONSTRAINT_PARSER_H_

#include <string>

#include "base/status.h"
#include "constraints/constraint.h"
#include "xml/dtd.h"

namespace xmlverify {

/// Parses a multi-line constraint listing against `dtd`. The result
/// is validated (types and attributes must exist).
Result<ConstraintSet> ParseConstraints(const std::string& text,
                                       const Dtd& dtd);

/// Parses a single constraint line and appends it to `set`.
Status ParseConstraintLine(const std::string& line, const Dtd& dtd,
                           ConstraintSet* set);

}  // namespace xmlverify

#endif  // XMLVERIFY_CONSTRAINTS_CONSTRAINT_PARSER_H_
