// XML integrity constraints: keys and inclusion constraints, in the
// paper's three flavours.
//
//   Absolute (Section 2):  tau[X] -> tau          (key)
//                          tau1[X] ⊆ tau2[Y]      (inclusion)
//   Regular  (Section 3.2): beta.tau.l -> beta.tau (unary only)
//                           beta1.tau1.l1 ⊆ beta2.tau2.l2
//   Relative (Section 4):  ctx(tau.l -> tau)      (unary only)
//                          ctx(tau1.l1 ⊆ tau2.l2)
//
// A foreign key in the paper is an inclusion paired with a key on its
// right-hand side; this library keeps the two primitive forms and
// offers AddForeignKey convenience methods that add both.
#ifndef XMLVERIFY_CONSTRAINTS_CONSTRAINT_H_
#define XMLVERIFY_CONSTRAINTS_CONSTRAINT_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "regex/regex.h"
#include "xml/dtd.h"

namespace xmlverify {

/// tau[X] -> tau : the X-attribute tuple identifies tau elements
/// document-wide. Unary when X has one attribute.
struct AbsoluteKey {
  int type;
  std::vector<std::string> attributes;

  bool IsUnary() const { return attributes.size() == 1; }
  std::string ToString(const Dtd& dtd) const;
};

/// tau1[X] ⊆ tau2[Y] : every X-tuple of a tau1 element equals the
/// Y-tuple of some tau2 element.
struct AbsoluteInclusion {
  int child_type;
  std::vector<std::string> child_attributes;
  int parent_type;
  std::vector<std::string> parent_attributes;

  bool IsUnary() const { return child_attributes.size() == 1; }
  std::string ToString(const Dtd& dtd) const;
};

/// beta.tau.l -> beta.tau : l identifies elements among
/// nodes(beta.tau), the tau nodes reached from the root along beta.tau.
/// `node_path` is the full expression beta.tau (ending in tau).
struct RegularKey {
  Regex node_path;
  int type;
  std::string attribute;

  std::string ToString(const Dtd& dtd) const;
};

/// beta1.tau1.l1 ⊆ beta2.tau2.l2.
struct RegularInclusion {
  Regex child_path;
  int child_type;
  std::string child_attribute;
  Regex parent_path;
  int parent_type;
  std::string parent_attribute;

  std::string ToString(const Dtd& dtd) const;
};

/// ctx(tau.l -> tau) : below every ctx element, l identifies the tau
/// descendants of that element.
struct RelativeKey {
  int context;
  int type;
  std::string attribute;

  std::string ToString(const Dtd& dtd) const;
};

/// ctx(tau1.l1 ⊆ tau2.l2) : below every ctx element, each tau1
/// descendant's l1 value appears as the l2 value of some tau2
/// descendant of the same ctx element.
struct RelativeInclusion {
  int context;
  int child_type;
  std::string child_attribute;
  int parent_type;
  std::string parent_attribute;

  std::string ToString(const Dtd& dtd) const;
};

/// A set of constraints over one DTD. Types are symbol ids of that
/// DTD; Validate() checks the referential well-formedness.
class ConstraintSet {
 public:
  void Add(AbsoluteKey key) { absolute_keys_.push_back(std::move(key)); }
  void Add(AbsoluteInclusion inc) {
    absolute_inclusions_.push_back(std::move(inc));
  }
  void Add(RegularKey key) { regular_keys_.push_back(std::move(key)); }
  void Add(RegularInclusion inc) {
    regular_inclusions_.push_back(std::move(inc));
  }
  void Add(RelativeKey key) { relative_keys_.push_back(std::move(key)); }
  void Add(RelativeInclusion inc) {
    relative_inclusions_.push_back(std::move(inc));
  }

  /// The paper's foreign key: inclusion plus key on the referenced
  /// side. The key is added only if not already present.
  void AddForeignKey(AbsoluteInclusion inclusion);
  void AddForeignKey(RegularInclusion inclusion);
  void AddForeignKey(RelativeInclusion inclusion);

  const std::vector<AbsoluteKey>& absolute_keys() const {
    return absolute_keys_;
  }
  const std::vector<AbsoluteInclusion>& absolute_inclusions() const {
    return absolute_inclusions_;
  }
  const std::vector<RegularKey>& regular_keys() const {
    return regular_keys_;
  }
  const std::vector<RegularInclusion>& regular_inclusions() const {
    return regular_inclusions_;
  }
  const std::vector<RelativeKey>& relative_keys() const {
    return relative_keys_;
  }
  const std::vector<RelativeInclusion>& relative_inclusions() const {
    return relative_inclusions_;
  }

  bool empty() const;
  /// Total number of constraints (a foreign key counts its two parts).
  int size() const;

  bool HasRegular() const {
    return !regular_keys_.empty() || !regular_inclusions_.empty();
  }
  bool HasRelative() const {
    return !relative_keys_.empty() || !relative_inclusions_.empty();
  }
  bool HasAbsolute() const {
    return !absolute_keys_.empty() || !absolute_inclusions_.empty();
  }
  bool HasInclusions() const {
    return !absolute_inclusions_.empty() || !regular_inclusions_.empty() ||
           !relative_inclusions_.empty();
  }

  /// True if every absolute constraint is single-attribute
  /// (AC_{K,FK}; regular/relative constraints are unary by syntax).
  bool AllAbsoluteUnary() const;
  /// True if every absolute inclusion is unary (keys may be
  /// multi-attribute): the AC^{*,1} shape of Section 3.1.
  bool AbsoluteInclusionsUnary() const;
  /// Primary-key restriction: at most one absolute key per element
  /// type (AC_{PK,...}).
  bool AbsoluteKeysPrimary() const;
  /// Disjointness (Corollary 3.3): keys on the same type use
  /// pairwise-disjoint attribute sets.
  bool AbsoluteKeysDisjoint() const;

  /// Checks that types exist, attributes belong to R(tau), and
  /// inclusion arities match.
  Status Validate(const Dtd& dtd) const;

  std::string ToString(const Dtd& dtd) const;

 private:
  std::vector<AbsoluteKey> absolute_keys_;
  std::vector<AbsoluteInclusion> absolute_inclusions_;
  std::vector<RegularKey> regular_keys_;
  std::vector<RegularInclusion> regular_inclusions_;
  std::vector<RelativeKey> relative_keys_;
  std::vector<RelativeInclusion> relative_inclusions_;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_CONSTRAINTS_CONSTRAINT_H_
