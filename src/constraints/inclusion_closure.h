// Implication closure for unary inclusion dependencies *without* the
// DTD — the classical Cosmadakis–Kanellakis–Vardi setting the paper
// cites as [12] when motivating Theorem 3.1 ("the implication problem
// is decidable in cubic time for single-attribute inclusion
// dependencies").
//
// Unary inclusions alone are implied exactly by reflexivity and
// transitivity, so the closure is the transitive closure of the
// inclusion graph over (type, attribute) nodes. This is the cheap,
// DTD-free pre-pass: anything implied here is implied under every
// DTD, and the full DTD-aware check (core/implication.h) only needs
// to run for candidates this pass cannot settle.
#ifndef XMLVERIFY_CONSTRAINTS_INCLUSION_CLOSURE_H_
#define XMLVERIFY_CONSTRAINTS_INCLUSION_CLOSURE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "constraints/constraint.h"
#include "xml/dtd.h"

namespace xmlverify {

class InclusionClosure {
 public:
  /// Builds the transitive closure of the unary absolute inclusions
  /// in `constraints` (others are ignored).
  explicit InclusionClosure(const ConstraintSet& constraints);

  /// Is tau1.l1 <= tau2.l2 derivable by reflexivity + transitivity?
  bool Implies(int child_type, const std::string& child_attribute,
               int parent_type, const std::string& parent_attribute) const;

  /// All nontrivial derivable inclusions, in a stable order. Useful
  /// for surfacing redundant constraints in a specification.
  std::vector<AbsoluteInclusion> DerivedInclusions() const;

  /// Inclusions of the input set that are implied by the others
  /// (redundant and removable without changing the constrained
  /// documents).
  std::vector<AbsoluteInclusion> RedundantInclusions(
      const ConstraintSet& constraints) const;

 private:
  using Node = std::pair<int, std::string>;

  int NodeIndex(const Node& node) const;

  std::map<Node, int> index_;
  std::vector<Node> nodes_;
  // reaches_[a][b]: a's value set is included in b's.
  std::vector<std::vector<bool>> reaches_;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_CONSTRAINTS_INCLUSION_CLOSURE_H_
