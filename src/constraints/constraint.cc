#include "constraints/constraint.h"

#include <algorithm>
#include <set>

#include "base/string_util.h"

namespace xmlverify {

namespace {

std::string AttrList(const std::vector<std::string>& attributes) {
  if (attributes.size() == 1) return "." + attributes[0];
  return "[" + Join(attributes, ",") + "]";
}

std::string PathString(const Regex& path, const Dtd& dtd) {
  return path.ToString([&dtd](int symbol) { return dtd.SymbolName(symbol); });
}

Status CheckTypeAttribute(const Dtd& dtd, int type,
                          const std::string& attribute,
                          const std::string& what) {
  if (type < 0 || type >= dtd.num_element_types()) {
    return Status::InvalidArgument(what + ": bad element type id " +
                                   std::to_string(type));
  }
  if (!dtd.HasAttribute(type, attribute)) {
    return Status::InvalidArgument(
        what + ": attribute '" + attribute + "' is not in R(" +
        dtd.TypeName(type) + ")");
  }
  return Status::OK();
}

}  // namespace

std::string AbsoluteKey::ToString(const Dtd& dtd) const {
  return dtd.TypeName(type) + AttrList(attributes) + " -> " +
         dtd.TypeName(type);
}

std::string AbsoluteInclusion::ToString(const Dtd& dtd) const {
  return dtd.TypeName(child_type) + AttrList(child_attributes) + " <= " +
         dtd.TypeName(parent_type) + AttrList(parent_attributes);
}

std::string RegularKey::ToString(const Dtd& dtd) const {
  std::string path = PathString(node_path, dtd);
  return path + "." + attribute + " -> " + path;
}

std::string RegularInclusion::ToString(const Dtd& dtd) const {
  return PathString(child_path, dtd) + "." + child_attribute + " <= " +
         PathString(parent_path, dtd) + "." + parent_attribute;
}

std::string RelativeKey::ToString(const Dtd& dtd) const {
  return dtd.TypeName(context) + "(" + dtd.TypeName(type) + "." + attribute +
         " -> " + dtd.TypeName(type) + ")";
}

std::string RelativeInclusion::ToString(const Dtd& dtd) const {
  return dtd.TypeName(context) + "(" + dtd.TypeName(child_type) + "." +
         child_attribute + " <= " + dtd.TypeName(parent_type) + "." +
         parent_attribute + ")";
}

void ConstraintSet::AddForeignKey(AbsoluteInclusion inclusion) {
  for (const AbsoluteKey& key : absolute_keys_) {
    if (key.type == inclusion.parent_type &&
        key.attributes == inclusion.parent_attributes) {
      Add(std::move(inclusion));
      return;
    }
  }
  Add(AbsoluteKey{inclusion.parent_type, inclusion.parent_attributes});
  Add(std::move(inclusion));
}

void ConstraintSet::AddForeignKey(RegularInclusion inclusion) {
  // Regex equality is not checked here (it is semantic); the key is
  // added unconditionally and duplicate keys are harmless.
  Add(RegularKey{inclusion.parent_path, inclusion.parent_type,
                 inclusion.parent_attribute});
  Add(std::move(inclusion));
}

void ConstraintSet::AddForeignKey(RelativeInclusion inclusion) {
  for (const RelativeKey& key : relative_keys_) {
    if (key.context == inclusion.context &&
        key.type == inclusion.parent_type &&
        key.attribute == inclusion.parent_attribute) {
      Add(std::move(inclusion));
      return;
    }
  }
  Add(RelativeKey{inclusion.context, inclusion.parent_type,
                  inclusion.parent_attribute});
  Add(std::move(inclusion));
}

bool ConstraintSet::empty() const { return size() == 0; }

int ConstraintSet::size() const {
  return static_cast<int>(absolute_keys_.size() + absolute_inclusions_.size() +
                          regular_keys_.size() + regular_inclusions_.size() +
                          relative_keys_.size() + relative_inclusions_.size());
}

bool ConstraintSet::AllAbsoluteUnary() const {
  for (const AbsoluteKey& key : absolute_keys_) {
    if (!key.IsUnary()) return false;
  }
  for (const AbsoluteInclusion& inclusion : absolute_inclusions_) {
    if (!inclusion.IsUnary()) return false;
  }
  return true;
}

bool ConstraintSet::AbsoluteInclusionsUnary() const {
  for (const AbsoluteInclusion& inclusion : absolute_inclusions_) {
    if (!inclusion.IsUnary()) return false;
  }
  return true;
}

bool ConstraintSet::AbsoluteKeysPrimary() const {
  std::set<int> keyed;
  for (const AbsoluteKey& key : absolute_keys_) {
    if (!keyed.insert(key.type).second) return false;
  }
  return true;
}

bool ConstraintSet::AbsoluteKeysDisjoint() const {
  for (size_t i = 0; i < absolute_keys_.size(); ++i) {
    for (size_t j = i + 1; j < absolute_keys_.size(); ++j) {
      if (absolute_keys_[i].type != absolute_keys_[j].type) continue;
      // Exact duplicates state the same constraint and are harmless.
      if (absolute_keys_[i].attributes == absolute_keys_[j].attributes) {
        continue;
      }
      for (const std::string& attribute : absolute_keys_[i].attributes) {
        const std::vector<std::string>& other = absolute_keys_[j].attributes;
        if (std::find(other.begin(), other.end(), attribute) != other.end()) {
          return false;
        }
      }
    }
  }
  return true;
}

Status ConstraintSet::Validate(const Dtd& dtd) const {
  for (const AbsoluteKey& key : absolute_keys_) {
    if (key.attributes.empty()) {
      return Status::InvalidArgument("key with empty attribute set");
    }
    std::set<std::string> unique(key.attributes.begin(), key.attributes.end());
    if (unique.size() != key.attributes.size()) {
      return Status::InvalidArgument("key with repeated attribute: " +
                                     key.ToString(dtd));
    }
    for (const std::string& attribute : key.attributes) {
      RETURN_IF_ERROR(
          CheckTypeAttribute(dtd, key.type, attribute, key.ToString(dtd)));
    }
  }
  for (const AbsoluteInclusion& inclusion : absolute_inclusions_) {
    if (inclusion.child_attributes.empty() ||
        inclusion.child_attributes.size() !=
            inclusion.parent_attributes.size()) {
      return Status::InvalidArgument("inclusion arity mismatch: " +
                                     inclusion.ToString(dtd));
    }
    for (const std::string& attribute : inclusion.child_attributes) {
      RETURN_IF_ERROR(CheckTypeAttribute(dtd, inclusion.child_type, attribute,
                                         inclusion.ToString(dtd)));
    }
    for (const std::string& attribute : inclusion.parent_attributes) {
      RETURN_IF_ERROR(CheckTypeAttribute(dtd, inclusion.parent_type, attribute,
                                         inclusion.ToString(dtd)));
    }
  }
  for (const RegularKey& key : regular_keys_) {
    RETURN_IF_ERROR(
        CheckTypeAttribute(dtd, key.type, key.attribute, key.ToString(dtd)));
  }
  for (const RegularInclusion& inclusion : regular_inclusions_) {
    RETURN_IF_ERROR(CheckTypeAttribute(dtd, inclusion.child_type,
                                       inclusion.child_attribute,
                                       inclusion.ToString(dtd)));
    RETURN_IF_ERROR(CheckTypeAttribute(dtd, inclusion.parent_type,
                                       inclusion.parent_attribute,
                                       inclusion.ToString(dtd)));
  }
  for (const RelativeKey& key : relative_keys_) {
    if (key.context < 0 || key.context >= dtd.num_element_types()) {
      return Status::InvalidArgument("bad context type in relative key");
    }
    RETURN_IF_ERROR(
        CheckTypeAttribute(dtd, key.type, key.attribute, key.ToString(dtd)));
  }
  for (const RelativeInclusion& inclusion : relative_inclusions_) {
    if (inclusion.context < 0 ||
        inclusion.context >= dtd.num_element_types()) {
      return Status::InvalidArgument("bad context type in relative inclusion");
    }
    RETURN_IF_ERROR(CheckTypeAttribute(dtd, inclusion.child_type,
                                       inclusion.child_attribute,
                                       inclusion.ToString(dtd)));
    RETURN_IF_ERROR(CheckTypeAttribute(dtd, inclusion.parent_type,
                                       inclusion.parent_attribute,
                                       inclusion.ToString(dtd)));
  }
  return Status::OK();
}

std::string ConstraintSet::ToString(const Dtd& dtd) const {
  std::string out;
  for (const AbsoluteKey& c : absolute_keys_) out += c.ToString(dtd) + "\n";
  for (const AbsoluteInclusion& c : absolute_inclusions_) {
    out += c.ToString(dtd) + "\n";
  }
  for (const RegularKey& c : regular_keys_) out += c.ToString(dtd) + "\n";
  for (const RegularInclusion& c : regular_inclusions_) {
    out += c.ToString(dtd) + "\n";
  }
  for (const RelativeKey& c : relative_keys_) out += c.ToString(dtd) + "\n";
  for (const RelativeInclusion& c : relative_inclusions_) {
    out += c.ToString(dtd) + "\n";
  }
  return out;
}

}  // namespace xmlverify
