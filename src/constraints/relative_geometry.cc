#include "constraints/relative_geometry.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace xmlverify {

Result<ConstraintSet> WithAbsoluteAsRelative(const ConstraintSet& constraints,
                                             int root) {
  ConstraintSet result;
  for (const AbsoluteKey& key : constraints.absolute_keys()) {
    if (!key.IsUnary()) {
      return Status::Unsupported(
          "multi-attribute keys cannot be folded into the relative "
          "framework (SAT(RC^{*,*}) is undecidable)");
    }
    result.Add(RelativeKey{root, key.type, key.attributes[0]});
  }
  for (const AbsoluteInclusion& inclusion : constraints.absolute_inclusions()) {
    if (!inclusion.IsUnary()) {
      return Status::Unsupported(
          "multi-attribute inclusions cannot be folded into the relative "
          "framework");
    }
    result.Add(RelativeInclusion{root, inclusion.child_type,
                                 inclusion.child_attributes[0],
                                 inclusion.parent_type,
                                 inclusion.parent_attributes[0]});
  }
  for (const RelativeKey& key : constraints.relative_keys()) result.Add(key);
  for (const RelativeInclusion& inclusion :
       constraints.relative_inclusions()) {
    result.Add(inclusion);
  }
  if (constraints.HasRegular()) {
    return Status::Unsupported(
        "regular-path constraints do not participate in the relative "
        "framework");
  }
  return result;
}

RelativeGeometry::RelativeGeometry(const Dtd& dtd,
                                   const ConstraintSet& constraints)
    : dtd_(&dtd),
      constraints_(&constraints),
      num_types_(dtd.num_element_types()) {}

Result<RelativeGeometry> RelativeGeometry::Analyze(
    const Dtd& dtd, const ConstraintSet& constraints) {
  if (dtd.IsRecursive()) {
    return Status::Unsupported(
        "relative-constraint analysis requires a non-recursive DTD");
  }
  if (constraints.HasAbsolute() || constraints.HasRegular()) {
    return Status::InvalidArgument(
        "RelativeGeometry expects purely relative constraints; fold "
        "absolute constraints in with WithAbsoluteAsRelative first");
  }
  RelativeGeometry geometry(dtd, constraints);
  const int n = geometry.num_types_;

  // Transitive reachability over DTD child edges (length >= 1).
  geometry.reaches_.assign(n * n, false);
  for (int type = 0; type < n; ++type) {
    std::deque<int> frontier;
    for (int child : dtd.ChildTypes(type)) {
      if (!geometry.reaches_[type * n + child]) {
        geometry.reaches_[type * n + child] = true;
        frontier.push_back(child);
      }
    }
    while (!frontier.empty()) {
      int cur = frontier.front();
      frontier.pop_front();
      for (int child : dtd.ChildTypes(cur)) {
        if (!geometry.reaches_[type * n + child]) {
          geometry.reaches_[type * n + child] = true;
          frontier.push_back(child);
        }
      }
    }
  }

  // Restricted types: the root plus every context type.
  std::set<int> contexts;
  for (const RelativeKey& key : constraints.relative_keys()) {
    contexts.insert(key.context);
  }
  for (const RelativeInclusion& inclusion :
       constraints.relative_inclusions()) {
    contexts.insert(inclusion.context);
  }
  geometry.is_restricted_.assign(n, false);
  geometry.is_restricted_[dtd.root()] = true;
  geometry.restricted_types_.push_back(dtd.root());
  for (int context : contexts) {
    if (!geometry.is_restricted_[context]) {
      geometry.is_restricted_[context] = true;
      geometry.restricted_types_.push_back(context);
    }
  }

  // Conflicting pairs (Section 4.2): tau1, tau2 conflict iff
  //   (1) tau2 is a context type with a path from tau1, and
  //   (2) some inclusion with context tau1 mentions a type tau3
  //       strictly below tau2.
  for (const RelativeInclusion& inclusion :
       constraints.relative_inclusions()) {
    int tau1 = inclusion.context;
    for (int tau3 : {inclusion.child_type, inclusion.parent_type}) {
      for (int tau2 : contexts) {
        if (tau2 == tau1 || tau2 == tau3) continue;
        if (geometry.HasPath(tau1, tau2) && geometry.HasPath(tau2, tau3)) {
          RelativeGeometry::ConflictingPair pair;
          pair.outer = tau1;
          pair.inner = tau2;
          pair.description =
              "inclusion " + inclusion.ToString(dtd) + " reaches type '" +
              dtd.TypeName(tau3) + "' through context type '" +
              dtd.TypeName(tau2) + "'";
          if (!geometry.conflicting_pair_.has_value()) {
            geometry.conflicting_pair_ = std::move(pair);
          }
        }
      }
    }
  }
  return geometry;
}

bool RelativeGeometry::IsContextType(int type) const {
  for (const RelativeKey& key : constraints_->relative_keys()) {
    if (key.context == type) return true;
  }
  for (const RelativeInclusion& inclusion :
       constraints_->relative_inclusions()) {
    if (inclusion.context == type) return true;
  }
  return false;
}

std::vector<int> RelativeGeometry::ScopeTypes(int tau) const {
  // BFS from tau; restricted types other than tau are scope leaves
  // and are not expanded (their subtrees belong to deeper scopes).
  std::vector<bool> seen(num_types_, false);
  std::vector<int> result;
  std::deque<int> frontier = {tau};
  seen[tau] = true;
  result.push_back(tau);
  while (!frontier.empty()) {
    int type = frontier.front();
    frontier.pop_front();
    bool expand = (type == tau) || !is_restricted_[type];
    if (!expand) continue;
    for (int child : dtd_->ChildTypes(type)) {
      if (!seen[child]) {
        seen[child] = true;
        result.push_back(child);
        frontier.push_back(child);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<int> RelativeGeometry::ScopeTypeMap(int tau) const {
  std::vector<int> map(num_types_, -1);
  std::vector<int> scope = ScopeTypes(tau);
  for (size_t i = 0; i < scope.size(); ++i) {
    map[scope[i]] = static_cast<int>(i);
  }
  return map;
}

Result<Dtd> RelativeGeometry::ScopeDtd(int tau) const {
  std::vector<int> scope = ScopeTypes(tau);
  std::vector<int> map = ScopeTypeMap(tau);
  std::vector<std::string> names;
  names.reserve(scope.size());
  for (int type : scope) names.push_back(dtd_->TypeName(type));

  Dtd::Builder builder(names, dtd_->TypeName(tau));
  int new_pcdata = static_cast<int>(scope.size());
  auto remap = [&](int symbol) {
    return symbol == dtd_->pcdata_symbol() ? new_pcdata : map[symbol];
  };
  for (int type : scope) {
    bool truncated = type != tau && is_restricted_[type];
    if (!truncated) {
      // Truncated restricted leaves get P_tau(type) = epsilon, which
      // is the builder's default.
      builder.SetContent(dtd_->TypeName(type),
                         RemapSymbols(dtd_->Content(type), remap));
    }
    // R_tau(tau) = {} (the scope root's attributes belong to the
    // enclosing scope, where tau appears as a leaf); every other
    // scope type — including truncated restricted leaves — keeps
    // R(type), matching the paper's definition of D_tau. The global
    // root is the exception: it has no enclosing scope, so its scope
    // keeps R(root) and assigns the root's attributes itself.
    if (type == tau && tau != dtd_->root()) continue;
    for (const std::string& attribute : dtd_->Attributes(type)) {
      builder.AddAttribute(dtd_->TypeName(type), attribute);
    }
  }
  return builder.Build();
}

Result<int> RelativeGeometry::MaxScopeDepth() const {
  int max_depth = 0;
  for (int type : restricted_types_) {
    ASSIGN_OR_RETURN(Dtd scope_dtd, ScopeDtd(type));
    ASSIGN_OR_RETURN(int depth, scope_dtd.Depth());
    max_depth = std::max(max_depth, depth);
  }
  return max_depth;
}

bool RelativeGeometry::IsDLocal(int d) const {
  Result<int> depth = MaxScopeDepth();
  return depth.ok() && *depth <= d;
}

ConstraintSet RelativeGeometry::ProjectScopeConstraints(
    int tau, const std::vector<int>& path_types,
    const std::vector<int>& scope_type_map,
    std::vector<int>* forced_empty) const {
  std::set<int> on_path(path_types.begin(), path_types.end());
  ConstraintSet projected;
  for (const RelativeKey& key : constraints_->relative_keys()) {
    if (on_path.count(key.context) == 0) continue;
    if (key.type == tau) continue;  // the scope root carries no attributes
    if (scope_type_map[key.type] < 0) continue;  // lives in another scope
    projected.Add(AbsoluteKey{scope_type_map[key.type], {key.attribute}});
  }
  for (const RelativeInclusion& inclusion :
       constraints_->relative_inclusions()) {
    if (inclusion.context != tau) continue;
    // Vacuous if the child type cannot occur below tau (non-recursive
    // DTDs have no tau below tau).
    if (inclusion.child_type == tau ||
        scope_type_map[inclusion.child_type] < 0) {
      continue;
    }
    // If the parent side cannot exist below tau, the inclusion forces
    // the child extent to be empty.
    if (inclusion.parent_type == tau ||
        scope_type_map[inclusion.parent_type] < 0) {
      forced_empty->push_back(scope_type_map[inclusion.child_type]);
      continue;
    }
    projected.Add(AbsoluteInclusion{scope_type_map[inclusion.child_type],
                                    {inclusion.child_attribute},
                                    scope_type_map[inclusion.parent_type],
                                    {inclusion.parent_attribute}});
  }
  return projected;
}

}  // namespace xmlverify
