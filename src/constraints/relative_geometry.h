// The "geometry" of relative constraints (Section 4.2): restricted
// types, scopes, conflicting pairs, the hierarchical property, scope
// DTDs D_tau, projected constraint sets Sigma_w, and d-locality.
#ifndef XMLVERIFY_CONSTRAINTS_RELATIVE_GEOMETRY_H_
#define XMLVERIFY_CONSTRAINTS_RELATIVE_GEOMETRY_H_

#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "constraints/constraint.h"
#include "xml/dtd.h"

namespace xmlverify {

/// Geometry analysis of a (DTD, relative-constraint) specification.
/// Absolute constraints should be folded in as context-r relative
/// constraints first (see WithAbsoluteAsRelative).
class RelativeGeometry {
 public:
  /// Requires a non-recursive DTD and unary constraints.
  static Result<RelativeGeometry> Analyze(const Dtd& dtd,
                                          const ConstraintSet& constraints);

  /// Restricted types: the root plus all context types (Section 4.2).
  const std::vector<int>& restricted_types() const {
    return restricted_types_;
  }
  bool IsRestricted(int type) const { return is_restricted_[type]; }

  /// True if there is a path in D from `from` to `to` (length >= 1).
  bool HasPath(int from, int to) const {
    return reaches_[from * num_types_ + to];
  }

  /// A conflicting pair per the paper's definition, if any.
  struct ConflictingPair {
    int outer;  // tau1: context of the offending inclusion
    int inner;  // tau2: context type crossed by the inclusion
    std::string description;
  };
  const std::optional<ConflictingPair>& conflicting_pair() const {
    return conflicting_pair_;
  }
  /// (D, Sigma) is hierarchical iff it has no conflicting pair.
  bool IsHierarchical() const { return !conflicting_pair_.has_value(); }

  /// Element types of the scope rooted at restricted type `tau`:
  /// types reachable along paths whose interior crosses no context
  /// type (tau itself included).
  std::vector<int> ScopeTypes(int tau) const;

  /// The restricted DTD D_tau of the proof of Theorem 4.3: the scope
  /// grammar with context-type leaves truncated to empty content and
  /// the scope root stripped of attributes.
  Result<Dtd> ScopeDtd(int tau) const;

  /// Depth(D_tau) for each restricted type; d-locality holds iff all
  /// depths are <= d (reformulation used in the proof of Theorem 4.4).
  Result<int> MaxScopeDepth() const;
  bool IsDLocal(int d) const;

  /// True if `type` is the context type of some constraint.
  bool IsContextType(int type) const;

  /// Sigma_w: the absolute projection of the relative constraints
  /// into the scope of `tau` reached along a root path whose symbol
  /// set is `path_types` (Lemma 11):
  ///  * keys ctx(t.l -> t) with ctx on the path and t in the scope
  ///    become absolute keys t.l -> t (t != tau: the scope root has
  ///    no attributes in D_tau);
  ///  * inclusions with context exactly `tau` become absolute.
  /// Constraints are expressed in ScopeDtd(tau)'s type ids via
  /// `scope_type_map`. Inclusions whose parent side cannot exist in
  /// the scope force the child extent to zero: those child scope-type
  /// ids are appended to `forced_empty` instead.
  ConstraintSet ProjectScopeConstraints(int tau,
                                        const std::vector<int>& path_types,
                                        const std::vector<int>& scope_type_map,
                                        std::vector<int>* forced_empty) const;

  /// Mapping original-type-id -> ScopeDtd type id (-1 if absent).
  std::vector<int> ScopeTypeMap(int tau) const;

 private:
  RelativeGeometry(const Dtd& dtd, const ConstraintSet& constraints);

  const Dtd* dtd_;
  const ConstraintSet* constraints_;
  int num_types_ = 0;
  std::vector<int> restricted_types_;
  std::vector<bool> is_restricted_;
  std::vector<bool> reaches_;  // num_types x num_types, length >= 1 paths
  std::optional<ConflictingPair> conflicting_pair_;
};

/// Copy of `constraints` with every absolute unary constraint
/// re-expressed as a relative constraint with context `root`.
/// Multi-attribute absolute constraints are rejected.
Result<ConstraintSet> WithAbsoluteAsRelative(const ConstraintSet& constraints,
                                             int root);

}  // namespace xmlverify

#endif  // XMLVERIFY_CONSTRAINTS_RELATIVE_GEOMETRY_H_
