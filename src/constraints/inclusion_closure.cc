#include "constraints/inclusion_closure.h"

namespace xmlverify {

InclusionClosure::InclusionClosure(const ConstraintSet& constraints) {
  auto intern = [this](const Node& node) {
    auto [it, inserted] = index_.emplace(node, static_cast<int>(nodes_.size()));
    if (inserted) nodes_.push_back(node);
    return it->second;
  };
  std::vector<std::pair<int, int>> edges;
  for (const AbsoluteInclusion& inclusion : constraints.absolute_inclusions()) {
    if (!inclusion.IsUnary()) continue;
    int child = intern({inclusion.child_type, inclusion.child_attributes[0]});
    int parent =
        intern({inclusion.parent_type, inclusion.parent_attributes[0]});
    edges.emplace_back(child, parent);
  }
  const int n = static_cast<int>(nodes_.size());
  reaches_.assign(n, std::vector<bool>(n, false));
  for (int v = 0; v < n; ++v) reaches_[v][v] = true;
  for (const auto& [child, parent] : edges) reaches_[child][parent] = true;
  // Floyd–Warshall boolean closure: cubic, as in [12].
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      if (!reaches_[i][k]) continue;
      for (int j = 0; j < n; ++j) {
        if (reaches_[k][j]) reaches_[i][j] = true;
      }
    }
  }
}

int InclusionClosure::NodeIndex(const Node& node) const {
  auto it = index_.find(node);
  return it == index_.end() ? -1 : it->second;
}

bool InclusionClosure::Implies(int child_type,
                               const std::string& child_attribute,
                               int parent_type,
                               const std::string& parent_attribute) const {
  if (child_type == parent_type && child_attribute == parent_attribute) {
    return true;  // reflexivity
  }
  int child = NodeIndex({child_type, child_attribute});
  int parent = NodeIndex({parent_type, parent_attribute});
  if (child < 0 || parent < 0) return false;
  return reaches_[child][parent];
}

std::vector<AbsoluteInclusion> InclusionClosure::DerivedInclusions() const {
  std::vector<AbsoluteInclusion> derived;
  for (size_t a = 0; a < nodes_.size(); ++a) {
    for (size_t b = 0; b < nodes_.size(); ++b) {
      if (a == b || !reaches_[a][b]) continue;
      derived.push_back(AbsoluteInclusion{nodes_[a].first,
                                          {nodes_[a].second},
                                          nodes_[b].first,
                                          {nodes_[b].second}});
    }
  }
  return derived;
}

std::vector<AbsoluteInclusion> InclusionClosure::RedundantInclusions(
    const ConstraintSet& constraints) const {
  std::vector<AbsoluteInclusion> redundant;
  for (size_t i = 0; i < constraints.absolute_inclusions().size(); ++i) {
    const AbsoluteInclusion& candidate = constraints.absolute_inclusions()[i];
    if (!candidate.IsUnary()) continue;
    // Rebuild the closure without this inclusion and test whether it
    // is still derivable.
    ConstraintSet rest;
    for (size_t j = 0; j < constraints.absolute_inclusions().size(); ++j) {
      if (j != i) rest.Add(constraints.absolute_inclusions()[j]);
    }
    InclusionClosure without(rest);
    if (without.Implies(candidate.child_type, candidate.child_attributes[0],
                        candidate.parent_type,
                        candidate.parent_attributes[0])) {
      redundant.push_back(candidate);
    }
  }
  return redundant;
}

}  // namespace xmlverify
