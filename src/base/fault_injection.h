// Deterministic fault injection for robustness testing.
//
// The pipeline registers named injection points at the places where
// real resource failures originate:
//
//   alloc                — ResourceBudget::ChargeMemory (tracked
//                          allocation)
//   cache_insert         — SharedCache::Insert (memo-cache publication)
//   solver_pivot         — the exact simplex pivot loop
//   manifest_io          — batch-runner file reads
//   socket_accept        — serve accept loop (connection dropped after
//                          the kernel handshake, as an accept-time RST)
//   cache_snapshot_write — serve/snapshot.cc writer (fails before the
//                          temp file; the previous snapshot survives)
//   cache_snapshot_read  — serve/snapshot.cc loader (drops individual
//                          records, as a checksum mismatch would)
//
// Tests (and the CLI via --fault-inject / the XMLVERIFY_FAULT_INJECT
// environment variable) arm the injector with a spec naming which
// points fire and when:
//
//   point         every hit fails
//   point=N       exactly the Nth hit fails (1-based)
//   point=N+      the Nth and every later hit fail
//   point=%P      a deterministic 1-in-P of hits fail, keyed on the
//                 seed, the point name, and the hit ordinal
//
// Multiple clauses are comma-separated. Firing is deterministic for a
// fixed spec + seed + execution order, so a failure found under
// injection replays. The disarmed fast path is one relaxed atomic
// load; configure -DXMLVERIFY_FAULT_INJECTION=OFF to compile every
// hook to a constant-false no-op for release builds.
#ifndef XMLVERIFY_BASE_FAULT_INJECTION_H_
#define XMLVERIFY_BASE_FAULT_INJECTION_H_

#include <cstdint>
#include <string>

#include "base/status.h"

namespace xmlverify {

class FaultInjector {
 public:
  /// Arms the injector with `spec` (grammar above) and a seed for the
  /// `%P` probabilistic clauses. Replaces any previous arming; resets
  /// hit counts. InvalidArgument on a malformed spec, Unsupported when
  /// fault injection is compiled out.
  static Status Arm(const std::string& spec, uint64_t seed = 0);

  /// Disarms and clears all rules and hit counts.
  static void Disarm();

  /// Arms from XMLVERIFY_FAULT_INJECT / XMLVERIFY_FAULT_SEED if set;
  /// OK (and disarmed) when the variables are absent.
  static Status ArmFromEnv();

  /// The canonical Status for a fired point: kResourceExhausted, so
  /// injected faults flow down the exact propagation paths that real
  /// exhaustion takes.
  static Status Injected(const char* point);

  /// Hits observed at `point` since arming (0 when disarmed or never
  /// hit). For tests.
  static int64_t HitCount(const std::string& point);

#ifdef XMLVERIFY_DISABLE_FAULT_INJECTION
  static constexpr bool Armed() { return false; }
  static constexpr bool ShouldFail(const char*) { return false; }
#else
  /// True while armed. One relaxed atomic load.
  static bool Armed();

  /// Counts a hit at `point` and reports whether the armed rules say
  /// this hit fails. False (without counting) when disarmed.
  static bool ShouldFail(const char* point);
#endif
};

}  // namespace xmlverify

#endif  // XMLVERIFY_BASE_FAULT_INJECTION_H_
