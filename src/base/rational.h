// Exact rational numbers over BigInt, always kept in canonical form
// (normalized sign in the numerator, positive denominator, reduced by
// gcd). Used by the simplex LP relaxation so that feasibility verdicts
// from the consistency checkers are exact, never subject to floating
// point error.
#ifndef XMLVERIFY_BASE_RATIONAL_H_
#define XMLVERIFY_BASE_RATIONAL_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "base/bigint.h"
#include "base/status.h"

namespace xmlverify {

class Rational {
 public:
  Rational() : numerator_(0), denominator_(1) {}
  Rational(BigInt value) : numerator_(std::move(value)), denominator_(1) {}  // NOLINT
  Rational(int64_t value) : numerator_(value), denominator_(1) {}            // NOLINT

  /// Aborts on a zero denominator: this constructor is for internal
  /// arithmetic whose divisors are already known nonzero (simplex
  /// pivots guard the divisor before dividing). Untrusted input must
  /// go through Create or FromString, which report the error instead.
  Rational(BigInt numerator, BigInt denominator);

  /// Checked construction for values derived from external input.
  /// Returns InvalidArgument on a zero denominator.
  static Result<Rational> Create(BigInt numerator, BigInt denominator);

  /// Parses "n" or "n/d" (optional leading '-', decimal digits).
  /// Returns InvalidArgument on malformed text or a zero denominator.
  static Result<Rational> FromString(std::string_view text);

  const BigInt& numerator() const { return numerator_; }
  const BigInt& denominator() const { return denominator_; }

  bool is_zero() const { return numerator_.is_zero(); }
  bool is_negative() const { return numerator_.is_negative(); }
  bool is_integer() const { return denominator_ == BigInt(1); }
  int sign() const { return numerator_.sign(); }

  /// Largest integer <= *this.
  BigInt Floor() const { return numerator_.FloorDiv(denominator_); }
  /// Smallest integer >= *this.
  BigInt Ceil() const { return numerator_.CeilDiv(denominator_); }

  double ToDouble() const;
  std::string ToString() const;

  Rational operator-() const;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  Rational operator/(const Rational& other) const;

  // Compound forms mutate in place (no *this = *this + other temporary
  // churn); all four are safe under self-assignment (r += r).
  Rational& operator+=(const Rational& other);
  Rational& operator-=(const Rational& other);
  Rational& operator*=(const Rational& other);
  Rational& operator/=(const Rational& other);

  /// Fused in-place update *this -= b * c — the simplex row-combination
  /// pattern. On the all-integer path this is a single BigInt::SubMul
  /// (one product + one in-place signed accumulate, no Rational
  /// temporaries). Safe when b or c aliases *this.
  Rational& SubMul(const Rational& b, const Rational& c);

  int Compare(const Rational& other) const;

  bool operator==(const Rational& other) const { return Compare(other) == 0; }
  bool operator!=(const Rational& other) const { return Compare(other) != 0; }
  bool operator<(const Rational& other) const { return Compare(other) < 0; }
  bool operator<=(const Rational& other) const { return Compare(other) <= 0; }
  bool operator>(const Rational& other) const { return Compare(other) > 0; }
  bool operator>=(const Rational& other) const { return Compare(other) >= 0; }

 private:
  void Normalize();

  BigInt numerator_;
  BigInt denominator_;  // Always positive.
};

std::ostream& operator<<(std::ostream& os, const Rational& value);

}  // namespace xmlverify

#endif  // XMLVERIFY_BASE_RATIONAL_H_
