#include "base/smallrat.h"

#include <ostream>
#include <utility>

#include "trace/trace.h"

namespace xmlverify {

namespace {

using int128 = __int128;
using uint128 = unsigned __int128;

uint128 Abs128(int128 value) {
  return value < 0 ? static_cast<uint128>(-value) : static_cast<uint128>(value);
}

uint128 Gcd128(uint128 a, uint128 b) {
  while (b != 0) {
    uint128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

// Reduces num/den (den > 0) by their gcd and stores the result if the
// canonical pair fits int64 (|num| <= INT64_MAX keeps negation safe).
bool Reduce128(int128 num, int128 den, SmallRational* out) {
  if (num == 0) {
    *out = SmallRational(0);
    return true;
  }
  uint128 magnitude = Abs128(num);
  uint128 udden = static_cast<uint128>(den);
  uint128 gcd = Gcd128(magnitude, udden);
  magnitude /= gcd;
  udden /= gcd;
  constexpr uint128 kMax = static_cast<uint128>(INT64_MAX);
  if (magnitude > kMax || udden > kMax) return false;
  int64_t n = static_cast<int64_t>(magnitude);
  return SmallRational::Make(num < 0 ? -n : n, static_cast<int64_t>(udden),
                             out);
}

}  // namespace

bool SmallRational::Make(int64_t num, int64_t den, SmallRational* out) {
  if (den == 0 || num == INT64_MIN || den == INT64_MIN) return false;
  if (den < 0) {
    num = -num;
    den = -den;
  }
  if (num == 0) {
    *out = SmallRational(0);
    return true;
  }
  uint64_t magnitude = num < 0 ? static_cast<uint64_t>(-num)
                               : static_cast<uint64_t>(num);
  uint64_t udden = static_cast<uint64_t>(den);
  // Binary-free Euclid is plenty here; operands are already reduced in
  // the common (tableau) case so the loop exits quickly.
  uint64_t a = magnitude;
  uint64_t b = udden;
  while (b != 0) {
    uint64_t t = a % b;
    a = b;
    b = t;
  }
  if (a > 1) {
    magnitude /= a;
    udden /= a;
  }
  out->num_ = num < 0 ? -static_cast<int64_t>(magnitude)
                      : static_cast<int64_t>(magnitude);
  out->den_ = static_cast<int64_t>(udden);
  return true;
}

bool SmallRational::Add(const SmallRational& a, const SmallRational& b,
                        SmallRational* out) {
  // Products are below 2^126, so the sum stays within __int128.
  int128 num = static_cast<int128>(a.num_) * b.den_ +
               static_cast<int128>(b.num_) * a.den_;
  int128 den = static_cast<int128>(a.den_) * b.den_;
  return Reduce128(num, den, out);
}

bool SmallRational::Sub(const SmallRational& a, const SmallRational& b,
                        SmallRational* out) {
  int128 num = static_cast<int128>(a.num_) * b.den_ -
               static_cast<int128>(b.num_) * a.den_;
  int128 den = static_cast<int128>(a.den_) * b.den_;
  return Reduce128(num, den, out);
}

bool SmallRational::Mul(const SmallRational& a, const SmallRational& b,
                        SmallRational* out) {
  int128 num = static_cast<int128>(a.num_) * b.num_;
  int128 den = static_cast<int128>(a.den_) * b.den_;
  return Reduce128(num, den, out);
}

bool SmallRational::Div(const SmallRational& a, const SmallRational& b,
                        SmallRational* out) {
  if (b.num_ == 0) return false;
  int128 num = static_cast<int128>(a.num_) * b.den_;
  int128 den = static_cast<int128>(a.den_) * b.num_;
  if (den < 0) {
    num = -num;
    den = -den;
  }
  return Reduce128(num, den, out);
}

bool SmallRational::SubMul(const SmallRational& a, const SmallRational& b,
                           const SmallRational& c, SmallRational* out) {
  // Reduce the product b*c first; if even the reduced product escapes
  // int64 the caller promotes (the final difference would rarely fit
  // anyway, and the big tier demotes results that shrink back).
  SmallRational product;
  if (!Mul(b, c, &product)) return false;
  return Sub(a, product, out);
}

int SmallRational::Compare(const SmallRational& other) const {
  // Denominators are positive: cross products preserve order and fit
  // in __int128 exactly.
  int128 lhs = static_cast<int128>(num_) * other.den_;
  int128 rhs = static_cast<int128>(other.num_) * den_;
  if (lhs == rhs) return 0;
  return lhs < rhs ? -1 : 1;
}

bool SmallRational::FromRational(const Rational& value, SmallRational* out) {
  Result<int64_t> num = value.numerator().TryToInt64();
  if (!num.ok() || *num == INT64_MIN) return false;
  Result<int64_t> den = value.denominator().TryToInt64();
  if (!den.ok()) return false;
  // Rational is canonical (reduced, positive denominator) already.
  out->num_ = *num;
  out->den_ = *den;
  return true;
}

std::string SmallRational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

TwoTierRational::TwoTierRational(const BigInt& value) {
  Result<int64_t> as_int = value.TryToInt64();
  if (as_int.ok() && *as_int != INT64_MIN) {
    small_ = SmallRational(*as_int);
  } else {
    big_ = new Rational(value);
  }
}

TwoTierRational::TwoTierRational(const Rational& value) {
  if (!SmallRational::FromRational(value, &small_)) {
    big_ = new Rational(value);
  }
}

void TwoTierRational::Promote(Rational value) {
  big_ = new Rational(std::move(value));
  trace::Count("solver/smallrat_promotions");
}

void TwoTierRational::SetBig(Rational value) {
  if (big_ == nullptr) {
    big_ = new Rational(std::move(value));
  } else {
    *big_ = std::move(value);
  }
}

void TwoTierRational::TryDemote() {
  if (big_ == nullptr) return;
  SmallRational demoted;
  if (!SmallRational::FromRational(*big_, &demoted)) return;
  delete big_;
  big_ = nullptr;
  small_ = demoted;
  trace::Count("solver/smallrat_demotions");
}

TwoTierRational& TwoTierRational::operator+=(const TwoTierRational& other) {
  if (small() && other.small()) {
    SmallRational r;
    if (SmallRational::Add(small_, other.small_, &r)) {
      small_ = r;
      return *this;
    }
    Promote(small_.ToRational() + other.small_.ToRational());
    return *this;
  }
  // Big-tier path: mutate *big_ in place (Rational's compound ops are
  // aliasing-safe) instead of rebuilding a fresh Rational per call.
  if (small()) SetBig(small_.ToRational());
  if (other.small()) {
    *big_ += other.small_.ToRational();
  } else {
    *big_ += *other.big_;
  }
  TryDemote();
  return *this;
}

TwoTierRational& TwoTierRational::operator-=(const TwoTierRational& other) {
  if (small() && other.small()) {
    SmallRational r;
    if (SmallRational::Sub(small_, other.small_, &r)) {
      small_ = r;
      return *this;
    }
    Promote(small_.ToRational() - other.small_.ToRational());
    return *this;
  }
  if (small()) SetBig(small_.ToRational());
  if (other.small()) {
    *big_ -= other.small_.ToRational();
  } else {
    *big_ -= *other.big_;
  }
  TryDemote();
  return *this;
}

TwoTierRational& TwoTierRational::operator*=(const TwoTierRational& other) {
  if (small() && other.small()) {
    SmallRational r;
    if (SmallRational::Mul(small_, other.small_, &r)) {
      small_ = r;
      return *this;
    }
    Promote(small_.ToRational() * other.small_.ToRational());
    return *this;
  }
  if (small()) SetBig(small_.ToRational());
  if (other.small()) {
    *big_ *= other.small_.ToRational();
  } else {
    *big_ *= *other.big_;
  }
  TryDemote();
  return *this;
}

TwoTierRational& TwoTierRational::operator/=(const TwoTierRational& other) {
  if (small() && other.small()) {
    SmallRational r;
    if (SmallRational::Div(small_, other.small_, &r)) {
      small_ = r;
      return *this;
    }
    Promote(small_.ToRational() / other.small_.ToRational());
    return *this;
  }
  if (small()) SetBig(small_.ToRational());
  if (other.small()) {
    *big_ /= other.small_.ToRational();
  } else {
    *big_ /= *other.big_;
  }
  TryDemote();
  return *this;
}

TwoTierRational& TwoTierRational::SubMul(const TwoTierRational& b,
                                         const TwoTierRational& c) {
  if (small() && b.small() && c.small()) {
    SmallRational r;
    if (SmallRational::SubMul(small_, b.small_, c.small_, &r)) {
      small_ = r;
      return *this;
    }
    Promote(small_.ToRational() - b.small_.ToRational() * c.small_.ToRational());
    return *this;
  }
  // Big-tier fused path: one Rational::SubMul over *big_. Scratch
  // copies only materialize for small-tier operands; big-tier b/c are
  // passed by reference (SubMul reads both before mutating, so b or c
  // aliasing *big_ is fine).
  if (small()) SetBig(small_.ToRational());
  Rational b_scratch;
  Rational c_scratch;
  const Rational& rb = b.small() ? (b_scratch = b.small_.ToRational()) : *b.big_;
  const Rational& rc = c.small() ? (c_scratch = c.small_.ToRational()) : *c.big_;
  big_->SubMul(rb, rc);
  TryDemote();
  return *this;
}

void TwoTierRational::Negate() {
  if (small()) {
    small_ = -small_;
  } else {
    SetBig(-*big_);
  }
}

int TwoTierRational::Compare(const TwoTierRational& other) const {
  if (small() && other.small()) return small_.Compare(other.small_);
  return ToRational().Compare(other.ToRational());
}

std::string TwoTierRational::ToString() const {
  return small() ? small_.ToString() : big_->ToString();
}

std::ostream& operator<<(std::ostream& os, const TwoTierRational& value) {
  return os << value.ToString();
}

}  // namespace xmlverify
