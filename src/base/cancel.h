// Cooperative cancellation for in-flight checks.
//
// A CancelToken is a cheap value type in the style of Deadline: copy
// it freely into option structs and worker threads — copies share one
// atomic flag, so a Cancel() from the serving layer's connection
// reader is visible to a solver polling its deadline deep in the call
// tree. Cancellation rides the existing cooperative checks: attach a
// token to a Deadline (Deadline::WithCancelToken) and every
// `Expired()` poll — the solver pivot loop, the bounded enumerations,
// the hierarchical recursion — observes the flag with one relaxed
// atomic load.
//
// Policy (docs/serving.md): a cancelled check is abandoned work, not
// an answer. Like RESOURCE_EXHAUSTED, cancellation is never reported
// as a definitive verdict — it surfaces through the deadline path as
// a non-definitive outcome that is never cached.
#ifndef XMLVERIFY_BASE_CANCEL_H_
#define XMLVERIFY_BASE_CANCEL_H_

#include <atomic>
#include <memory>

namespace xmlverify {

class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Trips the flag. Idempotent and thread-safe; there is no un-cancel
  /// (a connection that died stays dead — reuse means a fresh token).
  void Cancel() const { flag_->store(true, std::memory_order_relaxed); }

  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

  /// The shared flag, for Deadline::WithCancelToken.
  std::shared_ptr<const std::atomic<bool>> flag() const { return flag_; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_BASE_CANCEL_H_
