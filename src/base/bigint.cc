#include "base/bigint.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <vector>

#include "trace/trace.h"

namespace xmlverify {

namespace {

constexpr uint64_t kLimbBase = uint64_t{1} << 32;

using Limbs = internal_bigint::LimbVector;

// ---------------------------------------------------------------------
// Kernel selection.
//
// Magnitudes above two limbs are processed as little-endian vectors of
// 64-bit words (two limbs per word): half the inner-loop iterations of
// the 32-bit schoolbook loops, with __int128 intermediates. Word
// counts at or above kKaratsubaWords additionally take the Karatsuba
// balanced-split recursion. The pre-existing 32-bit schoolbook
// multiply, binary long division, and Euclid GCD stay compiled in as a
// differential reference, selected process-wide by the flag below
// (BigInt::ForceReferenceKernels / XMLVERIFY_BIGINT_REFERENCE), so
// difftest can assert byte-identical verdicts between kernel suites.

// Tuned with bench_bigint on the container this repo builds in: below
// ~20 words the recursion's extra adds and scratch traffic cost more
// than the saved multiplies.
constexpr size_t kKaratsubaWords = 20;

bool ReferenceKernelsFromEnv() {
  const char* env = std::getenv("XMLVERIFY_BIGINT_REFERENCE");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

std::atomic<bool> g_reference_kernels{ReferenceKernelsFromEnv()};

bool UseReferenceKernels() {
  return g_reference_kernels.load(std::memory_order_relaxed);
}

// Shifts a magnitude left by `bits` (< 32) bit positions, in place.
void ShiftLeftSmall(Limbs* limbs, unsigned bits) {
  if (bits == 0 || limbs->empty()) return;
  uint32_t carry = 0;
  for (uint32_t& limb : *limbs) {
    uint64_t shifted = (uint64_t{limb} << bits) | carry;
    limb = static_cast<uint32_t>(shifted);
    carry = static_cast<uint32_t>(shifted >> 32);
  }
  if (carry != 0) limbs->push_back(carry);
}

uint64_t NativeGcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

// ---------------------------------------------------------------------
// 64-bit word views. Words are little endian, two limbs per word, with
// high zero words trimmed; conversion is one linear pass each way.
//
// On little-endian targets an even-length little-endian uint32 limb
// vector already IS a little-endian uint64 word vector, so the hot
// multiply path reads operands and writes the product directly through
// reinterpret_cast word views instead of converting (see MulMagnitude).
// Word carries may_alias so those uint64 accesses to uint32 storage
// stay defined behavior for the compiler; every such buffer is 8-byte
// aligned (LimbVector's inline array sits at offset 0 of an 8-aligned
// object, heap blocks come from operator new[]).
using Word = uint64_t __attribute__((may_alias));

std::vector<uint64_t> LimbsToWords(const Limbs& limbs) {
  std::vector<uint64_t> words((limbs.size() + 1) / 2);
  for (size_t i = 0; i < words.size(); ++i) {
    uint64_t word = limbs[2 * i];
    if (2 * i + 1 < limbs.size()) word |= uint64_t{limbs[2 * i + 1]} << 32;
    words[i] = word;
  }
  while (!words.empty() && words.back() == 0) words.pop_back();
  return words;
}

// Conversion into a caller-owned buffer whose capacity persists across
// calls (the multiply dispatch reuses thread-local scratch: at tableau
// sizes the three per-call heap allocations otherwise cost more than
// the word-loop saves).
void LimbsToWordsInto(const Limbs& limbs, std::vector<uint64_t>* words) {
  const size_t pairs = limbs.size() / 2;
  words->resize((limbs.size() + 1) / 2);
  const uint32_t* src = limbs.data();
  uint64_t* dst = words->data();
  for (size_t i = 0; i < pairs; ++i) {
    dst[i] = uint64_t{src[2 * i]} | (uint64_t{src[2 * i + 1]} << 32);
  }
  if (limbs.size() & 1) dst[pairs] = src[limbs.size() - 1];
  while (!words->empty() && words->back() == 0) words->pop_back();
}

size_t TrimWords(const Word* words, size_t count) {
  while (count > 0 && words[count - 1] == 0) --count;
  return count;
}

void WordsToLimbs(const uint64_t* words, size_t count, Limbs* out) {
  count = TrimWords(words, count);
  if (count == 0) {
    out->clear();
    return;
  }
  const uint64_t top = words[count - 1];
  const size_t limbs = 2 * count - ((top >> 32) == 0 ? 1 : 0);
  out->clear();
  out->resize(limbs);
  uint32_t* d = out->data();
  for (size_t i = 0; i + 1 < count; ++i) {
    d[2 * i] = static_cast<uint32_t>(words[i]);
    d[2 * i + 1] = static_cast<uint32_t>(words[i] >> 32);
  }
  d[2 * (count - 1)] = static_cast<uint32_t>(top);
  if ((top >> 32) != 0) d[2 * count - 1] = static_cast<uint32_t>(top >> 32);
}

// r[0..rn) += s[0..sn). Requires sn <= rn and the true sum to fit in
// rn words (guaranteed at every call site by the value being a partial
// product of a result that fits).
void AddIntoWords(Word* r, size_t rn, const Word* s, size_t sn) {
  unsigned __int128 carry = 0;
  for (size_t i = 0; i < sn; ++i) {
    unsigned __int128 sum = carry + r[i] + s[i];
    r[i] = static_cast<uint64_t>(sum);
    carry = sum >> 64;
  }
  for (size_t i = sn; carry != 0 && i < rn; ++i) {
    unsigned __int128 sum = carry + r[i];
    r[i] = static_cast<uint64_t>(sum);
    carry = sum >> 64;
  }
}

// r[0..rn) -= s[0..sn). Requires the value in r to be >= the value in
// s (the borrow chain terminates inside rn).
void SubFromWords(Word* r, size_t rn, const Word* s, size_t sn) {
  uint64_t borrow = 0;
  for (size_t i = 0; i < sn; ++i) {
    uint64_t si = s[i];
    uint64_t before = r[i];
    uint64_t after = before - si - borrow;
    borrow = (before < si || (borrow != 0 && before == si)) ? 1 : 0;
    r[i] = after;
  }
  for (size_t i = sn; borrow != 0 && i < rn; ++i) {
    uint64_t before = r[i];
    r[i] = before - 1;
    borrow = before == 0 ? 1 : 0;
  }
}

// r[0..an+bn) = a * b over 64-bit words (an, bn >= 1). Row-wise with
// two b-words per pass (the GMP "mul_2"/"addmul_2" shape): the first
// pass writes r outright (no pre-zeroing) while already consuming two
// b-words, later passes fold two partial rows into one traversal under
// a 128-bit running carry — p1 below cannot overflow, since
// (2^64-1)^2 + 2*(2^64-1) < 2^128. Halving the number of carry-chain
// traversals is what puts this kernel ~3.5x ahead of the 32-bit
// reference loop instead of ~2x; straight __int128 row loops only
// reach ~1.8x. Overwrites r completely.
void MulWordsSchoolbook(const Word* a, size_t an, const Word* b,
                        size_t bn, Word* r) {
  if (bn == 1) {
    const uint64_t b0 = b[0];
    uint64_t carry = 0;
    for (size_t i = 0; i < an; ++i) {
      unsigned __int128 p = static_cast<unsigned __int128>(a[i]) * b0 + carry;
      r[i] = static_cast<uint64_t>(p);
      carry = static_cast<uint64_t>(p >> 64);
    }
    r[an] = carry;
    return;
  }
  {
    const uint64_t b0 = b[0];
    const uint64_t b1 = b[1];
    unsigned __int128 carry = 0;
    for (size_t i = 0; i < an; ++i) {
      unsigned __int128 p0 = static_cast<unsigned __int128>(a[i]) * b0 +
                             static_cast<uint64_t>(carry);
      unsigned __int128 p1 = static_cast<unsigned __int128>(a[i]) * b1 +
                             static_cast<uint64_t>(p0 >> 64) +
                             static_cast<uint64_t>(carry >> 64);
      r[i] = static_cast<uint64_t>(p0);
      carry = p1;
    }
    r[an] = static_cast<uint64_t>(carry);
    r[an + 1] = static_cast<uint64_t>(carry >> 64);
  }
  size_t j = 2;
  for (; j + 1 < bn; j += 2) {
    const uint64_t b0 = b[j];
    const uint64_t b1 = b[j + 1];
    unsigned __int128 carry = 0;
    for (size_t i = 0; i < an; ++i) {
      unsigned __int128 p0 = static_cast<unsigned __int128>(a[i]) * b0 +
                             r[i + j] + static_cast<uint64_t>(carry);
      unsigned __int128 p1 = static_cast<unsigned __int128>(a[i]) * b1 +
                             static_cast<uint64_t>(p0 >> 64) +
                             static_cast<uint64_t>(carry >> 64);
      r[i + j] = static_cast<uint64_t>(p0);
      carry = p1;
    }
    r[j + an] = static_cast<uint64_t>(carry);
    r[j + an + 1] = static_cast<uint64_t>(carry >> 64);
  }
  if (j < bn) {
    const uint64_t b0 = b[j];
    uint64_t carry = 0;
    for (size_t i = 0; i < an; ++i) {
      unsigned __int128 p = static_cast<unsigned __int128>(a[i]) * b0 +
                            r[i + j] + carry;
      r[i + j] = static_cast<uint64_t>(p);
      carry = static_cast<uint64_t>(p >> 64);
    }
    r[j + an] = carry;
  }
}

// sum[0..n+1) = a[0..n_a) + b[0..n_b) with n = max(n_a, n_b); returns
// the trimmed length. `sum` must have capacity n + 1.
size_t AddWords(const Word* a, size_t an, const Word* b, size_t bn,
                Word* sum) {
  if (an < bn) {
    std::swap(a, b);
    std::swap(an, bn);
  }
  unsigned __int128 carry = 0;
  for (size_t i = 0; i < an; ++i) {
    unsigned __int128 cur = carry + a[i] + (i < bn ? b[i] : 0);
    sum[i] = static_cast<uint64_t>(cur);
    carry = cur >> 64;
  }
  size_t n = an;
  if (carry != 0) sum[n++] = static_cast<uint64_t>(carry);
  return TrimWords(sum, n);
}

// r[0..an+bn) = a * b, overwriting the whole range (callers need not
// pre-zero). Dispatches between the word base case and the Karatsuba
// balanced-split recursion:
//   a = a1*W^m + a0, b = b1*W^m + b0
//   a*b = z2*W^2m + ((a0+a1)(b0+b1) - z0 - z2)*W^m + z0
// z0 and z2 are computed straight into their disjoint slots of r; the
// middle term is built in scratch and folded in with one add and two
// subtracts, so each level does three half-size multiplies instead of
// four. Unbalanced operands split the longer one into chunks first so
// every Karatsuba step works on a near-square shape.
void MulWordsRec(const Word* a, size_t an, const Word* b, size_t bn,
                 Word* r) {
  const size_t full = an + bn;  // extent this call must overwrite
  an = TrimWords(a, an);
  bn = TrimWords(b, bn);
  if (an < bn) {
    std::swap(a, b);
    std::swap(an, bn);
  }
  if (bn == 0) {
    for (size_t i = 0; i < full; ++i) r[i] = 0;
    return;
  }
  if (bn < kKaratsubaWords) {
    MulWordsSchoolbook(a, an, b, bn, r);
    for (size_t i = an + bn; i < full; ++i) r[i] = 0;
    return;
  }
  const size_t m = (an + 1) / 2;
  if (bn <= m) {
    // Unbalanced: a = a1*W^m + a0 with b no longer than a0.
    MulWordsRec(a, m, b, bn, r);  // overwrites r[0..m+bn)
    std::vector<uint64_t> high(an - m + bn);
    MulWordsRec(a + m, an - m, b, bn, high.data());
    for (size_t i = m + bn; i < full; ++i) r[i] = 0;
    size_t hn = TrimWords(high.data(), high.size());
    AddIntoWords(r + m, full - m, high.data(), hn);
    return;
  }
  // Balanced split at m (bn > m, so both high halves are nonempty).
  MulWordsRec(a, m, b, m, r);                              // z0: r[0..2m)
  MulWordsRec(a + m, an - m, b + m, bn - m, r + 2 * m);    // z2: the rest
  for (size_t i = an + bn; i < full; ++i) r[i] = 0;
  std::vector<uint64_t> sa(m + 1);
  std::vector<uint64_t> sb(m + 1);
  size_t san = AddWords(a, m, a + m, an - m, sa.data());
  size_t sbn = AddWords(b, m, b + m, bn - m, sb.data());
  std::vector<uint64_t> mid(san + sbn);
  MulWordsRec(sa.data(), san, sb.data(), sbn, mid.data());
  // mid = (a0+a1)(b0+b1); subtract z0 and z2 (still untouched in r) to
  // leave z1, then fold into r at offset m.
  size_t z0n = TrimWords(r, 2 * m);
  size_t z2n = TrimWords(r + 2 * m, an + bn - 2 * m);
  SubFromWords(mid.data(), mid.size(), r, z0n);
  SubFromWords(mid.data(), mid.size(), r + 2 * m, z2n);
  size_t mn = TrimWords(mid.data(), mid.size());
  AddIntoWords(r + m, full - m, mid.data(), mn);
}

// ---------------------------------------------------------------------
// Knuth Algorithm D (TAOCP 4.3.1) over 64-bit words. Requires the
// divisor to span >= 2 words with a nonzero top word and the dividend
// to be >= the divisor. The divisor is normalized (shifted left until
// its top bit is set) so the two-word quotient estimate qhat is off by
// at most 2 and the rare overestimate is repaired by one add-back.
void KnuthDivModImpl(const Limbs& u_limbs, const Limbs& v_limbs, Limbs* q_out,
                     Limbs* r_out) {
  std::vector<uint64_t> u = LimbsToWords(u_limbs);
  std::vector<uint64_t> v = LimbsToWords(v_limbs);
  const size_t n = v.size();       // >= 2: divisor spans 3+ limbs
  const size_t m = u.size() - n;   // u >= v, so u.size() >= n
  const unsigned s =
      static_cast<unsigned>(__builtin_clzll(v[n - 1]));
  // Normalize: v <<= s, u <<= s with one extra word for the overflow.
  if (s != 0) {
    for (size_t i = n; i-- > 1;) {
      v[i] = (v[i] << s) | (v[i - 1] >> (64 - s));
    }
    v[0] <<= s;
  }
  u.push_back(0);
  if (s != 0) {
    for (size_t i = u.size(); i-- > 1;) {
      u[i] = (u[i] << s) | (u[i - 1] >> (64 - s));
    }
    u[0] <<= s;
  }
  trace::Count("bigint/divmod_normalizations");

  std::vector<uint64_t> q(m + 1, 0);
  constexpr unsigned __int128 kWordBase = static_cast<unsigned __int128>(1)
                                          << 64;
  for (size_t j = m + 1; j-- > 0;) {
    // Two-word quotient estimate against the normalized top divisor
    // word, then the classic correction loop against the second word.
    unsigned __int128 numerator =
        (static_cast<unsigned __int128>(u[j + n]) << 64) | u[j + n - 1];
    unsigned __int128 qhat = numerator / v[n - 1];
    unsigned __int128 rhat = numerator % v[n - 1];
    while (qhat >= kWordBase ||
           qhat * v[n - 2] >
               ((rhat << 64) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kWordBase) break;
    }
    uint64_t qh = static_cast<uint64_t>(qhat);
    // Multiply-subtract u[j..j+n] -= qh * v, tracking the signed
    // borrow in __int128 (Hacker's Delight divmnu, widened to 64-bit
    // words).
    signed __int128 t;
    signed __int128 k = 0;
    for (size_t i = 0; i < n; ++i) {
      unsigned __int128 p = static_cast<unsigned __int128>(qh) * v[i];
      t = static_cast<signed __int128>(u[i + j]) - k -
          static_cast<signed __int128>(static_cast<uint64_t>(p));
      u[i + j] = static_cast<uint64_t>(t);
      k = static_cast<signed __int128>(static_cast<uint64_t>(p >> 64)) -
          (t >> 64);
    }
    t = static_cast<signed __int128>(u[j + n]) - k;
    u[j + n] = static_cast<uint64_t>(t);
    q[j] = qh;
    if (t < 0) {
      // qhat overestimated by one (probability ~2/2^64 per step, but
      // reachable — see the targeted add-back test): add v back.
      --q[j];
      unsigned __int128 carry = 0;
      for (size_t i = 0; i < n; ++i) {
        unsigned __int128 sum =
            static_cast<unsigned __int128>(u[i + j]) + v[i] + carry;
        u[i + j] = static_cast<uint64_t>(sum);
        carry = sum >> 64;
      }
      u[j + n] += static_cast<uint64_t>(carry);
    }
  }
  if (r_out != nullptr) {
    // Remainder = u[0..n) denormalized.
    if (s != 0) {
      for (size_t i = 0; i + 1 < n; ++i) {
        u[i] = (u[i] >> s) | (u[i + 1] << (64 - s));
      }
      u[n - 1] >>= s;
    }
    WordsToLimbs(u.data(), n, r_out);
  }
  if (q_out != nullptr) WordsToLimbs(q.data(), q.size(), q_out);
}

// Reference magnitude multiply: the pre-Karatsuba 32-bit schoolbook
// double loop, kept verbatim for differential runs.
Limbs MulMagnitudeReference(const Limbs& a, const Limbs& b) {
  Limbs result;
  result.reserve(a.size() + b.size());
  result.assign(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = result[i + j] + carry + uint64_t{a[i]} * uint64_t{b[j]};
      result[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry != 0) {
      uint64_t cur = result[k] + carry;
      result[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

}  // namespace

BigInt::BigInt(int64_t value) {
  negative_ = value < 0;
  // Careful with INT64_MIN: negate in unsigned space.
  uint64_t magnitude =
      negative_ ? ~static_cast<uint64_t>(value) + 1 : static_cast<uint64_t>(value);
  SetMagnitude64(magnitude);
}

void BigInt::ForceReferenceKernels(bool on) {
  g_reference_kernels.store(on, std::memory_order_relaxed);
}

bool BigInt::ReferenceKernelsForced() { return UseReferenceKernels(); }

Result<BigInt> BigInt::FromString(const std::string& text) {
  size_t pos = 0;
  bool negative = false;
  if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) {
    negative = text[pos] == '-';
    ++pos;
  }
  if (pos >= text.size()) {
    return Status::InvalidArgument("empty integer literal: '" + text + "'");
  }
  // Accumulate nine digits at a time: one fused MulAddSmall carry pass
  // per chunk instead of one multiply + add per digit.
  static constexpr int64_t kPow10[10] = {
      1,      10,      100,      1000,      10000,
      100000, 1000000, 10000000, 100000000, 1000000000};
  BigInt result;
  int64_t chunk = 0;
  int chunk_len = 0;
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad digit in integer literal: '" + text +
                                     "'");
    }
    chunk = chunk * 10 + (c - '0');
    if (++chunk_len == 9) {
      result.MulAddSmall(kPow10[9], chunk);
      chunk = 0;
      chunk_len = 0;
    }
  }
  if (chunk_len > 0) result.MulAddSmall(kPow10[chunk_len], chunk);
  result.negative_ = negative && !result.is_zero();
  return result;
}

BigInt BigInt::Pow2(uint64_t exponent) {
  BigInt result;
  result.limbs_.assign(exponent / 32 + 1, 0);
  result.limbs_.back() = uint32_t{1} << (exponent % 32);
  return result;
}

BigInt BigInt::Pow(const BigInt& base, uint64_t exponent) {
  BigInt result(1);
  BigInt acc = base;
  while (exponent > 0) {
    if (exponent & 1) result *= acc;
    exponent >>= 1;
    if (exponent > 0) acc *= acc;
  }
  return result;
}

bool BigInt::FitsInt64() const {
  if (limbs_.size() > 2) return false;
  uint64_t magnitude = Magnitude64();
  if (negative_) return magnitude <= (uint64_t{1} << 63);
  return magnitude < (uint64_t{1} << 63);
}

Result<int64_t> BigInt::TryToInt64() const {
  if (!FitsInt64()) {
    return Status::ResourceExhausted("BigInt value " + ToString() +
                                     " does not fit in int64");
  }
  uint64_t magnitude = Magnitude64();
  // Negate in the unsigned domain: -INT64_MIN overflows int64, but
  // 2^64 - magnitude converts to exactly the right two's-complement
  // value (including magnitude == 2^63).
  return negative_ ? static_cast<int64_t>(0 - magnitude)
                   : static_cast<int64_t>(magnitude);
}

double BigInt::ToDouble() const {
  double value = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    value = value * static_cast<double>(kLimbBase) + limbs_[i];
  }
  return negative_ ? -value : value;
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  // Repeatedly divide by 10^9 (single-limb divisor).
  constexpr uint32_t kChunk = 1000000000;
  Limbs work = limbs_;
  std::string digits;
  while (!work.empty()) {
    uint64_t remainder = 0;
    for (size_t i = work.size(); i-- > 0;) {
      uint64_t cur = (remainder << 32) | work[i];
      work[i] = static_cast<uint32_t>(cur / kChunk);
      remainder = cur % kChunk;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    char buf[16];
    if (work.empty()) {
      std::snprintf(buf, sizeof(buf), "%u", static_cast<uint32_t>(remainder));
    } else {
      std::snprintf(buf, sizeof(buf), "%09u", static_cast<uint32_t>(remainder));
    }
    std::string chunk(buf);
    std::reverse(chunk.begin(), chunk.end());
    digits += chunk;
  }
  if (negative_) digits += '-';
  std::reverse(digits.begin(), digits.end());
  return digits;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

size_t BigInt::TrailingZeroBits() const {
  if (limbs_.empty()) return 0;
  size_t i = 0;
  while (limbs_[i] == 0) ++i;  // some limb is nonzero (value != 0)
  return i * 32 +
         static_cast<size_t>(__builtin_ctz(limbs_[i]));
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.is_zero()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

int BigInt::CompareMagnitude(const Limbs& a, const Limbs& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

Limbs BigInt::AddMagnitude(const Limbs& a, const Limbs& b) {
  const Limbs& longer = a.size() >= b.size() ? a : b;
  const Limbs& shorter = a.size() >= b.size() ? b : a;
  Limbs result;
  result.assign(longer.size(), 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < longer.size(); ++i) {
    uint64_t sum = carry + longer[i] + (i < shorter.size() ? shorter[i] : 0);
    result[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry != 0) result.push_back(static_cast<uint32_t>(carry));
  return result;
}

Limbs BigInt::SubMagnitude(const Limbs& a, const Limbs& b) {
  Limbs result;
  result.assign(a.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    result[i] = static_cast<uint32_t>(diff);
  }
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

namespace {

// a += b over raw limbs, growing a as needed. b must not alias a.
void AddMagnitudeInPlace(Limbs* a, const Limbs& b) {
  if (b.empty()) return;
  if (a->size() < b.size()) a->resize(b.size(), 0);
  uint64_t carry = 0;
  uint32_t* d = a->data();
  for (size_t i = 0; i < b.size(); ++i) {
    uint64_t sum = carry + d[i] + b[i];
    d[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  for (size_t i = b.size(); carry != 0 && i < a->size(); ++i) {
    uint64_t sum = carry + d[i];
    d[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry != 0) a->push_back(static_cast<uint32_t>(carry));
}

// a -= b over raw limbs; requires |a| >= |b| and no aliasing.
void SubMagnitudeInPlace(Limbs* a, const Limbs& b) {
  int64_t borrow = 0;
  uint32_t* d = a->data();
  for (size_t i = 0; i < b.size(); ++i) {
    int64_t diff = static_cast<int64_t>(d[i]) - borrow -
                   static_cast<int64_t>(b[i]);
    if (diff < 0) {
      diff += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    d[i] = static_cast<uint32_t>(diff);
  }
  for (size_t i = b.size(); borrow != 0; ++i) {
    // Terminates inside a by the |a| >= |b| precondition.
    if (d[i] == 0) {
      d[i] = static_cast<uint32_t>(kLimbBase - 1);
    } else {
      --d[i];
      borrow = 0;
    }
  }
  while (!a->empty() && a->back() == 0) a->pop_back();
}

// a = b - a over raw limbs; requires |b| >= |a| and no aliasing.
void RevSubMagnitudeInPlace(Limbs* a, const Limbs& b) {
  if (a->size() < b.size()) a->resize(b.size(), 0);
  int64_t borrow = 0;
  uint32_t* d = a->data();
  for (size_t i = 0; i < b.size(); ++i) {
    int64_t diff = static_cast<int64_t>(b[i]) - borrow -
                   static_cast<int64_t>(d[i]);
    if (diff < 0) {
      diff += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    d[i] = static_cast<uint32_t>(diff);
  }
  while (!a->empty() && a->back() == 0) a->pop_back();
}

// a = a * multiplier (64-bit) in place: one low-to-high carry pass.
void MulSmallInPlace(Limbs* a, uint64_t multiplier) {
  if (a->empty()) return;
  if (multiplier == 0) {
    a->clear();
    return;
  }
  uint64_t carry = 0;
  uint32_t* d = a->data();
  for (size_t i = 0; i < a->size(); ++i) {
    unsigned __int128 cur =
        static_cast<unsigned __int128>(d[i]) * multiplier + carry;
    d[i] = static_cast<uint32_t>(cur);
    carry = static_cast<uint64_t>(cur >> 32);
  }
  while (carry != 0) {
    a->push_back(static_cast<uint32_t>(carry));
    carry >>= 32;
  }
}

}  // namespace

Limbs BigInt::MulMagnitude(const Limbs& a, const Limbs& b) {
  Limbs result;
  if (a.empty() || b.empty()) return result;
  // Single-limb fast path: one carry-propagating pass instead of the
  // schoolbook double loop. (2^32-1)^2 + carry stays below 2^64.
  // Shared by both kernel suites (it is already optimal).
  if (a.size() == 1 || b.size() == 1) {
    const Limbs& multi = a.size() == 1 ? b : a;
    const uint64_t single = (a.size() == 1 ? a : b)[0];
    result.reserve(multi.size() + 1);
    uint64_t carry = 0;
    for (size_t i = 0; i < multi.size(); ++i) {
      uint64_t cur = single * multi[i] + carry;
      result.push_back(static_cast<uint32_t>(cur));
      carry = cur >> 32;
    }
    if (carry != 0) result.push_back(static_cast<uint32_t>(carry));
    while (!result.empty() && result.back() == 0) result.pop_back();
    return result;
  }
  if (UseReferenceKernels()) {
    trace::Count("bigint/schoolbook_calls");
    return MulMagnitudeReference(a, b);
  }
  // Even-length operands on a little-endian target: the limb buffers
  // already are word vectors (see the Word comment above), so read them
  // and write the product in place — no conversion round trip, no
  // scratch product buffer.
  if constexpr (std::endian::native == std::endian::little) {
    if ((a.size() & 1) == 0 && (b.size() & 1) == 0) {
      const size_t an = a.size() / 2;
      const size_t bn = b.size() / 2;
      trace::Count(std::min(an, bn) >= kKaratsubaWords
                       ? "bigint/karatsuba_calls"
                       : "bigint/schoolbook_calls");
      result.resize_uninitialized(2 * (an + bn));
      const Word* wa = reinterpret_cast<const Word*>(a.data());
      const Word* wb = reinterpret_cast<const Word*>(b.data());
      Word* wr = reinterpret_cast<Word*>(result.data());
      if (std::min(an, bn) >= kKaratsubaWords) {
        MulWordsRec(wa, an, wb, bn, wr);
      } else if (an >= bn) {
        MulWordsSchoolbook(wa, an, wb, bn, wr);
      } else {
        MulWordsSchoolbook(wb, bn, wa, an, wr);
      }
      while (!result.empty() && result.back() == 0) result.pop_back();
      return result;
    }
  }
  // One thread_local scratch block (single TLS guard on the hot path)
  // reused across calls so steady-state multiplies do no heap work
  // beyond building the result limbs.
  struct MulScratch {
    std::vector<uint64_t> wa;
    std::vector<uint64_t> wb;
    std::vector<uint64_t> product;
  };
  static thread_local MulScratch scratch;
  std::vector<uint64_t>& wa = scratch.wa;
  std::vector<uint64_t>& wb = scratch.wb;
  std::vector<uint64_t>& product = scratch.product;
  LimbsToWordsInto(a, &wa);
  LimbsToWordsInto(b, &wb);
  product.resize(wa.size() + wb.size());  // fully overwritten below
  // The word views of normalized limb vectors are already trimmed (the
  // top word contains the nonzero top limb), so the below-threshold
  // case can skip MulWordsRec's trim/swap preamble entirely.
  if (std::min(wa.size(), wb.size()) >= kKaratsubaWords) {
    trace::Count("bigint/karatsuba_calls");
    MulWordsRec(wa.data(), wa.size(), wb.data(), wb.size(), product.data());
  } else {
    trace::Count("bigint/schoolbook_calls");
    if (wa.size() >= wb.size()) {
      MulWordsSchoolbook(wa.data(), wa.size(), wb.data(), wb.size(),
                         product.data());
    } else {
      MulWordsSchoolbook(wb.data(), wb.size(), wa.data(), wa.size(),
                         product.data());
    }
  }
  WordsToLimbs(product.data(), product.size(), &result);
  return result;
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt result;
  // Fast path: both magnitudes fit in 64 bits.
  if (limbs_.size() <= 2 && other.limbs_.size() <= 2) {
    unsigned __int128 a = Magnitude64();
    unsigned __int128 b = other.Magnitude64();
    if (negative_ == other.negative_) {
      unsigned __int128 sum = a + b;
      if (sum >> 64) {
        result.limbs_.push_back(static_cast<uint32_t>(sum));
        result.limbs_.push_back(static_cast<uint32_t>(sum >> 32));
        result.limbs_.push_back(static_cast<uint32_t>(sum >> 64));
      } else {
        result.SetMagnitude64(static_cast<uint64_t>(sum));
      }
      result.negative_ = !result.limbs_.empty() && negative_;
    } else {
      uint64_t ua = Magnitude64();
      uint64_t ub = other.Magnitude64();
      if (ua == ub) return BigInt();
      if (ua > ub) {
        result.SetMagnitude64(ua - ub);
        result.negative_ = negative_;
      } else {
        result.SetMagnitude64(ub - ua);
        result.negative_ = other.negative_;
      }
    }
    return result;
  }
  if (negative_ == other.negative_) {
    result.limbs_ = AddMagnitude(limbs_, other.limbs_);
    result.negative_ = negative_;
  } else {
    int cmp = CompareMagnitude(limbs_, other.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      result.limbs_ = SubMagnitude(limbs_, other.limbs_);
      result.negative_ = negative_;
    } else {
      result.limbs_ = SubMagnitude(other.limbs_, limbs_);
      result.negative_ = other.negative_;
    }
  }
  result.Normalize();
  return result;
}

BigInt BigInt::operator-(const BigInt& other) const { return *this + (-other); }

BigInt BigInt::operator*(const BigInt& other) const {
  BigInt result;
  // Fast path: product fits in 128 bits.
  if (limbs_.size() <= 2 && other.limbs_.size() <= 2) {
    unsigned __int128 product =
        static_cast<unsigned __int128>(Magnitude64()) * other.Magnitude64();
    if (product == 0) return result;
    result.limbs_.push_back(static_cast<uint32_t>(product));
    if (product >> 32) {
      result.limbs_.push_back(static_cast<uint32_t>(product >> 32));
    }
    if (product >> 64) {
      result.limbs_.push_back(static_cast<uint32_t>(product >> 64));
    }
    if (product >> 96) {
      result.limbs_.push_back(static_cast<uint32_t>(product >> 96));
    }
    result.negative_ = negative_ != other.negative_;
    return result;
  }
  result.limbs_ = MulMagnitude(limbs_, other.limbs_);
  result.negative_ = !result.limbs_.empty() && (negative_ != other.negative_);
  return result;
}

BigInt& BigInt::AddSigned(const BigInt& other, bool other_negative) {
  if (is_zero() || negative_ == other_negative) {
    if (is_zero()) negative_ = other_negative;
    AddMagnitudeInPlace(&limbs_, other.limbs_);
  } else {
    int cmp = CompareMagnitude(limbs_, other.limbs_);
    if (cmp == 0) {
      limbs_.clear();
    } else if (cmp > 0) {
      SubMagnitudeInPlace(&limbs_, other.limbs_);
    } else {
      RevSubMagnitudeInPlace(&limbs_, other.limbs_);
      negative_ = other_negative;
    }
  }
  Normalize();
  return *this;
}

BigInt& BigInt::operator+=(const BigInt& other) {
  if (this == &other) return ShlBits(1);  // x + x = 2x, sign preserved
  return AddSigned(other, other.negative_);
}

BigInt& BigInt::operator-=(const BigInt& other) {
  if (this == &other) {
    limbs_.clear();
    negative_ = false;
    return *this;
  }
  return AddSigned(other, !other.negative_);
}

BigInt& BigInt::operator*=(const BigInt& other) {
  if (is_zero() || other.is_zero()) {
    limbs_.clear();
    negative_ = false;
    return *this;
  }
  const bool result_negative = negative_ != other.negative_;
  if (other.limbs_.size() == 1) {
    // In place: a single carry pass over this value's own storage
    // (reads the multiplier first, so x *= x on one limb is safe too).
    MulSmallInPlace(&limbs_, other.limbs_[0]);
  } else if (limbs_.size() == 1) {
    const uint64_t single = limbs_[0];
    limbs_ = other.limbs_;
    MulSmallInPlace(&limbs_, single);
  } else {
    limbs_ = MulMagnitude(limbs_, other.limbs_);
  }
  negative_ = result_negative && !limbs_.empty();
  return *this;
}

BigInt& BigInt::MulAddSmall(int64_t multiplier, int64_t addend) {
  if (!negative_ && multiplier >= 0 && addend >= 0) {
    const uint64_t m = static_cast<uint64_t>(multiplier);
    if (m == 0) {
      SetMagnitude64(static_cast<uint64_t>(addend));
      negative_ = false;
      return *this;
    }
    // One fused pass: carry is seeded with the addend, so the add
    // costs nothing beyond the multiply's own carry propagation.
    uint64_t carry = static_cast<uint64_t>(addend);
    uint32_t* d = limbs_.data();
    for (size_t i = 0; i < limbs_.size(); ++i) {
      unsigned __int128 cur =
          static_cast<unsigned __int128>(d[i]) * m + carry;
      d[i] = static_cast<uint32_t>(cur);
      carry = static_cast<uint64_t>(cur >> 32);
    }
    while (carry != 0) {
      limbs_.push_back(static_cast<uint32_t>(carry));
      carry >>= 32;
    }
    Normalize();
    return *this;
  }
  return *this = *this * BigInt(multiplier) + BigInt(addend);
}

BigInt& BigInt::SubMul(const BigInt& b, const BigInt& c) {
  // The product is materialized once (b or c may alias *this); the
  // subtraction then runs in place over this value's storage.
  BigInt product = b * c;
  return AddSigned(product, !product.negative_);
}

BigInt& BigInt::ShlBits(uint64_t bits) {
  if (is_zero() || bits == 0) return *this;
  const size_t limb_shift = static_cast<size_t>(bits / 32);
  const unsigned bit_shift = static_cast<unsigned>(bits % 32);
  const size_t old_size = limbs_.size();
  limbs_.resize(old_size + limb_shift + (bit_shift != 0 ? 1 : 0), 0);
  uint32_t* d = limbs_.data();
  for (size_t i = old_size; i-- > 0;) {
    // bit_shift < 32, so the limb shift below never hits the UB width.
    uint64_t shifted = uint64_t{d[i]} << bit_shift;
    if (bit_shift != 0) {
      d[i + limb_shift + 1] |= static_cast<uint32_t>(shifted >> 32);
    }
    d[i + limb_shift] = static_cast<uint32_t>(shifted);
  }
  for (size_t i = 0; i < limb_shift; ++i) d[i] = 0;
  Normalize();
  return *this;
}

BigInt& BigInt::ShrBits(uint64_t bits) {
  if (is_zero() || bits == 0) return *this;
  if (bits >= BitLength()) {
    limbs_.clear();
    negative_ = false;
    return *this;
  }
  const size_t limb_shift = static_cast<size_t>(bits / 32);
  const unsigned bit_shift = static_cast<unsigned>(bits % 32);
  const size_t old_size = limbs_.size();
  uint32_t* d = limbs_.data();
  for (size_t i = 0; i + limb_shift < old_size; ++i) {
    uint64_t word = d[i + limb_shift];
    if (bit_shift != 0) {
      word >>= bit_shift;
      if (i + limb_shift + 1 < old_size) {
        // 1 <= bit_shift <= 31 keeps both shift widths in range.
        word |= uint64_t{d[i + limb_shift + 1]} << (32 - bit_shift);
      }
    }
    d[i] = static_cast<uint32_t>(word);
  }
  limbs_.resize(old_size - limb_shift);
  Normalize();
  return *this;
}

Status BigInt::DivMod(const BigInt& divisor, BigInt* quotient,
                      BigInt* remainder) const {
  if (divisor.is_zero()) {
    return Status::InvalidArgument("BigInt::DivMod: division by zero");
  }
  // Fast path: both magnitudes fit in 64 bits.
  if (limbs_.size() <= 2 && divisor.limbs_.size() <= 2) {
    uint64_t a = Magnitude64();
    uint64_t b = divisor.Magnitude64();
    if (quotient != nullptr) {
      BigInt q;
      q.SetMagnitude64(a / b);
      *quotient = std::move(q);
    }
    if (remainder != nullptr) {
      BigInt r;
      r.SetMagnitude64(a % b);
      *remainder = std::move(r);
    }
    return Status::OK();
  }
  // Fast path: divisor fits a machine word (one or two limbs). The
  // running remainder stays below the divisor, so each step divides a
  // value below 2^96 by a 64-bit word — a single __int128 divide per
  // limb instead of long division over every dividend bit.
  if (divisor.limbs_.size() <= 2) {
    const uint64_t b = divisor.Magnitude64();
    Limbs q;
    q.assign(limbs_.size(), 0);
    unsigned __int128 rem = 0;
    for (size_t i = limbs_.size(); i-- > 0;) {
      unsigned __int128 cur = (rem << 32) | limbs_[i];
      q[i] = static_cast<uint32_t>(cur / b);  // < 2^32 since rem < b
      rem = cur % b;
    }
    if (quotient != nullptr) {
      quotient->limbs_ = std::move(q);
      quotient->negative_ = false;
      quotient->Normalize();
    }
    if (remainder != nullptr) {
      BigInt r;
      r.SetMagnitude64(static_cast<uint64_t>(rem));
      *remainder = std::move(r);
    }
    return Status::OK();
  }
  // Divisor spans 3+ limbs. Settle the trivial orderings first so both
  // general kernels start from |dividend| > |divisor|.
  const int cmp = CompareMagnitude(limbs_, divisor.limbs_);
  if (cmp < 0) {
    if (quotient != nullptr) *quotient = BigInt();
    if (remainder != nullptr) *remainder = Abs();
    return Status::OK();
  }
  if (cmp == 0) {
    if (quotient != nullptr) *quotient = BigInt(1);
    if (remainder != nullptr) *remainder = BigInt();
    return Status::OK();
  }
  if (!UseReferenceKernels()) {
    Limbs q;
    Limbs r;
    KnuthDivModImpl(limbs_, divisor.limbs_, quotient != nullptr ? &q : nullptr,
                    remainder != nullptr ? &r : nullptr);
    if (quotient != nullptr) {
      quotient->limbs_ = std::move(q);
      quotient->negative_ = false;
      quotient->Normalize();
    }
    if (remainder != nullptr) {
      remainder->limbs_ = std::move(r);
      remainder->negative_ = false;
      remainder->Normalize();
    }
    return Status::OK();
  }
  // Reference kernel: binary long division on magnitudes — scan
  // dividend bits from the most significant downward, maintaining the
  // running remainder.
  BigInt rem;
  BigInt quot;
  const size_t bits = BitLength();
  quot.limbs_.assign(bits / 32 + 1, 0);
  for (size_t i = bits; i-- > 0;) {
    ShiftLeftSmall(&rem.limbs_, 1);
    uint32_t bit = (limbs_[i / 32] >> (i % 32)) & 1;
    if (bit != 0) {
      if (rem.limbs_.empty()) {
        rem.limbs_.push_back(1);
      } else {
        rem.limbs_[0] |= 1;
      }
    }
    if (CompareMagnitude(rem.limbs_, divisor.limbs_) >= 0) {
      rem.limbs_ = SubMagnitude(rem.limbs_, divisor.limbs_);
      quot.limbs_[i / 32] |= uint32_t{1} << (i % 32);
    }
  }
  quot.Normalize();
  rem.Normalize();
  if (quotient != nullptr) *quotient = std::move(quot);
  if (remainder != nullptr) *remainder = std::move(rem);
  return Status::OK();
}

// The operator forms keep value signatures; every internal caller
// guards against zero divisors (Rational normalization, simplex ratio
// tests, the Gcd loop), so the degenerate zero result below is
// unreachable from library code and merely keeps arbitrary callers
// crash-free.
BigInt BigInt::operator/(const BigInt& other) const {
  BigInt quotient;
  if (!DivMod(other, &quotient, nullptr).ok()) return BigInt();
  quotient.negative_ = !quotient.is_zero() && (negative_ != other.negative_);
  return quotient;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt remainder;
  if (!DivMod(other, nullptr, &remainder).ok()) return BigInt();
  remainder.negative_ = !remainder.is_zero() && negative_;
  return remainder;
}

BigInt BigInt::FloorDiv(const BigInt& other) const {
  BigInt quotient;
  BigInt remainder;
  if (!DivMod(other, &quotient, &remainder).ok()) return BigInt();
  bool exact = remainder.is_zero();
  bool negative_result = negative_ != other.negative_;
  quotient.negative_ = !quotient.is_zero() && negative_result;
  if (!exact && negative_result) quotient -= 1;
  return quotient;
}

BigInt BigInt::CeilDiv(const BigInt& other) const {
  BigInt quotient;
  BigInt remainder;
  if (!DivMod(other, &quotient, &remainder).ok()) return BigInt();
  bool exact = remainder.is_zero();
  bool negative_result = negative_ != other.negative_;
  quotient.negative_ = !quotient.is_zero() && negative_result;
  if (!exact && !negative_result) quotient += 1;
  return quotient;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  // Fast path: both fit in 64 bits.
  if (a.limbs_.size() <= 2 && b.limbs_.size() <= 2) {
    BigInt result;
    result.SetMagnitude64(NativeGcd(a.Magnitude64(), b.Magnitude64()));
    return result;
  }
  if (UseReferenceKernels()) {
    // Reference kernel: Euclid on magnitudes; falls into the native
    // path as soon as both operands shrink below 64 bits.
    BigInt x = a.Abs();
    BigInt y = b.Abs();
    while (!y.is_zero()) {
      if (x.limbs_.size() <= 2 && y.limbs_.size() <= 2) {
        BigInt result;
        result.SetMagnitude64(NativeGcd(x.Magnitude64(), y.Magnitude64()));
        return result;
      }
      BigInt remainder;
      // y is nonzero by the loop condition.
      (void)x.DivMod(y, nullptr, &remainder);
      x = std::move(y);
      y = std::move(remainder);
    }
    return x;
  }
  // Binary (Stein) GCD on magnitudes: shifts and in-place subtractions
  // only — no division in the loop, which is what made Euclid dominate
  // Rational::Normalize on promoted tiers. One initial Euclid step
  // equalizes wildly mismatched operand sizes (gcd(huge, small) would
  // otherwise subtract its way down); after that each iteration
  // removes at least one bit.
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  if (x.is_zero()) return y;
  if (y.is_zero()) return x;
  if (x.limbs_.size() + 2 < y.limbs_.size() ||
      y.limbs_.size() + 2 < x.limbs_.size()) {
    BigInt& big = x.limbs_.size() > y.limbs_.size() ? x : y;
    BigInt& small = x.limbs_.size() > y.limbs_.size() ? y : x;
    BigInt remainder;
    (void)big.DivMod(small, nullptr, &remainder);
    big = std::move(remainder);
    if (big.is_zero()) return small;
  }
  const size_t x_twos = x.TrailingZeroBits();
  const size_t y_twos = y.TrailingZeroBits();
  const size_t common_twos = std::min(x_twos, y_twos);
  x.ShrBits(x_twos);
  y.ShrBits(y_twos);
  int64_t iterations = 0;
  // Invariant: x and y are odd and positive.
  while (true) {
    if (x.limbs_.size() <= 2 && y.limbs_.size() <= 2) {
      BigInt result;
      result.SetMagnitude64(NativeGcd(x.Magnitude64(), y.Magnitude64()));
      trace::Count("bigint/gcd_iterations", iterations);
      return result.ShlBits(common_twos);
    }
    int cmp = CompareMagnitude(x.limbs_, y.limbs_);
    if (cmp == 0) break;
    if (cmp < 0) std::swap(x, y);
    x -= y;                        // even and nonzero now
    x.ShrBits(x.TrailingZeroBits());
    ++iterations;
  }
  trace::Count("bigint/gcd_iterations", iterations);
  return x.ShlBits(common_twos);
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int magnitude_cmp = CompareMagnitude(limbs_, other.limbs_);
  return negative_ ? -magnitude_cmp : magnitude_cmp;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace xmlverify
