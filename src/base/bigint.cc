#include "base/bigint.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace xmlverify {

namespace {

constexpr uint64_t kLimbBase = uint64_t{1} << 32;

using Limbs = internal_bigint::LimbVector;

// Shifts a magnitude left by `bits` (< 32) bit positions, in place.
void ShiftLeftSmall(Limbs* limbs, unsigned bits) {
  if (bits == 0 || limbs->empty()) return;
  uint32_t carry = 0;
  for (uint32_t& limb : *limbs) {
    uint64_t shifted = (uint64_t{limb} << bits) | carry;
    limb = static_cast<uint32_t>(shifted);
    carry = static_cast<uint32_t>(shifted >> 32);
  }
  if (carry != 0) limbs->push_back(carry);
}

uint64_t NativeGcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

BigInt::BigInt(int64_t value) {
  negative_ = value < 0;
  // Careful with INT64_MIN: negate in unsigned space.
  uint64_t magnitude =
      negative_ ? ~static_cast<uint64_t>(value) + 1 : static_cast<uint64_t>(value);
  SetMagnitude64(magnitude);
}

Result<BigInt> BigInt::FromString(const std::string& text) {
  size_t pos = 0;
  bool negative = false;
  if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) {
    negative = text[pos] == '-';
    ++pos;
  }
  if (pos >= text.size()) {
    return Status::InvalidArgument("empty integer literal: '" + text + "'");
  }
  BigInt result;
  const BigInt ten(10);
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad digit in integer literal: '" + text +
                                     "'");
    }
    result = result * ten + BigInt(c - '0');
  }
  result.negative_ = negative && !result.is_zero();
  return result;
}

BigInt BigInt::Pow2(uint64_t exponent) {
  BigInt result;
  result.limbs_.assign(exponent / 32 + 1, 0);
  result.limbs_.back() = uint32_t{1} << (exponent % 32);
  return result;
}

BigInt BigInt::Pow(const BigInt& base, uint64_t exponent) {
  BigInt result(1);
  BigInt acc = base;
  while (exponent > 0) {
    if (exponent & 1) result *= acc;
    exponent >>= 1;
    if (exponent > 0) acc *= acc;
  }
  return result;
}

bool BigInt::FitsInt64() const {
  if (limbs_.size() > 2) return false;
  uint64_t magnitude = Magnitude64();
  if (negative_) return magnitude <= (uint64_t{1} << 63);
  return magnitude < (uint64_t{1} << 63);
}

Result<int64_t> BigInt::TryToInt64() const {
  if (!FitsInt64()) {
    return Status::ResourceExhausted("BigInt value " + ToString() +
                                     " does not fit in int64");
  }
  uint64_t magnitude = Magnitude64();
  return negative_ ? -static_cast<int64_t>(magnitude)
                   : static_cast<int64_t>(magnitude);
}

double BigInt::ToDouble() const {
  double value = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    value = value * static_cast<double>(kLimbBase) + limbs_[i];
  }
  return negative_ ? -value : value;
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  // Repeatedly divide by 10^9 (single-limb divisor).
  constexpr uint32_t kChunk = 1000000000;
  Limbs work = limbs_;
  std::string digits;
  while (!work.empty()) {
    uint64_t remainder = 0;
    for (size_t i = work.size(); i-- > 0;) {
      uint64_t cur = (remainder << 32) | work[i];
      work[i] = static_cast<uint32_t>(cur / kChunk);
      remainder = cur % kChunk;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    char buf[16];
    if (work.empty()) {
      std::snprintf(buf, sizeof(buf), "%u", static_cast<uint32_t>(remainder));
    } else {
      std::snprintf(buf, sizeof(buf), "%09u", static_cast<uint32_t>(remainder));
    }
    std::string chunk(buf);
    std::reverse(chunk.begin(), chunk.end());
    digits += chunk;
  }
  if (negative_) digits += '-';
  std::reverse(digits.begin(), digits.end());
  return digits;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.is_zero()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

int BigInt::CompareMagnitude(const Limbs& a, const Limbs& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

Limbs BigInt::AddMagnitude(const Limbs& a, const Limbs& b) {
  const Limbs& longer = a.size() >= b.size() ? a : b;
  const Limbs& shorter = a.size() >= b.size() ? b : a;
  Limbs result;
  result.assign(longer.size(), 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < longer.size(); ++i) {
    uint64_t sum = carry + longer[i] + (i < shorter.size() ? shorter[i] : 0);
    result[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry != 0) result.push_back(static_cast<uint32_t>(carry));
  return result;
}

Limbs BigInt::SubMagnitude(const Limbs& a, const Limbs& b) {
  Limbs result;
  result.assign(a.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    result[i] = static_cast<uint32_t>(diff);
  }
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

Limbs BigInt::MulMagnitude(const Limbs& a, const Limbs& b) {
  Limbs result;
  if (a.empty() || b.empty()) return result;
  // Single-limb fast path: one carry-propagating pass instead of the
  // schoolbook double loop. (2^32-1)^2 + carry stays below 2^64.
  if (a.size() == 1 || b.size() == 1) {
    const Limbs& multi = a.size() == 1 ? b : a;
    const uint64_t single = (a.size() == 1 ? a : b)[0];
    result.reserve(multi.size() + 1);
    uint64_t carry = 0;
    for (size_t i = 0; i < multi.size(); ++i) {
      uint64_t cur = single * multi[i] + carry;
      result.push_back(static_cast<uint32_t>(cur));
      carry = cur >> 32;
    }
    if (carry != 0) result.push_back(static_cast<uint32_t>(carry));
    while (!result.empty() && result.back() == 0) result.pop_back();
    return result;
  }
  result.reserve(a.size() + b.size());
  result.assign(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur =
          result[i + j] + carry + uint64_t{a[i]} * uint64_t{b[j]};
      result[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry != 0) {
      uint64_t cur = result[k] + carry;
      result[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt result;
  // Fast path: both magnitudes fit in 64 bits.
  if (limbs_.size() <= 2 && other.limbs_.size() <= 2) {
    unsigned __int128 a = Magnitude64();
    unsigned __int128 b = other.Magnitude64();
    if (negative_ == other.negative_) {
      unsigned __int128 sum = a + b;
      if (sum >> 64) {
        result.limbs_.push_back(static_cast<uint32_t>(sum));
        result.limbs_.push_back(static_cast<uint32_t>(sum >> 32));
        result.limbs_.push_back(static_cast<uint32_t>(sum >> 64));
      } else {
        result.SetMagnitude64(static_cast<uint64_t>(sum));
      }
      result.negative_ = !result.limbs_.empty() && negative_;
    } else {
      uint64_t ua = Magnitude64();
      uint64_t ub = other.Magnitude64();
      if (ua == ub) return BigInt();
      if (ua > ub) {
        result.SetMagnitude64(ua - ub);
        result.negative_ = negative_;
      } else {
        result.SetMagnitude64(ub - ua);
        result.negative_ = other.negative_;
      }
    }
    return result;
  }
  if (negative_ == other.negative_) {
    result.limbs_ = AddMagnitude(limbs_, other.limbs_);
    result.negative_ = negative_;
  } else {
    int cmp = CompareMagnitude(limbs_, other.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      result.limbs_ = SubMagnitude(limbs_, other.limbs_);
      result.negative_ = negative_;
    } else {
      result.limbs_ = SubMagnitude(other.limbs_, limbs_);
      result.negative_ = other.negative_;
    }
  }
  result.Normalize();
  return result;
}

BigInt BigInt::operator-(const BigInt& other) const { return *this + (-other); }

BigInt BigInt::operator*(const BigInt& other) const {
  BigInt result;
  // Fast path: product fits in 128 bits.
  if (limbs_.size() <= 2 && other.limbs_.size() <= 2) {
    unsigned __int128 product =
        static_cast<unsigned __int128>(Magnitude64()) * other.Magnitude64();
    if (product == 0) return result;
    result.limbs_.push_back(static_cast<uint32_t>(product));
    if (product >> 32) result.limbs_.push_back(static_cast<uint32_t>(product >> 32));
    if (product >> 64) result.limbs_.push_back(static_cast<uint32_t>(product >> 64));
    if (product >> 96) result.limbs_.push_back(static_cast<uint32_t>(product >> 96));
    result.negative_ = negative_ != other.negative_;
    return result;
  }
  result.limbs_ = MulMagnitude(limbs_, other.limbs_);
  result.negative_ = !result.limbs_.empty() && (negative_ != other.negative_);
  return result;
}

Status BigInt::DivMod(const BigInt& divisor, BigInt* quotient,
                      BigInt* remainder) const {
  if (divisor.is_zero()) {
    return Status::InvalidArgument("BigInt::DivMod: division by zero");
  }
  // Fast path: both magnitudes fit in 64 bits.
  if (limbs_.size() <= 2 && divisor.limbs_.size() <= 2) {
    uint64_t a = Magnitude64();
    uint64_t b = divisor.Magnitude64();
    if (quotient != nullptr) {
      BigInt q;
      q.SetMagnitude64(a / b);
      *quotient = std::move(q);
    }
    if (remainder != nullptr) {
      BigInt r;
      r.SetMagnitude64(a % b);
      *remainder = std::move(r);
    }
    return Status::OK();
  }
  // Fast path: divisor fits a machine word (one or two limbs). The
  // running remainder stays below the divisor, so each step divides a
  // value below 2^96 by a 64-bit word — a single __int128 divide per
  // limb instead of binary long division over every dividend bit.
  if (divisor.limbs_.size() <= 2) {
    const uint64_t b = divisor.Magnitude64();
    Limbs q;
    q.assign(limbs_.size(), 0);
    unsigned __int128 rem = 0;
    for (size_t i = limbs_.size(); i-- > 0;) {
      unsigned __int128 cur = (rem << 32) | limbs_[i];
      q[i] = static_cast<uint32_t>(cur / b);  // < 2^32 since rem < b
      rem = cur % b;
    }
    if (quotient != nullptr) {
      quotient->limbs_ = std::move(q);
      quotient->negative_ = false;
      quotient->Normalize();
    }
    if (remainder != nullptr) {
      BigInt r;
      r.SetMagnitude64(static_cast<uint64_t>(rem));
      *remainder = std::move(r);
    }
    return Status::OK();
  }
  // Binary long division on magnitudes: scan dividend bits from the
  // most significant downward, maintaining the running remainder.
  BigInt rem;
  BigInt quot;
  const size_t bits = BitLength();
  quot.limbs_.assign(bits / 32 + 1, 0);
  for (size_t i = bits; i-- > 0;) {
    ShiftLeftSmall(&rem.limbs_, 1);
    uint32_t bit = (limbs_[i / 32] >> (i % 32)) & 1;
    if (bit != 0) {
      if (rem.limbs_.empty()) {
        rem.limbs_.push_back(1);
      } else {
        rem.limbs_[0] |= 1;
      }
    }
    if (CompareMagnitude(rem.limbs_, divisor.limbs_) >= 0) {
      rem.limbs_ = SubMagnitude(rem.limbs_, divisor.limbs_);
      quot.limbs_[i / 32] |= uint32_t{1} << (i % 32);
    }
  }
  quot.Normalize();
  rem.Normalize();
  if (quotient != nullptr) *quotient = std::move(quot);
  if (remainder != nullptr) *remainder = std::move(rem);
  return Status::OK();
}

// The operator forms keep value signatures; every internal caller
// guards against zero divisors (Rational normalization, simplex ratio
// tests, the Gcd loop), so the degenerate zero result below is
// unreachable from library code and merely keeps arbitrary callers
// crash-free.
BigInt BigInt::operator/(const BigInt& other) const {
  BigInt quotient;
  if (!DivMod(other, &quotient, nullptr).ok()) return BigInt();
  quotient.negative_ = !quotient.is_zero() && (negative_ != other.negative_);
  return quotient;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt remainder;
  if (!DivMod(other, nullptr, &remainder).ok()) return BigInt();
  remainder.negative_ = !remainder.is_zero() && negative_;
  return remainder;
}

BigInt BigInt::FloorDiv(const BigInt& other) const {
  BigInt quotient;
  BigInt remainder;
  if (!DivMod(other, &quotient, &remainder).ok()) return BigInt();
  bool exact = remainder.is_zero();
  bool negative_result = negative_ != other.negative_;
  quotient.negative_ = !quotient.is_zero() && negative_result;
  if (!exact && negative_result) quotient -= 1;
  return quotient;
}

BigInt BigInt::CeilDiv(const BigInt& other) const {
  BigInt quotient;
  BigInt remainder;
  if (!DivMod(other, &quotient, &remainder).ok()) return BigInt();
  bool exact = remainder.is_zero();
  bool negative_result = negative_ != other.negative_;
  quotient.negative_ = !quotient.is_zero() && negative_result;
  if (!exact && !negative_result) quotient += 1;
  return quotient;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  // Fast path: both fit in 64 bits.
  if (a.limbs_.size() <= 2 && b.limbs_.size() <= 2) {
    BigInt result;
    result.SetMagnitude64(NativeGcd(a.Magnitude64(), b.Magnitude64()));
    return result;
  }
  // Euclid on magnitudes; falls into the native path as soon as both
  // operands shrink below 64 bits.
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.is_zero()) {
    if (x.limbs_.size() <= 2 && y.limbs_.size() <= 2) {
      BigInt result;
      result.SetMagnitude64(NativeGcd(x.Magnitude64(), y.Magnitude64()));
      return result;
    }
    BigInt remainder;
    // y is nonzero by the loop condition.
    (void)x.DivMod(y, nullptr, &remainder);
    x = std::move(y);
    y = std::move(remainder);
  }
  return x;
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int magnitude_cmp = CompareMagnitude(limbs_, other.limbs_);
  return negative_ ? -magnitude_cmp : magnitude_cmp;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace xmlverify
