// Process-wide resource governance for the decision procedures.
//
// Every worst-case-exponential procedure in the pipeline (the ILP
// solver, the exact simplex, the bounded enumerations, the scope
// recursion) already polls a wall-clock Deadline. A ResourceBudget
// extends that single axis to three:
//
//   * wall clock   — the existing Deadline, unchanged semantics;
//   * memory       — a tracked-allocation ceiling: procedures charge
//     their dominant allocations (search nodes, tableaux, candidate
//     trees) against the budget and release them when freed;
//   * recursion    — a depth ceiling for recursive descents (parser
//     nesting, hierarchical scope towers).
//
// Exhaustion surfaces as Status kResourceExhausted (memory/depth) or
// kDeadlineExceeded (clock) and is never interpreted as a SAT/UNSAT
// verdict. Budgets are cheap value types in the style of Deadline:
// copy them freely into option structs and worker threads — copies
// share one accounting block, so charges made by a solver deep in the
// call tree are visible to the caller holding another copy.
#ifndef XMLVERIFY_BASE_RESOURCE_GUARD_H_
#define XMLVERIFY_BASE_RESOURCE_GUARD_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "base/deadline.h"
#include "base/status.h"

namespace xmlverify {

/// Default nesting ceiling for the recursive-descent parsers (regex
/// groups, XML element nesting, and everything that parses through
/// them). Deep enough for any sane specification, shallow enough that
/// ~4 stack frames per level cannot overflow a default thread stack.
inline constexpr int kDefaultMaxParseDepth = 1000;

/// Current parser nesting ceiling (kDefaultMaxParseDepth unless
/// overridden). Read by the parsers on every nesting step.
int MaxParseDepth();

/// Overrides the parser nesting ceiling process-wide (the CLI's
/// `--max-depth=N`). Non-positive values restore the default. Raising
/// it far beyond the default risks stack overflow on adversarial
/// input; the caller accepts that trade.
void SetMaxParseDepth(int depth);

class ResourceBudget {
 public:
  /// Unlimited on every axis (but still tracks memory accounting, so
  /// peak usage can be observed even without a ceiling).
  ResourceBudget() : accounting_(std::make_shared<Accounting>()) {}

  static ResourceBudget Unlimited() { return ResourceBudget(); }

  const Deadline& deadline() const { return deadline_; }
  void set_deadline(const Deadline& deadline) { deadline_ = deadline; }

  /// Memory ceiling in bytes; 0 means unlimited.
  int64_t memory_limit_bytes() const { return memory_limit_bytes_; }
  void set_memory_limit_bytes(int64_t bytes) {
    memory_limit_bytes_ = bytes < 0 ? 0 : bytes;
  }

  /// Recursion-depth ceiling; 0 means unlimited.
  int max_depth() const { return max_depth_; }
  void set_max_depth(int depth) { max_depth_ = depth < 0 ? 0 : depth; }

  /// Records `bytes` of tracked allocation attributed to `site`.
  /// Fails with kResourceExhausted when the ceiling would be crossed
  /// (the charge is then not recorded) or when the fault injector has
  /// an armed `alloc` point. Sites are short static strings such as
  /// "solver/node" — they name the charge in error messages and in
  /// the resource/* counters.
  Status ChargeMemory(int64_t bytes, const char* site) const;

  /// Returns a previous charge. Never fails; clamped at zero.
  void ReleaseMemory(int64_t bytes) const;

  int64_t memory_used() const {
    return accounting_->used.load(std::memory_order_relaxed);
  }
  /// High-water mark of tracked usage across all copies that share
  /// this budget's accounting block.
  int64_t memory_peak() const {
    return accounting_->peak.load(std::memory_order_relaxed);
  }

  /// kDeadlineExceeded once the wall clock has passed the deadline.
  Status CheckDeadline(const char* site) const;

  /// kResourceExhausted when `depth` exceeds the depth ceiling.
  Status CheckDepth(int depth, const char* site) const;

 private:
  struct Accounting {
    std::atomic<int64_t> used{0};
    std::atomic<int64_t> peak{0};
  };

  Deadline deadline_;
  int64_t memory_limit_bytes_ = 0;
  int max_depth_ = 0;
  // Shared across copies: the solver charging against its options'
  // budget is visible to the checker that stamped the budget in.
  std::shared_ptr<Accounting> accounting_;
};

/// RAII form of ChargeMemory/ReleaseMemory. Check `status()` right
/// after construction: on failure nothing was charged and nothing
/// will be released.
class ScopedMemoryCharge {
 public:
  ScopedMemoryCharge(const ResourceBudget& budget, int64_t bytes,
                     const char* site)
      : budget_(budget), bytes_(bytes),
        status_(budget_.ChargeMemory(bytes, site)) {}
  ~ScopedMemoryCharge() {
    if (status_.ok()) budget_.ReleaseMemory(bytes_);
  }
  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;

  const Status& status() const { return status_; }

 private:
  ResourceBudget budget_;
  int64_t bytes_;
  Status status_;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_BASE_RESOURCE_GUARD_H_
