#include "base/resource_guard.h"

#include <string>

#include "base/fault_injection.h"
#include "trace/trace.h"

namespace xmlverify {

namespace {

std::atomic<int> g_max_parse_depth{kDefaultMaxParseDepth};

}  // namespace

int MaxParseDepth() {
  return g_max_parse_depth.load(std::memory_order_relaxed);
}

void SetMaxParseDepth(int depth) {
  g_max_parse_depth.store(depth <= 0 ? kDefaultMaxParseDepth : depth,
                          std::memory_order_relaxed);
}

Status ResourceBudget::ChargeMemory(int64_t bytes, const char* site) const {
  if (bytes < 0) bytes = 0;
  if (FaultInjector::ShouldFail("alloc")) {
    return Status::ResourceExhausted(std::string("injected fault at alloc (") +
                                     site + ")");
  }
  int64_t used =
      accounting_->used.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (memory_limit_bytes_ > 0 && used > memory_limit_bytes_) {
    accounting_->used.fetch_sub(bytes, std::memory_order_relaxed);
    trace::Count("resource/memory_exhausted");
    return Status::ResourceExhausted(
        std::string("memory budget exhausted at ") + site + ": " +
        std::to_string(used) + " bytes tracked, limit " +
        std::to_string(memory_limit_bytes_));
  }
  // Lock-free high-water mark; racing writers settle on the maximum.
  int64_t peak = accounting_->peak.load(std::memory_order_relaxed);
  while (used > peak &&
         !accounting_->peak.compare_exchange_weak(peak, used,
                                                  std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void ResourceBudget::ReleaseMemory(int64_t bytes) const {
  if (bytes <= 0) return;
  int64_t used =
      accounting_->used.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
  // A release without a matching charge (a bug, not input-dependent)
  // must not wedge the budget permanently negative.
  if (used < 0) accounting_->used.store(0, std::memory_order_relaxed);
}

Status ResourceBudget::CheckDeadline(const char* site) const {
  if (!deadline_.Expired()) return Status::OK();
  // Cancellation rides the deadline axis (base/cancel.h): same code,
  // same propagation paths, same never-a-definitive-verdict policy —
  // only the message and the counter name the real cause.
  if (deadline_.cancelled()) {
    trace::Count("resource/cancelled");
    return Status::DeadlineExceeded(std::string("cancelled at ") + site);
  }
  return Status::DeadlineExceeded(std::string("deadline exceeded at ") + site);
}

Status ResourceBudget::CheckDepth(int depth, const char* site) const {
  if (max_depth_ <= 0 || depth <= max_depth_) return Status::OK();
  trace::Count("resource/depth_exhausted");
  return Status::ResourceExhausted(
      std::string("recursion depth ") + std::to_string(depth) + " exceeds " +
      std::to_string(max_depth_) + " at " + site);
}

}  // namespace xmlverify
