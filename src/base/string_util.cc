#include "base/string_util.h"

#include <cctype>

namespace xmlverify {

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view text, char separator) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(separator, start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view piece = StripWhitespace(text.substr(start, end - start));
    if (!piece.empty()) pieces.emplace_back(piece);
    start = end + 1;
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result += separator;
    result += pieces[i];
  }
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool IsValidName(std::string_view name) {
  if (name.empty()) return false;
  char first = name[0];
  if (!std::isalpha(static_cast<unsigned char>(first)) && first != '_') {
    return false;
  }
  for (char c : name.substr(1)) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '.' &&
        c != '-') {
      return false;
    }
  }
  return true;
}

}  // namespace xmlverify
