#include "base/fault_injection.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "trace/trace.h"

namespace xmlverify {

namespace {

struct Rule {
  enum class Kind { kAlways, kNth, kFromNth, kModulo };
  Kind kind = Kind::kAlways;
  int64_t n = 0;  // ordinal for kNth/kFromNth, modulus for kModulo
};

struct InjectorState {
  std::mutex mutex;
  std::map<std::string, Rule> rules;
  std::map<std::string, int64_t> hits;
  uint64_t seed = 0;
};

std::atomic<bool> g_armed{false};

InjectorState& State() {
  static InjectorState* state = new InjectorState();
  return *state;
}

// Deterministic splitmix-style mix of (seed, point, hit ordinal).
uint64_t MixHash(uint64_t seed, const std::string& point, int64_t hit) {
  uint64_t h = seed ^ 0x9e3779b97f4a7c15ULL;
  for (char c : point) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= static_cast<uint64_t>(hit);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

Result<int64_t> ParseOrdinal(const std::string& text,
                             const std::string& clause) {
  if (text.empty() || text.size() > 12) {
    return Status::InvalidArgument("bad fault-injection count in clause '" +
                                   clause + "'");
  }
  int64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad fault-injection count in clause '" +
                                     clause + "'");
    }
    value = value * 10 + (c - '0');
  }
  if (value <= 0) {
    return Status::InvalidArgument(
        "fault-injection counts are 1-based; got '" + clause + "'");
  }
  return value;
}

Result<std::pair<std::string, Rule>> ParseClause(const std::string& clause) {
  size_t eq = clause.find('=');
  std::string point = clause.substr(0, eq);
  if (point.empty()) {
    return Status::InvalidArgument("empty point name in fault-injection spec");
  }
  Rule rule;
  if (eq == std::string::npos) {
    rule.kind = Rule::Kind::kAlways;
    return std::make_pair(point, rule);
  }
  std::string arg = clause.substr(eq + 1);
  if (!arg.empty() && arg[0] == '%') {
    rule.kind = Rule::Kind::kModulo;
    ASSIGN_OR_RETURN(rule.n, ParseOrdinal(arg.substr(1), clause));
    return std::make_pair(point, rule);
  }
  if (!arg.empty() && arg.back() == '+') {
    rule.kind = Rule::Kind::kFromNth;
    ASSIGN_OR_RETURN(rule.n, ParseOrdinal(arg.substr(0, arg.size() - 1),
                                          clause));
    return std::make_pair(point, rule);
  }
  rule.kind = Rule::Kind::kNth;
  ASSIGN_OR_RETURN(rule.n, ParseOrdinal(arg, clause));
  return std::make_pair(point, rule);
}

}  // namespace

Status FaultInjector::Arm(const std::string& spec, uint64_t seed) {
#ifdef XMLVERIFY_DISABLE_FAULT_INJECTION
  (void)spec;
  (void)seed;
  return Status::Unsupported("fault injection is compiled out");
#else
  std::map<std::string, Rule> rules;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    size_t end = comma == std::string::npos ? spec.size() : comma;
    std::string clause = spec.substr(start, end - start);
    if (!clause.empty()) {
      ASSIGN_OR_RETURN(auto parsed, ParseClause(clause));
      rules[parsed.first] = parsed.second;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (rules.empty()) {
    return Status::InvalidArgument("empty fault-injection spec");
  }
  InjectorState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.rules = std::move(rules);
    state.hits.clear();
    state.seed = seed;
  }
  g_armed.store(true, std::memory_order_release);
  return Status::OK();
#endif
}

void FaultInjector::Disarm() {
  g_armed.store(false, std::memory_order_release);
  InjectorState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.rules.clear();
  state.hits.clear();
}

Status FaultInjector::ArmFromEnv() {
  const char* spec = std::getenv("XMLVERIFY_FAULT_INJECT");
  if (spec == nullptr || *spec == '\0') return Status::OK();
  uint64_t seed = 0;
  if (const char* seed_text = std::getenv("XMLVERIFY_FAULT_SEED")) {
    seed = std::strtoull(seed_text, nullptr, 10);
  }
  return Arm(spec, seed);
}

Status FaultInjector::Injected(const char* point) {
  return Status::ResourceExhausted(std::string("injected fault at ") + point);
}

int64_t FaultInjector::HitCount(const std::string& point) {
  InjectorState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.hits.find(point);
  return it == state.hits.end() ? 0 : it->second;
}

#ifndef XMLVERIFY_DISABLE_FAULT_INJECTION

bool FaultInjector::Armed() {
  return g_armed.load(std::memory_order_acquire);
}

bool FaultInjector::ShouldFail(const char* point) {
  if (!Armed()) return false;
  InjectorState& state = State();
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    auto it = state.rules.find(point);
    if (it == state.rules.end()) return false;
    int64_t hit = ++state.hits[point];
    const Rule& rule = it->second;
    switch (rule.kind) {
      case Rule::Kind::kAlways:
        fire = true;
        break;
      case Rule::Kind::kNth:
        fire = hit == rule.n;
        break;
      case Rule::Kind::kFromNth:
        fire = hit >= rule.n;
        break;
      case Rule::Kind::kModulo:
        fire = MixHash(state.seed, it->first, hit) % rule.n == 0;
        break;
    }
  }
  if (fire) {
    trace::Count("fault/injected");
    trace::Count(std::string("fault/") + point);
  }
  return fire;
}

#endif  // !XMLVERIFY_DISABLE_FAULT_INJECTION

}  // namespace xmlverify
