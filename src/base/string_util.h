// Small string helpers shared across parsers and pretty-printers.
#ifndef XMLVERIFY_BASE_STRING_UTIL_H_
#define XMLVERIFY_BASE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace xmlverify {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Splits on `separator`, trimming whitespace from each piece and
/// dropping empty pieces.
std::vector<std::string> SplitAndTrim(std::string_view text, char separator);

/// Joins the pieces with `separator`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True if `name` is a valid identifier: [A-Za-z_][A-Za-z0-9_.-]*.
/// (XML names allow '.' and '-'; we accept them after the first char.)
bool IsValidName(std::string_view name);

}  // namespace xmlverify

#endif  // XMLVERIFY_BASE_STRING_UTIL_H_
