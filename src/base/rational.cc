#include "base/rational.h"

#include <cstdio>
#include <ostream>

namespace xmlverify {

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  if (denominator_.is_zero()) {
    std::fprintf(stderr, "Rational: zero denominator\n");
    std::abort();
  }
  Normalize();
}

Result<Rational> Rational::Create(BigInt numerator, BigInt denominator) {
  if (denominator.is_zero()) {
    return Status::InvalidArgument("rational with zero denominator");
  }
  return Rational(std::move(numerator), std::move(denominator));
}

Result<Rational> Rational::FromString(std::string_view text) {
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    ASSIGN_OR_RETURN(BigInt value,
                     BigInt::FromString(std::string(text)));
    return Rational(std::move(value));
  }
  if (text.find('/', slash + 1) != std::string_view::npos) {
    return Status::InvalidArgument("rational '" + std::string(text) +
                                   "': more than one '/'");
  }
  ASSIGN_OR_RETURN(BigInt numerator,
                   BigInt::FromString(std::string(text.substr(0, slash))));
  ASSIGN_OR_RETURN(BigInt denominator,
                   BigInt::FromString(std::string(text.substr(slash + 1))));
  if (denominator.is_zero()) {
    return Status::InvalidArgument("rational '" + std::string(text) +
                                   "': zero denominator");
  }
  return Rational(std::move(numerator), std::move(denominator));
}

void Rational::Normalize() {
  if (denominator_.is_negative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  if (numerator_.is_zero()) {
    denominator_ = BigInt(1);
    return;
  }
  if (denominator_ == BigInt(1)) return;
  BigInt gcd = BigInt::Gcd(numerator_, denominator_);
  if (gcd != BigInt(1)) {
    numerator_ = numerator_ / gcd;
    denominator_ = denominator_ / gcd;
  }
}

double Rational::ToDouble() const {
  return numerator_.ToDouble() / denominator_.ToDouble();
}

std::string Rational::ToString() const {
  if (is_integer()) return numerator_.ToString();
  return numerator_.ToString() + "/" + denominator_.ToString();
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.numerator_ = -result.numerator_;
  return result;
}

Rational Rational::operator+(const Rational& other) const {
  // Integer fast path (the dominant case in the simplex tableau).
  if (is_integer() && other.is_integer()) {
    Rational result;
    result.numerator_ = numerator_ + other.numerator_;
    return result;
  }
  return Rational(
      numerator_ * other.denominator_ + other.numerator_ * denominator_,
      denominator_ * other.denominator_);
}

Rational Rational::operator-(const Rational& other) const {
  if (is_integer() && other.is_integer()) {
    Rational result;
    result.numerator_ = numerator_ - other.numerator_;
    return result;
  }
  return Rational(
      numerator_ * other.denominator_ - other.numerator_ * denominator_,
      denominator_ * other.denominator_);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(numerator_ * other.numerator_,
                  denominator_ * other.denominator_);
}

Rational Rational::operator/(const Rational& other) const {
  if (other.is_zero()) {
    std::fprintf(stderr, "Rational: division by zero\n");
    std::abort();
  }
  return Rational(numerator_ * other.denominator_,
                  denominator_ * other.numerator_);
}

Rational& Rational::operator+=(const Rational& other) {
  if (is_integer() && other.is_integer()) {
    numerator_ += other.numerator_;
    return *this;
  }
  // Full cross product computed before either member mutates, so the
  // aliased r += r case reads consistent values.
  BigInt numerator =
      numerator_ * other.denominator_ + other.numerator_ * denominator_;
  denominator_ *= other.denominator_;
  numerator_ = std::move(numerator);
  Normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& other) {
  if (is_integer() && other.is_integer()) {
    numerator_ -= other.numerator_;
    return *this;
  }
  BigInt numerator =
      numerator_ * other.denominator_ - other.numerator_ * denominator_;
  denominator_ *= other.denominator_;
  numerator_ = std::move(numerator);
  Normalize();
  return *this;
}

Rational& Rational::operator*=(const Rational& other) {
  if (is_integer() && other.is_integer()) {
    numerator_ *= other.numerator_;
    return *this;
  }
  numerator_ *= other.numerator_;
  // other.denominator_ is unchanged by the numerator update even when
  // `other` aliases *this, so the product below is still exact.
  denominator_ *= other.denominator_;
  Normalize();
  return *this;
}

Rational& Rational::SubMul(const Rational& b, const Rational& c) {
  if (is_integer() && b.is_integer() && c.is_integer()) {
    numerator_.SubMul(b.numerator_, c.numerator_);
    return *this;
  }
  // Cross products are materialized before any member mutates, so b or
  // c aliasing *this reads consistent values.
  BigInt product_num = b.numerator_ * c.numerator_;
  BigInt product_den = b.denominator_ * c.denominator_;
  numerator_ *= product_den;
  numerator_.SubMul(product_num, denominator_);
  denominator_ *= product_den;
  Normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& other) {
  if (other.is_zero()) {
    std::fprintf(stderr, "Rational: division by zero\n");
    std::abort();
  }
  BigInt numerator = numerator_ * other.denominator_;
  denominator_ *= other.numerator_;
  numerator_ = std::move(numerator);
  Normalize();
  return *this;
}

int Rational::Compare(const Rational& other) const {
  if (is_integer() && other.is_integer()) {
    return numerator_.Compare(other.numerator_);
  }
  // Denominators are positive, so cross-multiplication preserves order.
  BigInt lhs = numerator_ * other.denominator_;
  BigInt rhs = other.numerator_ * denominator_;
  return lhs.Compare(rhs);
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace xmlverify
