#include "base/rational.h"

#include <cstdio>
#include <ostream>

namespace xmlverify {

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  if (denominator_.is_zero()) {
    std::fprintf(stderr, "Rational: zero denominator\n");
    std::abort();
  }
  Normalize();
}

void Rational::Normalize() {
  if (denominator_.is_negative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  if (numerator_.is_zero()) {
    denominator_ = BigInt(1);
    return;
  }
  if (denominator_ == BigInt(1)) return;
  BigInt gcd = BigInt::Gcd(numerator_, denominator_);
  if (gcd != BigInt(1)) {
    numerator_ = numerator_ / gcd;
    denominator_ = denominator_ / gcd;
  }
}

double Rational::ToDouble() const {
  return numerator_.ToDouble() / denominator_.ToDouble();
}

std::string Rational::ToString() const {
  if (is_integer()) return numerator_.ToString();
  return numerator_.ToString() + "/" + denominator_.ToString();
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.numerator_ = -result.numerator_;
  return result;
}

Rational Rational::operator+(const Rational& other) const {
  // Integer fast path (the dominant case in the simplex tableau).
  if (is_integer() && other.is_integer()) {
    Rational result;
    result.numerator_ = numerator_ + other.numerator_;
    return result;
  }
  return Rational(
      numerator_ * other.denominator_ + other.numerator_ * denominator_,
      denominator_ * other.denominator_);
}

Rational Rational::operator-(const Rational& other) const {
  if (is_integer() && other.is_integer()) {
    Rational result;
    result.numerator_ = numerator_ - other.numerator_;
    return result;
  }
  return Rational(
      numerator_ * other.denominator_ - other.numerator_ * denominator_,
      denominator_ * other.denominator_);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(numerator_ * other.numerator_,
                  denominator_ * other.denominator_);
}

Rational Rational::operator/(const Rational& other) const {
  if (other.is_zero()) {
    std::fprintf(stderr, "Rational: division by zero\n");
    std::abort();
  }
  return Rational(numerator_ * other.denominator_,
                  denominator_ * other.numerator_);
}

int Rational::Compare(const Rational& other) const {
  if (is_integer() && other.is_integer()) {
    return numerator_.Compare(other.numerator_);
  }
  // Denominators are positive, so cross-multiplication preserves order.
  BigInt lhs = numerator_ * other.denominator_;
  BigInt rhs = other.numerator_ * denominator_;
  return lhs.Compare(rhs);
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace xmlverify
