// A small mutex-guarded memoization cache shared across checks (and
// across batch worker threads). Values are immutable once inserted
// and handed out as shared_ptr<const V>, so readers never observe a
// value mid-construction and eviction never invalidates a live
// reference.
//
// Lookup and Insert are separate on purpose: expensive computations
// (DFA determinization, encoding analysis) run outside the lock, and
// concurrent inserts for the same key are resolved first-writer-wins
// so every caller ends up sharing one canonical value.
#ifndef XMLVERIFY_BASE_SHARED_CACHE_H_
#define XMLVERIFY_BASE_SHARED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "base/fault_injection.h"

namespace xmlverify {

template <typename Value>
class SharedCache {
 public:
  /// `max_entries` bounds memory: when an insert would exceed it, the
  /// whole map is dropped (epoch clear). Outstanding shared_ptrs stay
  /// valid; only future lookups miss. Crude but contention-free
  /// compared to LRU bookkeeping, and the caches here hold small
  /// derived objects keyed by canonical text, so refilling is cheap.
  explicit SharedCache(size_t max_entries = 1 << 16)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  SharedCache(const SharedCache&) = delete;
  SharedCache& operator=(const SharedCache&) = delete;

  /// Returns the cached value for `key`, or nullptr on a miss.
  std::shared_ptr<const Value> Lookup(const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  /// Publishes `value` under `key`. If another thread inserted the
  /// key first, that earlier value wins and is returned, so all
  /// callers converge on one shared instance.
  std::shared_ptr<const Value> Insert(const std::string& key, Value value) {
    auto owned = std::make_shared<const Value>(std::move(value));
    // Fault point `cache_insert`: simulate publication failure by
    // skipping the map insert. The caller still gets a usable (merely
    // unshared) value — callers must tolerate the cache dropping any
    // insert, which is also what the epoch clear below does.
    if (FaultInjector::ShouldFail("cache_insert")) return owned;
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.size() >= max_entries_ &&
        entries_.find(key) == entries_.end()) {
      entries_.clear();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    auto [it, inserted] = entries_.emplace(key, std::move(owned));
    return it->second;
  }

  /// Publishes `value` under `key`, overwriting any existing entry
  /// (unlike Insert's first-writer-wins). For enriching a published
  /// entry with lazily computed data — e.g. attaching a minimized
  /// core to a cached INCONSISTENT verdict. Outstanding shared_ptrs
  /// to the old value stay valid; only future lookups see the new one.
  std::shared_ptr<const Value> Replace(const std::string& key, Value value) {
    auto owned = std::make_shared<const Value>(std::move(value));
    // Same contract as Insert: the cache may drop any publication
    // (fault point, epoch clear), and the caller still gets a usable
    // unshared value.
    if (FaultInjector::ShouldFail("cache_insert")) return owned;
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.size() >= max_entries_ &&
        entries_.find(key) == entries_.end()) {
      entries_.clear();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    entries_[key] = owned;
    return owned;
  }

  /// Convenience wrapper: Lookup, and on a miss compute outside the
  /// lock via `factory()` (returning Value) and Insert the result.
  template <typename Factory>
  std::shared_ptr<const Value> GetOrCompute(const std::string& key,
                                            Factory&& factory) {
    if (auto found = Lookup(key)) return found;
    return Insert(key, factory());
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  /// Visits every entry as `fn(key, value)` under the cache lock (so
  /// keep `fn` cheap — the snapshot writer copies entries out and does
  /// its IO outside). Iteration order is unspecified.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, value] : entries_) fn(key, *value);
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
  }

 private:
  const size_t max_entries_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const Value>> entries_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace xmlverify

#endif  // XMLVERIFY_BASE_SHARED_CACHE_H_
