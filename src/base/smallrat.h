// Two-tier exact rational arithmetic for the solver hot path.
//
// The exact simplex spends nearly all of its time adding, multiplying
// and comparing rationals whose numerators and denominators fit
// comfortably in a machine word. `SmallRational` is that common case:
// an int64 numerator/denominator pair kept in canonical form
// (denominator positive, reduced by gcd, numerator magnitude at most
// INT64_MAX so negation never overflows), with every operation
// computed through __int128 intermediates and reporting overflow
// instead of wrapping.
//
// `TwoTierRational` is the tagged tableau cell built on top: a
// SmallRational while the value fits, promoted lazily to the existing
// BigInt-backed `Rational` the moment an operation overflows — and
// demoted back when a result shrinks into range again. Promotion is
// observable through the `solver/smallrat_promotions` counter (see
// docs/performance.md).
#ifndef XMLVERIFY_BASE_SMALLRAT_H_
#define XMLVERIFY_BASE_SMALLRAT_H_

#include <cstdint>
#include <string>

#include "base/rational.h"

namespace xmlverify {

/// int64 rational in canonical form. Mutating arithmetic is exposed as
/// static three-address ops returning false on int64 overflow (the
/// output is unspecified then); callers fall back to the BigInt tier.
class SmallRational {
 public:
  constexpr SmallRational() = default;
  explicit constexpr SmallRational(int64_t value) : num_(value), den_(1) {}

  /// Canonicalizes num/den. Returns false when `den` is zero or the
  /// reduced pair does not fit (|num| or den > INT64_MAX).
  static bool Make(int64_t num, int64_t den, SmallRational* out);

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }

  bool is_zero() const { return num_ == 0; }
  bool is_negative() const { return num_ < 0; }
  bool is_integer() const { return den_ == 1; }
  int sign() const { return num_ == 0 ? 0 : (num_ < 0 ? -1 : 1); }

  /// All four return false on overflow; inputs may alias the output.
  static bool Add(const SmallRational& a, const SmallRational& b,
                  SmallRational* out);
  static bool Sub(const SmallRational& a, const SmallRational& b,
                  SmallRational* out);
  static bool Mul(const SmallRational& a, const SmallRational& b,
                  SmallRational* out);
  /// Requires b nonzero (the simplex guards divisors).
  static bool Div(const SmallRational& a, const SmallRational& b,
                  SmallRational* out);
  /// out = a - b * c in one step (the simplex row-combination kernel).
  static bool SubMul(const SmallRational& a, const SmallRational& b,
                     const SmallRational& c, SmallRational* out);

  SmallRational operator-() const {
    SmallRational r = *this;
    r.num_ = -r.num_;  // |num_| <= INT64_MAX by invariant
    return r;
  }

  /// Exact three-way comparison (cross products fit in __int128).
  int Compare(const SmallRational& other) const;

  Rational ToRational() const { return Rational(BigInt(num_), BigInt(den_)); }
  /// Returns false when `value` has a component beyond int64.
  static bool FromRational(const Rational& value, SmallRational* out);

  std::string ToString() const;

 private:
  int64_t num_ = 0;
  int64_t den_ = 1;
};

/// Tagged two-tier tableau cell: SmallRational inline, or a
/// heap-allocated BigInt Rational after overflow. Arithmetic stays in
/// the small tier whenever it can, promotes on overflow (counted via
/// trace as solver/smallrat_promotions), and demotes big results that
/// shrink back into int64 range, so long pivot chains whose entries
/// cancel return to the cheap representation.
class TwoTierRational {
 public:
  TwoTierRational() = default;
  explicit TwoTierRational(int64_t value) : small_(value) {}
  explicit TwoTierRational(const SmallRational& value) : small_(value) {}
  explicit TwoTierRational(const BigInt& value);
  explicit TwoTierRational(const Rational& value);

  TwoTierRational(const TwoTierRational& other) { CopyFrom(other); }
  TwoTierRational(TwoTierRational&& other) noexcept
      : small_(other.small_), big_(other.big_) {
    other.big_ = nullptr;
  }
  TwoTierRational& operator=(const TwoTierRational& other) {
    if (this != &other) {
      delete big_;
      big_ = nullptr;
      CopyFrom(other);
    }
    return *this;
  }
  TwoTierRational& operator=(TwoTierRational&& other) noexcept {
    if (this != &other) {
      delete big_;
      small_ = other.small_;
      big_ = other.big_;
      other.big_ = nullptr;
    }
    return *this;
  }
  ~TwoTierRational() { delete big_; }

  /// True while the value lives in the int64 tier.
  bool small() const { return big_ == nullptr; }

  bool is_zero() const { return small() ? small_.is_zero() : big_->is_zero(); }
  bool is_negative() const {
    return small() ? small_.is_negative() : big_->is_negative();
  }
  bool is_integer() const {
    return small() ? small_.is_integer() : big_->is_integer();
  }
  int sign() const { return small() ? small_.sign() : big_->sign(); }

  TwoTierRational& operator+=(const TwoTierRational& other);
  TwoTierRational& operator-=(const TwoTierRational& other);
  TwoTierRational& operator*=(const TwoTierRational& other);
  /// Requires `other` nonzero.
  TwoTierRational& operator/=(const TwoTierRational& other);
  /// *this -= b * c — the fused simplex row-update kernel; one
  /// overflow check and one reduction instead of two of each.
  TwoTierRational& SubMul(const TwoTierRational& b, const TwoTierRational& c);
  void Negate();

  int Compare(const TwoTierRational& other) const;
  bool operator==(const TwoTierRational& o) const { return Compare(o) == 0; }
  bool operator<(const TwoTierRational& o) const { return Compare(o) < 0; }

  /// Materializes the value in the BigInt tier's representation.
  Rational ToRational() const {
    return small() ? small_.ToRational() : *big_;
  }

  std::string ToString() const;

 private:
  void CopyFrom(const TwoTierRational& other) {
    small_ = other.small_;
    if (other.big_ != nullptr) big_ = new Rational(*other.big_);
  }
  /// Switches to the big tier holding `value` (counts a promotion).
  void Promote(Rational value);
  /// Moves a big-tier result back to the small tier when it fits.
  void TryDemote();
  /// Replaces the value with a big-tier result (no promotion counted;
  /// used when an operand was already big).
  void SetBig(Rational value);

  SmallRational small_;   // active when big_ == nullptr
  Rational* big_ = nullptr;
};

std::ostream& operator<<(std::ostream& os, const TwoTierRational& value);

}  // namespace xmlverify

#endif  // XMLVERIFY_BASE_SMALLRAT_H_
