// Status / Result<T> error model, in the style of Apache Arrow and
// RocksDB. The library does not throw exceptions: every fallible
// operation returns a Status (no payload) or a Result<T> (payload or
// error). Callers propagate with RETURN_IF_ERROR / ASSIGN_OR_RETURN.
#ifndef XMLVERIFY_BASE_STATUS_H_
#define XMLVERIFY_BASE_STATUS_H_

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace xmlverify {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (parse errors, bad specifications)
  kNotFound,          // referenced entity does not exist
  kUnsupported,       // valid input outside the implemented fragment
  kResourceExhausted, // configured search/size limit exceeded
  kDeadlineExceeded,  // wall-clock budget expired before a verdict
  kInternal,          // invariant violation inside the library
};

/// Success-or-error outcome of an operation, without a payload.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" rendering.
  std::string ToString() const;

  /// Aborts the process if this status is an error. Use only where an
  /// error indicates a programming bug (e.g., in tests and examples).
  void CheckOK() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T, or the Status explaining why it is absent.
template <typename T>
class Result {
 public:
  // Implicit conversions from both T and Status keep call sites
  // natural: `return value;` and `return Status::...;` both work.
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : status_(std::move(status)) {     // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { CheckHasValue(); return *value_; }
  T& value() & { CheckHasValue(); return *value_; }
  T&& value() && { CheckHasValue(); return *std::move(value_); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, aborting on error. For tests/examples.
  T ValueOrDie() && {
    status_.CheckOK();
    return *std::move(value_);
  }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) status_.CheckOK();
  }

  std::optional<T> value_;
  Status status_;
};

#define XMLVERIFY_CONCAT_IMPL(a, b) a##b
#define XMLVERIFY_CONCAT(a, b) XMLVERIFY_CONCAT_IMPL(a, b)

/// Propagates an error Status from the enclosing function.
#define RETURN_IF_ERROR(expr)                  \
  do {                                         \
    ::xmlverify::Status _st = (expr);          \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a Result<T> expression; on success binds the value to
/// `lhs`, otherwise returns the error from the enclosing function.
#define ASSIGN_OR_RETURN(lhs, rexpr)                              \
  ASSIGN_OR_RETURN_IMPL(XMLVERIFY_CONCAT(_result_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                          \
  if (!result.ok()) return result.status();       \
  lhs = std::move(result).value();

}  // namespace xmlverify

#endif  // XMLVERIFY_BASE_STATUS_H_
