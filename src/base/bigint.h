// Arbitrary-precision signed integers.
//
// The exact rational simplex underlying the consistency checkers can
// produce coefficients far beyond 64 bits (tableau entries grow
// multiplicatively during pivoting, and Papadimitriou-style solution
// bounds are themselves exponential), so the solver is built on this
// sign-magnitude big integer. Magnitudes are little-endian vectors of
// 32-bit limbs. Values at or below two limbs take dedicated machine-
// word fast paths; above that the magnitude kernels are sub-quadratic
// (Karatsuba multiply, Knuth Algorithm-D divmod, binary Stein GCD)
// computed over transient 64-bit word views of the limb array. The
// original schoolbook multiply / binary long division / Euclid GCD
// remain compiled in as a differential reference, selected by
// ForceReferenceKernels or the XMLVERIFY_BIGINT_REFERENCE environment
// variable (see docs/performance.md, "BigInt kernels").
#ifndef XMLVERIFY_BASE_BIGINT_H_
#define XMLVERIFY_BASE_BIGINT_H_

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/status.h"

namespace xmlverify {

namespace internal_bigint {

/// Minimal vector of 32-bit limbs with inline storage for values up
/// to 64 bits. The exact simplex creates and destroys enormous
/// numbers of small BigInts; avoiding heap traffic for the common
/// single/double-limb case is the dominant performance lever.
// Whether LimbVector recycles heap blocks through the thread-local
// one-slot cache below. Disabled under AddressSanitizer so every
// allocation stays visible to the tool (recycled blocks would mask
// use-after-free between arithmetic temporaries).
#if defined(__SANITIZE_ADDRESS__)
inline constexpr bool kRecycleLimbBlocks = false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
inline constexpr bool kRecycleLimbBlocks = false;
#else
inline constexpr bool kRecycleLimbBlocks = true;
#endif
#else
inline constexpr bool kRecycleLimbBlocks = true;
#endif

class LimbVector {
 public:
  LimbVector() = default;
  LimbVector(const LimbVector& other) { CopyFrom(other); }
  LimbVector(LimbVector&& other) noexcept { MoveFrom(&other); }
  LimbVector& operator=(const LimbVector& other) {
    if (this != &other) {
      Reset();
      CopyFrom(other);
    }
    return *this;
  }
  LimbVector& operator=(LimbVector&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(&other);
    }
    return *this;
  }
  ~LimbVector() { Reset(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t* data() { return heap_ == nullptr ? inline_ : heap_; }
  const uint32_t* data() const { return heap_ == nullptr ? inline_ : heap_; }
  uint32_t& operator[](size_t i) { return data()[i]; }
  uint32_t operator[](size_t i) const { return data()[i]; }
  uint32_t& back() { return data()[size_ - 1]; }
  uint32_t back() const { return data()[size_ - 1]; }
  uint32_t* begin() { return data(); }
  uint32_t* end() { return data() + size_; }
  const uint32_t* begin() const { return data(); }
  const uint32_t* end() const { return data() + size_; }

  void push_back(uint32_t limb) {
    Reserve(size_ + 1);
    data()[size_++] = limb;
  }
  /// Pre-sizes the backing store so a known run of push_backs cannot
  /// reallocate mid-loop (used by the multiply kernels to place the
  /// whole product before the carry passes run).
  void reserve(size_t count) { Reserve(count); }
  void pop_back() { --size_; }
  void clear() { size_ = 0; }
  void assign(size_t count, uint32_t value) {
    Reserve(count);
    uint32_t* d = data();
    for (size_t i = 0; i < count; ++i) d[i] = value;
    size_ = count;
  }
  /// Like resize but leaves any grown tail uninitialized. Only for
  /// kernel staging buffers that overwrite the whole extent before
  /// reading it (the multiply product); never expose uninitialized
  /// limbs to callers.
  void resize_uninitialized(size_t count) {
    Reserve(count);
    size_ = count;
  }
  /// Grows (zero- or value-filling the new tail) or shrinks to
  /// `count` limbs. Existing limbs are preserved; used by the
  /// in-place shift and compound-assignment kernels.
  void resize(size_t count, uint32_t value = 0) {
    if (count <= size_) {
      size_ = count;
      return;
    }
    Reserve(count);
    uint32_t* d = data();
    for (size_t i = size_; i < count; ++i) d[i] = value;
    size_ = count;
  }

 private:
  static constexpr size_t kInline = 3;
  // Largest block the recycler will hold on to (limbs). Bigger blocks
  // are freed outright so one huge temporary cannot pin 100s of KB per
  // thread for the life of the thread.
  static constexpr size_t kMaxRecycledCapacity = 4096;

  // Thread-local one-slot block cache. Arithmetic churns short-lived
  // heap-backed temporaries in tight alloc-free-alloc patterns
  // (multiply results, simplex row updates); a single cached block
  // absorbs the allocator round trip on that pattern, which is worth
  // ~40ns per multiply at 32 limbs. The slot keeps the larger of the
  // cached and released block so it converges on the working-set size.
  struct BlockCache {
    uint32_t* block = nullptr;
    size_t capacity = 0;
    ~BlockCache() { delete[] block; }
  };
  static BlockCache& TlsBlockCache() {
    static thread_local BlockCache cache;
    return cache;
  }
  // Returns a block of at least *capacity limbs, updating *capacity to
  // the actual capacity handed out.
  static uint32_t* AcquireBlock(size_t* capacity) {
    if (kRecycleLimbBlocks) {
      BlockCache& cache = TlsBlockCache();
      if (cache.block != nullptr && cache.capacity >= *capacity) {
        uint32_t* block = cache.block;
        *capacity = cache.capacity;
        cache.block = nullptr;
        cache.capacity = 0;
        return block;
      }
    }
    return new uint32_t[*capacity];
  }
  static void ReleaseBlock(uint32_t* block, size_t capacity) {
    if (block == nullptr) return;
    if (kRecycleLimbBlocks && capacity <= kMaxRecycledCapacity) {
      BlockCache& cache = TlsBlockCache();
      if (cache.capacity < capacity) {
        std::swap(cache.block, block);
        std::swap(cache.capacity, capacity);
      }
    }
    delete[] block;
  }

  void Reserve(size_t count) {
    if (count <= capacity_) return;
    size_t new_capacity = capacity_ * 2 < count ? count : capacity_ * 2;
    uint32_t* fresh = AcquireBlock(&new_capacity);
    std::memcpy(fresh, data(), size_ * sizeof(uint32_t));
    if (heap_ != nullptr) ReleaseBlock(heap_, capacity_);
    heap_ = fresh;
    capacity_ = new_capacity;
  }
  void Reset() {
    if (heap_ != nullptr) ReleaseBlock(heap_, capacity_);
    heap_ = nullptr;
    size_ = 0;
    capacity_ = kInline;
  }
  void CopyFrom(const LimbVector& other) {
    Reserve(other.size_);
    std::memcpy(data(), other.data(), other.size_ * sizeof(uint32_t));
    size_ = other.size_;
  }
  void MoveFrom(LimbVector* other) {
    if (other->heap_ != nullptr) {
      heap_ = other->heap_;
      capacity_ = other->capacity_;
      size_ = other->size_;
      other->heap_ = nullptr;
      other->size_ = 0;
      other->capacity_ = kInline;
    } else {
      std::memcpy(inline_, other->inline_, other->size_ * sizeof(uint32_t));
      size_ = other->size_;
      other->size_ = 0;
    }
  }

  uint32_t inline_[kInline];
  uint32_t* heap_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = kInline;
};

}  // namespace internal_bigint

class BigInt {
 public:
  BigInt() = default;
  BigInt(int64_t value);  // NOLINT: implicit by design (literals)

  /// Parses an optionally-signed decimal string.
  static Result<BigInt> FromString(const std::string& text);

  /// 2^exponent.
  static BigInt Pow2(uint64_t exponent);

  /// base^exponent (exponent >= 0).
  static BigInt Pow(const BigInt& base, uint64_t exponent);

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  int sign() const { return is_zero() ? 0 : (negative_ ? -1 : 1); }

  /// True if the value fits in int64_t.
  bool FitsInt64() const;
  /// Value as int64_t, or kResourceExhausted when it does not fit. The
  /// quantities this converts are counts about to be materialized
  /// (witness nodes, value pools), so "does not fit" means "too large
  /// to build" — the same ceiling semantics as a memory budget, and
  /// never a crash, whatever the input.
  Result<int64_t> TryToInt64() const;

  /// Approximate double conversion (for reporting only).
  double ToDouble() const;

  std::string ToString() const;

  /// Number of significant bits of the magnitude (0 for zero).
  size_t BitLength() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  BigInt operator/(const BigInt& other) const;
  /// Remainder with the sign of the dividend (C++ semantics).
  BigInt operator%(const BigInt& other) const;

  // True in-place compound assignment: the carry/borrow passes run
  // over this value's existing limb storage instead of expanding to
  // `*this = *this + other` (which allocated a fresh magnitude per
  // call — measurable on the simplex pivot inner loop). All three are
  // safe under aliasing (x += x doubles, x -= x zeroes, x *= x
  // squares).
  BigInt& operator+=(const BigInt& other);
  BigInt& operator-=(const BigInt& other);
  BigInt& operator*=(const BigInt& other);

  /// Fused in-place update *this = *this * multiplier + addend. For
  /// nonnegative *this, multiplier and addend this is a single carry
  /// pass over the existing limbs (no temporary) — the scalar
  /// accumulation kernel behind FromString and digit-chunked loops;
  /// other sign combinations fall back to the operator forms.
  BigInt& MulAddSmall(int64_t multiplier, int64_t addend);

  /// Fused in-place update *this -= b * c (the simplex row-combination
  /// pattern). Safe when b or c aliases *this.
  BigInt& SubMul(const BigInt& b, const BigInt& c);

  /// Shifts the magnitude left by `bits` bit positions, in place
  /// (value *= 2^bits; the sign is preserved).
  BigInt& ShlBits(uint64_t bits);
  /// Shifts the magnitude right by `bits` bit positions, in place
  /// (truncating toward zero; shifting out every bit yields zero).
  BigInt& ShrBits(uint64_t bits);

  /// Number of consecutive zero low bits of the magnitude (0 for zero
  /// and for odd values).
  size_t TrailingZeroBits() const;

  /// Forces the pre-sub-quadratic reference kernels (schoolbook
  /// multiply, binary long division, Euclid GCD) process-wide, for
  /// differential cross-checks of the fast kernels. Also armed by
  /// setting the XMLVERIFY_BIGINT_REFERENCE environment variable to a
  /// nonempty value other than "0" before process start. Thread-safe;
  /// intended for test/bench harnesses, not concurrent toggling
  /// mid-computation.
  static void ForceReferenceKernels(bool on);
  static bool ReferenceKernelsForced();

  /// Floor division: quotient rounds toward negative infinity.
  BigInt FloorDiv(const BigInt& other) const;
  /// Ceiling division: quotient rounds toward positive infinity.
  BigInt CeilDiv(const BigInt& other) const;

  /// Quotient and remainder of |*this| / |divisor| in one pass.
  /// Both results are nonnegative. A zero divisor yields
  /// kInvalidArgument and leaves the outputs untouched; the operators
  /// above share divisor checks with their callers and degrade to
  /// zero on that (internally unreachable) path instead of aborting.
  Status DivMod(const BigInt& divisor, BigInt* quotient,
                BigInt* remainder) const;

  /// Greatest common divisor of magnitudes (always nonnegative).
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  /// Three-way comparison: -1, 0, or 1.
  int Compare(const BigInt& other) const;

  bool operator==(const BigInt& other) const { return Compare(other) == 0; }
  bool operator!=(const BigInt& other) const { return Compare(other) != 0; }
  bool operator<(const BigInt& other) const { return Compare(other) < 0; }
  bool operator<=(const BigInt& other) const { return Compare(other) <= 0; }
  bool operator>(const BigInt& other) const { return Compare(other) > 0; }
  bool operator>=(const BigInt& other) const { return Compare(other) >= 0; }

 private:
  using Limbs = internal_bigint::LimbVector;

  // Magnitude as uint64 when it fits (size <= 2).
  uint64_t Magnitude64() const {
    uint64_t magnitude = 0;
    if (!limbs_.empty()) magnitude = limbs_[0];
    if (limbs_.size() > 1) magnitude |= uint64_t{limbs_[1]} << 32;
    return magnitude;
  }
  void SetMagnitude64(uint64_t magnitude) {
    limbs_.clear();
    if (magnitude != 0) limbs_.push_back(static_cast<uint32_t>(magnitude));
    if (magnitude >> 32) {
      limbs_.push_back(static_cast<uint32_t>(magnitude >> 32));
    }
  }

  // Magnitude comparison: -1/0/1 for |a| vs |b|.
  static int CompareMagnitude(const Limbs& a, const Limbs& b);
  static Limbs AddMagnitude(const Limbs& a, const Limbs& b);
  // Requires |a| >= |b|.
  static Limbs SubMagnitude(const Limbs& a, const Limbs& b);
  static Limbs MulMagnitude(const Limbs& a, const Limbs& b);
  // Shared signed accumulate for += / -= (`other` taken with the given
  // effective sign); requires this != &other.
  BigInt& AddSigned(const BigInt& other, bool other_negative);
  void Normalize();

  // Little-endian 32-bit limbs; empty means zero.
  Limbs limbs_;
  bool negative_ = false;
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace xmlverify

#endif  // XMLVERIFY_BASE_BIGINT_H_
