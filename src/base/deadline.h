// Cooperative wall-clock deadlines for the decision procedures.
//
// A Deadline is a point in time (or "never"); long-running loops poll
// it and bail out with a kDeadlineExceeded verdict instead of hanging
// on adversarial inputs. Polling is cooperative and cheap: an
// infinite deadline costs one branch, and hot loops amortize the
// clock read through PeriodicDeadlineCheck.
//
// Deadlines are plain values: copy them freely into worker threads
// and option structs. A default-constructed Deadline never expires.
#ifndef XMLVERIFY_BASE_DEADLINE_H_
#define XMLVERIFY_BASE_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>

#include "base/cancel.h"

namespace xmlverify {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() = default;

  /// Expires `budget` from now.
  static Deadline After(Clock::duration budget) {
    Deadline deadline;
    deadline.has_deadline_ = true;
    deadline.at_ = Clock::now() + budget;
    return deadline;
  }

  /// Expires `millis` milliseconds from now; non-positive budgets are
  /// already expired (useful in tests).
  static Deadline AfterMillis(int64_t millis) {
    return After(std::chrono::milliseconds(millis));
  }

  static Deadline Infinite() { return Deadline(); }

  /// Returns a copy that additionally expires the moment `token` is
  /// cancelled (base/cancel.h). Every existing cooperative poll —
  /// Expired(), PeriodicDeadlineCheck, ResourceBudget::CheckDeadline —
  /// then observes cancellation with one relaxed atomic load; the
  /// procedures need no changes. A cancel-only deadline (no time
  /// component) is not infinite: it is polled like any other.
  Deadline WithCancelToken(const CancelToken& token) const {
    Deadline deadline = *this;
    deadline.cancel_ = token.flag();
    return deadline;
  }

  bool is_infinite() const { return !has_deadline_ && cancel_ == nullptr; }

  /// True once the attached cancel token (if any) has been tripped.
  bool cancelled() const {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }

  /// True once the wall clock has passed the deadline or the attached
  /// cancel token has been tripped. Reads the clock; in tight loops
  /// prefer PeriodicDeadlineCheck.
  bool Expired() const {
    if (cancelled()) return true;
    return has_deadline_ && Clock::now() >= at_;
  }

  /// Time left, clamped at zero; a very large value when infinite.
  Clock::duration Remaining() const {
    if (cancelled()) return Clock::duration::zero();
    if (!has_deadline_) return Clock::duration::max();
    Clock::time_point now = Clock::now();
    return now >= at_ ? Clock::duration::zero() : at_ - now;
  }

 private:
  bool has_deadline_ = false;
  Clock::time_point at_{};
  // Shared with the CancelToken that produced it (null: not
  // cancellable). Copies of the deadline share the one flag.
  std::shared_ptr<const std::atomic<bool>> cancel_;
};

/// Amortized deadline polling for hot loops: reads the clock only
/// every `stride` calls (and never for infinite deadlines), so a
/// disabled deadline adds one predictable branch per iteration.
/// Detection latency is bounded by `stride` loop iterations.
class PeriodicDeadlineCheck {
 public:
  explicit PeriodicDeadlineCheck(const Deadline& deadline,
                                 uint32_t stride = 64)
      : deadline_(deadline), stride_(stride == 0 ? 1 : stride) {}

  /// True once the deadline has passed (sticky after first detection).
  bool Expired() {
    if (expired_) return true;
    if (deadline_.is_infinite()) return false;
    if (++tick_ % stride_ != 0) return false;
    expired_ = deadline_.Expired();
    return expired_;
  }

  const Deadline& deadline() const { return deadline_; }

 private:
  Deadline deadline_;
  uint32_t stride_;
  uint32_t tick_ = 0;
  bool expired_ = false;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_BASE_DEADLINE_H_
