// Cooperative wall-clock deadlines for the decision procedures.
//
// A Deadline is a point in time (or "never"); long-running loops poll
// it and bail out with a kDeadlineExceeded verdict instead of hanging
// on adversarial inputs. Polling is cooperative and cheap: an
// infinite deadline costs one branch, and hot loops amortize the
// clock read through PeriodicDeadlineCheck.
//
// Deadlines are plain values: copy them freely into worker threads
// and option structs. A default-constructed Deadline never expires.
#ifndef XMLVERIFY_BASE_DEADLINE_H_
#define XMLVERIFY_BASE_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace xmlverify {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() = default;

  /// Expires `budget` from now.
  static Deadline After(Clock::duration budget) {
    Deadline deadline;
    deadline.has_deadline_ = true;
    deadline.at_ = Clock::now() + budget;
    return deadline;
  }

  /// Expires `millis` milliseconds from now; non-positive budgets are
  /// already expired (useful in tests).
  static Deadline AfterMillis(int64_t millis) {
    return After(std::chrono::milliseconds(millis));
  }

  static Deadline Infinite() { return Deadline(); }

  bool is_infinite() const { return !has_deadline_; }

  /// True once the wall clock has passed the deadline. Reads the
  /// clock; in tight loops prefer PeriodicDeadlineCheck.
  bool Expired() const {
    return has_deadline_ && Clock::now() >= at_;
  }

  /// Time left, clamped at zero; a very large value when infinite.
  Clock::duration Remaining() const {
    if (!has_deadline_) return Clock::duration::max();
    Clock::time_point now = Clock::now();
    return now >= at_ ? Clock::duration::zero() : at_ - now;
  }

 private:
  bool has_deadline_ = false;
  Clock::time_point at_{};
};

/// Amortized deadline polling for hot loops: reads the clock only
/// every `stride` calls (and never for infinite deadlines), so a
/// disabled deadline adds one predictable branch per iteration.
/// Detection latency is bounded by `stride` loop iterations.
class PeriodicDeadlineCheck {
 public:
  explicit PeriodicDeadlineCheck(const Deadline& deadline,
                                 uint32_t stride = 64)
      : deadline_(deadline), stride_(stride == 0 ? 1 : stride) {}

  /// True once the deadline has passed (sticky after first detection).
  bool Expired() {
    if (expired_) return true;
    if (deadline_.is_infinite()) return false;
    if (++tick_ % stride_ != 0) return false;
    expired_ = deadline_.Expired();
    return expired_;
  }

  const Deadline& deadline() const { return deadline_; }

 private:
  Deadline deadline_;
  uint32_t stride_;
  uint32_t tick_ = 0;
  bool expired_ = false;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_BASE_DEADLINE_H_
