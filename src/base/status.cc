#include "base/status.h"

#include <cstdio>

namespace xmlverify {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace xmlverify
