// Stock TraceSink implementations behind `xmlvc --trace`.
//
//   TextTraceSink — indented, human-readable event log:
//       > check
//       .   > check/encode
//       .   < check/encode 0.412 ms
//       .   solver/lp_pivots +37
//       < check 1.003 ms
//
//   JsonTraceSink — JSON-lines, one event object per line:
//       {"event":"span_begin","name":"check","depth":0}
//       {"event":"counter","name":"solver/lp_pivots","delta":37,"depth":1}
//       {"event":"span_end","name":"check","depth":0,"ns":1003127}
//
// Both write to a caller-owned std::ostream and flush per event, so a
// trace is complete up to the instant of a crash.
#ifndef XMLVERIFY_TRACE_SINKS_H_
#define XMLVERIFY_TRACE_SINKS_H_

#include <ostream>

#include "trace/trace.h"

namespace xmlverify {

class TextTraceSink : public TraceSink {
 public:
  explicit TextTraceSink(std::ostream& out) : out_(out) {}
  void SpanBegin(std::string_view name, int depth) override;
  void SpanEnd(std::string_view name, int depth, int64_t nanos) override;
  void CounterAdd(std::string_view name, int64_t delta, int depth) override;

 private:
  std::ostream& out_;
};

class JsonTraceSink : public TraceSink {
 public:
  explicit JsonTraceSink(std::ostream& out) : out_(out) {}
  void SpanBegin(std::string_view name, int depth) override;
  void SpanEnd(std::string_view name, int depth, int64_t nanos) override;
  void CounterAdd(std::string_view name, int64_t delta, int depth) override;

 private:
  std::ostream& out_;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_TRACE_SINKS_H_
