// Structured tracing and solver statistics.
//
// Three pieces, designed so that instrumentation can live permanently
// in hot paths (see docs/observability.md for the full event schema
// and counter naming convention):
//
//   * StatsRegistry — a thread-safe store of named monotonic counters
//     and per-phase wall-clock totals. One registry typically spans
//     one checker invocation (or one benchmark run).
//   * TraceSpan — an RAII phase timer. On destruction it adds its
//     elapsed time to the active registry under its name and notifies
//     the active sink, so nested spans reconstruct the phase tree
//     class-detection -> encoding -> solving -> witness construction.
//   * TraceSink — an optional streaming consumer of begin/end/counter
//     events (see sinks.h for text and JSON-lines implementations).
//
// Activation is per thread and scoped: instantiating a TraceSession
// installs a registry (and optional sink) as the calling thread's
// active trace target; destroying it restores the previous one.
// With no session installed every instrumentation call is a single
// thread-local load and branch — no clock reads, no locks, no
// allocation — which is what keeps always-on instrumentation free in
// release builds (the "zero overhead when disabled" contract measured
// by bench_solver).
#ifndef XMLVERIFY_TRACE_TRACE_H_
#define XMLVERIFY_TRACE_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace xmlverify {

/// Streaming consumer of trace events. All methods are invoked on the
/// thread that owns the TraceSession; implementations need not be
/// thread-safe. `depth` is the span-nesting depth at the event.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void SpanBegin(std::string_view name, int depth) = 0;
  virtual void SpanEnd(std::string_view name, int depth, int64_t nanos) = 0;
  virtual void CounterAdd(std::string_view name, int64_t delta, int depth) = 0;
};

/// Aggregate of all completed spans with one name.
struct PhaseStat {
  int64_t count = 0;        // number of completed spans
  int64_t total_nanos = 0;  // summed wall-clock time
};

/// Thread-safe store of named counters and phase timings. Multiple
/// threads may share one registry (each via its own TraceSession);
/// every mutation takes the registry mutex.
class StatsRegistry {
 public:
  /// Adds `delta` to `counter` (creating it at zero).
  void Add(std::string_view counter, int64_t delta);
  /// Raises `counter` to `value` if below it (creating it at `value`,
  /// or at zero for negative `value`). Used for high-water marks such
  /// as search depth, which must appear in reports even when zero.
  void RecordMax(std::string_view counter, int64_t value);
  /// Adds one completed span of `nanos` to `phase`.
  void AddPhase(std::string_view phase, int64_t nanos);

  /// Current value of one counter; 0 if never touched.
  int64_t Counter(std::string_view counter) const;
  /// Snapshots (sorted by name; safe to take while other threads
  /// continue recording).
  std::map<std::string, int64_t> Counters() const;
  std::map<std::string, PhaseStat> Phases() const;
  void Reset();

  /// The machine-readable report behind `xmlvc --stats`:
  ///   {"phases": {name: {"count": N, "total_ns": N}, ...},
  ///    "counters": {name: N, ...}}
  /// Keys are sorted; emitted pretty-printed, one entry per line.
  std::string ToJson() const;
  /// Human-readable table of the same data (times in milliseconds).
  std::string ToText() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, int64_t, std::less<>> counters_;
  std::map<std::string, PhaseStat, std::less<>> phases_;
};

namespace trace {

namespace internal {
struct ThreadState {
  StatsRegistry* registry = nullptr;  // null <=> tracing disabled
  TraceSink* sink = nullptr;
  int depth = 0;
};
extern thread_local ThreadState tls_state;

// Out-of-line slow paths, entered only with a session installed.
void CountSlow(std::string_view counter, int64_t delta);
void MaxSlow(std::string_view counter, int64_t value);
}  // namespace internal

/// True while a TraceSession is installed on this thread.
inline bool Enabled() { return internal::tls_state.registry != nullptr; }

/// The registry installed on this thread (nullptr when tracing is
/// disabled). Lets a procedure that spawns worker threads hand them
/// its trace target: each worker opens its own TraceSession on the
/// returned registry (StatsRegistry is thread-safe; sinks are not and
/// must stay with the owning thread).
inline StatsRegistry* ActiveRegistry() { return internal::tls_state.registry; }

/// Adds `delta` to a named monotonic counter, if tracing is enabled.
inline void Count(std::string_view counter, int64_t delta = 1) {
  if (Enabled()) internal::CountSlow(counter, delta);
}

/// Records a high-water mark, if tracing is enabled.
inline void Max(std::string_view counter, int64_t value) {
  if (Enabled()) internal::MaxSlow(counter, value);
}

/// JSON string literal (quotes plus escaping) for report writers.
std::string JsonQuote(std::string_view text);

}  // namespace trace

/// Installs `registry` (and optionally `sink`) as the calling
/// thread's trace target for the lifetime of this object. Sessions
/// nest; the previous target is restored on destruction.
class TraceSession {
 public:
  explicit TraceSession(StatsRegistry* registry, TraceSink* sink = nullptr);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  trace::internal::ThreadState saved_;
};

/// RAII phase timer. `name` must outlive the span (string literals in
/// practice). Inactive (and free apart from one branch) when no
/// session is installed at construction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  int depth_ = 0;
  bool active_ = false;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_TRACE_TRACE_H_
