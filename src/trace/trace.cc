#include "trace/trace.h"

#include <cstdio>
#include <sstream>

namespace xmlverify {

namespace trace {
namespace internal {

thread_local ThreadState tls_state;

void CountSlow(std::string_view counter, int64_t delta) {
  ThreadState& state = tls_state;
  state.registry->Add(counter, delta);
  if (state.sink != nullptr) {
    state.sink->CounterAdd(counter, delta, state.depth);
  }
}

void MaxSlow(std::string_view counter, int64_t value) {
  tls_state.registry->RecordMax(counter, value);
}

}  // namespace internal

std::string JsonQuote(std::string_view text) {
  std::string quoted = "\"";
  for (char c : text) {
    switch (c) {
      case '"': quoted += "\\\""; break;
      case '\\': quoted += "\\\\"; break;
      case '\n': quoted += "\\n"; break;
      case '\t': quoted += "\\t"; break;
      case '\r': quoted += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          quoted += buffer;
        } else {
          quoted += c;
        }
    }
  }
  quoted += '"';
  return quoted;
}

}  // namespace trace

void StatsRegistry::Add(std::string_view counter, int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(counter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(counter), delta);
  } else {
    it->second += delta;
  }
}

void StatsRegistry::RecordMax(std::string_view counter, int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(counter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(counter), value < 0 ? 0 : value);
  } else if (it->second < value) {
    it->second = value;
  }
}

void StatsRegistry::AddPhase(std::string_view phase, int64_t nanos) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = phases_.find(phase);
  if (it == phases_.end()) {
    it = phases_.emplace(std::string(phase), PhaseStat{}).first;
  }
  ++it->second.count;
  it->second.total_nanos += nanos;
}

int64_t StatsRegistry::Counter(std::string_view counter) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(counter);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, int64_t> StatsRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, PhaseStat> StatsRegistry::Phases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {phases_.begin(), phases_.end()};
}

void StatsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  phases_.clear();
}

std::string StatsRegistry::ToJson() const {
  std::map<std::string, int64_t> counters = Counters();
  std::map<std::string, PhaseStat> phases = Phases();
  std::ostringstream out;
  out << "{\n  \"phases\": {";
  bool first = true;
  for (const auto& [name, stat] : phases) {
    out << (first ? "\n" : ",\n") << "    " << trace::JsonQuote(name)
        << ": {\"count\": " << stat.count
        << ", \"total_ns\": " << stat.total_nanos << "}";
    first = false;
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"counters\": {";
  first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n" : ",\n") << "    " << trace::JsonQuote(name) << ": "
        << value;
    first = false;
  }
  out << (first ? "}\n" : "\n  }\n");
  out << "}\n";
  return out.str();
}

std::string StatsRegistry::ToText() const {
  std::map<std::string, int64_t> counters = Counters();
  std::map<std::string, PhaseStat> phases = Phases();
  std::ostringstream out;
  char line[160];
  if (!phases.empty()) {
    std::snprintf(line, sizeof(line), "%-40s %8s %12s\n", "phase", "count",
                  "total_ms");
    out << line;
    for (const auto& [name, stat] : phases) {
      std::snprintf(line, sizeof(line), "%-40s %8lld %12.3f\n", name.c_str(),
                    static_cast<long long>(stat.count),
                    static_cast<double>(stat.total_nanos) / 1e6);
      out << line;
    }
  }
  if (!counters.empty()) {
    std::snprintf(line, sizeof(line), "%-40s %8s\n", "counter", "value");
    out << line;
    for (const auto& [name, value] : counters) {
      std::snprintf(line, sizeof(line), "%-40s %8lld\n", name.c_str(),
                    static_cast<long long>(value));
      out << line;
    }
  }
  return out.str();
}

TraceSession::TraceSession(StatsRegistry* registry, TraceSink* sink)
    : saved_(trace::internal::tls_state) {
  trace::internal::tls_state = {registry, sink, 0};
}

TraceSession::~TraceSession() { trace::internal::tls_state = saved_; }

TraceSpan::TraceSpan(const char* name) : name_(name) {
  trace::internal::ThreadState& state = trace::internal::tls_state;
  if (state.registry == nullptr) return;
  active_ = true;
  depth_ = state.depth++;
  if (state.sink != nullptr) state.sink->SpanBegin(name_, depth_);
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  int64_t nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  trace::internal::ThreadState& state = trace::internal::tls_state;
  state.depth = depth_;
  state.registry->AddPhase(name_, nanos);
  if (state.sink != nullptr) state.sink->SpanEnd(name_, depth_, nanos);
}

}  // namespace xmlverify
