#include "trace/sinks.h"

#include <cstdio>

namespace xmlverify {

namespace {

void Indent(std::ostream& out, int depth) {
  for (int i = 0; i < depth; ++i) out << ".   ";
}

}  // namespace

void TextTraceSink::SpanBegin(std::string_view name, int depth) {
  Indent(out_, depth);
  out_ << "> " << name << "\n";
  out_.flush();
}

void TextTraceSink::SpanEnd(std::string_view name, int depth, int64_t nanos) {
  Indent(out_, depth);
  char duration[32];
  std::snprintf(duration, sizeof(duration), "%.3f",
                static_cast<double>(nanos) / 1e6);
  out_ << "< " << name << " " << duration << " ms\n";
  out_.flush();
}

void TextTraceSink::CounterAdd(std::string_view name, int64_t delta,
                               int depth) {
  Indent(out_, depth);
  out_ << name << " " << (delta >= 0 ? "+" : "") << delta << "\n";
  out_.flush();
}

void JsonTraceSink::SpanBegin(std::string_view name, int depth) {
  out_ << "{\"event\":\"span_begin\",\"name\":" << trace::JsonQuote(name)
       << ",\"depth\":" << depth << "}\n";
  out_.flush();
}

void JsonTraceSink::SpanEnd(std::string_view name, int depth, int64_t nanos) {
  out_ << "{\"event\":\"span_end\",\"name\":" << trace::JsonQuote(name)
       << ",\"depth\":" << depth << ",\"ns\":" << nanos << "}\n";
  out_.flush();
}

void JsonTraceSink::CounterAdd(std::string_view name, int64_t delta,
                               int depth) {
  out_ << "{\"event\":\"counter\",\"name\":" << trace::JsonQuote(name)
       << ",\"delta\":" << delta << ",\"depth\":" << depth << "}\n";
  out_.flush();
}

}  // namespace xmlverify
