#include "regex/automaton.h"

#include <algorithm>
#include <deque>
#include <set>
#include <string>

#include "trace/trace.h"

namespace xmlverify {

namespace {

// Recursive Thompson construction. Returns {entry, exit} state ids.
struct Fragment {
  int entry;
  int exit;
};

class NfaBuilder {
 public:
  explicit NfaBuilder(int alphabet_size) { nfa_.alphabet_size = alphabet_size; }

  Nfa Build(const Regex& regex) {
    Fragment all = BuildFragment(regex);
    nfa_.start = all.entry;
    nfa_.accept = all.exit;
    return std::move(nfa_);
  }

 private:
  int NewState() {
    nfa_.states.emplace_back();
    return static_cast<int>(nfa_.states.size()) - 1;
  }

  Fragment BuildFragment(const Regex& regex) {
    switch (regex.kind()) {
      case RegexKind::kEpsilon: {
        int entry = NewState();
        int exit = NewState();
        nfa_.states[entry].epsilon_moves.push_back(exit);
        return {entry, exit};
      }
      case RegexKind::kSymbol: {
        int entry = NewState();
        int exit = NewState();
        nfa_.states[entry].moves[regex.symbol()].push_back(exit);
        return {entry, exit};
      }
      case RegexKind::kWildcard: {
        int entry = NewState();
        int exit = NewState();
        for (int symbol = 0; symbol < nfa_.alphabet_size; ++symbol) {
          nfa_.states[entry].moves[symbol].push_back(exit);
        }
        return {entry, exit};
      }
      case RegexKind::kConcat: {
        Fragment left = BuildFragment(regex.left());
        Fragment right = BuildFragment(regex.right());
        nfa_.states[left.exit].epsilon_moves.push_back(right.entry);
        return {left.entry, right.exit};
      }
      case RegexKind::kUnion: {
        Fragment left = BuildFragment(regex.left());
        Fragment right = BuildFragment(regex.right());
        int entry = NewState();
        int exit = NewState();
        nfa_.states[entry].epsilon_moves.push_back(left.entry);
        nfa_.states[entry].epsilon_moves.push_back(right.entry);
        nfa_.states[left.exit].epsilon_moves.push_back(exit);
        nfa_.states[right.exit].epsilon_moves.push_back(exit);
        return {entry, exit};
      }
      case RegexKind::kStar: {
        Fragment inner = BuildFragment(regex.left());
        int entry = NewState();
        int exit = NewState();
        nfa_.states[entry].epsilon_moves.push_back(inner.entry);
        nfa_.states[entry].epsilon_moves.push_back(exit);
        nfa_.states[inner.exit].epsilon_moves.push_back(inner.entry);
        nfa_.states[inner.exit].epsilon_moves.push_back(exit);
        return {entry, exit};
      }
    }
    // Unreachable.
    int state = NewState();
    return {state, state};
  }

  Nfa nfa_;
};

// Epsilon closure of a state set, as a sorted vector.
std::vector<int> EpsilonClosure(const Nfa& nfa, std::vector<int> states) {
  std::set<int> closure(states.begin(), states.end());
  std::deque<int> frontier(states.begin(), states.end());
  while (!frontier.empty()) {
    int state = frontier.front();
    frontier.pop_front();
    for (int next : nfa.states[state].epsilon_moves) {
      if (closure.insert(next).second) frontier.push_back(next);
    }
  }
  return std::vector<int>(closure.begin(), closure.end());
}

}  // namespace

Nfa BuildNfa(const Regex& regex, int alphabet_size) {
  NfaBuilder builder(alphabet_size);
  return builder.Build(regex);
}

SharedCache<Dfa>& GlobalDfaCache() {
  // Leaked singleton: safe to use from any thread at any point of
  // program teardown.
  static SharedCache<Dfa>* cache = new SharedCache<Dfa>();
  return *cache;
}

Dfa CachedDeterminize(const Regex& regex, int alphabet_size) {
  SharedCache<Dfa>& cache = GlobalDfaCache();
  const std::string key =
      std::to_string(alphabet_size) + "@" + regex.CanonicalText();
  if (std::shared_ptr<const Dfa> found = cache.Lookup(key)) {
    trace::Count("cache/dfa_hits");
    return *found;
  }
  trace::Count("cache/dfa_misses");
  Dfa dfa = Dfa::Determinize(BuildNfa(regex, alphabet_size));
  return *cache.Insert(key, std::move(dfa));
}

Dfa Dfa::Determinize(const Nfa& nfa) {
  Dfa dfa;
  dfa.alphabet_size_ = nfa.alphabet_size;

  std::map<std::vector<int>, int> index;
  std::vector<std::vector<int>> subsets;
  std::deque<int> worklist;

  auto intern = [&](std::vector<int> subset) {
    auto [it, inserted] = index.emplace(subset, subsets.size());
    if (inserted) {
      subsets.push_back(std::move(subset));
      worklist.push_back(it->second);
    }
    return it->second;
  };

  intern(EpsilonClosure(nfa, {nfa.start}));

  std::vector<std::vector<int>> transitions;  // per state, per symbol
  while (!worklist.empty()) {
    int state = worklist.front();
    worklist.pop_front();
    if (state >= static_cast<int>(transitions.size())) {
      transitions.resize(state + 1);
    }
    transitions[state].assign(nfa.alphabet_size, -1);
    // Copy the subset: intern() may reallocate `subsets`.
    std::vector<int> subset = subsets[state];
    for (int symbol = 0; symbol < nfa.alphabet_size; ++symbol) {
      std::set<int> successors;
      for (int nfa_state : subset) {
        auto it = nfa.states[nfa_state].moves.find(symbol);
        if (it == nfa.states[nfa_state].moves.end()) continue;
        successors.insert(it->second.begin(), it->second.end());
      }
      std::vector<int> closure = EpsilonClosure(
          nfa, std::vector<int>(successors.begin(), successors.end()));
      transitions[state][symbol] = intern(std::move(closure));
    }
  }
  transitions.resize(subsets.size());

  dfa.accepting_.resize(subsets.size());
  dfa.transitions_.assign(subsets.size() * nfa.alphabet_size, 0);
  for (size_t state = 0; state < subsets.size(); ++state) {
    dfa.accepting_[state] =
        std::binary_search(subsets[state].begin(), subsets[state].end(),
                           nfa.accept);
    for (int symbol = 0; symbol < nfa.alphabet_size; ++symbol) {
      dfa.transitions_[state * nfa.alphabet_size + symbol] =
          transitions[state][symbol];
    }
  }
  // The empty subset (dead state) arises naturally from the subset
  // construction, so the DFA is already complete.
  return dfa;
}

bool Dfa::Accepts(const std::vector<int>& word) const {
  int state = start();
  for (int symbol : word) state = Next(state, symbol);
  return IsAccepting(state);
}

bool Dfa::IsEmpty() const {
  // BFS from the start state looking for an accepting state.
  std::vector<bool> seen(num_states(), false);
  std::deque<int> frontier = {start()};
  seen[start()] = true;
  while (!frontier.empty()) {
    int state = frontier.front();
    frontier.pop_front();
    if (IsAccepting(state)) return false;
    for (int symbol = 0; symbol < alphabet_size_; ++symbol) {
      int next = Next(state, symbol);
      if (!seen[next]) {
        seen[next] = true;
        frontier.push_back(next);
      }
    }
  }
  return true;
}

bool Dfa::ContainedIn(const Dfa& other) const {
  // L(this) ⊆ L(other) iff no reachable product state is
  // this-accepting and other-rejecting.
  std::set<std::pair<int, int>> seen;
  std::deque<std::pair<int, int>> frontier;
  frontier.emplace_back(start(), other.start());
  seen.insert(frontier.front());
  while (!frontier.empty()) {
    auto [a, b] = frontier.front();
    frontier.pop_front();
    if (IsAccepting(a) && !other.IsAccepting(b)) return false;
    for (int symbol = 0; symbol < alphabet_size_; ++symbol) {
      std::pair<int, int> next = {Next(a, symbol), other.Next(b, symbol)};
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  return true;
}

bool Dfa::Intersects(const Dfa& other) const {
  std::set<std::pair<int, int>> seen;
  std::deque<std::pair<int, int>> frontier;
  frontier.emplace_back(start(), other.start());
  seen.insert(frontier.front());
  while (!frontier.empty()) {
    auto [a, b] = frontier.front();
    frontier.pop_front();
    if (IsAccepting(a) && other.IsAccepting(b)) return true;
    for (int symbol = 0; symbol < alphabet_size_; ++symbol) {
      std::pair<int, int> next = {Next(a, symbol), other.Next(b, symbol)};
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  return false;
}

ProductDfa::ProductDfa(std::vector<Dfa> components)
    : components_(std::move(components)) {
  alphabet_size_ = components_.empty() ? 0 : components_[0].alphabet_size();
  std::vector<int> start_tuple(components_.size());
  for (size_t i = 0; i < components_.size(); ++i) {
    start_tuple[i] = components_[i].start();
  }
  state_index_[start_tuple] = 0;
  states_.push_back(std::move(start_tuple));
  transitions_.emplace_back(alphabet_size_, -1);
}

int ProductDfa::Next(int state, int symbol) {
  if (transitions_[state][symbol] >= 0) return transitions_[state][symbol];
  std::vector<int> tuple(components_.size());
  for (size_t i = 0; i < components_.size(); ++i) {
    tuple[i] = components_[i].Next(states_[state][i], symbol);
  }
  auto [it, inserted] = state_index_.emplace(tuple, states_.size());
  if (inserted) {
    states_.push_back(std::move(tuple));
    // May reallocate transitions_, so the cached reference is
    // re-derived below rather than held across this call.
    transitions_.emplace_back(alphabet_size_, -1);
  }
  transitions_[state][symbol] = it->second;
  return it->second;
}

bool ProductDfa::Accepts(int state, int component) const {
  return components_[component].IsAccepting(states_[state][component]);
}

}  // namespace xmlverify
