// Regular expressions over an integer-symbol alphabet.
//
// One regex type serves two roles in the paper's formalism:
//   * "horizontal" element-type definitions P(tau) inside DTDs
//     (Definition 2.1), and
//   * "vertical" regular path expressions in AC^reg constraints
//     (Section 3.2), including the wildcard `_` and its closure `_*`.
//
// Symbols are small integers; callers (the DTD, the constraint parser)
// own the mapping between names and symbol ids.
#ifndef XMLVERIFY_REGEX_REGEX_H_
#define XMLVERIFY_REGEX_REGEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"

namespace xmlverify {

/// Total expanded-size ceiling enforced by ParseRegex on bounded
/// repetitions: a{n} builds a node-sharing AST, but consumers walk the
/// expansion, so the product of nested bounds is capped here and an
/// oversized repetition is an InvalidArgument parse error.
inline constexpr int64_t kMaxExpandedRegexSize = 4096;

enum class RegexKind {
  kEpsilon,   // empty word
  kSymbol,    // a single alphabet symbol
  kWildcard,  // `_` : any symbol from the ambient alphabet
  kConcat,    // left . right
  kUnion,     // left | right
  kStar,      // left*
};

/// Immutable regular-expression AST. Cheap to copy (shares nodes).
class Regex {
 public:
  struct Node {
    RegexKind kind;
    int symbol = -1;  // kSymbol only
    std::shared_ptr<const Node> left;
    std::shared_ptr<const Node> right;
  };

  /// Default-constructed regex denotes the empty word.
  Regex() : Regex(Epsilon()) {}

  static Regex Epsilon();
  static Regex Symbol(int symbol);
  static Regex Wildcard();
  static Regex Concat(Regex left, Regex right);
  static Regex Union(Regex left, Regex right);
  static Regex Star(Regex inner);

  /// Concatenation of a (possibly empty) sequence; empty => epsilon.
  static Regex ConcatAll(const std::vector<Regex>& parts);
  /// Union of a sequence; must be nonempty.
  static Regex UnionAll(const std::vector<Regex>& parts);

  RegexKind kind() const { return node_->kind; }
  int symbol() const { return node_->symbol; }
  Regex left() const { return Regex(node_->left); }
  Regex right() const { return Regex(node_->right); }

  /// True if the empty word is in the language.
  bool MatchesEmpty() const;

  /// True if the language is finite, i.e., no Kleene star occurs
  /// (the paper's "no-star" restriction, Section 2).
  bool IsStarFree() const;

  /// All distinct symbols mentioned (wildcard not included).
  std::vector<int> Symbols() const;

  /// Size of the fully expanded syntax tree (atoms plus operators) as
  /// downstream consumers — ToString, Thompson construction — would
  /// walk it. The AST shares nodes, so a bounded repetition is cheap
  /// to build yet expensive to consume; this measures the consumed
  /// size. Memoized over shared nodes (O(DAG) time) and saturated at
  /// `cap`, so callers can guard against blow-ups without paying for
  /// one: a return value >= cap means "at least cap".
  int64_t ExpandedSize(int64_t cap) const;

  /// Renders with the paper's syntax: '.', '|', '*', '_', 'epsilon'.
  /// `name_of` maps a symbol id to its display name.
  std::string ToString(
      const std::function<std::string(int)>& name_of) const;

  /// Deterministic symbol-id rendering (e.g. "#3.(#1|#2)*"), suitable
  /// as a memoization key: equal texts denote equal languages for any
  /// fixed alphabet size, independent of which DTD produced the ids.
  std::string CanonicalText() const;

 private:
  explicit Regex(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

/// Structurally rewrites symbol ids through `map` (e.g., when
/// projecting a content model into a scope DTD with re-numbered
/// types). Epsilon/wildcard/operators are preserved.
Regex RemapSymbols(const Regex& regex,
                   const std::function<int(int)>& map);

/// Replaces every wildcard with the explicit union of `symbols`
/// (the paper reads `_` as E \ {r}, so callers pass the non-root
/// element types). `symbols` must be nonempty.
Regex ExpandWildcard(const Regex& regex, const std::vector<int>& symbols);

/// Parses the paper's regular-path syntax (with DTD-friendly sugar):
///   union  := concat ('|' concat)*
///   concat := star (('.' | ',') star)*
///   star   := atom ('*' | '+' | '?' | '{' n (',' m?)? '}')*
///   atom   := NAME | '_' | '%'          ('%' = epsilon) | '(' union ')'
/// `resolve` maps a name to a symbol id, returning -1 for unknown names.
Result<Regex> ParseRegex(
    const std::string& text,
    const std::function<int(const std::string&)>& resolve);

}  // namespace xmlverify

#endif  // XMLVERIFY_REGEX_REGEX_H_
