// Finite automata over integer-symbol alphabets.
//
// Used for (a) validating element content against DTD element type
// definitions, (b) deciding containment between regular path
// expressions (needed by the C_Sigma encoding of Lemma 4), and
// (c) the product DFA M that tags DTD flow variables with states in
// the Psi_D^Sigma encoding of Theorem 3.4.
#ifndef XMLVERIFY_REGEX_AUTOMATON_H_
#define XMLVERIFY_REGEX_AUTOMATON_H_

#include <map>
#include <vector>

#include "base/shared_cache.h"
#include "base/status.h"
#include "regex/regex.h"

namespace xmlverify {

/// Nondeterministic finite automaton with epsilon moves (Thompson
/// construction). States are 0..num_states-1.
struct Nfa {
  struct State {
    // symbol -> successor states. Wildcard edges are expanded at
    // construction time, so only concrete symbols appear here.
    std::map<int, std::vector<int>> moves;
    std::vector<int> epsilon_moves;
  };

  std::vector<State> states;
  int start = 0;
  int accept = 0;  // Thompson NFAs have a single accepting state.
  int alphabet_size = 0;
};

/// Builds the Thompson NFA of `regex` over symbols 0..alphabet_size-1.
/// Wildcards match every symbol of the alphabet.
Nfa BuildNfa(const Regex& regex, int alphabet_size);

class Dfa;

/// BuildNfa + Determinize through a process-wide mutex-guarded memo
/// keyed on the regex's canonical symbol-id text plus the alphabet
/// size. The resulting DFA depends only on that pair, so hits are
/// safe across unrelated DTDs and specifications — which is exactly
/// what makes the cache pay off for batch workloads with repeated
/// expressions. Emits cache/dfa_hits and cache/dfa_misses counters.
Dfa CachedDeterminize(const Regex& regex, int alphabet_size);

/// The cache behind CachedDeterminize, exposed for statistics and
/// tests (hits(), misses(), Clear()).
SharedCache<Dfa>& GlobalDfaCache();

/// Deterministic, complete finite automaton. State 0 is the start
/// state; every state has a transition on every symbol (a dead state
/// is materialized if needed).
class Dfa {
 public:
  /// Subset construction from an NFA.
  static Dfa Determinize(const Nfa& nfa);

  int num_states() const { return static_cast<int>(accepting_.size()); }
  int alphabet_size() const { return alphabet_size_; }
  int start() const { return 0; }

  int Next(int state, int symbol) const {
    return transitions_[state * alphabet_size_ + symbol];
  }
  bool IsAccepting(int state) const { return accepting_[state]; }

  /// Runs the DFA on a word; true if accepted.
  bool Accepts(const std::vector<int>& word) const;

  /// True if the language is empty.
  bool IsEmpty() const;

  /// True if L(this) is a subset of L(other). Both automata must share
  /// an alphabet size.
  bool ContainedIn(const Dfa& other) const;

  /// True if the two languages intersect.
  bool Intersects(const Dfa& other) const;

 private:
  friend class ProductDfa;

  std::vector<int> transitions_;  // state * alphabet_size + symbol
  std::vector<bool> accepting_;
  int alphabet_size_ = 0;
};

/// The product of several DFAs sharing an alphabet: the deterministic
/// automaton whose states are tuples of component states, built
/// lazily over the reachable part. Exposes per-component acceptance,
/// which is what the Psi_D^Sigma encoding consumes ("state s contains
/// a final state of the automaton for beta_i", Lemma 5).
class ProductDfa {
 public:
  explicit ProductDfa(std::vector<Dfa> components);

  int num_components() const { return static_cast<int>(components_.size()); }
  int alphabet_size() const { return alphabet_size_; }
  int start() const { return 0; }
  int num_states() const { return static_cast<int>(states_.size()); }

  /// Transition function; materializes the successor on first use.
  int Next(int state, int symbol);

  /// True if component `component` accepts in product state `state`.
  bool Accepts(int state, int component) const;

 private:
  std::vector<Dfa> components_;
  int alphabet_size_ = 0;
  std::vector<std::vector<int>> states_;          // tuple per product state
  std::map<std::vector<int>, int> state_index_;   // tuple -> id
  std::vector<std::vector<int>> transitions_;     // [state][symbol], -1 = not built
};

}  // namespace xmlverify

#endif  // XMLVERIFY_REGEX_AUTOMATON_H_
