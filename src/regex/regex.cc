#include "regex/regex.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>

#include "base/resource_guard.h"

namespace xmlverify {

namespace {

std::shared_ptr<const Regex::Node> MakeNode(RegexKind kind, int symbol,
                                            std::shared_ptr<const Regex::Node> l,
                                            std::shared_ptr<const Regex::Node> r) {
  auto node = std::make_shared<Regex::Node>();
  node->kind = kind;
  node->symbol = symbol;
  node->left = std::move(l);
  node->right = std::move(r);
  return node;
}

struct RegexAccess {
  static std::shared_ptr<const Regex::Node> NodeOf(const Regex& r);
  static Regex Wrap(std::shared_ptr<const Regex::Node> node);
};

}  // namespace

Regex Regex::Epsilon() {
  return Regex(MakeNode(RegexKind::kEpsilon, -1, nullptr, nullptr));
}

Regex Regex::Symbol(int symbol) {
  return Regex(MakeNode(RegexKind::kSymbol, symbol, nullptr, nullptr));
}

Regex Regex::Wildcard() {
  return Regex(MakeNode(RegexKind::kWildcard, -1, nullptr, nullptr));
}

Regex Regex::Concat(Regex left, Regex right) {
  return Regex(
      MakeNode(RegexKind::kConcat, -1, left.node_, right.node_));
}

Regex Regex::Union(Regex left, Regex right) {
  return Regex(MakeNode(RegexKind::kUnion, -1, left.node_, right.node_));
}

Regex Regex::Star(Regex inner) {
  return Regex(MakeNode(RegexKind::kStar, -1, inner.node_, nullptr));
}

Regex Regex::ConcatAll(const std::vector<Regex>& parts) {
  if (parts.empty()) return Epsilon();
  Regex result = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) result = Concat(result, parts[i]);
  return result;
}

Regex Regex::UnionAll(const std::vector<Regex>& parts) {
  Regex result = parts.at(0);
  for (size_t i = 1; i < parts.size(); ++i) result = Union(result, parts[i]);
  return result;
}

bool Regex::MatchesEmpty() const {
  switch (kind()) {
    case RegexKind::kEpsilon:
      return true;
    case RegexKind::kSymbol:
    case RegexKind::kWildcard:
      return false;
    case RegexKind::kConcat:
      return left().MatchesEmpty() && right().MatchesEmpty();
    case RegexKind::kUnion:
      return left().MatchesEmpty() || right().MatchesEmpty();
    case RegexKind::kStar:
      return true;
  }
  return false;
}

bool Regex::IsStarFree() const {
  switch (kind()) {
    case RegexKind::kEpsilon:
    case RegexKind::kSymbol:
    case RegexKind::kWildcard:
      return true;
    case RegexKind::kConcat:
    case RegexKind::kUnion:
      return left().IsStarFree() && right().IsStarFree();
    case RegexKind::kStar:
      return false;
  }
  return true;
}

int64_t Regex::ExpandedSize(int64_t cap) const {
  // Post-order over the node DAG with a memo, so shared subtrees are
  // measured once; their size still multiplies through every
  // reference, which is exactly the expansion a consumer would pay.
  std::map<const Node*, int64_t> memo;
  struct Frame { const Node* node; bool expanded; };
  std::vector<Frame> stack = {{node_.get(), false}};
  auto saturating_add = [cap](int64_t a, int64_t b) {
    return a >= cap - b ? cap : a + b;
  };
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    if (frame.node == nullptr || memo.count(frame.node) > 0) continue;
    if (!frame.expanded) {
      stack.push_back({frame.node, true});
      stack.push_back({frame.node->left.get(), false});
      stack.push_back({frame.node->right.get(), false});
      continue;
    }
    int64_t size = 1;
    if (frame.node->left != nullptr) {
      size = saturating_add(size, memo.at(frame.node->left.get()));
    }
    if (frame.node->right != nullptr) {
      size = saturating_add(size, memo.at(frame.node->right.get()));
    }
    memo[frame.node] = size;
  }
  return memo.at(node_.get());
}

std::vector<int> Regex::Symbols() const {
  std::set<int> seen;
  std::vector<const Node*> stack = {node_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node == nullptr) continue;
    if (node->kind == RegexKind::kSymbol) seen.insert(node->symbol);
    stack.push_back(node->left.get());
    stack.push_back(node->right.get());
  }
  return std::vector<int>(seen.begin(), seen.end());
}

namespace {

// Precedence-aware printer: union (lowest), concat, star (highest).
std::string Print(const Regex& r,
                  const std::function<std::string(int)>& name_of,
                  int parent_precedence) {
  auto wrap = [&](const std::string& body, int my_precedence) {
    if (my_precedence < parent_precedence) return "(" + body + ")";
    return body;
  };
  switch (r.kind()) {
    case RegexKind::kEpsilon:
      return "%";
    case RegexKind::kSymbol:
      return name_of(r.symbol());
    case RegexKind::kWildcard:
      return "_";
    case RegexKind::kUnion:
      return wrap(Print(r.left(), name_of, 1) + "|" +
                      Print(r.right(), name_of, 1),
                  1);
    case RegexKind::kConcat:
      return wrap(Print(r.left(), name_of, 2) + "." +
                      Print(r.right(), name_of, 2),
                  2);
    case RegexKind::kStar:
      return Print(r.left(), name_of, 3) + "*";
  }
  return "?";
}

class Parser {
 public:
  Parser(const std::string& text,
         const std::function<int(const std::string&)>& resolve)
      : text_(text), resolve_(resolve) {}

  Result<Regex> Parse() {
    ASSIGN_OR_RETURN(Regex result, ParseUnion());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters in regex: '" +
                                     text_.substr(pos_) + "'");
    }
    return result;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (!Peek(c)) return false;
    ++pos_;
    return true;
  }

  Result<Regex> ParseUnion() {
    ASSIGN_OR_RETURN(Regex result, ParseConcat());
    while (Consume('|')) {
      ASSIGN_OR_RETURN(Regex rhs, ParseConcat());
      result = Regex::Union(result, rhs);
    }
    return result;
  }

  Result<Regex> ParseConcat() {
    ASSIGN_OR_RETURN(Regex result, ParseStar());
    while (Consume('.') || Consume(',')) {
      ASSIGN_OR_RETURN(Regex rhs, ParseStar());
      result = Regex::Concat(result, rhs);
    }
    return result;
  }

  Result<Regex> ParseStar() {
    ASSIGN_OR_RETURN(Regex result, ParseAtom());
    while (true) {
      if (Consume('*')) {
        result = Regex::Star(result);
      } else if (Consume('+')) {
        // a+ == a.a* ; accepted for DTD convenience.
        result = Regex::Concat(result, Regex::Star(result));
      } else if (Consume('?')) {
        // a? == a|epsilon.
        result = Regex::Union(result, Regex::Epsilon());
      } else if (Peek('{')) {
        ASSIGN_OR_RETURN(result, ParseRepetition(result));
      } else {
        break;
      }
    }
    return result;
  }

  // Bounded repetition a{n}, a{n,}, a{n,m}: expanded structurally
  // into n mandatory copies followed by optional tails (or a star for
  // an open upper bound). The *expanded* size is capped — the copies
  // share nodes, so the parse itself is cheap, but every downstream
  // consumer (ToString, Thompson construction, determinization) pays
  // for the full expansion, and nested repetitions multiply: without
  // the product check, ((a{500}){500}){500} slips under any per-bound
  // limit yet expands to 1.25e8 atoms. An oversized repetition is a
  // property of the input, not of this process's resources, so it is
  // an InvalidArgument (ResourceExhausted would invite budget-escalated
  // retries that can never succeed).
  Result<Regex> ParseRepetition(Regex base) {
    Consume('{');
    ASSIGN_OR_RETURN(int64_t low, ParseCount());
    int64_t high = low;
    bool unbounded = false;
    if (Consume(',')) {
      SkipSpace();
      if (Peek('}')) {
        unbounded = true;
      } else {
        ASSIGN_OR_RETURN(high, ParseCount());
      }
    }
    if (!Consume('}')) {
      return Status::InvalidArgument("missing '}' in repetition: '" + text_ +
                                     "'");
    }
    if (!unbounded && high < low) {
      return Status::InvalidArgument("repetition bounds out of order: '" +
                                     text_ + "'");
    }
    // Copies of `base` the expansion will reference: the mandatory
    // prefix plus either the star or the optional tail. Each copy
    // also costs roughly one operator node (concat/union/star), hence
    // the +1 in the product bound.
    int64_t copies = unbounded ? low + 1 : high;
    if (copies == 0) copies = 1;  // a{0} still holds one epsilon node
    int64_t base_size = base.ExpandedSize(kMaxExpandedRegexSize);
    if (copies > kMaxExpandedRegexSize / (base_size + 1)) {
      return Status::InvalidArgument(
          "repetition in '" + text_ + "' expands to more than " +
          std::to_string(kMaxExpandedRegexSize) +
          " nodes; rewrite with '*' or smaller bounds");
    }
    std::vector<Regex> parts;
    for (int64_t i = 0; i < low; ++i) parts.push_back(base);
    if (unbounded) {
      parts.push_back(Regex::Star(base));
    } else {
      for (int64_t i = low; i < high; ++i) {
        parts.push_back(Regex::Union(base, Regex::Epsilon()));
      }
    }
    return Regex::ConcatAll(parts);
  }

  Result<int64_t> ParseCount() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected a count in repetition: '" +
                                     text_ + "'");
    }
    if (pos_ - start > 9) {
      return Status::InvalidArgument("repetition count too large");
    }
    return static_cast<int64_t>(std::stoll(text_.substr(start, pos_ - start)));
  }

  Result<Regex> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of regex: '" + text_ +
                                     "'");
    }
    char c = text_[pos_];
    if (c == '(') {
      // '(' is the only way the descent recurses; guard it so
      // adversarially deep nesting becomes a parse error rather than
      // a stack overflow (~4 frames per level).
      if (++depth_ > MaxParseDepth()) {
        --depth_;
        return Status::ResourceExhausted(
            "regex nesting exceeds the depth ceiling of " +
            std::to_string(MaxParseDepth()));
      }
      ++pos_;
      Result<Regex> inner = ParseUnion();
      --depth_;
      RETURN_IF_ERROR(inner.status());
      if (!Consume(')')) {
        return Status::InvalidArgument("missing ')' in regex: '" + text_ +
                                       "'");
      }
      return std::move(inner).value();
    }
    if (c == '%') {
      ++pos_;
      return Regex::Epsilon();
    }
    if (c == '_') {
      // '_' may start an identifier; only a lone underscore is the
      // wildcard. Look ahead.
      size_t next = pos_ + 1;
      bool lone = next >= text_.size() ||
                  (!std::isalnum(static_cast<unsigned char>(text_[next])) &&
                   text_[next] != '_');
      if (lone) {
        ++pos_;
        return Regex::Wildcard();
      }
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '-')) {
        ++pos_;
      }
      std::string name = text_.substr(start, pos_ - start);
      if (name == "epsilon") return Regex::Epsilon();
      int symbol = resolve_(name);
      if (symbol < 0) {
        return Status::NotFound("unknown symbol in regex: '" + name + "'");
      }
      return Regex::Symbol(symbol);
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' in regex: '" + text_ + "'");
  }

  const std::string& text_;
  const std::function<int(const std::string&)>& resolve_;
  int depth_ = 0;
  size_t pos_ = 0;
};

}  // namespace

std::string Regex::ToString(
    const std::function<std::string(int)>& name_of) const {
  return Print(*this, name_of, 0);
}

std::string Regex::CanonicalText() const {
  return Print(
      *this, [](int symbol) { return "#" + std::to_string(symbol); }, 0);
}

Regex RemapSymbols(const Regex& regex, const std::function<int(int)>& map) {
  switch (regex.kind()) {
    case RegexKind::kEpsilon:
      return Regex::Epsilon();
    case RegexKind::kSymbol:
      return Regex::Symbol(map(regex.symbol()));
    case RegexKind::kWildcard:
      return Regex::Wildcard();
    case RegexKind::kConcat:
      return Regex::Concat(RemapSymbols(regex.left(), map),
                           RemapSymbols(regex.right(), map));
    case RegexKind::kUnion:
      return Regex::Union(RemapSymbols(regex.left(), map),
                          RemapSymbols(regex.right(), map));
    case RegexKind::kStar:
      return Regex::Star(RemapSymbols(regex.left(), map));
  }
  return Regex::Epsilon();
}

Regex ExpandWildcard(const Regex& regex, const std::vector<int>& symbols) {
  switch (regex.kind()) {
    case RegexKind::kEpsilon:
    case RegexKind::kSymbol:
      return regex;
    case RegexKind::kWildcard: {
      std::vector<Regex> parts;
      parts.reserve(symbols.size());
      for (int symbol : symbols) parts.push_back(Regex::Symbol(symbol));
      return Regex::UnionAll(parts);
    }
    case RegexKind::kConcat:
      return Regex::Concat(ExpandWildcard(regex.left(), symbols),
                           ExpandWildcard(regex.right(), symbols));
    case RegexKind::kUnion:
      return Regex::Union(ExpandWildcard(regex.left(), symbols),
                          ExpandWildcard(regex.right(), symbols));
    case RegexKind::kStar:
      return Regex::Star(ExpandWildcard(regex.left(), symbols));
  }
  return regex;
}

Result<Regex> ParseRegex(
    const std::string& text,
    const std::function<int(const std::string&)>& resolve) {
  Parser parser(text, resolve);
  return parser.Parse();
}

}  // namespace xmlverify
