// Parallel batch verification: check many (DTD, constraints)
// specifications on a thread pool. Consistency of distinct
// specifications is embarrassingly parallel — checks share nothing
// but the process-wide memo caches (GlobalDfaCache,
// GlobalCardinalityPlanCache), which are mutex-guarded — so the
// driver simply hands manifest entries to workers through an atomic
// cursor and writes each result into its manifest slot.
#ifndef XMLVERIFY_BATCH_BATCH_RUNNER_H_
#define XMLVERIFY_BATCH_BATCH_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/consistency.h"
#include "core/verdict.h"
#include "trace/trace.h"

namespace xmlverify {

/// One manifest line: either a combined `.xvc` specification or a
/// (DTD file, constraints file) pair.
struct BatchEntry {
  std::string dtd_path;          // or the combined .xvc path
  std::string constraints_path;  // empty for a combined spec
  int line = 0;                  // 1-based manifest line, for messages
};

/// Parses a batch manifest: one specification per line. Blank lines
/// and lines starting with '#' are skipped. A line holds either one
/// path (a combined `.xvc` file) or two whitespace-separated paths
/// (DTD, then constraints). Relative paths are resolved against
/// `base_dir` (normally the manifest's own directory), so a manifest
/// can be checked from anywhere.
Result<std::vector<BatchEntry>> ParseBatchManifest(
    const std::string& text, const std::string& base_dir);

struct BatchOptions {
  /// Worker threads; <= 0 means std::thread::hardware_concurrency().
  int jobs = 0;
  /// Per-check wall-clock budget in milliseconds; <= 0 means none.
  /// Each check gets a fresh Deadline derived from this duration when
  /// its worker picks it up, so queueing time is not charged.
  int64_t timeout_millis = 0;
  /// Base checker options; the per-check deadline is stamped on top.
  ConsistencyChecker::Options check;
  /// Per-item retry with escalated budgets: an item whose check ends
  /// in DEADLINE_EXCEEDED or RESOURCE_EXHAUSTED (as a verdict or as an
  /// IO/check error status) is re-run up to `retries` more times, each
  /// attempt with its wall-clock and memory budgets multiplied by
  /// another factor of `retry_budget_growth`. Unlimited budgets stay
  /// unlimited; definitive verdicts are never retried.
  int retries = 0;
  double retry_budget_growth = 2.0;
  /// Optional registry shared by every worker (each worker installs
  /// its own TraceSession on it), aggregating counters such as
  /// cache/dfa_hits across the whole batch.
  StatsRegistry* stats = nullptr;
};

/// Result of one manifest entry, in manifest order.
struct BatchItem {
  /// IO/parse/internal failure for this entry; the verdict is
  /// meaningful only when ok().
  Status status;
  ConsistencyVerdict verdict;
};

struct BatchResult {
  std::vector<BatchItem> items;  // parallel to the manifest entries
  // Aggregates over `items`.
  int consistent = 0;
  int inconsistent = 0;
  int unknown = 0;
  int deadline_exceeded = 0;
  int resource_exhausted = 0;
  int errors = 0;
  // Retry accounting (see BatchOptions::retries): attempts re-run
  // after a budget failure, and how many of those items ultimately
  // escaped the budget failure.
  int retries = 0;
  int retry_recovered = 0;
  int64_t wall_millis = 0;  // whole-batch wall clock
};

/// Checks every entry on `jobs` worker threads. Results land at the
/// entry's manifest index regardless of completion order. Workers
/// load (read + parse) their specification themselves, so IO and
/// parsing parallelize along with the checks; witnesses are not built
/// (batch mode reports verdicts only).
BatchResult RunBatch(const std::vector<BatchEntry>& entries,
                     const BatchOptions& options);

}  // namespace xmlverify

#endif  // XMLVERIFY_BATCH_BATCH_RUNNER_H_
