#include "batch/batch_runner.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "base/deadline.h"
#include "base/fault_injection.h"
#include "base/string_util.h"
#include "core/specification.h"

namespace xmlverify {

namespace {

Result<std::string> ReadFile(const std::string& path) {
  // Fault point `manifest_io`: a simulated transient read failure,
  // retryable like any other resource failure.
  if (FaultInjector::ShouldFail("manifest_io")) {
    return FaultInjector::Injected("manifest_io");
  }
  std::ifstream in(path);
  if (!in.good()) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string ResolvePath(const std::string& path, const std::string& base_dir) {
  if (base_dir.empty() || path.empty() || path[0] == '/') return path;
  return base_dir + "/" + path;
}

Result<Specification> LoadSpec(const BatchEntry& entry) {
  if (entry.constraints_path.empty()) {
    ASSIGN_OR_RETURN(std::string combined, ReadFile(entry.dtd_path));
    return Specification::ParseCombined(combined);
  }
  ASSIGN_OR_RETURN(std::string dtd_text, ReadFile(entry.dtd_path));
  ASSIGN_OR_RETURN(std::string constraints_text,
                   ReadFile(entry.constraints_path));
  return Specification::Parse(dtd_text, constraints_text);
}

// One attempt at one entry: load, stamp budgets scaled by `factor`,
// decide. Loading is inside the attempt so transient IO failures
// (the manifest_io fault point) are retried along with the check.
BatchItem CheckOnce(const BatchEntry& entry, const BatchOptions& options,
                    double factor) {
  BatchItem item;
  Result<Specification> spec = LoadSpec(entry);
  if (!spec.ok()) {
    item.status = Status(spec.status().code(),
                         "manifest line " + std::to_string(entry.line) + ": " +
                             spec.status().message());
    return item;
  }
  ConsistencyChecker::Options check = options.check;
  // Batch mode reports verdicts, not documents; skipping witness
  // construction keeps per-check memory flat across a large manifest.
  check.build_witness = false;
  if (options.timeout_millis > 0) {
    check.deadline = Deadline::AfterMillis(
        static_cast<int64_t>(static_cast<double>(options.timeout_millis) *
                             factor));
  }
  // Budget limits are plain members (only the accounting block is
  // shared), so scaling this copy leaves the caller's base intact.
  int64_t memory_limit = check.budget.memory_limit_bytes();
  if (memory_limit > 0) {
    check.budget.set_memory_limit_bytes(
        static_cast<int64_t>(static_cast<double>(memory_limit) * factor));
  }
  ConsistencyChecker checker(std::move(check));
  Result<ConsistencyVerdict> verdict = checker.Check(*spec);
  if (!verdict.ok()) {
    item.status = Status(verdict.status().code(),
                         "manifest line " + std::to_string(entry.line) + ": " +
                             verdict.status().message());
    return item;
  }
  item.verdict = *std::move(verdict);
  return item;
}

// A budget failure — wherever it surfaced — is worth retrying with a
// bigger budget; anything definitive (or structurally broken) is not.
bool Retryable(const BatchItem& item) {
  if (!item.status.ok()) {
    return item.status.code() == StatusCode::kDeadlineExceeded ||
           item.status.code() == StatusCode::kResourceExhausted;
  }
  return item.verdict.outcome == ConsistencyOutcome::kDeadlineExceeded ||
         item.verdict.outcome == ConsistencyOutcome::kResourceExhausted;
}

// Checks one entry with the retry-with-escalated-budget ladder.
BatchItem CheckOne(const BatchEntry& entry, const BatchOptions& options,
                   std::atomic<int>* retries, std::atomic<int>* recovered) {
  const int max_retries = options.retries < 0 ? 0 : options.retries;
  const double growth =
      options.retry_budget_growth > 1.0 ? options.retry_budget_growth : 2.0;
  double factor = 1.0;
  BatchItem item = CheckOnce(entry, options, factor);
  for (int retry = 0; retry < max_retries && Retryable(item); ++retry) {
    factor *= growth;
    trace::Count("resource/retries");
    retries->fetch_add(1, std::memory_order_relaxed);
    item = CheckOnce(entry, options, factor);
    if (!Retryable(item)) {
      trace::Count("resource/retry_recovered");
      recovered->fetch_add(1, std::memory_order_relaxed);
    }
  }
  return item;
}

}  // namespace

Result<std::vector<BatchEntry>> ParseBatchManifest(
    const std::string& text, const std::string& base_dir) {
  std::vector<BatchEntry> entries;
  std::istringstream lines(text);
  std::string line;
  int line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::istringstream fields{std::string(stripped)};
    std::string first, second, extra;
    fields >> first >> second >> extra;
    if (!extra.empty()) {
      return Status::InvalidArgument(
          "manifest line " + std::to_string(line_number) +
          ": expected one path (combined .xvc) or two paths "
          "(DTD constraints), got more");
    }
    BatchEntry entry;
    entry.dtd_path = ResolvePath(first, base_dir);
    entry.constraints_path =
        second.empty() ? second : ResolvePath(second, base_dir);
    entry.line = line_number;
    entries.push_back(std::move(entry));
  }
  return entries;
}

BatchResult RunBatch(const std::vector<BatchEntry>& entries,
                     const BatchOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  BatchResult result;
  result.items.resize(entries.size());

  int jobs = options.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  if (jobs > static_cast<int>(entries.size())) {
    jobs = static_cast<int>(entries.size());
  }

  // Work distribution: an atomic cursor over the manifest. Each
  // worker claims the next unchecked entry and writes into its own
  // slot of `result.items` — distinct indices, so no lock is needed
  // on the result vector.
  std::atomic<size_t> next{0};
  std::atomic<int> retries{0};
  std::atomic<int> recovered{0};
  auto worker = [&]() {
    // Per-worker session on the shared (thread-safe) registry: the
    // library's trace::Count calls from every worker aggregate into
    // one report.
    std::unique_ptr<TraceSession> session;
    if (options.stats != nullptr) {
      session = std::make_unique<TraceSession>(options.stats);
    }
    while (true) {
      const size_t index = next.fetch_add(1);
      if (index >= entries.size()) break;
      result.items[index] =
          CheckOne(entries[index], options, &retries, &recovered);
      trace::Count("batch/specs_checked");
    }
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (int job = 0; job < jobs; ++job) threads.emplace_back(worker);
    for (std::thread& thread : threads) thread.join();
  }

  for (const BatchItem& item : result.items) {
    if (!item.status.ok()) {
      ++result.errors;
      continue;
    }
    switch (item.verdict.outcome) {
      case ConsistencyOutcome::kConsistent: ++result.consistent; break;
      case ConsistencyOutcome::kInconsistent: ++result.inconsistent; break;
      case ConsistencyOutcome::kUnknown: ++result.unknown; break;
      case ConsistencyOutcome::kDeadlineExceeded:
        ++result.deadline_exceeded;
        break;
      case ConsistencyOutcome::kResourceExhausted:
        ++result.resource_exhausted;
        break;
    }
  }
  result.retries = retries.load();
  result.retry_recovered = recovered.load();
  result.wall_millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  if (options.stats != nullptr) {
    options.stats->Add("batch/deadline_exceeded", result.deadline_exceeded);
    options.stats->Add("batch/resource_exhausted", result.resource_exhausted);
    options.stats->Add("batch/errors", result.errors);
  }
  return result;
}

}  // namespace xmlverify
