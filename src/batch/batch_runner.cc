#include "batch/batch_runner.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "base/deadline.h"
#include "base/string_util.h"
#include "core/specification.h"

namespace xmlverify {

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string ResolvePath(const std::string& path, const std::string& base_dir) {
  if (base_dir.empty() || path.empty() || path[0] == '/') return path;
  return base_dir + "/" + path;
}

Result<Specification> LoadSpec(const BatchEntry& entry) {
  if (entry.constraints_path.empty()) {
    ASSIGN_OR_RETURN(std::string combined, ReadFile(entry.dtd_path));
    return Specification::ParseCombined(combined);
  }
  ASSIGN_OR_RETURN(std::string dtd_text, ReadFile(entry.dtd_path));
  ASSIGN_OR_RETURN(std::string constraints_text,
                   ReadFile(entry.constraints_path));
  return Specification::Parse(dtd_text, constraints_text);
}

// Checks one entry end to end: load, stamp the deadline, decide.
BatchItem CheckOne(const BatchEntry& entry, const BatchOptions& options) {
  BatchItem item;
  Result<Specification> spec = LoadSpec(entry);
  if (!spec.ok()) {
    item.status = Status(spec.status().code(),
                         "manifest line " + std::to_string(entry.line) + ": " +
                             spec.status().message());
    return item;
  }
  ConsistencyChecker::Options check = options.check;
  // Batch mode reports verdicts, not documents; skipping witness
  // construction keeps per-check memory flat across a large manifest.
  check.build_witness = false;
  if (options.timeout_millis > 0) {
    check.deadline = Deadline::AfterMillis(options.timeout_millis);
  }
  ConsistencyChecker checker(std::move(check));
  Result<ConsistencyVerdict> verdict = checker.Check(*spec);
  if (!verdict.ok()) {
    item.status = Status(verdict.status().code(),
                         "manifest line " + std::to_string(entry.line) + ": " +
                             verdict.status().message());
    return item;
  }
  item.verdict = *std::move(verdict);
  return item;
}

}  // namespace

Result<std::vector<BatchEntry>> ParseBatchManifest(
    const std::string& text, const std::string& base_dir) {
  std::vector<BatchEntry> entries;
  std::istringstream lines(text);
  std::string line;
  int line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::istringstream fields{std::string(stripped)};
    std::string first, second, extra;
    fields >> first >> second >> extra;
    if (!extra.empty()) {
      return Status::InvalidArgument(
          "manifest line " + std::to_string(line_number) +
          ": expected one path (combined .xvc) or two paths "
          "(DTD constraints), got more");
    }
    BatchEntry entry;
    entry.dtd_path = ResolvePath(first, base_dir);
    entry.constraints_path =
        second.empty() ? second : ResolvePath(second, base_dir);
    entry.line = line_number;
    entries.push_back(std::move(entry));
  }
  return entries;
}

BatchResult RunBatch(const std::vector<BatchEntry>& entries,
                     const BatchOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  BatchResult result;
  result.items.resize(entries.size());

  int jobs = options.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  if (jobs > static_cast<int>(entries.size())) {
    jobs = static_cast<int>(entries.size());
  }

  // Work distribution: an atomic cursor over the manifest. Each
  // worker claims the next unchecked entry and writes into its own
  // slot of `result.items` — distinct indices, so no lock is needed
  // on the result vector.
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    // Per-worker session on the shared (thread-safe) registry: the
    // library's trace::Count calls from every worker aggregate into
    // one report.
    std::unique_ptr<TraceSession> session;
    if (options.stats != nullptr) {
      session = std::make_unique<TraceSession>(options.stats);
    }
    while (true) {
      const size_t index = next.fetch_add(1);
      if (index >= entries.size()) break;
      result.items[index] = CheckOne(entries[index], options);
      trace::Count("batch/specs_checked");
    }
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (int job = 0; job < jobs; ++job) threads.emplace_back(worker);
    for (std::thread& thread : threads) thread.join();
  }

  for (const BatchItem& item : result.items) {
    if (!item.status.ok()) {
      ++result.errors;
      continue;
    }
    switch (item.verdict.outcome) {
      case ConsistencyOutcome::kConsistent: ++result.consistent; break;
      case ConsistencyOutcome::kInconsistent: ++result.inconsistent; break;
      case ConsistencyOutcome::kUnknown: ++result.unknown; break;
      case ConsistencyOutcome::kDeadlineExceeded:
        ++result.deadline_exceeded;
        break;
    }
  }
  result.wall_millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  if (options.stats != nullptr) {
    options.stats->Add("batch/deadline_exceeded", result.deadline_exceeded);
    options.stats->Add("batch/errors", result.errors);
  }
  return result;
}

}  // namespace xmlverify
